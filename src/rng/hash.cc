#include "rng/hash.h"

#include <cmath>

namespace abp {

std::uint64_t stable_hash64(std::span<const std::uint64_t> words) {
  std::uint64_t state = 0x9AE16A3B2F90404FULL;  // arbitrary odd constant
  std::uint64_t round = 0;
  for (std::uint64_t w : words) {
    state = splitmix64_mix(state ^ splitmix64_mix(w + (++round) * 0xC2B2AE3D27D4EB4FULL));
  }
  // Final avalanche so short inputs are well mixed.
  return splitmix64_mix(state ^ (round * 0x165667B19E3779F9ULL));
}

double hash_to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double hash_to_symmetric(std::uint64_t h) {
  return 2.0 * hash_to_unit(h) - 1.0;
}

std::int64_t quantize_cm(double meters) {
  return static_cast<std::int64_t>(std::llround(meters * 100.0));
}

}  // namespace abp
