#include "rng/hash.h"

#include <cmath>

namespace abp {

std::uint64_t stable_hash64(std::span<const std::uint64_t> words) {
  std::uint64_t state = kStableHashInit;
  std::uint64_t round = 0;
  for (std::uint64_t w : words) {
    state = stable_hash64_absorb(state, w, ++round);
  }
  // Final avalanche so short inputs are well mixed.
  return stable_hash64_finalize(state, round);
}

std::int64_t quantize_cm(double meters) {
  return static_cast<std::int64_t>(std::llround(meters * 100.0));
}

}  // namespace abp
