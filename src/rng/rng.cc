#include "rng/rng.h"

#include <cmath>
#include <numbers>

#include "common/assert.h"
#include "rng/splitmix64.h"

namespace abp {

double Rng::uniform(double lo, double hi) {
  ABP_DCHECK(lo <= hi, "uniform bounds inverted");
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::below(std::uint64_t n) {
  ABP_DCHECK(n > 0, "below(0)");
  // Lemire 2019: unbiased bounded generation without division in the
  // common case.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ABP_DCHECK(lo <= hi, "uniform_int bounds inverted");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::bernoulli(double p) {
  ABP_DCHECK(p >= 0.0 && p <= 1.0, "bernoulli probability out of range");
  return uniform01() < p;
}

double Rng::normal() {
  // Box–Muller; draw u1 in (0,1] to avoid log(0).
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  ABP_DCHECK(stddev >= 0.0, "negative stddev");
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  ABP_DCHECK(rate > 0.0, "exponential rate must be positive");
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

std::uint64_t derive_seed(std::uint64_t parent,
                          std::span<const std::uint64_t> tags) {
  // Sponge-style absorption: each tag perturbs the state through the
  // SplitMix64 bijection, with a distinct round constant to break symmetry.
  std::uint64_t state = splitmix64_mix(parent ^ 0x6A09E667F3BCC908ULL);
  std::uint64_t round = 0;
  for (std::uint64_t tag : tags) {
    state = splitmix64_mix(state ^ splitmix64_mix(tag + (++round) * 0x9E3779B97F4A7C15ULL));
  }
  return state;
}

}  // namespace abp
