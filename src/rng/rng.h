/// \file rng.h
/// \brief The library-wide random number generator.
///
/// All stochastic behaviour in the reproduction flows through `Rng` so that
/// an experiment is completely determined by one 64-bit seed. Distribution
/// transforms are implemented here (not via std:: distributions, whose
/// algorithms are implementation-defined) so streams are identical across
/// compilers and platforms.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/xoshiro256pp.h"

namespace abp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xABCDEF1234567890ULL) : engine_(seed) {}

  /// Raw 64 random bits.
  std::uint64_t next_u64() { return engine_(); }

  /// Uniform double in [0, 1) with 53-bit resolution.
  double uniform01() {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform double in [-1, 1) — the paper's `u` draw (§4.2.1).
  double symmetric_unit() { return uniform(-1.0, 1.0); }

  /// Uniform integer in [0, n) via Lemire's unbiased multiply-shift method.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p.
  bool bernoulli(double p);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Independent child generator derived from this one's stream.
  Rng split() { return Rng(next_u64()); }

 private:
  Xoshiro256pp engine_;
};

/// Derive a child seed from a parent seed and a list of tag values
/// (experiment index, trial index, purpose code…). Collision-resistant
/// mixing; identical inputs always produce identical seeds. This is how the
/// evaluation harness guarantees that trial `i` of configuration `c` sees
/// the same randomness regardless of scheduling or thread count.
std::uint64_t derive_seed(std::uint64_t parent,
                          std::span<const std::uint64_t> tags);

/// Variadic convenience overload.
template <typename... Tags>
std::uint64_t derive_seed(std::uint64_t parent, Tags... tags) {
  const std::uint64_t arr[] = {static_cast<std::uint64_t>(tags)...};
  return derive_seed(parent, std::span<const std::uint64_t>(arr, sizeof...(tags)));
}

}  // namespace abp
