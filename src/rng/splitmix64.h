/// \file splitmix64.h
/// \brief SplitMix64 step/finalizer (Steele, Lea & Flood 2014).
///
/// Used in two roles: (1) seeding xoshiro256++ state from a single 64-bit
/// seed, and (2) as the mixing core of the stable hash in `rng/hash.h`.
/// The function is a bijection on 64-bit integers with excellent avalanche
/// behaviour, which is exactly what seed derivation needs.
#pragma once

#include <cstdint>

namespace abp {

/// Advance `state` and return the next SplitMix64 output.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless finalizer: mix a single value (bijective).
constexpr std::uint64_t splitmix64_mix(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64_next(s);
}

}  // namespace abp
