/// \file xoshiro256pp.h
/// \brief xoshiro256++ engine (Blackman & Vigna 2019).
///
/// A small, fast, high-quality 64-bit generator. Implemented from the public
/// reference algorithm so the library is dependency-free and every platform
/// produces identical streams (std:: engines are implementation-defined for
/// some distributions; we avoid them entirely). Satisfies
/// `std::uniform_random_bit_generator`.
#pragma once

#include <array>
#include <cstdint>

#include "rng/splitmix64.h"

namespace abp {

class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seed the 256-bit state via SplitMix64 (never all-zero).
  explicit Xoshiro256pp(std::uint64_t seed = 0xABCDEF1234567890ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// 2^128-step jump: produces a stream independent of the original.
  void jump() {
    static constexpr std::uint64_t kJump[] = {
        0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL,
        0xA9582618E03FC9AAULL, 0x39ABDC4529B1661CULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace abp
