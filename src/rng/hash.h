/// \file hash.h
/// \brief Stable 64-bit hashing used for location-indexed randomness.
///
/// The paper's propagation noise is "location based and static with respect
/// to time" (§4.2.1): the draw `u ∈ [-1, 1]` for a (point, beacon) pair must
/// be random across pairs yet identical every time the same pair is queried.
/// We realize that as a pure function: hash the field seed, beacon id, and
/// the point quantized to 1 cm, then map to the target interval. The result
/// is reproducible, thread-safe, and needs no storage proportional to the
/// terrain size.
#pragma once

#include <cstdint>
#include <span>

#include "rng/splitmix64.h"

namespace abp {

/// The sponge underneath `stable_hash64`, exposed so hot loops can memoize
/// a prefix of the input words: absorb words one at a time (rounds are
/// 1-based and must count every word absorbed so far), then finalize with
/// the total round count. `stable_hash64(a, b, c)` is by construction
/// identical to absorbing a, b, c at rounds 1, 2, 3 and finalizing at 3 —
/// which is what lets the survey kernel pre-absorb the per-beacon words of
/// the noise hash once and replay only the per-point suffix, bit-exactly.
inline constexpr std::uint64_t kStableHashInit = 0x9AE16A3B2F90404FULL;
inline constexpr std::uint64_t kStableHashRound = 0xC2B2AE3D27D4EB4FULL;
inline constexpr std::uint64_t kStableHashFinal = 0x165667B19E3779F9ULL;

constexpr std::uint64_t stable_hash64_absorb(std::uint64_t state,
                                             std::uint64_t word,
                                             std::uint64_t round) {
  return splitmix64_mix(state ^ splitmix64_mix(word + round * kStableHashRound));
}

constexpr std::uint64_t stable_hash64_finalize(std::uint64_t state,
                                               std::uint64_t rounds) {
  return splitmix64_mix(state ^ (rounds * kStableHashFinal));
}

/// Mix an arbitrary list of 64-bit words into one hash value.
std::uint64_t stable_hash64(std::span<const std::uint64_t> words);

/// Variadic convenience.
template <typename... Words>
std::uint64_t stable_hash64(Words... words) {
  const std::uint64_t arr[] = {static_cast<std::uint64_t>(words)...};
  return stable_hash64(std::span<const std::uint64_t>(arr, sizeof...(words)));
}

/// Map a hash value to a uniform double in [0, 1).
constexpr double hash_to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Map a hash value to a uniform double in [-1, 1).
constexpr double hash_to_symmetric(std::uint64_t h) {
  return 2.0 * hash_to_unit(h) - 1.0;
}

/// Quantize a coordinate (meters) to an integer key at 1 cm resolution.
/// Two coordinates that differ by less than 5 mm map to the same key, which
/// implements the "static per location" property for continuous queries.
std::int64_t quantize_cm(double meters);

}  // namespace abp
