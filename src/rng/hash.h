/// \file hash.h
/// \brief Stable 64-bit hashing used for location-indexed randomness.
///
/// The paper's propagation noise is "location based and static with respect
/// to time" (§4.2.1): the draw `u ∈ [-1, 1]` for a (point, beacon) pair must
/// be random across pairs yet identical every time the same pair is queried.
/// We realize that as a pure function: hash the field seed, beacon id, and
/// the point quantized to 1 cm, then map to the target interval. The result
/// is reproducible, thread-safe, and needs no storage proportional to the
/// terrain size.
#pragma once

#include <cstdint>
#include <span>

#include "rng/splitmix64.h"

namespace abp {

/// Mix an arbitrary list of 64-bit words into one hash value.
std::uint64_t stable_hash64(std::span<const std::uint64_t> words);

/// Variadic convenience.
template <typename... Words>
std::uint64_t stable_hash64(Words... words) {
  const std::uint64_t arr[] = {static_cast<std::uint64_t>(words)...};
  return stable_hash64(std::span<const std::uint64_t>(arr, sizeof...(words)));
}

/// Map a hash value to a uniform double in [0, 1).
double hash_to_unit(std::uint64_t h);

/// Map a hash value to a uniform double in [-1, 1).
double hash_to_symmetric(std::uint64_t h);

/// Quantize a coordinate (meters) to an integer key at 1 cm resolution.
/// Two coordinates that differ by less than 5 mm map to the same key, which
/// implements the "static per location" property for continuous queries.
std::int64_t quantize_cm(double meters);

}  // namespace abp
