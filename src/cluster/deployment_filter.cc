#include "cluster/deployment_filter.h"

#include <algorithm>
#include <span>
#include <utility>

#include "common/assert.h"
#include "rng/hash.h"

namespace abp::cluster {

namespace {

/// Two independent 64-bit digests of `name` for double hashing: the bytes
/// are packed little-endian into words and absorbed after a salt, so equal
/// names always digest equally and the pair (h1, h2) is platform-stable.
std::pair<std::uint64_t, std::uint64_t> digest(std::string_view name) {
  std::vector<std::uint64_t> words;
  words.reserve(2 + name.size() / 8);
  words.push_back(0xABD0'F11Dull);  // domain separation from other hash uses
  words.push_back(name.size());
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < name.size(); ++i) {
    word |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(name[i]))
            << (8 * (i % 8));
    if (i % 8 == 7) {
      words.push_back(word);
      word = 0;
    }
  }
  if (name.size() % 8 != 0) words.push_back(word);
  const std::uint64_t h1 = stable_hash64(
      std::span<const std::uint64_t>(words.data(), words.size()));
  words[0] = 0xABD0'F22Dull;
  const std::uint64_t h2 = stable_hash64(
      std::span<const std::uint64_t>(words.data(), words.size()));
  return {h1, h2 | 1};  // odd step so every probe sequence covers all bits
}

}  // namespace

void DeploymentFilter::rebuild(const std::vector<std::string>& names,
                               Params params) {
  ABP_CHECK(params.bits_per_name >= 1, "filter needs at least 1 bit/name");
  ABP_CHECK(params.hashes >= 1, "filter needs at least 1 hash");
  name_count_ = names.size();
  hash_count_ = params.hashes;
  bit_count_ = std::max<std::size_t>(64, names.size() * params.bits_per_name);
  words_.assign((bit_count_ + 63) / 64, 0);
  for (const std::string& name : names) {
    const auto [h1, h2] = digest(name);
    for (std::size_t i = 0; i < hash_count_; ++i) {
      const std::uint64_t bit = (h1 + i * h2) % bit_count_;
      words_[bit / 64] |= 1ull << (bit % 64);
    }
  }
}

bool DeploymentFilter::may_contain(std::string_view name) const {
  if (bit_count_ == 0) return false;  // never rebuilt: empty set
  const auto [h1, h2] = digest(name);
  for (std::size_t i = 0; i < hash_count_; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % bit_count_;
    if ((words_[bit / 64] & (1ull << (bit % 64))) == 0) return false;
  }
  return true;
}

}  // namespace abp::cluster
