/// \file mutation_log.h
/// \brief Per-deployment, version-fenced write-ahead log of mutations.
///
/// The router is the source of truth for every deployment's beacon set; the
/// mutation log is where that truth lives once writes flow. Each deployment
/// holds the authoritative parsed field, a monotonically increasing version,
/// and a bounded window of recent mutation entries:
///
///  * `install` resets a deployment to a full snapshot (operator load or
///    replace) at a fresh version and clears its log — a snapshot subsumes
///    every entry before it.
///  * `append` is the write path: clamp the new beacon positions against the
///    field bounds, apply them to the authoritative field (allocating the
///    same ids any replica will allocate), bump the version, and retain the
///    entry for replay. The returned positions/ids are exactly what a
///    backend applying the same mutation produces, which is what lets the
///    router synthesize the client's `add-beacon` response locally and keep
///    it byte-identical to a direct server's.
///  * `suffix` answers the replay-vs-resync decision on circuit-breaker
///    recovery: a replica behind by at most the retained window replays the
///    missing `mutate` entries in order; one behind the window (or holding
///    nothing) takes a full snapshot install and truncates its lag in one
///    round trip.
///  * `record_acked` tracks the highest quorum-acknowledged version per
///    deployment — the router's read fence (read-your-writes: reads are
///    stamped with the last *acked* version, never an in-flight one).
///
/// All methods are thread-safe under one internal mutex; the apply path is
/// deterministic (clamp + sequential id allocation over a canonically
/// serialized field), so every replica that processes the same prefix of
/// the log holds a byte-identical snapshot.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "field/beacon_field.h"
#include "geom/vec2.h"

namespace abp::cluster {

class MutationLog {
 public:
  /// Default retained-entry window per deployment (replay horizon).
  static constexpr std::size_t kDefaultRetain = 64;

  /// One logged mutation: the version it establishes and the (clamped)
  /// beacon positions it deploys.
  struct Entry {
    std::uint64_t version = 0;
    std::vector<Vec2> points;
  };

  /// Deterministic result of applying one mutation to the authoritative
  /// field — mirrors what every replica's own apply produces.
  struct AppendResult {
    std::uint64_t version = 0;
    std::vector<Vec2> positions;
    std::vector<std::uint32_t> beacon_ids;
  };

  explicit MutationLog(std::size_t retain = kDefaultRetain);

  /// Install (or replace) a deployment from a serialized field snapshot at
  /// the next version; clears any retained entries (the snapshot subsumes
  /// them) and fences reads at the new version. Returns the version.
  /// Throws `CheckFailure` on an unparseable snapshot (operator input).
  std::uint64_t install(const std::string& name, std::string field_text);

  /// Append one mutation: clamp `points`, apply them to the authoritative
  /// field, bump the version, retain the entry. The deployment must exist.
  AppendResult append(const std::string& name,
                      const std::vector<Vec2>& points);

  /// Current version of `name`; 0 when unknown.
  std::uint64_t version(const std::string& name) const;

  /// Highest quorum-acked version of `name`; 0 when unknown. Equals the
  /// install version until the first write is acked.
  std::uint64_t last_acked(const std::string& name) const;

  /// Record a quorum acknowledgement; monotonic (stale acks are ignored).
  void record_acked(const std::string& name, std::uint64_t version);

  /// Serialized field + the version it represents, read atomically (an
  /// install built from a torn text/version pair would stamp a snapshot
  /// with the wrong version and silently diverge a replica).
  struct Snapshot {
    std::string text;
    std::uint64_t version = 0;
  };

  /// Canonical serialized snapshot of the authoritative field at the
  /// current version (re-serialized lazily after appends).
  Snapshot snapshot(const std::string& name) const;

  /// Entries a replica at `have_version` is missing, oldest first; an empty
  /// vector when it is current (or ahead). nullopt when the gap reaches
  /// behind the retained window or the deployment is unknown — the caller
  /// must fall back to a full snapshot install.
  std::optional<std::vector<Entry>> suffix(const std::string& name,
                                           std::uint64_t have_version) const;

  std::vector<std::string> names() const;

  std::size_t retain() const { return retain_; }

 private:
  struct Deployment {
    explicit Deployment(BeaconField f) : field(std::move(f)) {}

    BeaconField field;          ///< authoritative beacon set
    std::string text;           ///< serialized cache (valid iff !text_dirty)
    bool text_dirty = false;
    std::uint64_t version = 0;
    std::uint64_t last_acked = 0;
    std::deque<Entry> entries;  ///< retained window, ascending version
  };

  const std::size_t retain_;
  mutable std::mutex mu_;
  /// unique_ptr keeps Deployment addresses stable across map rehash-free
  /// inserts and lets the non-default-constructible field live in a node.
  std::map<std::string, std::unique_ptr<Deployment>> deployments_;
};

}  // namespace abp::cluster
