/// \file mutation_log.h
/// \brief Per-deployment, version-fenced write-ahead log of mutations.
///
/// The router is the source of truth for every deployment's beacon set; the
/// mutation log is where that truth lives once writes flow. Each deployment
/// holds the authoritative parsed field, a monotonically increasing version,
/// and a bounded window of recent mutation entries:
///
///  * `install` resets a deployment to a full snapshot (operator load or
///    replace) at a fresh version and clears its log — a snapshot subsumes
///    every entry before it.
///  * `append` is the write path: clamp the new beacon positions against the
///    field bounds, apply them to the authoritative field (allocating the
///    same ids any replica will allocate), bump the version, and retain the
///    entry for replay. The returned positions/ids are exactly what a
///    backend applying the same mutation produces, which is what lets the
///    router synthesize the client's `add-beacon` response locally and keep
///    it byte-identical to a direct server's.
///  * `suffix` answers the replay-vs-resync decision on circuit-breaker
///    recovery: a replica behind by at most the retained window replays the
///    missing `mutate` entries in order; one behind the window (or holding
///    nothing) takes a full snapshot install and truncates its lag in one
///    round trip.
///  * `record_acked` tracks the highest quorum-acknowledged version per
///    deployment — the router's read fence (read-your-writes: reads are
///    stamped with the last *acked* version, never an in-flight one).
///  * `dedup_lookup` is the exactly-once index: entries appended with a
///    client request id are findable by that id for as long as they stay in
///    the retained window, yielding the version they were assigned plus the
///    positions/ids needed to re-synthesize the original ack. The index is
///    derived state — it lives and dies with the retained entries, so
///    rebuilding the log (replaying the same appends) rebuilds the same
///    index. `dedup_complete` reports whether any id-bearing entry has ever
///    been evicted: while true, an unknown id is *provably* fresh; once
///    false, an unknown id on a retry is ambiguous and callers must answer
///    `dedup-expired` instead of re-appending.
///
/// All methods are thread-safe under one internal mutex; the apply path is
/// deterministic (clamp + sequential id allocation over a canonically
/// serialized field), so every replica that processes the same prefix of
/// the log holds a byte-identical snapshot.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "field/beacon_field.h"
#include "geom/vec2.h"

namespace abp::cluster {

class MutationLog {
 public:
  /// Default retained-entry window per deployment (replay horizon).
  static constexpr std::size_t kDefaultRetain = 64;

  /// One logged mutation: the version it establishes, the (clamped) beacon
  /// positions it deploys, the beacon ids the deterministic apply allocated
  /// for them, and the client request id that wrote it (0 = id-free).
  struct Entry {
    std::uint64_t version = 0;
    std::vector<Vec2> points;
    std::vector<std::uint32_t> beacon_ids;
    std::uint64_t request_id = 0;
  };

  /// Deterministic result of applying one mutation to the authoritative
  /// field — mirrors what every replica's own apply produces.
  struct AppendResult {
    std::uint64_t version = 0;
    std::vector<Vec2> positions;
    std::vector<std::uint32_t> beacon_ids;
  };

  explicit MutationLog(std::size_t retain = kDefaultRetain);

  /// Install (or replace) a deployment from a serialized field snapshot at
  /// the next version; clears any retained entries (the snapshot subsumes
  /// them) and fences reads at the new version. Returns the version.
  /// Throws `CheckFailure` on an unparseable snapshot (operator input).
  std::uint64_t install(const std::string& name, std::string field_text);

  /// Append one mutation: clamp `points`, apply them to the authoritative
  /// field, bump the version, retain the entry. The deployment must exist.
  /// A non-zero `request_id` is persisted with the entry and indexed for
  /// `dedup_lookup`; appending an id already in the index is a caller bug
  /// (the caller must look it up first, under its own write serialization).
  AppendResult append(const std::string& name, const std::vector<Vec2>& points,
                      std::uint64_t request_id = 0);

  /// One retained, id-bearing entry resolved by client request id — enough
  /// to answer the duplicate with the original ack (`positions`/`beacon_ids`
  /// are exactly what the first append returned) and to decide whether that
  /// ack was ever quorum-confirmed (`acked`).
  struct DedupHit {
    std::uint64_t version = 0;
    std::vector<Vec2> positions;
    std::vector<std::uint32_t> beacon_ids;
    bool acked = false;  ///< version <= last_acked at lookup time
  };

  /// Find the retained entry written under `request_id`; nullopt when the
  /// id is unknown — either never appended, or evicted with the window
  /// (disambiguate via `dedup_complete`).
  std::optional<DedupHit> dedup_lookup(const std::string& name,
                                       std::uint64_t request_id) const;

  /// True while no id-bearing entry has ever left the retained window (or
  /// been cleared by a re-install), i.e. the dedup index still covers the
  /// deployment's entire id history and an unknown id is provably fresh.
  bool dedup_complete(const std::string& name) const;

  /// Current version of `name`; 0 when unknown.
  std::uint64_t version(const std::string& name) const;

  /// Highest quorum-acked version of `name`; 0 when unknown. Equals the
  /// install version until the first write is acked.
  std::uint64_t last_acked(const std::string& name) const;

  /// Record a quorum acknowledgement; monotonic (stale acks are ignored).
  void record_acked(const std::string& name, std::uint64_t version);

  /// Serialized field + the version it represents, read atomically (an
  /// install built from a torn text/version pair would stamp a snapshot
  /// with the wrong version and silently diverge a replica).
  struct Snapshot {
    std::string text;
    std::uint64_t version = 0;
  };

  /// Canonical serialized snapshot of the authoritative field at the
  /// current version (re-serialized lazily after appends).
  Snapshot snapshot(const std::string& name) const;

  /// Entries a replica at `have_version` is missing, oldest first; an empty
  /// vector when it is current (or ahead). nullopt when the gap reaches
  /// behind the retained window or the deployment is unknown — the caller
  /// must fall back to a full snapshot install.
  std::optional<std::vector<Entry>> suffix(const std::string& name,
                                           std::uint64_t have_version) const;

  std::vector<std::string> names() const;

  std::size_t retain() const { return retain_; }

 private:
  struct Deployment {
    explicit Deployment(BeaconField f) : field(std::move(f)) {}

    BeaconField field;          ///< authoritative beacon set
    std::string text;           ///< serialized cache (valid iff !text_dirty)
    bool text_dirty = false;
    std::uint64_t version = 0;
    std::uint64_t last_acked = 0;
    std::deque<Entry> entries;  ///< retained window, ascending version
    /// request id → version, covering exactly the id-bearing retained
    /// entries (entries are contiguous by version, so the entry for a
    /// mapped version is at `entries[version - entries.front().version]`).
    std::map<std::uint64_t, std::uint64_t> dedup;
    bool dedup_complete = true;  ///< no id-bearing entry ever evicted
  };

  const std::size_t retain_;
  mutable std::mutex mu_;
  /// unique_ptr keeps Deployment addresses stable across map rehash-free
  /// inserts and lets the non-default-constructible field live in a node.
  std::map<std::string, std::unique_ptr<Deployment>> deployments_;
};

}  // namespace abp::cluster
