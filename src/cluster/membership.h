/// \file membership.h
/// \brief Live cluster membership: the epoch-numbered backend table and the
/// admin-plane controller that drives zero-downtime scale-up and drain.
///
/// The paper's premise is *adaptive, incremental* deployment — the serving
/// tier must resize the same way the placement layer does. This module turns
/// the startup-static ring into a control plane:
///
///  * `MembershipTable` owns the authoritative member set. Each member is in
///    one state — `joining` (pooled, receiving handoff, not routed),
///    `active` (in the ring), or `draining` (pooled for in-flight work, out
///    of the ring) — and every ring-changing transition bumps a monotonic
///    **epoch**. Readers never lock the table: it publishes an immutable
///    `MembershipView` (epoch + active-only `HashRing` + state map) behind a
///    `shared_ptr` swap, the same pattern the deployment filter uses, so the
///    router's hot path grabs one consistent placement per request.
///  * `MembershipController` executes the `admin` wire verbs. **add**: pool
///    the joiner, compute the deterministic `HashRing::transfer_set` against
///    the prospective ring, ship snapshot installs + mutation-log suffixes
///    until the joiner is version-current, then — under the router's write
///    fence, so no write straddles the flip — replay the final delta,
///    activate (epoch bump), and invalidate the response cache for every
///    remapped deployment. **drain**: flip the member out of the ring first
///    (again under the write fence, with the same cache invalidation), hand
///    its remapped ranges to the owners that gained them, wait for its FIFO
///    to empty through `BackendPool`, then remove it.
///
/// Quorum during a transition: the router reads one view per write while
/// holding its write mutex, and both flips run inside that same mutex — so
/// every write's owner set, quorum and fan-out belong to exactly one epoch,
/// and a write admitted against the old epoch has fully entered the backend
/// FIFOs before the new epoch exists. Failed handoffs roll the joiner back
/// out; residual staleness is healed by the per-request version fence.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/ring.h"
#include "serve/protocol.h"

namespace abp::serve {
class RouterMetrics;
}  // namespace abp::serve

namespace abp::cluster {

class BackendPool;
class Replicator;

enum class MemberState {
  kJoining,   ///< pooled and receiving handoff; not in the routing ring
  kActive,    ///< in the routing ring, serving reads and taking writes
  kDraining,  ///< out of the ring; pooled only to finish in-flight work
};

const char* member_state_name(MemberState state);

/// One immutable published generation of the membership table. The ring
/// contains exactly the `active` members; `members` also lists joiners and
/// drainers so introspection sees the whole transition.
struct MembershipView {
  std::uint64_t epoch = 1;
  HashRing ring;
  std::map<std::string, MemberState> members;
};

/// The authoritative member table. All transitions serialize on an internal
/// mutex; reads are a shared_ptr copy of the last published view. Ring
/// epochs count ring *changes*: `activate` and `begin_drain` bump the
/// epoch, `begin_join`/`remove` republish the state map at the same epoch.
class MembershipTable {
 public:
  explicit MembershipTable(std::vector<std::string> active,
                           std::size_t vnodes = 64);

  std::shared_ptr<const MembershipView> view() const;
  std::uint64_t epoch() const;
  std::size_t count(MemberState state) const;

  /// Unknown → joining (pooled, not routed). False if already a member.
  bool begin_join(const std::string& backend);
  /// joining → active: ring rebuild + epoch bump. False otherwise.
  bool activate(const std::string& backend);
  /// active → draining: ring rebuild without it + epoch bump. Refuses to
  /// drain the last active member (the ring must never go empty).
  bool begin_drain(const std::string& backend);
  /// joining|draining → removed from the table. False for active members —
  /// an active member must drain first.
  bool remove(const std::string& backend);

 private:
  void publish_locked();

  mutable std::mutex mu_;
  std::size_t vnodes_;
  std::uint64_t epoch_ = 1;
  std::map<std::string, MemberState> members_;
  std::shared_ptr<const MembershipView> view_;
};

/// Outcome of one admin verb: `ok` with a text body, or a wire status +
/// message the router turns into an error response.
struct AdminResult {
  bool ok = false;
  serve::Status status = serve::Status::kBadRequest;
  std::string message;
  std::string text;

  static AdminResult failure(serve::Status status, std::string message);
  static AdminResult success(std::string text);
};

struct MembershipControllerOptions {
  /// Suffix catch-up rounds shipped to a joiner *before* the fenced flip;
  /// the flip itself replays any final delta with writes fenced out, so
  /// this only bounds how much of the catch-up happens without blocking
  /// writers.
  std::size_t handoff_rounds = 4;
  /// Upper bound on the drain path's wait for the victim's FIFO to empty.
  /// A dead backend's queue is failed fast by its breaker, so this only
  /// bounds the healthy-but-slow case.
  double drain_timeout_ms = 5000.0;
  /// Injectable monotonic clock (milliseconds); defaults to steady_clock.
  std::function<double()> clock_ms;
};

/// Executes the admin plane. One operation at a time (`admin_mu_`); each
/// blocks its submit thread until the transition completes or rolls back,
/// so the wire response reports the final state.
class MembershipController {
 public:
  using Options = MembershipControllerOptions;

  MembershipController(MembershipTable& table, BackendPool& pool,
                       Replicator& replicator, serve::RouterMetrics& metrics,
                       Options options = {});

  /// Router hook: run `fn` while holding the router's write mutex, so a
  /// ring flip is atomic against the write path's view-read + fan-out.
  /// Unset, `fn` runs unfenced (table-only tests).
  void set_write_fence(std::function<void(const std::function<void()>&)> fence);
  /// Router hook: drop one deployment's response-cache entries (called for
  /// every remapped deployment inside the fenced flip).
  void set_invalidate(std::function<void(const std::string&)> invalidate);

  AdminResult add(const std::string& backend);
  AdminResult drain(const std::string& backend);
  AdminResult status() const;

 private:
  double now_ms() const;
  void publish_metrics() const;
  void run_fenced(const std::function<void()>& fn);
  void invalidate(const std::string& deployment);
  /// Ship a full snapshot install of `name`, blocking for the ack. Returns
  /// the installed version, 0 on failure.
  std::uint64_t install_blocking(const std::string& backend,
                                 const std::string& name);
  /// Replay the mutation suffix above `have_version`, blocking for every
  /// ack. Returns the version the backend reached, 0 on failure; falls back
  /// to a snapshot install when the gap exceeds the retained window.
  std::uint64_t replay_blocking(const std::string& backend,
                                const std::string& name,
                                std::uint64_t have_version);

  MembershipTable* table_;
  BackendPool* pool_;
  Replicator* replicator_;
  serve::RouterMetrics* metrics_;
  Options options_;
  std::function<void(const std::function<void()>&)> fence_;
  std::function<void(const std::string&)> invalidate_;
  mutable std::mutex admin_mu_;
};

}  // namespace abp::cluster
