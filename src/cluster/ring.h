/// \file ring.h
/// \brief Consistent-hash routing table for the cluster router.
///
/// Deployments are assigned to backends by consistent hashing: each backend
/// contributes `vnodes` virtual points on a 64-bit ring (stable hashes of
/// `backend#i`), and a deployment name owns the first `replicas` *distinct*
/// backends clockwise from its own hash. Properties the router relies on:
///
///  * **Stability** — adding or removing one backend remaps only the keys
///    whose owner arcs touch that backend (~1/N of the space), so a cluster
///    resize does not re-shuffle every deployment.
///  * **Determinism** — placement is a pure function of the backend set and
///    the deployment name (`stable_hash64`, no RNG), so a restarted router
///    computes the identical table and tests can assert exact ownership.
///  * **Replica spread** — the clockwise walk skips virtual points of
///    backends already chosen, so `owners()` returns `replicas` distinct
///    backends whenever the ring has that many.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace abp::cluster {

class HashRing {
 public:
  /// `vnodes` virtual points per backend; more points smooth the load
  /// split at the cost of a larger table (lookup stays O(log(N·vnodes))).
  explicit HashRing(std::size_t vnodes = 64);

  void add_node(const std::string& node);
  void remove_node(const std::string& node);
  bool contains(const std::string& node) const;
  std::size_t node_count() const { return nodes_.size(); }
  std::vector<std::string> nodes() const;

  /// The first `replicas` distinct nodes clockwise from `key`'s hash, in
  /// preference order (fewer if the ring holds fewer nodes; empty on an
  /// empty ring).
  std::vector<std::string> owners(std::string_view key,
                                  std::size_t replicas) const;

  /// Stable 64-bit digest used for both keys and virtual points.
  static std::uint64_t hash_key(std::string_view key);

  /// One key whose owner set differs between two rings. Owner lists are in
  /// preference order, exactly as `owners()` returns them.
  struct Transfer {
    std::string key;
    std::vector<std::string> old_owners;
    std::vector<std::string> new_owners;

    /// True if `node` owns the key in the new ring but not the old one —
    /// i.e. the key's state must be shipped to `node` before the new ring
    /// goes live.
    bool gained_by(const std::string& node) const;
  };

  /// The deterministic remap diff between two rings: every key (in input
  /// order) whose owner list under `replicas` differs between `from` and
  /// `to`. Pure function of its inputs — a restarted controller computes
  /// the identical transfer set, so handoff plans are reproducible.
  static std::vector<Transfer> transfer_set(
      const HashRing& from, const HashRing& to,
      const std::vector<std::string>& keys, std::size_t replicas);

 private:
  void rebuild();

  std::size_t vnodes_;
  std::map<std::uint64_t, std::string> ring_;  ///< point → backend
  std::set<std::string> nodes_;
};

}  // namespace abp::cluster
