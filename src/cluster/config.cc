#include "cluster/config.h"

#include <set>

#include "common/assert.h"

namespace abp::cluster {

RouterConfig RouterConfig::from_flags(const Flags& flags) {
  RouterConfig config;
  FlagTable()
      .text_list("backend", &config.backends)
      .size_at_least("replication", 1, &config.replication)
      .size("write-quorum", &config.write_quorum)
      .size_at_least("log-retain", 1, &config.log_retain)
      .boolean("dedup", &config.dedup)
      .boolean("cache", &config.cache)
      .size_at_least("cache-entries", 1, &config.cache_entries)
      .number("quota-rps", &config.quota_rps)
      .number("quota-burst", &config.quota_burst)
      .boolean("admin", &config.admin)
      .number("drain-timeout-ms", &config.drain_timeout_ms)
      .number("heartbeat-ms", &config.heartbeat_ms)
      .size_at_least("failure-threshold", 1, &config.failure_threshold)
      .number("connect-timeout-s", &config.connect_timeout_s)
      .text("field", &config.field_path)
      .text("name", &config.name)
      .port("port", &config.port)
      .size_at_least("event-shards", 1, &config.event_shards)
      .size("max-inflight", &config.max_inflight)
      .u32("retry-after-ms", &config.retry_after_hint_ms)
      .number("read-timeout-s", &config.read_timeout_s)
      .number("write-timeout-s", &config.write_timeout_s)
      .parse(flags);

  const std::string transport = flags.get_string("transport", "threaded");
  const std::optional<serve::TransportKind> kind =
      serve::transport_kind_from_name(transport);
  ABP_CHECK(kind.has_value(),
            "unknown --transport: " + transport + " (want threaded|epoll)");
  config.transport = *kind;

  config.validate();
  return config;
}

void RouterConfig::validate() const {
  ABP_CHECK(!backends.empty(),
            "route requires at least one --backend host:port");
  std::set<std::string> unique;
  for (const std::string& backend : backends) {
    try {
      parse_backend_address(backend);
    } catch (const serve::ServeError& e) {
      ABP_CHECK(false, std::string("--backend: ") + e.what());
    }
    ABP_CHECK(unique.insert(backend).second,
              "duplicate --backend " + backend);
  }
  ABP_CHECK(!field_path.empty(), "route requires --field");
  ABP_CHECK(replication >= 1, "--replication must be at least 1");
  ABP_CHECK(replication <= backends.size(),
            "--replication exceeds the backend count");
  ABP_CHECK(write_quorum <= replication,
            "--write-quorum exceeds --replication");
  ABP_CHECK(log_retain >= 1, "--log-retain must be at least 1");
  ABP_CHECK(heartbeat_ms > 0.0, "--heartbeat-ms must be positive");
  ABP_CHECK(failure_threshold >= 1,
            "--failure-threshold must be at least 1");
  ABP_CHECK(connect_timeout_s > 0.0, "--connect-timeout-s must be positive");
  if (event_shards > 1) {
    ABP_CHECK(transport == serve::TransportKind::kEpoll,
              "--event-shards > 1 requires --transport epoll");
  }
  ABP_CHECK(read_timeout_s > 0.0 && write_timeout_s > 0.0,
            "timeouts must be positive");
  ABP_CHECK(cache_entries >= 1, "--cache-entries must be at least 1");
  ABP_CHECK(quota_rps >= 0.0 && quota_burst >= 0.0,
            "quota values must be non-negative");
  ABP_CHECK(quota_burst == 0.0 || quota_rps > 0.0,
            "--quota-burst requires --quota-rps > 0");
  ABP_CHECK(drain_timeout_ms > 0.0, "--drain-timeout-ms must be positive");
}

BackendPoolOptions RouterConfig::pool_options() const {
  BackendPoolOptions options;
  options.failure_threshold = failure_threshold;
  options.probe_interval_ms = heartbeat_ms;
  options.connect_timeout_s = connect_timeout_s;
  return options;
}

Router::Options RouterConfig::router_options() const {
  Router::Options options;
  options.retry_after_hint_ms = retry_after_hint_ms;
  options.write_quorum = write_quorum;
  options.dedup = dedup;
  options.cache_entries = cache ? cache_entries : 0;
  options.quota.rps = quota_rps;
  options.quota.burst = quota_burst;
  options.admin = admin;
  options.drain_timeout_ms = drain_timeout_ms;
  return options;
}

serve::TransportOptions RouterConfig::transport_options() const {
  serve::TransportOptions options;
  options.port = port;
  options.read_timeout_s = read_timeout_s;
  options.write_timeout_s = write_timeout_s;
  options.max_inflight = max_inflight;
  options.conn_workers = 2;
  options.event_shards = event_shards;
  return options;
}

}  // namespace abp::cluster
