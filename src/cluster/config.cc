#include "cluster/config.h"

#include <algorithm>
#include <set>

#include "common/assert.h"

namespace abp::cluster {

namespace {

std::size_t get_size(const Flags& flags, const std::string& key,
                     std::size_t def) {
  const int value = flags.get_int(key, static_cast<int>(def));
  ABP_CHECK(value >= 0, "--" + key + " must be non-negative");
  return static_cast<std::size_t>(value);
}

}  // namespace

RouterConfig RouterConfig::from_flags(const Flags& flags) {
  RouterConfig config;
  config.backends = flags.get_strings("backend");
  config.replication = std::max<std::size_t>(
      1, get_size(flags, "replication", 1));
  config.write_quorum = get_size(flags, "write-quorum", 0);
  config.log_retain = std::max<std::size_t>(
      1, get_size(flags, "log-retain", 64));
  config.dedup = flags.get_bool("dedup", true);
  config.heartbeat_ms = flags.get_double("heartbeat-ms", 1000.0);
  config.failure_threshold = std::max<std::size_t>(
      1, get_size(flags, "failure-threshold", 3));
  config.connect_timeout_s = flags.get_double("connect-timeout-s", 2.0);

  config.field_path = flags.get_string("field", "");
  config.name = flags.get_string("name", "default");

  const std::string transport = flags.get_string("transport", "threaded");
  const std::optional<serve::TransportKind> kind =
      serve::transport_kind_from_name(transport);
  ABP_CHECK(kind.has_value(),
            "unknown --transport: " + transport + " (want threaded|epoll)");
  config.transport = *kind;
  const int port = flags.get_int("port", 0);
  ABP_CHECK(port >= 0 && port <= 65535, "--port must be in [0, 65535]");
  config.port = static_cast<std::uint16_t>(port);
  config.event_shards =
      std::max<std::size_t>(1, get_size(flags, "event-shards", 1));
  config.max_inflight = get_size(flags, "max-inflight", 0);
  config.retry_after_hint_ms =
      static_cast<std::uint32_t>(get_size(flags, "retry-after-ms", 50));
  config.read_timeout_s = flags.get_double("read-timeout-s", 30.0);
  config.write_timeout_s = flags.get_double("write-timeout-s", 5.0);

  config.validate();
  return config;
}

void RouterConfig::validate() const {
  ABP_CHECK(!backends.empty(),
            "route requires at least one --backend host:port");
  std::set<std::string> unique;
  for (const std::string& backend : backends) {
    try {
      parse_backend_address(backend);
    } catch (const serve::ServeError& e) {
      ABP_CHECK(false, std::string("--backend: ") + e.what());
    }
    ABP_CHECK(unique.insert(backend).second,
              "duplicate --backend " + backend);
  }
  ABP_CHECK(!field_path.empty(), "route requires --field");
  ABP_CHECK(replication >= 1, "--replication must be at least 1");
  ABP_CHECK(replication <= backends.size(),
            "--replication exceeds the backend count");
  ABP_CHECK(write_quorum <= replication,
            "--write-quorum exceeds --replication");
  ABP_CHECK(log_retain >= 1, "--log-retain must be at least 1");
  ABP_CHECK(heartbeat_ms > 0.0, "--heartbeat-ms must be positive");
  ABP_CHECK(failure_threshold >= 1,
            "--failure-threshold must be at least 1");
  ABP_CHECK(connect_timeout_s > 0.0, "--connect-timeout-s must be positive");
  if (event_shards > 1) {
    ABP_CHECK(transport == serve::TransportKind::kEpoll,
              "--event-shards > 1 requires --transport epoll");
  }
  ABP_CHECK(read_timeout_s > 0.0 && write_timeout_s > 0.0,
            "timeouts must be positive");
}

BackendPoolOptions RouterConfig::pool_options() const {
  BackendPoolOptions options;
  options.failure_threshold = failure_threshold;
  options.probe_interval_ms = heartbeat_ms;
  options.connect_timeout_s = connect_timeout_s;
  return options;
}

Router::Options RouterConfig::router_options() const {
  Router::Options options;
  options.retry_after_hint_ms = retry_after_hint_ms;
  options.write_quorum = write_quorum;
  options.dedup = dedup;
  return options;
}

serve::TransportOptions RouterConfig::transport_options() const {
  serve::TransportOptions options;
  options.port = port;
  options.read_timeout_s = read_timeout_s;
  options.write_timeout_s = write_timeout_s;
  options.max_inflight = max_inflight;
  options.conn_workers = 2;
  options.event_shards = event_shards;
  return options;
}

}  // namespace abp::cluster
