#include "cluster/ring.h"

#include "rng/hash.h"

namespace abp::cluster {

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes ? vnodes : 1) {}

std::uint64_t HashRing::hash_key(std::string_view key) {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  for (const unsigned char c : key) h = stable_hash64(h, c);
  return h;
}

void HashRing::add_node(const std::string& node) {
  if (!nodes_.insert(node).second) return;
  const std::uint64_t base = hash_key(node);
  for (std::size_t i = 0; i < vnodes_; ++i) {
    // Collisions between virtual points are vanishingly rare but would
    // silently drop a point via operator[]. Ties go to the
    // lexicographically smaller name — a rule independent of insertion
    // order, so the ring is a pure function of the node *set* (live
    // membership changes add nodes in arbitrary order).
    auto [it, inserted] =
        ring_.emplace(stable_hash64(base, static_cast<std::uint64_t>(i)),
                      node);
    if (!inserted && node < it->second) it->second = node;
  }
}

void HashRing::remove_node(const std::string& node) {
  if (nodes_.erase(node) == 0) return;
  // Rebuild rather than erase: if `node` won a collision point, the losing
  // node's virtual point must resurface, which a point-erase would drop.
  rebuild();
}

void HashRing::rebuild() {
  ring_.clear();
  for (const std::string& node : nodes_) {
    const std::uint64_t base = hash_key(node);
    for (std::size_t i = 0; i < vnodes_; ++i) {
      auto [it, inserted] =
          ring_.emplace(stable_hash64(base, static_cast<std::uint64_t>(i)),
                        node);
      if (!inserted && node < it->second) it->second = node;
    }
  }
}

bool HashRing::contains(const std::string& node) const {
  return nodes_.count(node) != 0;
}

std::vector<std::string> HashRing::nodes() const {
  return {nodes_.begin(), nodes_.end()};
}

std::vector<std::string> HashRing::owners(std::string_view key,
                                          std::size_t replicas) const {
  std::vector<std::string> result;
  if (ring_.empty() || replicas == 0) return result;
  const std::size_t want = std::min(replicas, nodes_.size());
  result.reserve(want);
  auto it = ring_.lower_bound(hash_key(key));
  // Clockwise walk, wrapping at the end, skipping backends already chosen.
  for (std::size_t steps = 0; steps < ring_.size() && result.size() < want;
       ++steps, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    bool seen = false;
    for (const std::string& chosen : result) {
      if (chosen == it->second) {
        seen = true;
        break;
      }
    }
    if (!seen) result.push_back(it->second);
  }
  return result;
}

bool HashRing::Transfer::gained_by(const std::string& node) const {
  const auto in = [&node](const std::vector<std::string>& owners) {
    for (const std::string& owner : owners) {
      if (owner == node) return true;
    }
    return false;
  };
  return in(new_owners) && !in(old_owners);
}

std::vector<HashRing::Transfer> HashRing::transfer_set(
    const HashRing& from, const HashRing& to,
    const std::vector<std::string>& keys, std::size_t replicas) {
  std::vector<Transfer> transfers;
  for (const std::string& key : keys) {
    Transfer transfer;
    transfer.old_owners = from.owners(key, replicas);
    transfer.new_owners = to.owners(key, replicas);
    if (transfer.old_owners == transfer.new_owners) continue;
    transfer.key = key;
    transfers.push_back(std::move(transfer));
  }
  return transfers;
}

}  // namespace abp::cluster
