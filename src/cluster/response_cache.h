/// \file response_cache.h
/// \brief Version-fenced LRU cache of routed read responses (DESIGN.md §12).
///
/// The router serves a repeat of the same cacheable request (see
/// `EndpointTraits::cacheable`) from memory instead of a backend round-trip
/// — but only while the deployment's version is unchanged. Every entry is
/// pinned to the deployment version the response was computed at; a lookup
/// fenced at a different version treats the entry as stale and drops it,
/// and a quorum-acked write invalidates the whole deployment's entries
/// *before* the write ack is released, so a client that observes its own
/// ack can never read a pre-write cached response (read-your-writes).
///
/// Keys are the canonical request bytes: `key_for` re-serializes the
/// request with every per-delivery record zeroed (seq, principal, deadline,
/// version, request-id/attempt), so two tenants asking the same question
/// share one entry and a retry hits the same key as its first attempt.
/// Values are parsed `Response` objects (version already stripped by the
/// router's delivery path); the router re-stamps the requester's seq before
/// formatting, which keeps cached responses byte-identical to uncached and
/// direct-backend ones.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "serve/protocol.h"

namespace abp::cluster {

class ResponseCache {
 public:
  /// `max_entries` bounds the cache; at capacity the least-recently-used
  /// entry is evicted. Must be >= 1 (a disabled cache is a null pointer at
  /// the router, not a zero-capacity cache).
  explicit ResponseCache(std::size_t max_entries);

  ResponseCache(const ResponseCache&) = delete;
  ResponseCache& operator=(const ResponseCache&) = delete;

  /// Canonical cache key: the request's wire bytes with seq, principal,
  /// deadline, version and request-id/attempt zeroed. Deterministic —
  /// equal logical questions yield equal keys.
  static std::string key_for(const serve::Request& request);

  /// The cached response for (`deployment`, `key`) iff it was stored at
  /// exactly `version`; a version mismatch erases the stale entry and
  /// misses. A hit refreshes LRU order.
  std::optional<serve::Response> lookup(const std::string& deployment,
                                        std::uint64_t version,
                                        const std::string& key);

  /// Store `response` for (`deployment`, `key`) at `version`, evicting the
  /// LRU entry at capacity. An existing entry for the key is replaced.
  void insert(const std::string& deployment, std::uint64_t version,
              const std::string& key, serve::Response response);

  /// Atomically drop every entry of `deployment`; returns how many were
  /// dropped. Called between quorum ack and client-ack release.
  std::size_t invalidate(const std::string& deployment);

  std::size_t size() const;
  std::size_t max_entries() const { return max_entries_; }

 private:
  struct Entry {
    std::string deployment;
    std::uint64_t version = 0;
    serve::Response response;
    std::list<std::string>::iterator lru;  ///< position in lru_ (front = hot)
  };

  /// Caller holds mu_. Removes `it` from every index.
  void erase_locked(std::map<std::string, Entry>::iterator it);

  const std::size_t max_entries_;
  mutable std::mutex mu_;
  std::list<std::string> lru_;  ///< keys, most recently used first
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::set<std::string>> by_deployment_;
};

}  // namespace abp::cluster
