/// \file config.h
/// \brief Validated configuration for `abp route`.
///
/// Same shape as `serve::ServeConfig`: one parse-and-validate path
/// (`from_flags`) so every invalid flag combination is rejected with one
/// diagnostic style before any socket is opened, plus projections onto the
/// engine option types (`BackendPoolOptions`, `Router::Options`,
/// `TransportOptions`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/backend_pool.h"
#include "cluster/router.h"
#include "common/flags.h"
#include "serve/server_transport.h"

namespace abp::cluster {

struct RouterConfig {
  /// Backends, repeated `--backend host:port` (order-insensitive: the ring
  /// sorts placement by hash, not by flag order).
  std::vector<std::string> backends;
  /// Owners per deployment (clamped to the backend count by the ring).
  std::size_t replication = 1;
  /// Owner acks required before a write is acknowledged to the client;
  /// 0 = majority of owners.
  std::size_t write_quorum = 0;
  /// Mutation-log entries retained per deployment (the replay window on
  /// circuit-breaker recovery; lag beyond it takes a full snapshot resync).
  /// Doubles as the request-id dedup window: a retry whose id has rolled
  /// out of this window is answered terminal `dedup-expired`.
  std::size_t log_retain = 64;
  /// Request-id deduplication on the write path (`--dedup 0` disables —
  /// benchmarking only; every delivery then appends).
  bool dedup = true;
  /// Version-fenced response cache for cacheable read endpoints
  /// (`--cache 0` disables; `--cache-entries` bounds the LRU).
  bool cache = true;
  std::size_t cache_entries = 1024;
  /// Per-principal token-bucket quotas (`--quota-rps`/`--quota-burst`);
  /// 0 rps = quotas off, 0 burst = defaults to rps.
  double quota_rps = 0.0;
  double quota_burst = 0.0;
  /// Membership admin plane (`--admin 0` rejects the `admin` endpoint on
  /// routers that must stay immutable).
  bool admin = true;
  /// Upper bound on a drain's wait for the victim's FIFO to empty.
  double drain_timeout_ms = 5000.0;
  /// Heartbeat probe cadence.
  double heartbeat_ms = 1000.0;
  /// Consecutive failures that trip a backend's breaker.
  std::size_t failure_threshold = 3;
  double connect_timeout_s = 2.0;

  /// The single deployment this router seeds (mirrors `abp serve`).
  std::string field_path;
  std::string name = "default";

  /// Client-facing transport (same surface as `abp serve`).
  serve::TransportKind transport = serve::TransportKind::kThreaded;
  std::uint16_t port = 0;
  std::size_t event_shards = 1;
  std::size_t max_inflight = 0;
  std::uint32_t retry_after_hint_ms = 50;
  double read_timeout_s = 30.0;
  double write_timeout_s = 5.0;

  /// Parses and validates; throws `CheckFailure` with a flag-level
  /// diagnostic on any invalid value or combination.
  static RouterConfig from_flags(const Flags& flags);

  /// Re-check invariants on a directly constructed config.
  void validate() const;

  BackendPoolOptions pool_options() const;
  Router::Options router_options() const;
  serve::TransportOptions transport_options() const;
};

}  // namespace abp::cluster
