/// \file replicator.h
/// \brief Deployment snapshot replication for the cluster router.
///
/// The router is the source of truth for which deployments exist and what
/// field each one serves. Backends are cattle: they boot empty (or with a
/// placeholder field) and receive their state as versioned snapshot
/// installs over the ordinary wire protocol — a `snapshot` request whose
/// `text` block carries the serialized field and whose `version` record
/// stamps the deployment. Versioning closes the staleness window:
///
///  * Every forwarded query is stamped with the router's version for its
///    deployment.
///  * A backend whose deployment is at a different version answers
///    `version-mismatch` (retryable) instead of silently serving stale
///    beacons.
///  * The router repairs the mismatch by enqueueing a fresh install ahead
///    of the retried query on the same backend FIFO — ordering, not
///    locking, guarantees install-before-retry.
///
/// `sync_all()` pushes every deployment to all its ring owners and blocks
/// until each install is acknowledged or failed (startup barrier).
/// `sync_backend()` is the async recovery path: when the pool's breaker
/// closes on a recovered backend, the deployments that backend owns are
/// re-enqueued without blocking the prober.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/backend_pool.h"
#include "cluster/ring.h"

namespace abp::cluster {

class Replicator {
 public:
  /// `replication` is the owner count per deployment (clamped to ring size).
  Replicator(BackendPool& pool, const HashRing& ring, std::size_t replication,
             serve::RouterMetrics& metrics);

  /// Register (or replace) a deployment's field snapshot; bumps the version
  /// and returns it. Does not push — call `sync_all`/`sync_backend`.
  std::uint64_t set_deployment(const std::string& name,
                               std::string field_text);

  /// Current version for `name`; 0 when unknown.
  std::uint64_t version(const std::string& name) const;

  std::vector<std::string> names() const;

  /// One name per line (the router serves `list-fields` locally from this).
  std::string list_text() const;

  /// Owners of `name` under this replicator's replication factor.
  std::vector<std::string> owners(const std::string& name) const;

  /// Push every deployment to all its owners; blocks until each install is
  /// acknowledged or failed. Returns the number of successful installs.
  std::size_t sync_all();

  /// Async resync of every deployment `backend` owns (breaker-recovery
  /// path; runs on a pool worker thread, must not block).
  void sync_backend(const std::string& backend);

  /// Build the install request for `name` at its current version (also
  /// used by the router's mismatch-repair path).
  serve::Request install_request(const std::string& name) const;

 private:
  struct Snapshot {
    std::string field_text;
    std::uint64_t version = 0;
  };

  BackendPool* pool_;
  const HashRing* ring_;
  std::size_t replication_;
  serve::RouterMetrics* metrics_;
  mutable std::mutex mu_;
  std::map<std::string, Snapshot> deployments_;  ///< guarded by mu_
};

}  // namespace abp::cluster
