/// \file replicator.h
/// \brief Deployment state replication for the cluster router.
///
/// The router is the source of truth for which deployments exist and what
/// field each one serves; that truth lives in the `MutationLog` this
/// replicator owns. Backends are cattle: they boot empty and receive their
/// state over the ordinary wire protocol, either as versioned snapshot
/// installs (a `snapshot` request whose `text` block carries the serialized
/// field and whose `version` record stamps the deployment) or as replayed
/// `mutate` entries. Versioning closes the staleness window:
///
///  * Every forwarded query is stamped with the last *acked* version for
///    its deployment (read-your-writes).
///  * A backend whose deployment is older answers `version-mismatch`
///    (retryable) instead of silently serving stale beacons.
///  * The router repairs the mismatch by enqueueing a fresh install ahead
///    of the retried query on the same backend FIFO — ordering, not
///    locking, guarantees install-before-retry.
///
/// `sync_all()` pushes every deployment to all its ring owners and blocks
/// until each install is acknowledged or failed (startup barrier).
/// `sync_backend()` is the async recovery path: when the pool's breaker
/// closes on a recovered backend, each owned deployment is probed with a
/// cheap `version` request and then either *replayed* (the missing `mutate`
/// suffix, in order, when the lag fits the log's retained window) or
/// *resynced* (full snapshot install) — all enqueued on the backend's FIFO
/// from the probe reply, never blocking the prober.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/backend_pool.h"
#include "cluster/deployment_filter.h"
#include "cluster/membership.h"
#include "cluster/mutation_log.h"
#include "cluster/ring.h"

namespace abp::cluster {

class Replicator {
 public:
  /// `replication` is the owner count per deployment (clamped to ring
  /// size); `log_retain` bounds the per-deployment replay window. Placement
  /// follows `membership`'s *published view*, so owner sets track live
  /// epoch flips without any replicator-side locking.
  Replicator(BackendPool& pool, const MembershipTable& membership,
             std::size_t replication, serve::RouterMetrics& metrics,
             std::size_t log_retain = MutationLog::kDefaultRetain);

  /// Register (or replace) a deployment's field snapshot; bumps the version
  /// and returns it. Does not push — call `sync_all`/`sync_backend`.
  std::uint64_t set_deployment(const std::string& name,
                               std::string field_text);

  /// Current version for `name`; 0 when unknown.
  std::uint64_t version(const std::string& name) const;

  /// Membership pre-check from the compact filter rebuilt on every
  /// `set_deployment`: false means `name` is definitely not deployed (the
  /// router answers `not-found` locally, no registry lookup); true may be
  /// a false positive, so callers still consult `version()`.
  bool possibly_deployed(const std::string& name) const;

  /// Version reads should be fenced at: the last quorum-acked write (or the
  /// install version before any write). Never an in-flight version, so a
  /// fenced read always has a replica able to serve it.
  std::uint64_t read_version(const std::string& name) const;

  std::vector<std::string> names() const;

  /// One name per line (the router serves `list-fields` locally from this).
  std::string list_text() const;

  /// Owners of `name` under this replicator's replication factor, per the
  /// membership table's current view.
  std::vector<std::string> owners(const std::string& name) const;

  /// The configured owner count per deployment (the ring clamps it when
  /// fewer backends are active).
  std::size_t replication() const { return replication_; }

  /// Push every deployment to all its owners; blocks until each install is
  /// acknowledged or failed. Returns the number of successful installs.
  std::size_t sync_all();

  /// Async resync of every deployment `backend` owns (breaker-recovery
  /// path; runs on a pool worker thread, must not block): probe the
  /// backend's version, then replay the mutate suffix or install a full
  /// snapshot.
  void sync_backend(const std::string& backend);

  /// Build the install request for `name` at its current version (also
  /// used by the router's mismatch-repair path).
  serve::Request install_request(const std::string& name) const;

  /// Build the `mutate` request for one logged entry of `name`.
  serve::Request mutate_request(const std::string& name,
                                const MutationLog::Entry& entry) const;

  /// The write-ahead log backing this replicator (the router's write path
  /// appends to it and fences reads on its acked versions).
  MutationLog& log() { return log_; }
  const MutationLog& log() const { return log_; }

 private:
  /// Enqueue the replay-or-resync decision for one (backend, deployment)
  /// pair given the version the backend reported.
  void repair_backend(const std::string& backend, const std::string& name,
                      std::uint64_t have_version);

  BackendPool* pool_;
  const MembershipTable* membership_;
  std::size_t replication_;
  serve::RouterMetrics* metrics_;
  MutationLog log_;
  /// Name-membership filter, republished whole on every deployment change
  /// (immutable once published; the mutex only guards the pointer swap).
  mutable std::mutex filter_mu_;
  std::shared_ptr<const DeploymentFilter> filter_;
};

}  // namespace abp::cluster
