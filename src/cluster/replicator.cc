#include "cluster/replicator.h"

#include <condition_variable>
#include <utility>

#include "common/assert.h"

namespace abp::cluster {

Replicator::Replicator(BackendPool& pool, const HashRing& ring,
                       std::size_t replication,
                       serve::RouterMetrics& metrics)
    : pool_(&pool),
      ring_(&ring),
      replication_(replication ? replication : 1),
      metrics_(&metrics) {}

std::uint64_t Replicator::set_deployment(const std::string& name,
                                         std::string field_text) {
  ABP_CHECK(serve::valid_field_name(name),
            "bad deployment name: '" + name + "'");
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot& snapshot = deployments_[name];
  snapshot.field_text = std::move(field_text);
  ++snapshot.version;
  return snapshot.version;
}

std::uint64_t Replicator::version(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = deployments_.find(name);
  return it == deployments_.end() ? 0 : it->second.version;
}

std::vector<std::string> Replicator::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(deployments_.size());
  for (const auto& [name, unused] : deployments_) out.push_back(name);
  return out;
}

std::string Replicator::list_text() const {
  std::string out;
  for (const std::string& name : names()) {
    out += name;
    out += '\n';
  }
  return out;
}

std::vector<std::string> Replicator::owners(const std::string& name) const {
  return ring_->owners(name, replication_);
}

serve::Request Replicator::install_request(const std::string& name) const {
  serve::Request request;
  request.endpoint = serve::Endpoint::kSnapshot;
  request.field = name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = deployments_.find(name);
    ABP_CHECK(it != deployments_.end(), "unknown deployment: " + name);
    request.text = it->second.field_text;
    request.version = it->second.version;
  }
  return request;
}

std::size_t Replicator::sync_all() {
  // Counting latch: every accepted enqueue must come back (reply or
  // failure) before startup proceeds, so the first forwarded query never
  // races its own deployment's install.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t outstanding = 0;
    std::size_t ok = 0;
  };
  auto latch = std::make_shared<Latch>();
  for (const std::string& name : names()) {
    for (const std::string& backend : owners(name)) {
      BackendPool::Forward forward;
      forward.request = install_request(name);
      forward.on_reply = [this, latch, backend](std::string payload) {
        const auto response = serve::parse_response(payload);
        const bool ok =
            response && response->status == serve::Status::kOk;
        if (ok) metrics_->record_install(backend);
        std::lock_guard<std::mutex> lock(latch->mu);
        if (ok) ++latch->ok;
        --latch->outstanding;
        latch->cv.notify_all();
      };
      forward.on_failure = [latch] {
        std::lock_guard<std::mutex> lock(latch->mu);
        --latch->outstanding;
        latch->cv.notify_all();
      };
      {
        std::lock_guard<std::mutex> lock(latch->mu);
        ++latch->outstanding;
      }
      if (!pool_->enqueue(backend, std::move(forward))) {
        std::lock_guard<std::mutex> lock(latch->mu);
        --latch->outstanding;
      }
    }
  }
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&latch] { return latch->outstanding == 0; });
  return latch->ok;
}

void Replicator::sync_backend(const std::string& backend) {
  for (const std::string& name : names()) {
    bool owned = false;
    for (const std::string& owner : owners(name)) {
      if (owner == backend) {
        owned = true;
        break;
      }
    }
    if (!owned) continue;
    BackendPool::Forward forward;
    forward.request = install_request(name);
    forward.on_reply = [this, backend](std::string payload) {
      const auto response = serve::parse_response(payload);
      if (response && response->status == serve::Status::kOk) {
        metrics_->record_install(backend);
      }
    };
    // Best-effort: a failed resync install leaves the backend stale, and
    // the per-query version fence catches that on the next forward.
    forward.on_failure = [] {};
    pool_->enqueue(backend, std::move(forward));
  }
}

}  // namespace abp::cluster
