#include "cluster/replicator.h"

#include <condition_variable>
#include <memory>
#include <utility>

#include "common/assert.h"

namespace abp::cluster {

Replicator::Replicator(BackendPool& pool, const MembershipTable& membership,
                       std::size_t replication,
                       serve::RouterMetrics& metrics, std::size_t log_retain)
    : pool_(&pool),
      membership_(&membership),
      replication_(replication ? replication : 1),
      metrics_(&metrics),
      log_(log_retain) {}

std::uint64_t Replicator::set_deployment(const std::string& name,
                                         std::string field_text) {
  const std::uint64_t version = log_.install(name, std::move(field_text));
  // Republish the membership filter over the updated name set. Rebuilding
  // whole is cheap (names are few) and keeps the filter immutable once
  // published — readers grab the shared_ptr and never see a partial build.
  auto filter = std::make_shared<DeploymentFilter>();
  filter->rebuild(log_.names());
  {
    std::lock_guard<std::mutex> lock(filter_mu_);
    filter_ = std::move(filter);
  }
  return version;
}

std::uint64_t Replicator::version(const std::string& name) const {
  return log_.version(name);
}

bool Replicator::possibly_deployed(const std::string& name) const {
  std::shared_ptr<const DeploymentFilter> filter;
  {
    std::lock_guard<std::mutex> lock(filter_mu_);
    filter = filter_;
  }
  return filter != nullptr && filter->may_contain(name);
}

std::uint64_t Replicator::read_version(const std::string& name) const {
  return log_.last_acked(name);
}

std::vector<std::string> Replicator::names() const { return log_.names(); }

std::string Replicator::list_text() const {
  std::string out;
  for (const std::string& name : names()) {
    out += name;
    out += '\n';
  }
  return out;
}

std::vector<std::string> Replicator::owners(const std::string& name) const {
  return membership_->view()->ring.owners(name, replication_);
}

serve::Request Replicator::install_request(const std::string& name) const {
  MutationLog::Snapshot snapshot = log_.snapshot(name);
  serve::Request request;
  request.endpoint = serve::Endpoint::kSnapshot;
  request.field = name;
  request.text = std::move(snapshot.text);
  request.version = snapshot.version;
  return request;
}

serve::Request Replicator::mutate_request(
    const std::string& name, const MutationLog::Entry& entry) const {
  serve::Request request;
  request.endpoint = serve::Endpoint::kMutate;
  request.field = name;
  request.points = entry.points;
  request.version = entry.version;
  // Replays carry the write's request id, so a recovering replica rebuilds
  // the same dedup state the live fan-out gave its peers.
  request.request_id = entry.request_id;
  return request;
}

std::size_t Replicator::sync_all() {
  // Counting latch: every accepted enqueue must come back (reply or
  // failure) before startup proceeds, so the first forwarded query never
  // races its own deployment's install.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t outstanding = 0;
    std::size_t ok = 0;
  };
  auto latch = std::make_shared<Latch>();
  for (const std::string& name : names()) {
    for (const std::string& backend : owners(name)) {
      BackendPool::Forward forward;
      forward.request = install_request(name);
      forward.on_reply = [this, latch, backend](std::string payload) {
        const auto response = serve::parse_response(payload);
        const bool ok =
            response && response->status == serve::Status::kOk;
        if (ok) metrics_->record_install(backend);
        std::lock_guard<std::mutex> lock(latch->mu);
        if (ok) ++latch->ok;
        --latch->outstanding;
        latch->cv.notify_all();
      };
      forward.on_failure = [latch] {
        std::lock_guard<std::mutex> lock(latch->mu);
        --latch->outstanding;
        latch->cv.notify_all();
      };
      {
        std::lock_guard<std::mutex> lock(latch->mu);
        ++latch->outstanding;
      }
      if (!pool_->enqueue(backend, std::move(forward))) {
        std::lock_guard<std::mutex> lock(latch->mu);
        --latch->outstanding;
      }
    }
  }
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&latch] { return latch->outstanding == 0; });
  return latch->ok;
}

void Replicator::sync_backend(const std::string& backend) {
  for (const std::string& name : names()) {
    bool owned = false;
    for (const std::string& owner : owners(name)) {
      if (owner == backend) {
        owned = true;
        break;
      }
    }
    if (!owned) continue;
    // Probe the backend's version first: the replay-vs-resync decision
    // needs to know how far behind it actually is. The probe reply runs on
    // a pool worker and enqueues the repair on the same backend FIFO.
    BackendPool::Forward probe;
    probe.request.endpoint = serve::Endpoint::kVersion;
    probe.request.field = name;
    probe.on_reply = [this, backend, name](std::string payload) {
      const auto response = serve::parse_response(payload);
      if (!response || response->status != serve::Status::kOk) {
        // Unparseable or errored probe: fall back to a full install.
        repair_backend(backend, name, 0);
        return;
      }
      repair_backend(backend, name, response->version);
    };
    // Best-effort: a failed probe leaves the backend stale, and the
    // per-query version fence catches that on the next forward.
    probe.on_failure = [] {};
    pool_->enqueue(backend, std::move(probe));
  }
}

void Replicator::repair_backend(const std::string& backend,
                                const std::string& name,
                                std::uint64_t have_version) {
  const auto entries = log_.suffix(name, have_version);
  if (entries && entries->empty()) return;  // already current
  if (entries) {
    // Replay the missing suffix in order on the backend's FIFO. A reply
    // that is neither ok nor an idempotent skip means the backend raced a
    // newer install or lost more state than the probe showed; the fence on
    // live traffic repairs that case.
    for (const MutationLog::Entry& entry : *entries) {
      BackendPool::Forward forward;
      forward.request = mutate_request(name, entry);
      forward.on_reply = [this, backend](std::string payload) {
        const auto response = serve::parse_response(payload);
        if (response && response->status == serve::Status::kOk) {
          metrics_->record_mutation_ack(backend);
          metrics_->record_replay(backend);
        }
      };
      forward.on_failure = [] {};
      if (pool_->enqueue(backend, std::move(forward))) {
        metrics_->record_mutation(backend);
      }
    }
    return;
  }
  // Behind the retained window (or the probe failed): full snapshot
  // install truncates the lag in one round trip.
  BackendPool::Forward forward;
  forward.request = install_request(name);
  forward.on_reply = [this, backend](std::string payload) {
    const auto response = serve::parse_response(payload);
    if (response && response->status == serve::Status::kOk) {
      metrics_->record_install(backend);
    }
  };
  forward.on_failure = [] {};
  pool_->enqueue(backend, std::move(forward));
}

}  // namespace abp::cluster
