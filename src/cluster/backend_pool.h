/// \file backend_pool.h
/// \brief Connection pool + health tracking for the cluster router's
/// backends.
///
/// One worker thread per backend owns that backend's `ClientTransport` and
/// a FIFO work queue. The worker drains the queue in batches over one
/// pipelined connection (`send_async` × N, then `flush`), so a burst of
/// forwarded requests costs one wire round trip — the same pipelining the
/// single-server transports exploit. FIFO-per-backend is also a correctness
/// lever: a snapshot install enqueued before a retried query is *guaranteed*
/// to reach the backend first, which is how the router repairs
/// `version-mismatch` without blocking.
///
/// Health is a circuit breaker per backend, driven by transport outcomes
/// and heartbeat probes on the injectable clock:
///
///     closed ──(consecutive failures ≥ threshold)──▶ open
///     open ──(probe due)──▶ probing ──(probe ok)──▶ closed (+ recovery cb)
///                                └──(probe fails)──▶ open
///
///  * `closed` — healthy; forwards flow. Successes reset the failure count.
///  * `open` — down; `enqueue()` refuses immediately (the router retries
///    another replica or sheds retryable `unavailable`), queued work is
///    failed fast, and the connection is dropped.
///  * `probing` — a heartbeat (`stats` round trip) is in flight deciding
///    between the two.
///
/// Probes also run against `closed` backends at the heartbeat cadence, so
/// a quiet cluster still notices a dead backend before the next query does.
/// `tick()` drives the cadence — the CLI calls it from a heartbeat thread,
/// tests call it manually under a `ManualClock`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/transport.h"

namespace abp::cluster {

enum class BackendHealth {
  kClosed,   ///< healthy: traffic flows
  kProbing,  ///< heartbeat in flight deciding closed vs open
  kOpen,     ///< down: enqueue() refuses, probes retry at the cadence
};

const char* backend_health_name(BackendHealth health);

struct BackendPoolOptions {
  /// Consecutive transport failures (forwards or probes) that trip the
  /// breaker from closed to open.
  std::size_t failure_threshold = 3;
  /// Heartbeat cadence in milliseconds (probe every live backend, retry
  /// every open one).
  double probe_interval_ms = 1000.0;
  /// Per-connection timeout handed to the transport factory's default.
  double connect_timeout_s = 2.0;
  /// Injectable monotonic clock (milliseconds); defaults to steady_clock.
  std::function<double()> clock_ms;
};

class BackendPool {
 public:
  /// One unit of work: send `request` down the pipelined connection, hand
  /// the raw response payload to `on_reply`, or call `on_failure` exactly
  /// once if the transport dies (or the backend is marked down) before a
  /// reply lands. Exactly one of the two callbacks fires per forward.
  struct Forward {
    serve::Request request;
    std::function<void(std::string)> on_reply;
    std::function<void()> on_failure;
  };

  /// Creates the transport for a named backend on (re)connect. The default
  /// parses `host:port` and opens a `TcpClientTransport`.
  using TransportFactory =
      std::function<std::unique_ptr<serve::ClientTransport>(
          const std::string& backend)>;

  BackendPool(std::vector<std::string> backends, BackendPoolOptions options,
              serve::RouterMetrics& metrics,
              TransportFactory factory = nullptr);
  ~BackendPool();

  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  /// Invoked (from a worker thread) whenever a backend transitions
  /// probing → closed; the router resyncs snapshots here. Set before
  /// `start()`.
  void set_recovery_callback(std::function<void(const std::string&)> callback);

  void start();
  /// Fail everything still queued, join the workers. Idempotent.
  void stop();

  /// Live membership: register a new backend (healthy until proven
  /// otherwise; a worker is spawned immediately if the pool is started).
  /// Returns false if the name is already pooled or the pool is stopping.
  bool add_backend(const std::string& backend);

  /// Live membership: unregister `backend`. New enqueues stop immediately,
  /// the worker finishes its in-flight batch and is joined, and anything
  /// still queued is failed via its callbacks. Returns false if unknown.
  bool remove_backend(const std::string& backend);

  /// True when `backend`'s FIFO is empty *and* its worker is between
  /// batches — the drain path polls this before removing a backend so
  /// in-flight work completes rather than being failed. Unknown backends
  /// are trivially idle.
  bool queue_idle(const std::string& backend) const;

  /// Queue work on `backend`'s FIFO. Returns false — without consuming the
  /// callbacks — when the backend is unknown, marked down (`open`), or the
  /// pool is stopping; the caller picks another replica or sheds.
  bool enqueue(const std::string& backend, Forward forward);

  /// Heartbeat driver: start probes on every backend whose cadence is due
  /// (per the injectable clock). Non-blocking — probes ride the workers.
  void tick();

  /// A backend removed (or never added) reads as `open` — to every caller,
  /// "not pooled" and "down" both mean "do not route here".
  BackendHealth health(const std::string& backend) const;
  std::vector<std::string> backends() const;
  double now_ms() const;

 private:
  struct Backend {
    std::string name;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Forward> queue;       ///< guarded by mu
    bool probe_pending = false;      ///< guarded by mu
    bool retiring = false;           ///< guarded by mu; worker exits
    bool busy = false;               ///< guarded by mu; batch in flight
    BackendHealth health = BackendHealth::kClosed;  ///< guarded by mu
    std::size_t consecutive_failures = 0;           ///< guarded by mu
    double last_probe_ms = 0.0;      ///< guarded by mu
    std::thread worker;
    /// Worker-thread-only: the live pipelined connection, if any.
    std::unique_ptr<serve::ClientTransport> transport;
  };

  void worker_loop(Backend& backend);
  /// Run a batch over the pipelined transport; returns false on transport
  /// failure (un-answered entries have been failed).
  bool run_batch(Backend& backend, std::vector<Forward> batch);
  bool run_probe(Backend& backend);
  void record_failure_locked(Backend& backend,
                             std::unique_lock<std::mutex>& lock);
  void record_success_locked(Backend& backend);
  /// Fail every queued entry (caller holds `backend.mu` via `lock`);
  /// callbacks run outside the lock.
  void drain_queue(Backend& backend, std::unique_lock<std::mutex>& lock);

  BackendPoolOptions options_;
  serve::RouterMetrics* metrics_;
  TransportFactory factory_;
  std::function<void(const std::string&)> recovery_;
  /// Map structure guarded by map_mu_ (live membership mutates it);
  /// `Backend` contents stay guarded by their own per-backend mu. Lock
  /// order: state_mu_ → map_mu_ → backend.mu. Workers never take map_mu_.
  std::map<std::string, std::unique_ptr<Backend>> backends_;
  mutable std::mutex map_mu_;  ///< guards the backends_ map structure
  std::mutex state_mu_;        ///< guards started_
  bool started_ = false;       ///< guarded by state_mu_
  /// Atomic (not state_mu_-guarded): worker condition-variable predicates
  /// read it while holding their own per-backend mutex.
  std::atomic<bool> stopping_{false};

  bool stopping() const { return stopping_.load(std::memory_order_acquire); }
};

/// Split `host:port`; throws `ServeError` on malformed input.
std::pair<std::string, std::uint16_t> parse_backend_address(
    const std::string& backend);

}  // namespace abp::cluster
