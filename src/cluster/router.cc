#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

namespace abp::cluster {

namespace {

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string rejection_payload(std::uint64_t seq, serve::Status status,
                              const std::string& message,
                              std::uint32_t retry_after_ms = 0) {
  serve::Response response;
  response.seq = seq;
  response.status = status;
  response.message = message;
  response.retry_after_ms = retry_after_ms;
  return serve::format_response(response);
}

}  // namespace

Router::Router(MembershipTable& membership, BackendPool& pool,
               Replicator& replicator, serve::RouterMetrics& metrics,
               Options options)
    : membership_(&membership),
      pool_(&pool),
      replicator_(&replicator),
      metrics_(&metrics),
      options_(std::move(options)) {
  if (options_.cache_entries > 0) {
    cache_ = std::make_unique<ResponseCache>(options_.cache_entries);
  }
  if (options_.quota.enabled()) {
    quotas_ = std::make_unique<serve::PrincipalQuotas>(options_.quota);
  }
  MembershipController::Options admin_options;
  admin_options.handoff_rounds = options_.handoff_rounds;
  admin_options.drain_timeout_ms = options_.drain_timeout_ms;
  admin_options.clock_ms = options_.clock_ms;
  admin_ = std::make_unique<MembershipController>(
      *membership_, *pool_, *replicator_, *metrics_,
      std::move(admin_options));
  // Ring flips run inside the write mutex: a write reads its membership
  // view under the same lock, so the owner set, quorum and fan-out of
  // every write belong to exactly one epoch.
  admin_->set_write_fence([this](const std::function<void()>& fn) {
    std::lock_guard<std::mutex> lock(write_mu_);
    fn();
  });
  admin_->set_invalidate([this](const std::string& deployment) {
    if (cache_) {
      metrics_->record_cache_invalidation(cache_->invalidate(deployment));
    }
  });
}

double Router::now_ms() const {
  return options_.clock_ms ? options_.clock_ms() : steady_now_ms();
}

void Router::record_bad_frame(std::size_t bytes_in) {
  (void)bytes_in;
  metrics_->record_received();
  metrics_->record_local();
}

void Router::answer_local(std::uint64_t seq, std::string text,
                          const std::function<void(std::string)>& reply) {
  metrics_->record_local();
  serve::Response response;
  response.seq = seq;
  response.status = serve::Status::kOk;
  response.text = std::move(text);
  reply(serve::format_response_capped(response));
}

void Router::submit(std::string payload,
                    std::function<void(std::string)> reply) {
  std::string parse_error;
  std::optional<serve::Request> request =
      serve::parse_request(payload, &parse_error);
  if (!request) {
    metrics_->record_received();
    metrics_->record_local();
    reply(rejection_payload(0, serve::Status::kBadRequest, parse_error));
    return;
  }
  metrics_->record_received(request->principal);
  const serve::EndpointTraits& traits = endpoint_traits(request->endpoint);
  if (traits.router_local) {
    // Quota-exempt: operators can always introspect a loaded router.
    switch (request->endpoint) {
      case serve::Endpoint::kStats:
        answer_local(request->seq, metrics_->render_text(), reply);
        return;
      case serve::Endpoint::kAdmin:
        handle_admin(*request, reply);
        return;
      default:
        answer_local(request->seq, replicator_->list_text(), reply);
        return;
    }
  }
  if (traits.internal_only) {
    // Mutations are minted by the router's own log; accepting one from a
    // client would fork a replica's version history.
    metrics_->record_local();
    reply(rejection_payload(request->seq, serve::Status::kBadRequest,
                            "mutations are managed by the router"));
    return;
  }
  if (request->endpoint == serve::Endpoint::kSnapshot &&
      !request->text.empty()) {
    // Snapshot *installs* are router-internal: accepting one from a client
    // would mutate a single backend behind the replicator's back and
    // desynchronize the version registry. (Snapshot *fetches* route
    // normally.)
    metrics_->record_local();
    reply(rejection_payload(request->seq, serve::Status::kBadRequest,
                            "snapshot installs are managed by the router"));
    return;
  }
  if (quotas_) {
    const serve::PrincipalQuotas::Decision decision =
        quotas_->admit(request->principal, now_ms());
    if (!decision.admitted) {
      metrics_->record_quota_shed(request->principal);
      metrics_->record_local();
      reply(rejection_payload(
          request->seq, serve::Status::kOverloaded,
          "quota exceeded for principal " +
              std::to_string(request->principal) + "; retry with backoff",
          decision.retry_after_ms));
      return;
    }
  }
  if (!replicator_->possibly_deployed(request->field)) {
    // The membership filter proved the name absent — answer locally, no
    // registry lookup. (A false positive falls through to the
    // authoritative check below and earns the identical answer.)
    metrics_->record_filter_reject();
    metrics_->record_local();
    reply(rejection_payload(request->seq, serve::Status::kNotFound,
                            "unknown deployment '" + request->field + "'"));
    return;
  }
  if (replicator_->version(request->field) == 0) {
    metrics_->record_local();
    reply(rejection_payload(request->seq, serve::Status::kNotFound,
                            "unknown deployment '" + request->field + "'"));
    return;
  }
  if (traits.mutating) {
    route_write(std::move(*request), std::move(reply));
    return;
  }
  auto state = std::make_shared<CallState>();
  state->request = std::move(*request);
  // Fence reads at the last quorum-acked write, never an in-flight one:
  // read-your-writes for everything the client has seen acknowledged, with
  // a quorum of replicas guaranteed able to serve it.
  state->request.version = replicator_->read_version(state->request.field);
  if (cache_ && traits.cacheable) {
    state->cache_key = ResponseCache::key_for(state->request);
    state->cache_version = state->request.version;
    if (std::optional<serve::Response> hit = cache_->lookup(
            state->request.field, state->cache_version, state->cache_key)) {
      // Cached responses store seq 0; re-stamp the requester's seq so the
      // bytes match an uncached forward of this exact request.
      metrics_->record_cache_hit();
      metrics_->record_local();
      hit->seq = state->request.seq;
      reply(serve::format_response_capped(*hit));
      return;
    }
    metrics_->record_cache_miss();
    state->cache_store = true;
  }
  state->owners = replicator_->owners(state->request.field);
  state->reply = std::move(reply);
  route(std::move(state), /*is_retry=*/false);
}

void Router::handle_admin(const serve::Request& request,
                          const std::function<void(std::string)>& reply) {
  metrics_->record_local();
  if (!options_.admin) {
    reply(rejection_payload(request.seq, serve::Status::kBadRequest,
                            "admin endpoint disabled on this router"));
    return;
  }
  std::string backend = request.text;
  while (!backend.empty() &&
         (backend.back() == '\n' || backend.back() == '\r' ||
          backend.back() == ' ')) {
    backend.pop_back();
  }
  AdminResult result;
  if (request.algorithm == "status") {
    result = admin_->status();
  } else if (request.algorithm == "add") {
    result = admin_->add(backend);
  } else if (request.algorithm == "drain") {
    result = admin_->drain(backend);
  } else {
    reply(rejection_payload(request.seq, serve::Status::kBadRequest,
                            "admin verb must be add|drain|status (got '" +
                                request.algorithm + "')"));
    return;
  }
  if (!result.ok) {
    reply(rejection_payload(request.seq, result.status, result.message));
    return;
  }
  serve::Response response;
  response.seq = request.seq;
  response.status = serve::Status::kOk;
  response.text = std::move(result.text);
  reply(serve::format_response_capped(response));
}

void Router::shed_overloaded(std::string payload,
                             std::function<void(std::string)> reply,
                             const std::string& why) {
  metrics_->record_received();
  metrics_->record_local();
  std::string parse_error;
  const std::optional<serve::Request> request =
      serve::parse_request(payload, &parse_error);
  if (!request) {
    reply(rejection_payload(0, serve::Status::kBadRequest, parse_error));
    return;
  }
  reply(rejection_payload(request->seq, serve::Status::kOverloaded, why,
                          options_.retry_after_hint_ms));
}

void Router::route(std::shared_ptr<CallState> state, bool is_retry) {
  while (state->next_owner < state->owners.size()) {
    const std::string backend = state->owners[state->next_owner];
    BackendPool::Forward forward;
    forward.request = state->request;
    forward.on_reply = [this, state, backend](std::string payload) {
      handle_reply(state, backend, std::move(payload));
    };
    forward.on_failure = [this, state, backend] {
      handle_failure(state, backend);
    };
    if (pool_->enqueue(backend, std::move(forward))) {
      metrics_->record_forward(backend);
      if (is_retry) metrics_->record_retry(backend);
      return;
    }
    // Breaker refused — the request never left the router, so moving on is
    // safe even for non-idempotent endpoints.
    ++state->next_owner;
  }
  metrics_->record_unrouted();
  finish_unavailable(state, "no live replica for deployment '" +
                                state->request.field + "'");
}

void Router::handle_failure(const std::shared_ptr<CallState>& state,
                            const std::string& backend) {
  // The transport died with the request possibly executed. Idempotent
  // endpoints fail over; add-beacon must not risk double execution.
  if (serve::endpoint_traits(state->request.endpoint).idempotent &&
      state->next_owner + 1 < state->owners.size()) {
    ++state->next_owner;
    route(state, /*is_retry=*/true);
    return;
  }
  finish_unavailable(state, "backend '" + backend +
                                "' failed before replying; retry");
}

void Router::handle_reply(const std::shared_ptr<CallState>& state,
                          const std::string& backend, std::string payload) {
  std::optional<serve::Response> response = serve::parse_response(payload);
  if (!response) {
    handle_failure(state, backend);
    return;
  }
  switch (response->status) {
    case serve::Status::kVersionMismatch: {
      metrics_->record_version_mismatch(backend);
      if (state->repaired) {
        // Repair already spent: hand the (retryable) status to the client
        // rather than loop.
        metrics_->record_result(backend, response->status);
        deliver(state, backend, std::move(*response));
        return;
      }
      state->repaired = true;
      // Install-then-retry on the same backend FIFO: per-backend ordering
      // guarantees the fresh snapshot lands before the retried request.
      BackendPool::Forward install;
      install.request = replicator_->install_request(state->request.field);
      install.on_reply = [this, backend](std::string install_payload) {
        const auto ack = serve::parse_response(install_payload);
        if (ack && ack->status == serve::Status::kOk) {
          metrics_->record_install(backend);
        }
      };
      install.on_failure = [] {};
      if (!pool_->enqueue(backend, std::move(install))) {
        handle_failure(state, backend);
        return;
      }
      BackendPool::Forward retry;
      retry.request = state->request;
      retry.on_reply = [this, state, backend](std::string retry_payload) {
        handle_reply(state, backend, std::move(retry_payload));
      };
      retry.on_failure = [this, state, backend] {
        handle_failure(state, backend);
      };
      if (!pool_->enqueue(backend, std::move(retry))) {
        handle_failure(state, backend);
        return;
      }
      metrics_->record_forward(backend);
      return;
    }
    case serve::Status::kUnavailable:
      // The backend is draining or shutting down — same recovery as a
      // transport failure.
      metrics_->record_result(backend, response->status);
      if (serve::endpoint_traits(state->request.endpoint).idempotent &&
          state->next_owner + 1 < state->owners.size()) {
        ++state->next_owner;
        route(state, /*is_retry=*/true);
        return;
      }
      deliver(state, backend, std::move(*response));
      return;
    default:
      metrics_->record_result(backend, response->status);
      deliver(state, backend, std::move(*response));
      return;
  }
}

void Router::deliver(const std::shared_ptr<CallState>& state,
                     const std::string& backend,
                     serve::Response response) {
  (void)backend;
  // Strip the router↔backend version record so a routed response is
  // byte-identical to a direct single-server one. `version` requests are
  // the exception: the version record *is* their answer.
  if (state->request.endpoint != serve::Endpoint::kVersion) {
    response.version = 0;
  }
  if (cache_ && state->cache_store &&
      response.status == serve::Status::kOk) {
    // Store post-strip with seq 0 so any requester's hit re-stamps its own
    // seq and the bytes match an uncached forward. A stale store racing a
    // concurrent invalidation is benign: the entry is pinned to the fence
    // version this read ran at, and a later lookup fenced at the bumped
    // version treats it as a miss and drops it.
    serve::Response cached = response;
    cached.seq = 0;
    cache_->insert(state->request.field, state->cache_version,
                   state->cache_key, std::move(cached));
  }
  state->reply(serve::format_response_capped(response));
}

void Router::finish_unavailable(const std::shared_ptr<CallState>& state,
                                const std::string& why) {
  state->reply(rejection_payload(state->request.seq,
                                 serve::Status::kUnavailable, why,
                                 options_.retry_after_hint_ms));
}

void Router::route_write(serve::Request request,
                         std::function<void(std::string)> reply) {
  // Validate exactly as a backend would *before* touching the log: a write
  // any replica would reject must never be appended.
  if (request.points.empty()) {
    reply(rejection_payload(request.seq, serve::Status::kBadRequest,
                            "add-beacon needs at least one point"));
    return;
  }
  if (request.points.size() > serve::kMaxPointsPerRequest) {
    reply(rejection_payload(request.seq, serve::Status::kBadRequest,
                            "too many points in one request"));
    return;
  }
  const std::uint64_t request_id =
      options_.dedup ? request.request_id : 0;
  // Dedup lookup, append and fan-out share one lock: two concurrent
  // deliveries of the same id must serialize into "one appends, the other
  // hits the index", and concurrent writes must enter every backend FIFO
  // in version order.
  std::lock_guard<std::mutex> lock(write_mu_);
  // One membership view per write, read under the same mutex the admin
  // plane's ring flips hold: the owner set, quorum and fan-out all belong
  // to a single epoch, and a write admitted against the old epoch has
  // fully entered the backend FIFOs before the flip can proceed.
  const std::shared_ptr<const MembershipView> view = membership_->view();
  const std::vector<std::string> owners =
      view->ring.owners(request.field, replicator_->replication());
  const std::size_t majority = owners.size() / 2 + 1;
  const std::size_t quorum =
      options_.write_quorum == 0
          ? majority
          : std::min(options_.write_quorum, owners.size());
  std::size_t live = 0;
  for (const std::string& backend : owners) {
    if (pool_->health(backend) != BackendHealth::kOpen) ++live;
  }
  MutationLog& log = replicator_->log();
  if (request_id != 0) {
    if (const std::optional<MutationLog::DedupHit> hit =
            log.dedup_lookup(request.field, request_id)) {
      // Duplicate delivery of a write already in the log. Re-synthesize
      // the *original* ack (same deterministic positions/ids; the client
      // holds seq constant across retries, so the bytes match the first
      // synthesis too).
      metrics_->record_write_dedup_hit();
      serve::Response ok;
      ok.seq = request.seq;
      ok.positions = hit->positions;
      ok.beacon_ids = hit->beacon_ids;
      std::string ok_payload = serve::format_response_capped(ok);
      if (hit->acked) {
        reply(ok_payload);
        return;
      }
      // The first fan-out lost its quorum after the append: the retry's
      // job is to finish that write, not to mint a new one. Re-fan the
      // logged entry out (same version — replicas that took it already ack
      // idempotently) and answer the original ack at quorum.
      if (live < quorum) {
        metrics_->record_unrouted();
        reply(rejection_payload(
            request.seq, serve::Status::kUnavailable,
            "write quorum of " + std::to_string(quorum) +
                " unreachable for '" + request.field + "' (" +
                std::to_string(live) + " live owners)",
            options_.retry_after_hint_ms));
        return;
      }
      auto state = std::make_shared<WriteState>();
      state->quorum = quorum;
      state->targets = owners.size();
      state->reply = std::move(reply);
      state->ok_payload = std::move(ok_payload);
      state->mutate.endpoint = serve::Endpoint::kMutate;
      state->mutate.seq = request.seq;
      state->mutate.field = request.field;
      state->mutate.points = hit->positions;
      state->mutate.version = hit->version;
      state->mutate.request_id = request_id;
      for (const std::string& backend : owners) {
        send_mutation(state, backend);
      }
      return;
    }
    if (request.attempt > 0 && !log.dedup_complete(request.field)) {
      // A *retry* whose id is unknown after the index has evicted entries:
      // the first delivery may have appended and aged out, so appending
      // again risks the duplicate this whole path exists to prevent.
      // Terminal by design — see DESIGN.md §11.
      metrics_->record_write_dedup_expired();
      reply(rejection_payload(
          request.seq, serve::Status::kDedupExpired,
          "request id unknown and the dedup window for '" + request.field +
              "' has rolled over; verify the write and mint a fresh id"));
      return;
    }
  }
  // Feasibility check before the append: if fewer owners are live than the
  // quorum needs, shed now — the log stays untouched, so the client's
  // retry cannot duplicate anything. (Races with breaker transitions fall
  // through to the post-append quorum accounting below.)
  if (live < quorum) {
    metrics_->record_unrouted();
    reply(rejection_payload(
        request.seq, serve::Status::kUnavailable,
        "write quorum of " + std::to_string(quorum) + " unreachable for '" +
            request.field + "' (" + std::to_string(live) + " live owners)",
        options_.retry_after_hint_ms));
    return;
  }
  auto state = std::make_shared<WriteState>();
  state->quorum = quorum;
  state->targets = owners.size();
  state->reply = std::move(reply);
  const MutationLog::AppendResult applied =
      log.append(request.field, request.points, request_id);
  metrics_->record_write();
  // The client's response is synthesized from the deterministic apply —
  // the same clamp + id allocation every replica performs — so it is
  // byte-identical to what a direct single server with this history
  // would have answered.
  serve::Response ok;
  ok.seq = request.seq;
  ok.positions = applied.positions;
  ok.beacon_ids = applied.beacon_ids;
  state->ok_payload = serve::format_response_capped(ok);
  state->mutate.endpoint = serve::Endpoint::kMutate;
  state->mutate.seq = request.seq;
  state->mutate.field = request.field;
  state->mutate.points = applied.positions;
  state->mutate.version = applied.version;
  state->mutate.request_id = request_id;
  for (const std::string& backend : owners) {
    send_mutation(state, backend);
  }
}

void Router::send_mutation(const std::shared_ptr<WriteState>& state,
                           const std::string& backend) {
  BackendPool::Forward forward;
  forward.request = state->mutate;
  forward.on_reply = [this, state, backend](std::string payload) {
    handle_mutation_reply(state, backend, std::move(payload));
  };
  forward.on_failure = [this, state, backend] {
    write_failure(state, backend);
  };
  if (pool_->enqueue(backend, std::move(forward))) {
    metrics_->record_mutation(backend);
  } else {
    write_failure(state, backend);
  }
}

void Router::handle_mutation_reply(const std::shared_ptr<WriteState>& state,
                                   const std::string& backend,
                                   std::string payload) {
  const std::optional<serve::Response> response =
      serve::parse_response(payload);
  if (!response) {
    write_failure(state, backend);
    return;
  }
  if (response->status == serve::Status::kOk) {
    write_ack(state, backend);
    return;
  }
  if (response->status == serve::Status::kVersionMismatch) {
    metrics_->record_version_mismatch(backend);
    bool first_repair = false;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      first_repair = state->repaired.insert(backend).second;
    }
    if (first_repair) {
      // Install-then-retry on the same backend FIFO: the snapshot (at the
      // log's *current* version, ≥ this mutation's) lands first, then the
      // retried mutation collects an idempotent ack.
      BackendPool::Forward install;
      install.request = replicator_->install_request(state->mutate.field);
      install.on_reply = [this, backend](std::string install_payload) {
        const auto ack = serve::parse_response(install_payload);
        if (ack && ack->status == serve::Status::kOk) {
          metrics_->record_install(backend);
        }
      };
      install.on_failure = [] {};
      if (pool_->enqueue(backend, std::move(install))) {
        send_mutation(state, backend);
        return;
      }
    }
    write_failure(state, backend);
    return;
  }
  write_failure(state, backend);
}

void Router::write_ack(const std::shared_ptr<WriteState>& state,
                       const std::string& backend) {
  metrics_->record_mutation_ack(backend);
  bool reached_quorum = false;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    ++state->acks;
    if (state->acks == state->quorum) {
      reached_quorum = true;
      if (!state->replied) {
        state->replied = true;
        fire = true;
      }
    }
  }
  if (reached_quorum) {
    // Advance the read fence even on a late quorum (after an `unavailable`
    // reply): the write is now served by a quorum either way.
    replicator_->log().record_acked(state->mutate.field,
                                    state->mutate.version);
    if (cache_) {
      // Invalidate *between* fence advance and ack release: once the
      // client observes this ack, no pre-write cached response can be
      // served for the deployment (read-your-writes; the chaos suite pins
      // this ordering).
      metrics_->record_cache_invalidation(
          cache_->invalidate(state->mutate.field));
    }
    metrics_->record_write_ack();
  }
  if (fire) state->reply(state->ok_payload);
}

void Router::write_failure(const std::shared_ptr<WriteState>& state,
                           const std::string& backend) {
  (void)backend;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    ++state->failures;
    // Quorum impossible: even if every still-outstanding owner acks, the
    // ack count cannot reach the quorum.
    if (!state->replied &&
        state->targets - state->failures < state->quorum) {
      state->replied = true;
      fire = true;
    }
  }
  if (fire) {
    metrics_->record_write_quorum_failure();
    state->reply(rejection_payload(
        state->mutate.seq, serve::Status::kUnavailable,
        "write quorum lost for deployment '" + state->mutate.field +
            "'; the mutation is logged and will converge to the replicas",
        options_.retry_after_hint_ms));
  }
}

}  // namespace abp::cluster
