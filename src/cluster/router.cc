#include "cluster/router.h"

#include <chrono>
#include <optional>
#include <utility>

namespace abp::cluster {

namespace {

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string rejection_payload(std::uint64_t seq, serve::Status status,
                              const std::string& message,
                              std::uint32_t retry_after_ms = 0) {
  serve::Response response;
  response.seq = seq;
  response.status = status;
  response.message = message;
  response.retry_after_ms = retry_after_ms;
  return serve::format_response(response);
}

}  // namespace

Router::Router(const HashRing& ring, BackendPool& pool,
               Replicator& replicator, serve::RouterMetrics& metrics,
               Options options)
    : ring_(&ring),
      pool_(&pool),
      replicator_(&replicator),
      metrics_(&metrics),
      options_(std::move(options)) {}

double Router::now_ms() const {
  return options_.clock_ms ? options_.clock_ms() : steady_now_ms();
}

void Router::record_bad_frame(std::size_t bytes_in) {
  (void)bytes_in;
  metrics_->record_received();
  metrics_->record_local();
}

void Router::answer_local(std::uint64_t seq, std::string text,
                          const std::function<void(std::string)>& reply) {
  metrics_->record_local();
  serve::Response response;
  response.seq = seq;
  response.status = serve::Status::kOk;
  response.text = std::move(text);
  reply(serve::format_response_capped(response));
}

void Router::submit(std::string payload,
                    std::function<void(std::string)> reply) {
  metrics_->record_received();
  std::string parse_error;
  std::optional<serve::Request> request =
      serve::parse_request(payload, &parse_error);
  if (!request) {
    metrics_->record_local();
    reply(rejection_payload(0, serve::Status::kBadRequest, parse_error));
    return;
  }
  switch (request->endpoint) {
    case serve::Endpoint::kStats:
      answer_local(request->seq, metrics_->render_text(), reply);
      return;
    case serve::Endpoint::kListFields:
      answer_local(request->seq, replicator_->list_text(), reply);
      return;
    default:
      break;
  }
  if (request->endpoint == serve::Endpoint::kSnapshot &&
      !request->text.empty()) {
    // Snapshot *installs* are router-internal: accepting one from a client
    // would mutate a single backend behind the replicator's back and
    // desynchronize the version registry. (Snapshot *fetches* route
    // normally.)
    metrics_->record_local();
    reply(rejection_payload(request->seq, serve::Status::kBadRequest,
                            "snapshot installs are managed by the router"));
    return;
  }
  const std::uint64_t version = replicator_->version(request->field);
  if (version == 0) {
    metrics_->record_local();
    reply(rejection_payload(request->seq, serve::Status::kNotFound,
                            "unknown deployment '" + request->field + "'"));
    return;
  }
  auto state = std::make_shared<CallState>();
  state->request = std::move(*request);
  state->request.version = version;
  state->owners = replicator_->owners(state->request.field);
  state->reply = std::move(reply);
  route(std::move(state), /*is_retry=*/false);
}

void Router::shed_overloaded(std::string payload,
                             std::function<void(std::string)> reply,
                             const std::string& why) {
  metrics_->record_received();
  metrics_->record_local();
  std::string parse_error;
  const std::optional<serve::Request> request =
      serve::parse_request(payload, &parse_error);
  if (!request) {
    reply(rejection_payload(0, serve::Status::kBadRequest, parse_error));
    return;
  }
  reply(rejection_payload(request->seq, serve::Status::kOverloaded, why,
                          options_.retry_after_hint_ms));
}

void Router::route(std::shared_ptr<CallState> state, bool is_retry) {
  while (state->next_owner < state->owners.size()) {
    const std::string backend = state->owners[state->next_owner];
    BackendPool::Forward forward;
    forward.request = state->request;
    forward.on_reply = [this, state, backend](std::string payload) {
      handle_reply(state, backend, std::move(payload));
    };
    forward.on_failure = [this, state, backend] {
      handle_failure(state, backend);
    };
    if (pool_->enqueue(backend, std::move(forward))) {
      metrics_->record_forward(backend);
      if (is_retry) metrics_->record_retry(backend);
      return;
    }
    // Breaker refused — the request never left the router, so moving on is
    // safe even for non-idempotent endpoints.
    ++state->next_owner;
  }
  metrics_->record_unrouted();
  finish_unavailable(state, "no live replica for deployment '" +
                                state->request.field + "'");
}

void Router::handle_failure(const std::shared_ptr<CallState>& state,
                            const std::string& backend) {
  // The transport died with the request possibly executed. Idempotent
  // endpoints fail over; add-beacon must not risk double execution.
  if (serve::endpoint_idempotent(state->request.endpoint) &&
      state->next_owner + 1 < state->owners.size()) {
    ++state->next_owner;
    route(state, /*is_retry=*/true);
    return;
  }
  finish_unavailable(state, "backend '" + backend +
                                "' failed before replying; retry");
}

void Router::handle_reply(const std::shared_ptr<CallState>& state,
                          const std::string& backend, std::string payload) {
  std::optional<serve::Response> response = serve::parse_response(payload);
  if (!response) {
    handle_failure(state, backend);
    return;
  }
  switch (response->status) {
    case serve::Status::kVersionMismatch: {
      metrics_->record_version_mismatch(backend);
      if (state->repaired) {
        // Repair already spent: hand the (retryable) status to the client
        // rather than loop.
        metrics_->record_result(backend, response->status);
        deliver(state, backend, std::move(*response));
        return;
      }
      state->repaired = true;
      // Install-then-retry on the same backend FIFO: per-backend ordering
      // guarantees the fresh snapshot lands before the retried request.
      BackendPool::Forward install;
      install.request = replicator_->install_request(state->request.field);
      install.on_reply = [this, backend](std::string install_payload) {
        const auto ack = serve::parse_response(install_payload);
        if (ack && ack->status == serve::Status::kOk) {
          metrics_->record_install(backend);
        }
      };
      install.on_failure = [] {};
      if (!pool_->enqueue(backend, std::move(install))) {
        handle_failure(state, backend);
        return;
      }
      BackendPool::Forward retry;
      retry.request = state->request;
      retry.on_reply = [this, state, backend](std::string retry_payload) {
        handle_reply(state, backend, std::move(retry_payload));
      };
      retry.on_failure = [this, state, backend] {
        handle_failure(state, backend);
      };
      if (!pool_->enqueue(backend, std::move(retry))) {
        handle_failure(state, backend);
        return;
      }
      metrics_->record_forward(backend);
      return;
    }
    case serve::Status::kUnavailable:
      // The backend is draining or shutting down — same recovery as a
      // transport failure.
      metrics_->record_result(backend, response->status);
      if (serve::endpoint_idempotent(state->request.endpoint) &&
          state->next_owner + 1 < state->owners.size()) {
        ++state->next_owner;
        route(state, /*is_retry=*/true);
        return;
      }
      deliver(state, backend, std::move(*response));
      return;
    default:
      metrics_->record_result(backend, response->status);
      deliver(state, backend, std::move(*response));
      return;
  }
}

void Router::deliver(const std::shared_ptr<CallState>& state,
                     const std::string& backend,
                     serve::Response response) {
  (void)backend;
  // Strip the router↔backend version record so a routed response is
  // byte-identical to a direct single-server one.
  response.version = 0;
  state->reply(serve::format_response_capped(response));
}

void Router::finish_unavailable(const std::shared_ptr<CallState>& state,
                                const std::string& why) {
  state->reply(rejection_payload(state->request.seq,
                                 serve::Status::kUnavailable, why,
                                 options_.retry_after_hint_ms));
}

}  // namespace abp::cluster
