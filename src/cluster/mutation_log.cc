#include "cluster/mutation_log.h"

#include <sstream>
#include <utility>

#include "common/assert.h"
#include "io/field_io.h"
#include "serve/protocol.h"

namespace abp::cluster {

MutationLog::MutationLog(std::size_t retain)
    : retain_(retain ? retain : 1) {}

std::uint64_t MutationLog::install(const std::string& name,
                                   std::string field_text) {
  ABP_CHECK(serve::valid_field_name(name),
            "bad deployment name: '" + name + "'");
  // Parse outside the lock; a bad snapshot must not wedge the log.
  std::istringstream is(field_text);
  BeaconField field = read_field(is);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = deployments_.find(name);
  if (it == deployments_.end()) {
    it = deployments_
             .emplace(name, std::make_unique<Deployment>(std::move(field)))
             .first;
  } else {
    it->second->field = std::move(field);
  }
  Deployment& deployment = *it->second;
  deployment.text = std::move(field_text);
  deployment.text_dirty = false;
  deployment.entries.clear();
  if (!deployment.dedup.empty()) {
    // Re-install over an id-bearing history: those ids are gone for good,
    // so unknown-id retries are ambiguous from here on.
    deployment.dedup.clear();
    deployment.dedup_complete = false;
  }
  ++deployment.version;
  // A fresh install is fully replicated by sync before reads are fenced on
  // it, so the read fence starts at the install version.
  deployment.last_acked = deployment.version;
  return deployment.version;
}

MutationLog::AppendResult MutationLog::append(const std::string& name,
                                              const std::vector<Vec2>& points,
                                              std::uint64_t request_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = deployments_.find(name);
  ABP_CHECK(it != deployments_.end(), "unknown deployment: " + name);
  Deployment& deployment = *it->second;
  AppendResult result;
  Entry entry;
  for (const Vec2 p : points) {
    // Same clamp + sequential id allocation a replica's own apply performs.
    const Vec2 pos = deployment.field.bounds().clamp(p);
    const BeaconId id = deployment.field.add(pos);
    result.positions.push_back(pos);
    result.beacon_ids.push_back(id);
    entry.points.push_back(pos);
    entry.beacon_ids.push_back(id);
  }
  deployment.text_dirty = true;
  entry.version = ++deployment.version;
  entry.request_id = request_id;
  result.version = deployment.version;
  if (request_id != 0) {
    const bool inserted =
        deployment.dedup.emplace(request_id, entry.version).second;
    ABP_CHECK(inserted, "request id appended twice to deployment '" + name +
                            "' — callers must dedup_lookup first");
  }
  deployment.entries.push_back(std::move(entry));
  while (deployment.entries.size() > retain_) {
    const Entry& evicted = deployment.entries.front();
    if (evicted.request_id != 0) {
      deployment.dedup.erase(evicted.request_id);
      deployment.dedup_complete = false;
    }
    deployment.entries.pop_front();
  }
  return result;
}

std::optional<MutationLog::DedupHit> MutationLog::dedup_lookup(
    const std::string& name, std::uint64_t request_id) const {
  if (request_id == 0) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = deployments_.find(name);
  if (it == deployments_.end()) return std::nullopt;
  const Deployment& deployment = *it->second;
  const auto hit = deployment.dedup.find(request_id);
  if (hit == deployment.dedup.end()) return std::nullopt;
  // Retained entries hold contiguous versions, so the mapped version
  // addresses its entry directly.
  const std::uint64_t front = deployment.entries.front().version;
  const Entry& entry =
      deployment.entries[static_cast<std::size_t>(hit->second - front)];
  DedupHit result;
  result.version = entry.version;
  result.positions = entry.points;
  result.beacon_ids = entry.beacon_ids;
  result.acked = entry.version <= deployment.last_acked;
  return result;
}

bool MutationLog::dedup_complete(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = deployments_.find(name);
  // An unknown deployment has no id history at all, which is (vacuously)
  // complete.
  return it == deployments_.end() || it->second->dedup_complete;
}

std::uint64_t MutationLog::version(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = deployments_.find(name);
  return it == deployments_.end() ? 0 : it->second->version;
}

std::uint64_t MutationLog::last_acked(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = deployments_.find(name);
  return it == deployments_.end() ? 0 : it->second->last_acked;
}

void MutationLog::record_acked(const std::string& name,
                               std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = deployments_.find(name);
  if (it == deployments_.end()) return;
  if (version > it->second->last_acked) it->second->last_acked = version;
}

MutationLog::Snapshot MutationLog::snapshot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = deployments_.find(name);
  ABP_CHECK(it != deployments_.end(), "unknown deployment: " + name);
  Deployment& deployment = *it->second;
  if (deployment.text_dirty) {
    std::ostringstream os;
    write_field(os, deployment.field);
    deployment.text = os.str();
    deployment.text_dirty = false;
  }
  return {deployment.text, deployment.version};
}

std::optional<std::vector<MutationLog::Entry>> MutationLog::suffix(
    const std::string& name, std::uint64_t have_version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = deployments_.find(name);
  if (it == deployments_.end()) return std::nullopt;
  const Deployment& deployment = *it->second;
  std::vector<Entry> out;
  if (have_version >= deployment.version) return out;  // current (or ahead)
  // Replay is possible only if every version in (have_version, version] is
  // retained — the oldest retained entry must be have_version + 1 or older.
  if (deployment.entries.empty() ||
      deployment.entries.front().version > have_version + 1) {
    return std::nullopt;
  }
  for (const Entry& entry : deployment.entries) {
    if (entry.version > have_version) out.push_back(entry);
  }
  return out;
}

std::vector<std::string> MutationLog::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(deployments_.size());
  for (const auto& [name, unused] : deployments_) out.push_back(name);
  return out;
}

}  // namespace abp::cluster
