#include "cluster/backend_pool.h"

#include <chrono>
#include <optional>
#include <utility>

#include "common/assert.h"
#include "serve/tcp_transport.h"

namespace abp::cluster {

namespace {

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* backend_health_name(BackendHealth health) {
  switch (health) {
    case BackendHealth::kClosed: return "closed";
    case BackendHealth::kProbing: return "probing";
    case BackendHealth::kOpen: return "open";
  }
  return "unknown";
}

std::pair<std::string, std::uint16_t> parse_backend_address(
    const std::string& backend) {
  const auto colon = backend.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == backend.size()) {
    throw serve::ServeError("backend must be host:port, got '" + backend +
                            "'");
  }
  const std::string host = backend.substr(0, colon);
  const std::string port_text = backend.substr(colon + 1);
  unsigned long port = 0;
  try {
    std::size_t pos = 0;
    port = std::stoul(port_text, &pos);
    if (pos != port_text.size()) throw std::invalid_argument(port_text);
  } catch (const std::exception&) {
    throw serve::ServeError("bad backend port in '" + backend + "'");
  }
  if (port == 0 || port > 0xFFFF) {
    throw serve::ServeError("backend port out of range in '" + backend + "'");
  }
  return {host, static_cast<std::uint16_t>(port)};
}

BackendPool::BackendPool(std::vector<std::string> backends,
                         BackendPoolOptions options,
                         serve::RouterMetrics& metrics,
                         TransportFactory factory)
    : options_(std::move(options)),
      metrics_(&metrics),
      factory_(std::move(factory)) {
  ABP_CHECK(!backends.empty(), "backend pool needs at least one backend");
  ABP_CHECK(options_.failure_threshold >= 1,
            "failure threshold must be at least 1");
  if (!factory_) {
    const double timeout_s = options_.connect_timeout_s;
    factory_ = [timeout_s](const std::string& backend)
        -> std::unique_ptr<serve::ClientTransport> {
      const auto [host, port] = parse_backend_address(backend);
      return std::make_unique<serve::TcpClientTransport>(host, port,
                                                         timeout_s);
    };
  }
  for (std::string& name : backends) {
    metrics_->add_backend(name);
    auto backend = std::make_unique<Backend>();
    backend->name = name;
    backends_.emplace(std::move(name), std::move(backend));
  }
}

BackendPool::~BackendPool() { stop(); }

double BackendPool::now_ms() const {
  return options_.clock_ms ? options_.clock_ms() : steady_now_ms();
}

void BackendPool::set_recovery_callback(
    std::function<void(const std::string&)> callback) {
  ABP_CHECK(!started_, "set the recovery callback before start()");
  recovery_ = std::move(callback);
}

void BackendPool::start() {
  std::lock_guard<std::mutex> state(state_mu_);
  if (started_) return;
  started_ = true;
  std::lock_guard<std::mutex> map(map_mu_);
  for (auto& [name, backend] : backends_) {
    Backend* b = backend.get();
    b->worker = std::thread([this, b] { worker_loop(*b); });
  }
}

void BackendPool::stop() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!started_ || stopping()) return;
    stopping_.store(true, std::memory_order_release);
  }
  // Collect under map_mu_, join without it: a worker's final batch may run
  // callbacks that re-enter enqueue() (which takes map_mu_), so holding the
  // map lock across the joins would deadlock. remove_backend() refuses once
  // stopping_ is set, so the pointers stay valid through the joins.
  std::vector<Backend*> live;
  {
    std::lock_guard<std::mutex> map(map_mu_);
    live.reserve(backends_.size());
    for (auto& [name, backend] : backends_) live.push_back(backend.get());
  }
  for (Backend* backend : live) {
    {
      std::lock_guard<std::mutex> lock(backend->mu);
    }
    backend->cv.notify_all();
  }
  for (Backend* backend : live) {
    if (backend->worker.joinable()) backend->worker.join();
  }
}

bool BackendPool::add_backend(const std::string& backend) {
  std::lock_guard<std::mutex> state(state_mu_);
  std::lock_guard<std::mutex> map(map_mu_);
  if (stopping() || backends_.count(backend) != 0) return false;
  metrics_->add_backend(backend);
  auto b = std::make_unique<Backend>();
  b->name = backend;
  Backend* raw = b.get();
  backends_.emplace(backend, std::move(b));
  if (started_) {
    raw->worker = std::thread([this, raw] { worker_loop(*raw); });
  }
  return true;
}

bool BackendPool::remove_backend(const std::string& backend) {
  std::unique_ptr<Backend> victim;
  {
    std::lock_guard<std::mutex> state(state_mu_);
    std::lock_guard<std::mutex> map(map_mu_);
    // Once a stop() is in flight it owns every worker join; racing it with
    // a removal would double-join. Shutdown supersedes membership anyway.
    if (stopping()) return false;
    const auto it = backends_.find(backend);
    if (it == backends_.end()) return false;
    victim = std::move(it->second);
    backends_.erase(it);
  }
  // Out of the map, no new work can arrive; tell the worker to finish its
  // in-flight batch and exit, then fail whatever it left queued.
  {
    std::lock_guard<std::mutex> lock(victim->mu);
    victim->retiring = true;
  }
  victim->cv.notify_all();
  if (victim->worker.joinable()) victim->worker.join();
  {
    std::unique_lock<std::mutex> lock(victim->mu);
    drain_queue(*victim, lock);
  }
  return true;
}

bool BackendPool::queue_idle(const std::string& backend) const {
  std::lock_guard<std::mutex> map(map_mu_);
  const auto it = backends_.find(backend);
  if (it == backends_.end()) return true;
  std::lock_guard<std::mutex> lock(it->second->mu);
  return it->second->queue.empty() && !it->second->busy;
}

bool BackendPool::enqueue(const std::string& backend, Forward forward) {
  std::lock_guard<std::mutex> map(map_mu_);
  const auto it = backends_.find(backend);
  if (it == backends_.end()) return false;
  Backend& b = *it->second;
  {
    std::lock_guard<std::mutex> lock(b.mu);
    if (stopping() || b.retiring || b.health == BackendHealth::kOpen) {
      return false;
    }
    b.queue.push_back(std::move(forward));
  }
  b.cv.notify_one();
  return true;
}

void BackendPool::tick() {
  const double now = now_ms();
  std::lock_guard<std::mutex> map(map_mu_);
  for (auto& [name, backend] : backends_) {
    Backend& b = *backend;
    bool notify = false;
    {
      std::lock_guard<std::mutex> lock(b.mu);
      if (b.probe_pending || b.health == BackendHealth::kProbing) continue;
      if (now - b.last_probe_ms < options_.probe_interval_ms) continue;
      b.last_probe_ms = now;
      b.probe_pending = true;
      // An open breaker goes half-open while the probe decides; a closed
      // backend keeps serving while its liveness check rides the queue.
      if (b.health == BackendHealth::kOpen) {
        b.health = BackendHealth::kProbing;
      }
      notify = true;
    }
    if (notify) b.cv.notify_one();
  }
}

BackendHealth BackendPool::health(const std::string& backend) const {
  std::lock_guard<std::mutex> map(map_mu_);
  const auto it = backends_.find(backend);
  // A removed backend and a down backend answer the same question the same
  // way: nothing routes here.
  if (it == backends_.end()) return BackendHealth::kOpen;
  std::lock_guard<std::mutex> lock(it->second->mu);
  return it->second->health;
}

std::vector<std::string> BackendPool::backends() const {
  std::lock_guard<std::mutex> map(map_mu_);
  std::vector<std::string> names;
  names.reserve(backends_.size());
  for (const auto& [name, unused] : backends_) names.push_back(name);
  return names;
}

void BackendPool::worker_loop(Backend& backend) {
  for (;;) {
    std::vector<Forward> batch;
    bool probe = false;
    {
      std::unique_lock<std::mutex> lock(backend.mu);
      backend.cv.wait(lock, [this, &backend] {
        return stopping() || backend.retiring || !backend.queue.empty() ||
               backend.probe_pending;
      });
      if (stopping() || backend.retiring) {
        drain_queue(backend, lock);
        return;
      }
      probe = backend.probe_pending;
      backend.probe_pending = false;
      while (!backend.queue.empty()) {
        batch.push_back(std::move(backend.queue.front()));
        backend.queue.pop_front();
      }
      backend.busy = probe || !batch.empty();
    }
    if (probe) run_probe(backend);
    if (!batch.empty()) run_batch(backend, std::move(batch));
    {
      std::lock_guard<std::mutex> lock(backend.mu);
      backend.busy = false;
    }
  }
}

void BackendPool::drain_queue(Backend& backend,
                              std::unique_lock<std::mutex>& lock) {
  std::deque<Forward> orphans;
  orphans.swap(backend.queue);
  lock.unlock();
  for (Forward& forward : orphans) {
    if (forward.on_failure) forward.on_failure();
  }
  lock.lock();
}

void BackendPool::record_success_locked(Backend& backend) {
  backend.consecutive_failures = 0;
  backend.health = BackendHealth::kClosed;
}

void BackendPool::record_failure_locked(Backend& backend,
                                        std::unique_lock<std::mutex>& lock) {
  ++backend.consecutive_failures;
  if (backend.health == BackendHealth::kProbing) {
    // Failed liveness check on a half-open breaker: straight back to open
    // (already counted as marked-down when it first tripped).
    backend.health = BackendHealth::kOpen;
    drain_queue(backend, lock);
  } else if (backend.health == BackendHealth::kClosed &&
             backend.consecutive_failures >= options_.failure_threshold) {
    backend.health = BackendHealth::kOpen;
    metrics_->record_marked_down(backend.name);
    // In-flight work already failed via its own callbacks; everything still
    // queued is answered now, as retryable, instead of waiting for a
    // backend that is gone.
    drain_queue(backend, lock);
  }
}

bool BackendPool::run_probe(Backend& backend) {
  serve::Request probe;
  probe.endpoint = serve::Endpoint::kStats;
  bool ok = false;
  try {
    if (!backend.transport) backend.transport = factory_(backend.name);
    const serve::Response response = backend.transport->roundtrip(probe);
    // Any well-formed response proves the backend is serving frames; the
    // status itself (e.g. overloaded) is not a liveness failure.
    (void)response;
    ok = true;
  } catch (const serve::ServeError&) {
    backend.transport.reset();
  }
  metrics_->record_probe(backend.name, ok);
  bool recovered = false;
  {
    std::unique_lock<std::mutex> lock(backend.mu);
    if (ok) {
      recovered = backend.health != BackendHealth::kClosed;
      record_success_locked(backend);
      if (recovered) metrics_->record_recovered(backend.name);
    } else {
      record_failure_locked(backend, lock);
    }
  }
  if (recovered && recovery_) recovery_(backend.name);
  return ok;
}

bool BackendPool::run_batch(Backend& backend, std::vector<Forward> batch) {
  // vector<char>, not vector<bool>: the loopback transport may run reply
  // callbacks concurrently on server worker threads, and packed bits would
  // make writes to neighbouring entries race.
  std::vector<char> done(batch.size(), 0);
  bool transport_ok = true;
  try {
    if (!backend.transport) backend.transport = factory_(backend.name);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      backend.transport->send_async(
          batch[i].request, [&batch, &done, i](std::string frame) {
            // The transport hands back the encoded response frame; unwrap
            // it so the router deals in payloads end to end.
            serve::FrameDecoder decoder;
            decoder.feed(frame);
            std::optional<std::string> payload = decoder.next();
            done[i] = 1;
            if (payload) {
              if (batch[i].on_reply) batch[i].on_reply(std::move(*payload));
            } else if (batch[i].on_failure) {
              batch[i].on_failure();
            }
          });
    }
    backend.transport->flush();
  } catch (const serve::ServeError&) {
    transport_ok = false;
    backend.transport.reset();
  }
  if (!transport_ok) {
    metrics_->record_transport_failure(backend.name);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!done[i] && batch[i].on_failure) batch[i].on_failure();
    }
  }
  {
    std::unique_lock<std::mutex> lock(backend.mu);
    if (transport_ok) {
      record_success_locked(backend);
    } else {
      record_failure_locked(backend, lock);
    }
  }
  return transport_ok;
}

}  // namespace abp::cluster
