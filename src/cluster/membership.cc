#include "cluster/membership.h"

#include <chrono>
#include <condition_variable>
#include <thread>
#include <utility>

#include "cluster/backend_pool.h"
#include "cluster/replicator.h"
#include "serve/metrics.h"

namespace abp::cluster {

namespace {

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* member_state_name(MemberState state) {
  switch (state) {
    case MemberState::kJoining: return "joining";
    case MemberState::kActive: return "active";
    case MemberState::kDraining: return "draining";
  }
  return "unknown";
}

// ---- MembershipTable ----------------------------------------------------

MembershipTable::MembershipTable(std::vector<std::string> active,
                                 std::size_t vnodes)
    : vnodes_(vnodes ? vnodes : 1) {
  for (std::string& backend : active) {
    members_.emplace(std::move(backend), MemberState::kActive);
  }
  std::lock_guard<std::mutex> lock(mu_);
  publish_locked();
}

void MembershipTable::publish_locked() {
  auto view = std::make_shared<MembershipView>();
  view->epoch = epoch_;
  view->ring = HashRing(vnodes_);
  view->members = members_;
  for (const auto& [backend, state] : members_) {
    if (state == MemberState::kActive) view->ring.add_node(backend);
  }
  view_ = std::move(view);
}

std::shared_ptr<const MembershipView> MembershipTable::view() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

std::uint64_t MembershipTable::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::size_t MembershipTable::count(MemberState state) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [backend, s] : members_) {
    if (s == state) ++n;
  }
  return n;
}

bool MembershipTable::begin_join(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  if (members_.count(backend) != 0) return false;
  members_.emplace(backend, MemberState::kJoining);
  publish_locked();  // same epoch: the ring is unchanged
  return true;
}

bool MembershipTable::activate(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = members_.find(backend);
  if (it == members_.end() || it->second != MemberState::kJoining) {
    return false;
  }
  it->second = MemberState::kActive;
  ++epoch_;
  publish_locked();
  return true;
}

bool MembershipTable::begin_drain(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = members_.find(backend);
  if (it == members_.end() || it->second != MemberState::kActive) {
    return false;
  }
  std::size_t active = 0;
  for (const auto& [name, state] : members_) {
    if (state == MemberState::kActive) ++active;
  }
  if (active <= 1) return false;  // the ring must never go empty
  it->second = MemberState::kDraining;
  ++epoch_;
  publish_locked();
  return true;
}

bool MembershipTable::remove(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = members_.find(backend);
  if (it == members_.end() || it->second == MemberState::kActive) {
    return false;
  }
  members_.erase(it);
  publish_locked();  // same epoch: joiners/drainers were not in the ring
  return true;
}

// ---- MembershipController -----------------------------------------------

AdminResult AdminResult::failure(serve::Status status, std::string message) {
  AdminResult result;
  result.ok = false;
  result.status = status;
  result.message = std::move(message);
  return result;
}

AdminResult AdminResult::success(std::string text) {
  AdminResult result;
  result.ok = true;
  result.status = serve::Status::kOk;
  result.text = std::move(text);
  return result;
}

MembershipController::MembershipController(MembershipTable& table,
                                           BackendPool& pool,
                                           Replicator& replicator,
                                           serve::RouterMetrics& metrics,
                                           Options options)
    : table_(&table),
      pool_(&pool),
      replicator_(&replicator),
      metrics_(&metrics),
      options_(std::move(options)) {
  if (options_.handoff_rounds == 0) options_.handoff_rounds = 1;
  publish_metrics();
}

void MembershipController::set_write_fence(
    std::function<void(const std::function<void()>&)> fence) {
  fence_ = std::move(fence);
}

void MembershipController::set_invalidate(
    std::function<void(const std::string&)> invalidate) {
  invalidate_ = std::move(invalidate);
}

double MembershipController::now_ms() const {
  return options_.clock_ms ? options_.clock_ms() : steady_now_ms();
}

void MembershipController::publish_metrics() const {
  metrics_->set_membership(table_->epoch(),
                           table_->count(MemberState::kActive),
                           table_->count(MemberState::kJoining),
                           table_->count(MemberState::kDraining));
}

void MembershipController::run_fenced(const std::function<void()>& fn) {
  if (fence_) {
    fence_(fn);
  } else {
    fn();
  }
}

void MembershipController::invalidate(const std::string& deployment) {
  if (invalidate_) invalidate_(deployment);
}

std::uint64_t MembershipController::install_blocking(
    const std::string& backend, const std::string& name) {
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
  };
  auto latch = std::make_shared<Latch>();
  BackendPool::Forward forward;
  forward.request = replicator_->install_request(name);
  const std::uint64_t version = forward.request.version;
  forward.on_reply = [latch](std::string payload) {
    const auto response = serve::parse_response(payload);
    std::lock_guard<std::mutex> lock(latch->mu);
    latch->ok = response && response->status == serve::Status::kOk;
    latch->done = true;
    latch->cv.notify_all();
  };
  forward.on_failure = [latch] {
    std::lock_guard<std::mutex> lock(latch->mu);
    latch->done = true;
    latch->cv.notify_all();
  };
  if (!pool_->enqueue(backend, std::move(forward))) return 0;
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&latch] { return latch->done; });
  return latch->ok ? version : 0;
}

std::uint64_t MembershipController::replay_blocking(
    const std::string& backend, const std::string& name,
    std::uint64_t have_version) {
  const auto entries = replicator_->log().suffix(name, have_version);
  if (!entries) {
    // The gap outran the retained window — one snapshot truncates it.
    const std::uint64_t version = install_blocking(backend, name);
    if (version != 0) metrics_->record_handoff_snapshot();
    return version;
  }
  if (entries->empty()) return have_version;  // already current
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t outstanding = 0;
    std::size_t ok = 0;
  };
  auto latch = std::make_shared<Latch>();
  std::size_t sent = 0;
  std::uint64_t reached = have_version;
  for (const MutationLog::Entry& entry : *entries) {
    BackendPool::Forward forward;
    forward.request = replicator_->mutate_request(name, entry);
    forward.on_reply = [latch](std::string payload) {
      const auto response = serve::parse_response(payload);
      std::lock_guard<std::mutex> lock(latch->mu);
      if (response && response->status == serve::Status::kOk) ++latch->ok;
      --latch->outstanding;
      latch->cv.notify_all();
    };
    forward.on_failure = [latch] {
      std::lock_guard<std::mutex> lock(latch->mu);
      --latch->outstanding;
      latch->cv.notify_all();
    };
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      ++latch->outstanding;
    }
    if (!pool_->enqueue(backend, std::move(forward))) {
      std::lock_guard<std::mutex> lock(latch->mu);
      --latch->outstanding;
      break;
    }
    ++sent;
    reached = entry.version;
  }
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&latch] { return latch->outstanding == 0; });
  if (sent == 0 || latch->ok != sent) return 0;
  metrics_->record_handoff_replay();
  return reached;
}

AdminResult MembershipController::add(const std::string& backend) {
  std::lock_guard<std::mutex> admin(admin_mu_);
  if (backend.empty()) {
    return AdminResult::failure(serve::Status::kBadRequest,
                                "admin add needs a backend address");
  }
  if (!pool_->add_backend(backend)) {
    return AdminResult::failure(
        serve::Status::kBadRequest,
        "backend '" + backend + "' is already pooled");
  }
  if (!table_->begin_join(backend)) {
    pool_->remove_backend(backend);
    return AdminResult::failure(
        serve::Status::kBadRequest,
        "backend '" + backend + "' is already a member");
  }
  publish_metrics();

  // The transfer plan is a pure function of (old ring, new ring, names):
  // restart the controller and it computes the identical handoff.
  const auto before = table_->view();
  HashRing next = before->ring;
  next.add_node(backend);
  const std::vector<std::string> names = replicator_->names();
  const std::vector<HashRing::Transfer> transfers = HashRing::transfer_set(
      before->ring, next, names, replicator_->replication());
  std::vector<std::string> gained;
  for (const HashRing::Transfer& transfer : transfers) {
    if (transfer.gained_by(backend)) gained.push_back(transfer.key);
  }

  const auto rollback = [&](const std::string& why) {
    table_->remove(backend);
    pool_->remove_backend(backend);
    publish_metrics();
    return AdminResult::failure(serve::Status::kUnavailable, why);
  };

  // Phase 1: full snapshots of everything the joiner will own.
  std::size_t snapshots = 0;
  std::size_t replays = 0;
  std::map<std::string, std::uint64_t> shipped;  // deployment → version
  for (const std::string& name : gained) {
    const std::uint64_t version = install_blocking(backend, name);
    if (version == 0) {
      return rollback("handoff snapshot of '" + name + "' to '" + backend +
                      "' failed; join rolled back");
    }
    metrics_->record_handoff_snapshot();
    ++snapshots;
    shipped[name] = version;
  }
  // Phase 2: chase the write stream without blocking it — replay the
  // suffix that accumulated behind each snapshot, a bounded number of
  // rounds, so the fenced flip below has almost nothing left to ship.
  for (std::size_t round = 0; round < options_.handoff_rounds; ++round) {
    bool current = true;
    for (auto& [name, version] : shipped) {
      if (replicator_->version(name) == version) continue;
      current = false;
      const std::uint64_t reached =
          replay_blocking(backend, name, version);
      if (reached == 0) {
        return rollback("handoff replay of '" + name + "' to '" + backend +
                        "' failed; join rolled back");
      }
      if (reached > version) ++replays;
      version = reached;
    }
    if (current) break;
  }
  // Phase 3: the atomic flip. Writes are fenced out, so one final replay
  // makes the joiner version-current; then activate (epoch bump) and drop
  // every remapped deployment's cached responses in the same critical
  // section — no request ever sees the new ring with a pre-flip cache.
  bool flipped = false;
  std::string flip_error;
  run_fenced([&] {
    for (auto& [name, version] : shipped) {
      if (replicator_->version(name) == version) continue;
      const std::uint64_t reached = replay_blocking(backend, name, version);
      if (reached == 0 || replicator_->version(name) != reached) {
        flip_error = "final catch-up of '" + name + "' on '" + backend +
                     "' failed; join rolled back";
        return;
      }
      ++replays;
      version = reached;
    }
    table_->activate(backend);
    for (const HashRing::Transfer& transfer : transfers) {
      invalidate(transfer.key);
    }
    flipped = true;
  });
  if (!flipped) return rollback(flip_error);
  publish_metrics();

  std::string text = "abp-membership 1\n";
  text += "epoch " + std::to_string(table_->epoch()) + '\n';
  text += "added " + backend + '\n';
  text += "snapshots " + std::to_string(snapshots) + '\n';
  text += "replays " + std::to_string(replays) + '\n';
  return AdminResult::success(std::move(text));
}

AdminResult MembershipController::drain(const std::string& backend) {
  std::lock_guard<std::mutex> admin(admin_mu_);
  if (backend.empty()) {
    return AdminResult::failure(serve::Status::kBadRequest,
                                "admin drain needs a backend address");
  }
  const auto before = table_->view();
  const auto member = before->members.find(backend);
  if (member == before->members.end()) {
    return AdminResult::failure(serve::Status::kNotFound,
                                "unknown backend '" + backend + "'");
  }
  if (member->second != MemberState::kActive) {
    return AdminResult::failure(
        serve::Status::kBadRequest,
        "backend '" + backend + "' is " +
            member_state_name(member->second) + ", not active");
  }
  HashRing next = before->ring;
  next.remove_node(backend);
  if (next.node_count() == 0) {
    return AdminResult::failure(serve::Status::kBadRequest,
                                "cannot drain the last active backend");
  }
  const std::vector<HashRing::Transfer> transfers = HashRing::transfer_set(
      before->ring, next, replicator_->names(),
      replicator_->replication());

  // Flip first: new work stops routing here the instant the epoch bumps,
  // and the remapped deployments' cache entries die in the same fenced
  // section. In-flight work already sits in the backend's FIFO.
  run_fenced([&] {
    table_->begin_drain(backend);
    for (const HashRing::Transfer& transfer : transfers) {
      invalidate(transfer.key);
    }
  });
  publish_metrics();

  // Hand off the ranges it owned: every owner that *gained* a deployment
  // gets a fresh snapshot. A dead gaining owner is skipped — the version
  // fence and breaker-recovery resync heal it when it returns.
  std::size_t snapshots = 0;
  for (const HashRing::Transfer& transfer : transfers) {
    for (const std::string& owner : transfer.new_owners) {
      if (!transfer.gained_by(owner)) continue;
      if (install_blocking(owner, transfer.key) != 0) {
        metrics_->record_handoff_snapshot();
        ++snapshots;
      }
    }
  }

  // Let the in-flight FIFO empty through the pool. Idle must hold for a
  // few consecutive polls so a just-dequeued batch still counts. The
  // iteration cap keeps an injected manual clock from spinning forever.
  const double deadline = now_ms() + options_.drain_timeout_ms;
  int stable = 0;
  for (long iteration = 0; stable < 3 && iteration < 100000; ++iteration) {
    if (pool_->queue_idle(backend)) {
      ++stable;
    } else {
      stable = 0;
    }
    if (now_ms() >= deadline) break;
    if (stable < 3) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  table_->remove(backend);
  pool_->remove_backend(backend);
  publish_metrics();

  std::string text = "abp-membership 1\n";
  text += "epoch " + std::to_string(table_->epoch()) + '\n';
  text += "drained " + backend + '\n';
  text += "snapshots " + std::to_string(snapshots) + '\n';
  return AdminResult::success(std::move(text));
}

AdminResult MembershipController::status() const {
  // Lock-free on purpose: status must answer *during* a long handoff, so
  // it reads the published view instead of waiting on admin_mu_.
  const auto view = table_->view();
  std::string text = "abp-membership 1\n";
  text += "epoch " + std::to_string(view->epoch) + '\n';
  for (const auto& [name, state] : view->members) {
    text += "member " + name + ' ' + member_state_name(state) + ' ' +
            backend_health_name(pool_->health(name)) + '\n';
  }
  text += "handoff-snapshots " +
          std::to_string(metrics_->handoff_snapshots()) + '\n';
  text += "handoff-replays " +
          std::to_string(metrics_->handoff_replays()) + '\n';
  return AdminResult::success(std::move(text));
}

}  // namespace abp::cluster
