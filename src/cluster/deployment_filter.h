/// \file deployment_filter.h
/// \brief Compact membership filter over deployment names (DESIGN.md §12).
///
/// A router fronting many backends sees a long tail of requests naming
/// deployments that do not exist (typos, decommissioned fields, probing).
/// Before this filter every one of them cost the authoritative registry
/// lookup; the filter answers "definitely not deployed" from a few bits
/// per name so the router can reject unknown deployments locally.
///
/// Standard bloom-filter contract: `may_contain` is *one-sided* — false
/// means the name was not in the set the filter was last rebuilt from
/// (answer `not-found` locally); true may be a false positive, so the
/// caller always falls through to the authoritative check. The router's
/// correctness therefore never depends on the filter; only the fast path
/// does. Rebuilt from the full name set on every deployment change
/// (`Replicator::set_deployment`) — names are few and rebuilds are cheap,
/// which buys the simplest possible no-deletion design.
///
/// Hashing is `stable_hash64` double-hashing (h1 + i*h2), so filter
/// behavior — including which names false-positive — is deterministic
/// across runs and platforms; tests exploit that to pin the
/// false-positive-falls-through path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace abp::cluster {

struct DeploymentFilterParams {
  std::size_t bits_per_name = 10;  ///< ~1% false positives at 4 hashes
  std::size_t hashes = 4;
};

class DeploymentFilter {
 public:
  using Params = DeploymentFilterParams;

  /// Empty filter: `may_contain` is false for every name.
  DeploymentFilter() = default;

  /// Rebuild from the complete current name set. Not thread-safe; callers
  /// publish a freshly built filter behind their own lock.
  void rebuild(const std::vector<std::string>& names, Params params = {});

  /// False ⇒ `name` was definitely absent at the last rebuild. True ⇒
  /// probably present — the caller must still consult the registry.
  bool may_contain(std::string_view name) const;

  std::size_t bit_count() const { return bit_count_; }
  std::size_t name_count() const { return name_count_; }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bit_count_ = 0;
  std::size_t hash_count_ = 0;
  std::size_t name_count_ = 0;
};

}  // namespace abp::cluster
