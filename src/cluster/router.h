/// \file router.h
/// \brief Cluster request router: a `FrameSink` that forwards instead of
/// executing.
///
/// The router terminates client connections with the exact same transport
/// machinery as a single server — `make_server_transport` accepts any
/// `FrameSink`, and `Router` is one — so `abp query` speaks to a cluster
/// without knowing it. Per submitted payload:
///
///  * Router-local endpoints (`EndpointTraits::router_local`: stats,
///    list-fields) are answered locally (router metrics, the replicator's
///    deployment registry) — quota-exempt, so a loaded router stays
///    introspectable.
///  * With quotas on, every other request first spends a token from its
///    principal's bucket; an empty bucket sheds retryable `overloaded`
///    with a `retry-after` hint from that principal's own refill deficit.
///  * Requests naming a deployment the membership filter proves absent are
///    answered `not-found` locally (`Replicator::possibly_deployed`); a
///    filter false positive falls through to the authoritative registry
///    and gets the identical answer, one lookup slower.
///  * Cacheable endpoints (`EndpointTraits::cacheable`) consult the
///    version-fenced response cache: a hit at the current read fence is
///    answered from memory, byte-identical to the forwarded response it
///    was stored from; a quorum-acked write invalidates the deployment's
///    entries *before* the write ack fires (read-your-writes).
///  * Everything else is routed by deployment name: the consistent-hash
///    ring yields the replica preference order, the request is stamped with
///    the router's snapshot version, and it is forwarded to the first
///    replica whose breaker admits it.
///
/// Retry semantics, in order of what can go wrong:
///
///  * **Breaker refuses** (backend marked down): the next replica is tried
///    — the request never left the router, so this is always safe. No live
///    replica ⇒ retryable `unavailable` with a retry-after hint.
///  * **Transport dies mid-request**: the request may or may not have
///    executed. Idempotent endpoints (everything but `add-beacon`) fail
///    over to the next replica; `add-beacon` is answered `unavailable` and
///    the client decides.
///  * **Backend answers `version-mismatch`** (stale snapshot): the router
///    enqueues a fresh install followed by the original request on the
///    same backend FIFO — per-backend ordering guarantees the install
///    lands first. One repair per request; a second mismatch is forwarded
///    to the client as the retryable status it is.
///  * **Backend answers `unavailable`** (backend shutting down): treated
///    like a transport failure — fail over if idempotent.
///
/// `overloaded` and `deadline-exceeded` pass through untouched: the backend
/// answered authoritatively and the client's retry policy owns backoff.
/// Responses are re-encoded with the version record stripped, which makes
/// a routed response byte-identical to a direct single-server one.
///
/// **Writes** (`add-beacon`) take a different path: the router is the
/// deterministic primary for every deployment it fronts. The write is
/// validated exactly as a backend would, appended to the replicator's
/// mutation log (assigning the next per-deployment version and the same
/// clamped positions/beacon ids every replica will compute), fanned out to
/// all ring owners as version-fenced `mutate` requests, and acknowledged to
/// the client — with a response synthesized from the deterministic apply,
/// byte-identical to a direct server's — only once a quorum of owners has
/// acked. A replica answering `version-mismatch` gets the install-then-retry
/// repair (once per replica per write); a quorum that becomes impossible is
/// answered retryable `unavailable` (the write stays logged and converges to
/// the replicas). Reads are fenced at the last *acked* version, giving
/// read-your-writes without ever fencing on an in-flight write.
///
/// **Exactly-once writes** (DESIGN.md §11): a write carrying a `request-id`
/// is checked against the mutation log's dedup index before anything is
/// appended. A hit on an already-acked entry answers the original ack
/// immediately; a hit on an entry whose quorum was lost re-fans the *logged*
/// entry out (same version, same points — replicas ack idempotently) and
/// answers the original ack at quorum, so the client's retry completes the
/// first write instead of minting a second one. An unknown id on a retry
/// (attempt > 0) after the index has evicted anything is answered terminal
/// `dedup-expired` — never silently re-appended.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "cluster/backend_pool.h"
#include "cluster/membership.h"
#include "cluster/replicator.h"
#include "cluster/response_cache.h"
#include "cluster/ring.h"
#include "serve/frame_sink.h"
#include "serve/metrics.h"
#include "serve/quota.h"

namespace abp::cluster {

struct RouterOptions {
  /// Retry-after hint attached to router-side sheds (`unavailable`).
  std::uint32_t retry_after_hint_ms = 50;
  /// Owner acks required before a write is acknowledged to the client;
  /// 0 = majority of the deployment's owners (floor(R/2)+1). Clamped to
  /// the owner count.
  std::size_t write_quorum = 0;
  /// Request-id deduplication on the write path. Off, ids are ignored and
  /// every delivery appends — only for benchmarking the suppression win;
  /// production routers keep it on.
  bool dedup = true;
  /// Version-fenced response cache capacity for cacheable read endpoints
  /// (`--cache-entries`); 0 disables the cache (`--cache 0`).
  std::size_t cache_entries = 1024;
  /// Per-principal token-bucket quotas (`--quota-rps`/`--quota-burst`);
  /// `quota.rps == 0` disables enforcement. Router-local endpoints
  /// (stats / list-fields) are exempt so operators can always introspect
  /// a loaded router.
  serve::QuotaOptions quota;
  /// Injectable monotonic clock (milliseconds); defaults to steady_clock.
  std::function<double()> clock_ms;
  /// Membership admin plane (`abp route-admin`): `--admin 0` rejects the
  /// `admin` endpoint outright on routers that must stay immutable.
  bool admin = true;
  /// Suffix catch-up rounds a joiner gets before the fenced activation.
  std::size_t handoff_rounds = 4;
  /// Upper bound on the drain path's wait for a victim's FIFO to empty.
  double drain_timeout_ms = 5000.0;
};

class Router final : public serve::FrameSink {
 public:
  using Options = RouterOptions;

  /// Placement follows `membership`'s published view, which the router's
  /// own admin plane may flip while serving — the write path reads one
  /// view per write under `write_mu_`, and membership flips run inside
  /// that same mutex, so every write belongs to exactly one ring epoch.
  Router(MembershipTable& membership, BackendPool& pool,
         Replicator& replicator, serve::RouterMetrics& metrics,
         Options options = {});

  /// The membership controller behind the `admin` endpoint (tests and the
  /// CLI may drive it directly).
  MembershipController& membership_controller() { return *admin_; }

  void submit(std::string payload,
              std::function<void(std::string)> reply) override;
  void shed_overloaded(std::string payload,
                       std::function<void(std::string)> reply,
                       const std::string& why) override;
  void record_bad_frame(std::size_t bytes_in) override;
  double now_ms() const override;

 private:
  /// Per-request routing state, owned by the callback chain. Exactly one
  /// reply reaches the client: the chain either delivers a backend
  /// response or finishes with a router-side shed.
  struct CallState {
    serve::Request request;
    std::vector<std::string> owners;  ///< replica preference order
    std::size_t next_owner = 0;       ///< index of the attempt in flight
    bool repaired = false;            ///< one version-mismatch repair spent
    /// Response-cache bookkeeping (cacheable endpoints that missed):
    /// `deliver` stores the backend's ok response under `cache_key` at the
    /// version the read was fenced at.
    bool cache_store = false;
    std::string cache_key;
    std::uint64_t cache_version = 0;
    std::function<void(std::string)> reply;
  };

  /// Per-write replication state, owned by the mutation callback chain.
  /// Exactly one reply reaches the client: the synthesized ok once `quorum`
  /// owners acked, or a retryable `unavailable` once quorum is impossible.
  struct WriteState {
    std::mutex mu;
    serve::Request mutate;           ///< the fanned-out mutation
    std::size_t quorum = 0;
    std::size_t targets = 0;         ///< owners the mutation was aimed at
    std::size_t acks = 0;            ///< guarded by mu
    std::size_t failures = 0;        ///< guarded by mu
    bool replied = false;            ///< guarded by mu
    std::set<std::string> repaired;  ///< one repair per backend; guarded by mu
    std::string ok_payload;          ///< synthesized client response
    std::function<void(std::string)> reply;
  };

  void route(std::shared_ptr<CallState> state, bool is_retry);
  void handle_reply(const std::shared_ptr<CallState>& state,
                    const std::string& backend, std::string payload);
  void handle_failure(const std::shared_ptr<CallState>& state,
                      const std::string& backend);
  void deliver(const std::shared_ptr<CallState>& state,
               const std::string& backend, serve::Response response);
  void finish_unavailable(const std::shared_ptr<CallState>& state,
                          const std::string& why);
  void answer_local(std::uint64_t seq, std::string text,
                    const std::function<void(std::string)>& reply);

  /// Membership admin plane: verb in `algorithm`, backend address in the
  /// text block. Runs synchronously on the submit thread so the response
  /// reports the completed (or rolled-back) transition.
  void handle_admin(const serve::Request& request,
                    const std::function<void(std::string)>& reply);

  /// Write path: append to the mutation log, fan the mutation out to all
  /// owners, ack the client on quorum.
  void route_write(serve::Request request,
                   std::function<void(std::string)> reply);
  void send_mutation(const std::shared_ptr<WriteState>& state,
                     const std::string& backend);
  void handle_mutation_reply(const std::shared_ptr<WriteState>& state,
                             const std::string& backend, std::string payload);
  void write_ack(const std::shared_ptr<WriteState>& state,
                 const std::string& backend);
  void write_failure(const std::shared_ptr<WriteState>& state,
                     const std::string& backend);

  MembershipTable* membership_;
  BackendPool* pool_;
  Replicator* replicator_;
  serve::RouterMetrics* metrics_;
  Options options_;
  std::unique_ptr<ResponseCache> cache_;          ///< null when disabled
  std::unique_ptr<serve::PrincipalQuotas> quotas_;  ///< null when off
  /// The admin plane, fenced on write_mu_ for its ring flips.
  std::unique_ptr<MembershipController> admin_;
  /// Serializes append + fan-out so mutations enter every backend FIFO in
  /// version order (the backends' fences would self-heal a reorder, but
  /// in-order delivery keeps the common path repair-free).
  std::mutex write_mu_;
};

}  // namespace abp::cluster
