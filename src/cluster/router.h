/// \file router.h
/// \brief Cluster request router: a `FrameSink` that forwards instead of
/// executing.
///
/// The router terminates client connections with the exact same transport
/// machinery as a single server — `make_server_transport` accepts any
/// `FrameSink`, and `Router` is one — so `abp query` speaks to a cluster
/// without knowing it. Per submitted payload:
///
///  * `stats` and `list-fields` are answered locally (router metrics, the
///    replicator's deployment registry).
///  * Everything else is routed by deployment name: the consistent-hash
///    ring yields the replica preference order, the request is stamped with
///    the router's snapshot version, and it is forwarded to the first
///    replica whose breaker admits it.
///
/// Retry semantics, in order of what can go wrong:
///
///  * **Breaker refuses** (backend marked down): the next replica is tried
///    — the request never left the router, so this is always safe. No live
///    replica ⇒ retryable `unavailable` with a retry-after hint.
///  * **Transport dies mid-request**: the request may or may not have
///    executed. Idempotent endpoints (everything but `add-beacon`) fail
///    over to the next replica; `add-beacon` is answered `unavailable` and
///    the client decides.
///  * **Backend answers `version-mismatch`** (stale snapshot): the router
///    enqueues a fresh install followed by the original request on the
///    same backend FIFO — per-backend ordering guarantees the install
///    lands first. One repair per request; a second mismatch is forwarded
///    to the client as the retryable status it is.
///  * **Backend answers `unavailable`** (backend shutting down): treated
///    like a transport failure — fail over if idempotent.
///
/// `overloaded` and `deadline-exceeded` pass through untouched: the backend
/// answered authoritatively and the client's retry policy owns backoff.
/// Responses are re-encoded with the version record stripped, which makes
/// a routed response byte-identical to a direct single-server one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cluster/backend_pool.h"
#include "cluster/replicator.h"
#include "cluster/ring.h"
#include "serve/frame_sink.h"
#include "serve/metrics.h"

namespace abp::cluster {

struct RouterOptions {
  /// Retry-after hint attached to router-side sheds (`unavailable`).
  std::uint32_t retry_after_hint_ms = 50;
  /// Injectable monotonic clock (milliseconds); defaults to steady_clock.
  std::function<double()> clock_ms;
};

class Router final : public serve::FrameSink {
 public:
  using Options = RouterOptions;

  /// The ring must not change while the router serves (placement is
  /// startup-static in this PR).
  Router(const HashRing& ring, BackendPool& pool, Replicator& replicator,
         serve::RouterMetrics& metrics, Options options = {});

  void submit(std::string payload,
              std::function<void(std::string)> reply) override;
  void shed_overloaded(std::string payload,
                       std::function<void(std::string)> reply,
                       const std::string& why) override;
  void record_bad_frame(std::size_t bytes_in) override;
  double now_ms() const override;

 private:
  /// Per-request routing state, owned by the callback chain. Exactly one
  /// reply reaches the client: the chain either delivers a backend
  /// response or finishes with a router-side shed.
  struct CallState {
    serve::Request request;
    std::vector<std::string> owners;  ///< replica preference order
    std::size_t next_owner = 0;       ///< index of the attempt in flight
    bool repaired = false;            ///< one version-mismatch repair spent
    std::function<void(std::string)> reply;
  };

  void route(std::shared_ptr<CallState> state, bool is_retry);
  void handle_reply(const std::shared_ptr<CallState>& state,
                    const std::string& backend, std::string payload);
  void handle_failure(const std::shared_ptr<CallState>& state,
                      const std::string& backend);
  void deliver(const std::shared_ptr<CallState>& state,
               const std::string& backend, serve::Response response);
  void finish_unavailable(const std::shared_ptr<CallState>& state,
                          const std::string& why);
  void answer_local(std::uint64_t seq, std::string text,
                    const std::function<void(std::string)>& reply);

  const HashRing* ring_;
  BackendPool* pool_;
  Replicator* replicator_;
  serve::RouterMetrics* metrics_;
  Options options_;
};

}  // namespace abp::cluster
