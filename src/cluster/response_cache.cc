#include "cluster/response_cache.h"

#include <utility>

#include "common/assert.h"

namespace abp::cluster {

ResponseCache::ResponseCache(std::size_t max_entries)
    : max_entries_(max_entries) {
  ABP_CHECK(max_entries_ >= 1, "response cache needs at least one entry");
}

std::string ResponseCache::key_for(const serve::Request& request) {
  serve::Request canonical = request;
  canonical.seq = 0;
  canonical.principal = 0;
  canonical.deadline_ms = 0;
  canonical.version = 0;
  canonical.request_id = 0;
  canonical.attempt = 0;
  return serve::format_request(canonical);
}

std::optional<serve::Response> ResponseCache::lookup(
    const std::string& deployment, std::uint64_t version,
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  if (it->second.deployment != deployment || it->second.version != version) {
    // Stale (the deployment moved on) or a cross-deployment key collision
    // (impossible — the key embeds the field name — but cheap to defend).
    erase_locked(it);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return it->second.response;
}

void ResponseCache::insert(const std::string& deployment,
                           std::uint64_t version, const std::string& key,
                           serve::Response response) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) erase_locked(it);
  while (entries_.size() >= max_entries_) {
    erase_locked(entries_.find(lru_.back()));
  }
  lru_.push_front(key);
  Entry entry;
  entry.deployment = deployment;
  entry.version = version;
  entry.response = std::move(response);
  entry.lru = lru_.begin();
  entries_.emplace(key, std::move(entry));
  by_deployment_[deployment].insert(key);
}

std::size_t ResponseCache::invalidate(const std::string& deployment) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_deployment_.find(deployment);
  if (it == by_deployment_.end()) return 0;
  const std::size_t dropped = it->second.size();
  for (const std::string& key : it->second) {
    const auto entry = entries_.find(key);
    lru_.erase(entry->second.lru);
    entries_.erase(entry);
  }
  by_deployment_.erase(it);
  return dropped;
}

std::size_t ResponseCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void ResponseCache::erase_locked(std::map<std::string, Entry>::iterator it) {
  auto deployment = by_deployment_.find(it->second.deployment);
  deployment->second.erase(it->first);
  if (deployment->second.empty()) by_deployment_.erase(deployment);
  lru_.erase(it->second.lru);
  entries_.erase(it);
}

}  // namespace abp::cluster
