#include "common/flags.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "common/assert.h"

namespace abp {

Flags::Flags(int argc, const char* const* argv) {
  ABP_CHECK(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string key = arg.substr(2);
    std::string value;
    const auto eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    ABP_CHECK(!key.empty(), "empty flag name");
    occurrences_[key].push_back(value);
    values_[key] = std::move(value);
  }
}

std::optional<std::string> Flags::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  used_.insert(key);
  return it->second;
}

bool Flags::has(const std::string& key) const { return raw(key).has_value(); }

std::string Flags::get_string(const std::string& key, std::string def) const {
  const auto v = raw(key);
  return v ? *v : def;
}

std::vector<std::string> Flags::get_strings(const std::string& key) const {
  const auto it = occurrences_.find(key);
  if (it == occurrences_.end()) return {};
  used_.insert(key);
  return it->second;
}

int Flags::get_int(const std::string& key, int def) const {
  const auto v = raw(key);
  if (!v) return def;
  try {
    std::size_t pos = 0;
    const int out = std::stoi(*v, &pos);
    ABP_CHECK(pos == v->size(), "trailing characters in --" + key);
    return out;
  } catch (const std::invalid_argument&) {
    ABP_CHECK(false, "flag --" + key + " expects an integer, got '" + *v + "'");
  } catch (const std::out_of_range&) {
    ABP_CHECK(false, "flag --" + key + " integer out of range: '" + *v + "'");
  }
  return def;  // unreachable
}

double Flags::get_double(const std::string& key, double def) const {
  const auto v = raw(key);
  if (!v) return def;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*v, &pos);
    ABP_CHECK(pos == v->size(), "trailing characters in --" + key);
    return out;
  } catch (const std::invalid_argument&) {
    ABP_CHECK(false, "flag --" + key + " expects a number, got '" + *v + "'");
  } catch (const std::out_of_range&) {
    ABP_CHECK(false, "flag --" + key + " number out of range: '" + *v + "'");
  }
  return def;  // unreachable
}

bool Flags::get_bool(const std::string& key, bool def) const {
  const auto v = raw(key);
  if (!v) return def;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes") return true;
  if (*v == "0" || *v == "false" || *v == "no") return false;
  ABP_CHECK(false, "flag --" + key + " expects a boolean, got '" + *v + "'");
  return def;  // unreachable
}

std::uint64_t Flags::get_u64(const std::string& key, std::uint64_t def) const {
  const auto v = raw(key);
  if (!v) return def;
  try {
    std::size_t pos = 0;
    const unsigned long long out = std::stoull(*v, &pos);
    ABP_CHECK(pos == v->size(), "trailing characters in --" + key);
    return static_cast<std::uint64_t>(out);
  } catch (const std::invalid_argument&) {
    ABP_CHECK(false, "flag --" + key + " expects an integer, got '" + *v + "'");
  } catch (const std::out_of_range&) {
    ABP_CHECK(false, "flag --" + key + " integer out of range: '" + *v + "'");
  }
  return def;  // unreachable
}

void Flags::check_unused() const {
  for (const auto& [key, value] : values_) {
    ABP_CHECK(used_.count(key) != 0, "unknown flag --" + key);
  }
}

FlagTable& FlagTable::text(const std::string& key, std::string* out) {
  bindings_.push_back([key, out](const Flags& flags) {
    *out = flags.get_string(key, *out);
  });
  return *this;
}

FlagTable& FlagTable::text_list(const std::string& key,
                                std::vector<std::string>* out) {
  bindings_.push_back([key, out](const Flags& flags) {
    std::vector<std::string> values = flags.get_strings(key);
    if (!values.empty()) *out = std::move(values);
  });
  return *this;
}

FlagTable& FlagTable::boolean(const std::string& key, bool* out) {
  bindings_.push_back([key, out](const Flags& flags) {
    *out = flags.get_bool(key, *out);
  });
  return *this;
}

FlagTable& FlagTable::number(const std::string& key, double* out) {
  bindings_.push_back([key, out](const Flags& flags) {
    *out = flags.get_double(key, *out);
  });
  return *this;
}

FlagTable& FlagTable::size(const std::string& key, std::size_t* out) {
  return size_at_least(key, 0, out);
}

FlagTable& FlagTable::size_at_least(const std::string& key, std::size_t min,
                                    std::size_t* out) {
  bindings_.push_back([key, min, out](const Flags& flags) {
    const int value = flags.get_int(key, static_cast<int>(*out));
    ABP_CHECK(value >= 0, "--" + key + " must be non-negative");
    *out = std::max(min, static_cast<std::size_t>(value));
  });
  return *this;
}

FlagTable& FlagTable::u32(const std::string& key, std::uint32_t* out) {
  bindings_.push_back([key, out](const Flags& flags) {
    const std::uint64_t value = flags.get_u64(key, *out);
    ABP_CHECK(value <= 0xFFFFFFFFull, "--" + key + " exceeds 32 bits");
    *out = static_cast<std::uint32_t>(value);
  });
  return *this;
}

FlagTable& FlagTable::u64(const std::string& key, std::uint64_t* out) {
  bindings_.push_back([key, out](const Flags& flags) {
    *out = flags.get_u64(key, *out);
  });
  return *this;
}

FlagTable& FlagTable::port(const std::string& key, std::uint16_t* out) {
  bindings_.push_back([key, out](const Flags& flags) {
    const int value = flags.get_int(key, *out);
    ABP_CHECK(value >= 0 && value <= 65535,
              "--" + key + " must be in [0, 65535]");
    *out = static_cast<std::uint16_t>(value);
  });
  return *this;
}

void FlagTable::parse(const Flags& flags) const {
  for (const auto& binding : bindings_) binding(flags);
}

}  // namespace abp
