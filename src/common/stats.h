/// \file stats.h
/// \brief Descriptive statistics used by the evaluation harness.
///
/// The paper reports per-density means of per-field metrics with 95%
/// confidence intervals (§4.1); `Summary` and `RunningStats` provide exactly
/// those quantities. Quantiles use linear interpolation between order
/// statistics (type-7, the common spreadsheet/NumPy default).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace abp {

/// Arithmetic mean of `xs`; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double sample_stddev(std::span<const double> xs);

/// Interpolated quantile, q in [0,1]. Copies and partially sorts internally.
double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5).
double median(std::span<const double> xs);

/// Half-width of the 95% confidence interval on the mean, using the
/// Student-t critical value for small n and the normal approximation for
/// large n. Returns 0 for fewer than 2 samples.
double ci95_half_width(std::span<const double> xs);

/// Two-sided Student-t 97.5% critical value for `dof` degrees of freedom.
/// Exact table for dof <= 30, asymptotic 1.96 beyond.
double t_critical_975(std::size_t dof);

/// Full descriptive summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double ci95 = 0.0;  ///< 95% CI half-width on the mean
};

/// Compute a `Summary` over `xs` (single pass + one partial sort per
/// quantile). Empty input yields a zeroed summary.
Summary summarize(std::span<const double> xs);

/// Numerically stable streaming mean/variance (Welford). Used where storing
/// every sample would be wasteful (e.g. per-point error accumulation).
class RunningStats {
 public:
  void add(double x);
  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// 95% CI half-width on the mean.
  double ci95() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace abp
