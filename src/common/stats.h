/// \file stats.h
/// \brief Descriptive statistics used by the evaluation harness.
///
/// The paper reports per-density means of per-field metrics with 95%
/// confidence intervals (§4.1); `Summary` and `RunningStats` provide exactly
/// those quantities. Quantiles use linear interpolation between order
/// statistics (type-7, the common spreadsheet/NumPy default).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace abp {

/// Arithmetic mean of `xs`; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double sample_stddev(std::span<const double> xs);

/// Interpolated quantile, q in [0,1]. Copies and partially sorts internally.
double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5).
double median(std::span<const double> xs);

/// Half-width of the 95% confidence interval on the mean, using the
/// Student-t critical value for small n and the normal approximation for
/// large n. Returns 0 for fewer than 2 samples.
double ci95_half_width(std::span<const double> xs);

/// Two-sided Student-t 97.5% critical value for `dof` degrees of freedom.
/// Exact table for dof <= 30, asymptotic 1.96 beyond.
double t_critical_975(std::size_t dof);

/// Full descriptive summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double ci95 = 0.0;  ///< 95% CI half-width on the mean
};

/// Compute a `Summary` over `xs` (single pass + one partial sort per
/// quantile). Empty input yields a zeroed summary.
Summary summarize(std::span<const double> xs);

/// Fixed-layout histogram with log-spaced bucket boundaries.
///
/// Built for latency/throughput tracking in long-running processes: adding a
/// sample is O(log buckets) with no allocation, quantiles are approximate
/// (geometric interpolation inside a bucket, exact at the observed min/max),
/// and two histograms with the same layout merge bucket-wise — the same
/// contract a parallel reduction over `RunningStats` relies on. Values at or
/// below `lo` land in the first bucket and values at or above `hi` in the
/// last, so no sample is ever dropped.
class Histogram {
 public:
  /// Buckets span [lo, hi) with geometrically growing widths; requires
  /// 0 < lo < hi and at least one bucket.
  Histogram(double lo, double hi, std::size_t buckets);

  /// Canonical layout for request latencies in microseconds: 1 µs .. 10 s,
  /// ten buckets per decade.
  static Histogram latency_us() { return Histogram(1.0, 1e7, 70); }

  void add(double x);
  /// Merge another histogram; layouts (lo, hi, bucket count) must match.
  void merge(const Histogram& other);

  std::size_t count() const { return total_; }
  double min() const { return total_ ? min_ : 0.0; }
  double max() const { return total_ ? max_ : 0.0; }
  double mean() const;

  /// Approximate quantile, q in [0,1]: geometric interpolation within the
  /// bucket containing the target rank, clamped to the observed [min, max].
  /// 0 for an empty histogram.
  double percentile(double q) const;
  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket_value(std::size_t i) const { return counts_[i]; }
  /// Lower/upper bound of bucket `i` (upper bound of the last bucket is hi).
  double bucket_lower(std::size_t i) const;
  double bucket_upper(std::size_t i) const { return bucket_lower(i + 1); }

  bool same_layout(const Histogram& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_ &&
           counts_.size() == other.counts_.size();
  }

 private:
  std::size_t bucket_index(double x) const;

  double lo_ = 1.0;
  double hi_ = 2.0;
  double log_lo_ = 0.0;
  double log_span_ = 1.0;
  std::vector<std::uint64_t> counts_;
  std::size_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Numerically stable streaming mean/variance (Welford). Used where storing
/// every sample would be wasteful (e.g. per-point error accumulation).
class RunningStats {
 public:
  void add(double x);
  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// 95% CI half-width on the mean.
  double ci95() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace abp
