/// \file thread_pool.h
/// \brief Fixed-size worker pool with a `parallel_for` helper.
///
/// The evaluation harness runs hundreds of independent trials per
/// configuration (the paper averages over 1000 random beacon fields per
/// density); `parallel_for` distributes trial indices across workers while
/// keeping results deterministic — each index derives its own RNG stream, so
/// scheduling order cannot change any output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace abp {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means `hardware_concurrency()` (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; tasks must not throw (they run detached from callers).
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void wait_idle();

  /// Run `body(i)` for every i in [0, n) across the pool and block until
  /// done. Exceptions thrown by `body` are captured and the first one is
  /// rethrown on the calling thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace abp
