#include "common/csv.h"

#include <cmath>
#include <cstdio>

#include "common/assert.h"

namespace abp {

void CsvWriter::header(const std::vector<std::string>& names) {
  ABP_CHECK(!wrote_header_ && !wrote_data_, "header must be first");
  wrote_header_ = true;
  row(names);
  wrote_data_ = false;  // row() sets it; header does not count as data
}

void CsvWriter::begin_row() {
  ABP_CHECK(!row_open_, "previous row not ended");
  row_open_ = true;
  first_cell_ = true;
}

void CsvWriter::separator() {
  if (!first_cell_) out_ << ',';
  first_cell_ = false;
}

void CsvWriter::cell(const std::string& text) {
  ABP_CHECK(row_open_, "cell outside a row");
  separator();
  out_ << escape(text);
}

void CsvWriter::number(double value) {
  ABP_CHECK(row_open_, "cell outside a row");
  separator();
  char buf[64];
  if (std::isfinite(value) && value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", value);
  }
  out_ << buf;
}

void CsvWriter::number(std::size_t value) {
  ABP_CHECK(row_open_, "cell outside a row");
  separator();
  out_ << value;
}

void CsvWriter::end_row() {
  ABP_CHECK(row_open_, "end_row without begin_row");
  row_open_ = false;
  wrote_data_ = true;
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  begin_row();
  for (const auto& c : cells) cell(c);
  end_row();
}

std::string CsvWriter::escape(const std::string& text) {
  const bool needs_quote =
      text.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return text;
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace abp
