/// \file csv.h
/// \brief CSV writer for experiment output (`--csv` flag on every bench).
///
/// Produces RFC-4180-style CSV: fields containing commas, quotes or newlines
/// are quoted, embedded quotes doubled. Numeric cells are emitted with enough
/// precision to round-trip a double.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace abp {

class CsvWriter {
 public:
  /// Writes to `out`, which must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write a header row; may be called once, before any data row.
  void header(const std::vector<std::string>& names);

  /// Begin a new row; cells are appended with `cell`/`number`.
  void begin_row();
  void cell(const std::string& text);
  void number(double value);
  void number(std::size_t value);
  void end_row();

  /// One-shot convenience.
  void row(const std::vector<std::string>& cells);

 private:
  void separator();
  static std::string escape(const std::string& text);

  std::ostream& out_;
  bool row_open_ = false;
  bool first_cell_ = true;
  bool wrote_header_ = false;
  bool wrote_data_ = false;
};

}  // namespace abp
