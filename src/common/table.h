/// \file table.h
/// \brief ASCII table rendering for paper-style result output.
///
/// Every figure-reproduction bench prints its data series as an aligned
/// table (the textual equivalent of the paper's plot), so results are
/// readable straight from the terminal and diffable across runs.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace abp {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> columns);

  /// Append a row; must have exactly as many cells as there are columns.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows rendered with `precision` decimals.
  void add_numeric_row(const std::vector<double>& values, int precision = 4);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with a header rule and right-aligned numeric-looking cells.
  void print(std::ostream& out) const;

  /// Format a double with fixed precision (shared helper).
  static std::string fmt(double value, int precision = 4);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace abp
