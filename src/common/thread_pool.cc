#include "common/thread_pool.h"

#include <atomic>
#include <exception>

#include "common/assert.h"

namespace abp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ABP_CHECK(task != nullptr, "null task");
  {
    std::unique_lock lock(mu_);
    ABP_CHECK(!stop_, "submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const std::size_t tasks = std::min(n, thread_count());
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace abp
