/// \file flags.h
/// \brief Minimal command-line flag parsing for the bench & example binaries.
///
/// Accepts `--key value` and `--key=value` forms; anything else is a
/// positional argument. Typed getters validate and report unknown or
/// malformed flags so every reproduction binary shares uniform UX:
///
///     abp::Flags flags(argc, argv);
///     const int trials = flags.get_int("trials", 100);
///     const std::string csv = flags.get_string("csv", "");
///     flags.check_unused();  // typo protection
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace abp {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// True if `--key` was present (with or without a value).
  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, std::string def) const;
  /// Every value supplied for a repeated `--key` in command-line order;
  /// empty if the flag is absent. (The scalar getters see the last one.)
  std::vector<std::string> get_strings(const std::string& key) const;
  int get_int(const std::string& key, int def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// Throws CheckFailure naming any flag that was supplied but never read —
  /// catches typos like `--trails 100`.
  void check_unused() const;

 private:
  std::optional<std::string> raw(const std::string& key) const;

  std::string program_;
  std::map<std::string, std::string> values_;  ///< last occurrence per key
  std::map<std::string, std::vector<std::string>> occurrences_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> used_;
};

/// Declarative flag binding for config structs: describe each flag's key,
/// destination field and validation once, then `parse()` the whole table in
/// one pass. The field's current value is the default, so a config struct's
/// member initializers stay the single source of defaults:
///
///     ServeConfig config;
///     FlagTable()
///         .text("field", &config.field_path)
///         .size("workers", &config.workers)
///         .number("quota-rps", &config.quota_rps)
///         .parse(flags);
///
/// Replaces the per-config `get_size`-style helpers `ServeConfig`,
/// `QueryConfig` and `RouterConfig` each duplicated; validation beyond
/// per-flag shape (cross-flag invariants) stays in each config's
/// `validate()`. All diagnostics throw `CheckFailure` naming the flag.
class FlagTable {
 public:
  FlagTable& text(const std::string& key, std::string* out);
  /// Every occurrence of a repeated `--key`, in command-line order (absent
  /// flag leaves `*out` untouched).
  FlagTable& text_list(const std::string& key, std::vector<std::string>* out);
  FlagTable& boolean(const std::string& key, bool* out);
  FlagTable& number(const std::string& key, double* out);
  /// Non-negative integer.
  FlagTable& size(const std::string& key, std::size_t* out);
  /// Non-negative integer, clamped below at `min`.
  FlagTable& size_at_least(const std::string& key, std::size_t min,
                           std::size_t* out);
  FlagTable& u32(const std::string& key, std::uint32_t* out);
  FlagTable& u64(const std::string& key, std::uint64_t* out);
  /// TCP port in [0, 65535].
  FlagTable& port(const std::string& key, std::uint16_t* out);

  /// Read every bound flag from `flags`; throws `CheckFailure` with a
  /// flag-level diagnostic on the first malformed value.
  void parse(const Flags& flags) const;

 private:
  std::vector<std::function<void(const Flags&)>> bindings_;
};

}  // namespace abp
