/// \file metrics_snapshot.h
/// \brief Uniform point-in-time metrics snapshot: ordered name→value pairs
/// plus one text formatter.
///
/// `ServiceMetrics` and `RouterMetrics` used to render divergent, hand-
/// rolled stats bodies and grow a bespoke getter per counter; every bench
/// and script then scraped its own format. A `MetricsSnapshot` is the one
/// shape both produce: a schema line (e.g. `abp-serve-stats 1`) followed by
/// dotted counter names in a stable, producer-chosen order:
///
///     abp-serve-stats 1
///     endpoint.localize.requests 128
///     endpoint.localize.p99us 55.0
///     admission.submitted 130
///     principal.7.shed-quota 3
///
/// Counters render as integers, gauges (latency percentiles) with one
/// decimal. Consumers read values back by name (`count`/`value`), so a new
/// counter is added in exactly one place and every scraper sees it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace abp {

class MetricsSnapshot {
 public:
  explicit MetricsSnapshot(std::string schema) : schema_(std::move(schema)) {}

  /// Append a counter (rendered as an integer). Names repeat last-wins on
  /// read; producers keep them unique.
  void set_count(std::string name, std::uint64_t value);
  /// Append a gauge (rendered with one decimal, e.g. latency microseconds).
  void set_gauge(std::string name, double value);

  /// Value by exact name; `def` when absent.
  std::uint64_t count(std::string_view name, std::uint64_t def = 0) const;
  double value(std::string_view name, double def = 0.0) const;
  bool has(std::string_view name) const;

  const std::string& schema() const { return schema_; }
  const std::vector<std::pair<std::string, double>>& entries() const {
    return entries_;
  }

  /// The one text formatter: schema line, then `<name> <value>` per line.
  std::string render_text() const;

 private:
  std::string schema_;
  std::vector<std::pair<std::string, double>> entries_;
  std::vector<bool> integral_;  ///< parallel to entries_: render as integer
};

}  // namespace abp
