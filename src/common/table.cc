#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "common/assert.h"

namespace abp {

TextTable::TextTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  ABP_CHECK(!columns_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  ABP_CHECK(cells.size() == columns_.size(),
            "row width does not match column count");
  rows_.push_back(std::move(cells));
}

void TextTable::add_numeric_row(const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  return s.find_first_not_of("0123456789+-.eE%") == std::string::npos;
}
}  // namespace

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << "  ";
      const bool right = looks_numeric(cells[c]);
      out << (right ? std::right : std::left)
          << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    out << '\n';
  };
  emit(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace abp
