#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"

namespace abp {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sample_stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s2 = 0.0;
  for (double x : xs) s2 += (x - m) * (x - m);
  return std::sqrt(s2 / static_cast<double>(xs.size() - 1));
}

double quantile(std::span<const double> xs, double q) {
  ABP_CHECK(q >= 0.0 && q <= 1.0, "quantile fraction out of [0,1]");
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(lo),
                   v.end());
  const double a = v[lo];
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(hi),
                   v.end());
  const double b = v[hi];
  const double frac = pos - static_cast<double>(lo);
  return a + (b - a) * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double t_critical_975(std::size_t dof) {
  // Two-sided 95% (upper 97.5%) Student-t critical values, dof 1..30.
  static constexpr double kTable[31] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof == 0) return 0.0;
  if (dof <= 30) return kTable[dof];
  if (dof <= 40) return 2.021;
  if (dof <= 60) return 2.000;
  if (dof <= 120) return 1.980;
  return 1.960;
}

double ci95_half_width(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double sd = sample_stddev(xs);
  const double n = static_cast<double>(xs.size());
  return t_critical_975(xs.size() - 1) * sd / std::sqrt(n);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = sample_stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.median = median(xs);
  s.p90 = quantile(xs, 0.9);
  s.ci95 = ci95_half_width(xs);
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi) {
  ABP_CHECK(lo > 0.0 && hi > lo, "histogram needs 0 < lo < hi");
  ABP_CHECK(buckets >= 1, "histogram needs at least one bucket");
  log_lo_ = std::log(lo_);
  log_span_ = std::log(hi_) - log_lo_;
  counts_.assign(buckets, 0);
}

std::size_t Histogram::bucket_index(double x) const {
  if (!(x > lo_)) return 0;  // also catches NaN
  if (x >= hi_) return counts_.size() - 1;
  const double frac = (std::log(x) - log_lo_) / log_span_;
  const auto idx = static_cast<std::size_t>(
      frac * static_cast<double>(counts_.size()));
  return std::min(idx, counts_.size() - 1);
}

double Histogram::bucket_lower(std::size_t i) const {
  ABP_CHECK(i <= counts_.size(), "bucket index out of range");
  const double frac =
      static_cast<double>(i) / static_cast<double>(counts_.size());
  return std::exp(log_lo_ + frac * log_span_);
}

void Histogram::add(double x) {
  if (total_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++counts_[bucket_index(x)];
  ++total_;
  sum_ += x;
}

void Histogram::merge(const Histogram& other) {
  ABP_CHECK(same_layout(other), "histogram layouts differ");
  if (other.total_ == 0) return;
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
}

double Histogram::mean() const {
  return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

double Histogram::percentile(double q) const {
  ABP_CHECK(q >= 0.0 && q <= 1.0, "percentile fraction out of [0,1]");
  if (total_ == 0) return 0.0;
  // Target rank among n samples (type-7 style: 0 → min, 1 → max).
  const double rank = q * static_cast<double>(total_ - 1);
  double below = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto n = static_cast<double>(counts_[i]);
    if (n == 0.0) continue;
    if (rank < below + n) {
      // Geometric interpolation inside the bucket matches the log-spaced
      // layout; clamp to the observed extremes so sparse tails stay exact.
      // The edge buckets absorb out-of-range samples, so their nominal
      // bounds can understate the data — widen them to the observed
      // extremes or a saturated tail would cap every percentile at `hi`.
      const double frac = n > 1.0 ? (rank - below) / (n - 1.0) : 0.0;
      const double lower = i == 0 ? min_ : bucket_lower(i);
      const double upper = i + 1 == counts_.size() ? max_ : bucket_upper(i);
      const double a = std::max(lower, min_);
      const double b = std::min(upper, max_);
      const double v = b > a ? a * std::pow(b / a, frac) : a;
      return std::clamp(v, min_, max_);
    }
    below += n;
  }
  return max_;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95() const {
  if (n_ < 2) return 0.0;
  return t_critical_975(n_ - 1) * stddev() /
         std::sqrt(static_cast<double>(n_));
}

}  // namespace abp
