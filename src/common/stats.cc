#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"

namespace abp {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sample_stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s2 = 0.0;
  for (double x : xs) s2 += (x - m) * (x - m);
  return std::sqrt(s2 / static_cast<double>(xs.size() - 1));
}

double quantile(std::span<const double> xs, double q) {
  ABP_CHECK(q >= 0.0 && q <= 1.0, "quantile fraction out of [0,1]");
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(lo),
                   v.end());
  const double a = v[lo];
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(hi),
                   v.end());
  const double b = v[hi];
  const double frac = pos - static_cast<double>(lo);
  return a + (b - a) * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double t_critical_975(std::size_t dof) {
  // Two-sided 95% (upper 97.5%) Student-t critical values, dof 1..30.
  static constexpr double kTable[31] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof == 0) return 0.0;
  if (dof <= 30) return kTable[dof];
  if (dof <= 40) return 2.021;
  if (dof <= 60) return 2.000;
  if (dof <= 120) return 1.980;
  return 1.960;
}

double ci95_half_width(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double sd = sample_stddev(xs);
  const double n = static_cast<double>(xs.size());
  return t_critical_975(xs.size() - 1) * sd / std::sqrt(n);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = sample_stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.median = median(xs);
  s.p90 = quantile(xs, 0.9);
  s.ci95 = ci95_half_width(xs);
  return s;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95() const {
  if (n_ < 2) return 0.0;
  return t_critical_975(n_ - 1) * stddev() /
         std::sqrt(static_cast<double>(n_));
}

}  // namespace abp
