#include "common/metrics_snapshot.h"

#include <cstdio>

namespace abp {

void MetricsSnapshot::set_count(std::string name, std::uint64_t value) {
  entries_.emplace_back(std::move(name), static_cast<double>(value));
  integral_.push_back(true);
}

void MetricsSnapshot::set_gauge(std::string name, double value) {
  entries_.emplace_back(std::move(name), value);
  integral_.push_back(false);
}

std::uint64_t MetricsSnapshot::count(std::string_view name,
                                     std::uint64_t def) const {
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].first == name) {
      return static_cast<std::uint64_t>(entries_[i].second);
    }
  }
  return def;
}

double MetricsSnapshot::value(std::string_view name, double def) const {
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].first == name) return entries_[i].second;
  }
  return def;
}

bool MetricsSnapshot::has(std::string_view name) const {
  for (const auto& [key, value] : entries_) {
    if (key == name) return true;
  }
  return false;
}

std::string MetricsSnapshot::render_text() const {
  std::string out = schema_;
  out += '\n';
  char buf[64];
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out += entries_[i].first;
    out += ' ';
    if (integral_[i]) {
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(entries_[i].second));
    } else {
      std::snprintf(buf, sizeof buf, "%.1f", entries_[i].second);
    }
    out += buf;
    out += '\n';
  }
  return out;
}

}  // namespace abp
