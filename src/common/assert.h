/// \file assert.h
/// \brief Runtime validation macros used across the library.
///
/// `ABP_CHECK` validates preconditions and configuration at API boundaries in
/// every build type and throws `abp::CheckFailure` (a `std::logic_error`) on
/// violation, so misuse is diagnosable rather than undefined.
/// `ABP_DCHECK` guards internal invariants on hot paths and compiles away in
/// release builds (`NDEBUG`).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace abp {

/// Exception thrown when an `ABP_CHECK` condition is violated.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "ABP_CHECK failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace abp

/// Validate `cond`; on failure throw abp::CheckFailure with context `msg`.
#define ABP_CHECK(cond, msg)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::abp::detail::check_failed(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                 \
  } while (0)

/// Debug-only invariant check; disappears entirely under NDEBUG.
#ifdef NDEBUG
#define ABP_DCHECK(cond, msg) \
  do {                        \
  } while (0)
#else
#define ABP_DCHECK(cond, msg) ABP_CHECK(cond, msg)
#endif
