/// \file beacon_field.h
/// \brief The deployed set of beacons, spatially indexed.
///
/// The adaptive-placement loop repeatedly adds a candidate beacon, measures
/// the effect, and possibly removes it again; `BeaconField` supports those
/// operations in O(1)–O(log) amortized time while keeping a spatial index
/// for range queries (the inner loop of every error-map computation).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "field/beacon.h"
#include "geom/aabb.h"
#include "geom/spatial_hash.h"

namespace abp {

class BeaconField {
 public:
  /// `bounds` is the deployment region; `index_cell` the spatial-hash cell
  /// size (use the radio model's max range; defaults to a reasonable cell
  /// for the paper's R=15 m).
  explicit BeaconField(AABB bounds, double index_cell = 20.0);

  const AABB& bounds() const { return bounds_; }

  /// Deploy a beacon; returns its stable id. Position must lie in bounds.
  BeaconId add(Vec2 pos);

  /// Deploy a beacon with an explicit id (deserialization support). The id
  /// must be >= every id handed out so far; skipped ids become permanently
  /// unused, mirroring removals in the original field.
  BeaconId add_with_id(BeaconId id, Vec2 pos, bool active = true);

  /// Remove a beacon entirely. Returns false if the id is unknown/removed.
  bool remove(BeaconId id);

  /// Toggle transmissions without removing the node (density control).
  /// Returns false if the id is unknown/removed.
  bool set_active(BeaconId id, bool active);

  /// Look up a live beacon; nullopt if removed/unknown.
  std::optional<Beacon> get(BeaconId id) const;

  /// The id the next `add` will return (allocation high-water mark).
  BeaconId next_id() const { return static_cast<BeaconId>(slots_.size()); }

  /// Advance the allocation mark so ids below `next` are never handed out
  /// (deserialization support; ids already allocated are unaffected).
  void reserve_ids(BeaconId next);

  /// Number of live beacons (active + passive).
  std::size_t size() const { return live_; }
  /// Number of live, actively transmitting beacons.
  std::size_t active_count() const { return active_; }

  /// Deployment density in beacons per square meter (live active beacons).
  double density() const;

  /// Invoke `fn` for every live, active beacon.
  void for_each_active(const std::function<void(const Beacon&)>& fn) const;

  /// Invoke `fn` for every live, active beacon within `radius` of `center`.
  void query_disk(Vec2 center, double radius,
                  const std::function<void(const Beacon&)>& fn) const;

  /// Centroid of all live active beacons; `bounds().center()` if none.
  /// This is the localization fallback when a client hears no beacon (see
  /// DESIGN.md interpretation table).
  Vec2 active_centroid() const;

  /// Ids of all live active beacons (ascending).
  std::vector<BeaconId> active_ids() const;

  /// Monotonic mutation stamp, unique across every `BeaconField` in the
  /// process: any `add`/`remove`/`set_active` assigns a revision no other
  /// field state has ever had. Two fields with equal revisions therefore
  /// hold identical beacon sets (one is an unmutated copy of the other),
  /// which is what lets derived snapshots (`SurveyKernel`) detect
  /// staleness in O(1) — including across whole-field reassignment.
  std::uint64_t revision() const { return revision_; }

 private:
  struct Slot {
    Beacon beacon;
    bool live = false;
  };

  AABB bounds_;
  std::vector<Slot> slots_;  // indexed by id
  SpatialHash index_;        // contains live *active* beacons only
  std::size_t live_ = 0;
  std::size_t active_ = 0;
  // Running sum of active positions for O(1) centroid.
  Vec2 active_sum_;
  std::uint64_t revision_;
};

}  // namespace abp
