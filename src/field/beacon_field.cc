#include "field/beacon_field.h"

#include <atomic>

#include "common/assert.h"

namespace abp {

namespace {
// Process-wide revision allocator: every mutation of every field draws a
// fresh stamp, so no two distinct field states ever share a revision.
std::uint64_t next_revision() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

BeaconField::BeaconField(AABB bounds, double index_cell)
    : bounds_(bounds), index_(index_cell), revision_(next_revision()) {}

BeaconId BeaconField::add(Vec2 pos) {
  return add_with_id(static_cast<BeaconId>(slots_.size()), pos, true);
}

BeaconId BeaconField::add_with_id(BeaconId id, Vec2 pos, bool active) {
  ABP_CHECK(bounds_.contains(pos), "beacon position outside field bounds");
  ABP_CHECK(id >= slots_.size(), "id already allocated (ids are never reused)");
  slots_.resize(id);  // dead slots for skipped ids
  slots_.push_back({Beacon{id, pos, active}, true});
  ++live_;
  if (active) {
    index_.insert(id, pos);
    ++active_;
    active_sum_ += pos;
  }
  revision_ = next_revision();
  return id;
}

bool BeaconField::remove(BeaconId id) {
  if (id >= slots_.size() || !slots_[id].live) return false;
  Slot& slot = slots_[id];
  if (slot.beacon.active) {
    index_.remove(id, slot.beacon.pos);
    --active_;
    active_sum_ -= slot.beacon.pos;
  }
  slot.live = false;
  --live_;
  revision_ = next_revision();
  return true;
}

bool BeaconField::set_active(BeaconId id, bool active) {
  if (id >= slots_.size() || !slots_[id].live) return false;
  Slot& slot = slots_[id];
  if (slot.beacon.active == active) return true;
  slot.beacon.active = active;
  if (active) {
    index_.insert(id, slot.beacon.pos);
    ++active_;
    active_sum_ += slot.beacon.pos;
  } else {
    index_.remove(id, slot.beacon.pos);
    --active_;
    active_sum_ -= slot.beacon.pos;
  }
  revision_ = next_revision();
  return true;
}

void BeaconField::reserve_ids(BeaconId next) {
  if (next > slots_.size()) slots_.resize(next);
}

std::optional<Beacon> BeaconField::get(BeaconId id) const {
  if (id >= slots_.size() || !slots_[id].live) return std::nullopt;
  return slots_[id].beacon;
}

double BeaconField::density() const {
  const double area = bounds_.area();
  return area > 0.0 ? static_cast<double>(active_) / area : 0.0;
}

void BeaconField::for_each_active(
    const std::function<void(const Beacon&)>& fn) const {
  for (const Slot& slot : slots_) {
    if (slot.live && slot.beacon.active) fn(slot.beacon);
  }
}

void BeaconField::query_disk(
    Vec2 center, double radius,
    const std::function<void(const Beacon&)>& fn) const {
  index_.query_disk(center, radius, [&](std::uint32_t id, Vec2) {
    const Slot& slot = slots_[id];
    ABP_DCHECK(slot.live && slot.beacon.active,
               "index out of sync with slots");
    fn(slot.beacon);
  });
}

Vec2 BeaconField::active_centroid() const {
  if (active_ == 0) return bounds_.center();
  return active_sum_ / static_cast<double>(active_);
}

std::vector<BeaconId> BeaconField::active_ids() const {
  std::vector<BeaconId> out;
  out.reserve(active_);
  for (const Slot& slot : slots_) {
    if (slot.live && slot.beacon.active) out.push_back(slot.beacon.id);
  }
  return out;
}

}  // namespace abp
