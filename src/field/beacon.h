/// \file beacon.h
/// \brief A beacon node: a reference radio at a known position (§2.2).
#pragma once

#include <cstdint>

#include "geom/vec2.h"

namespace abp {

/// Stable identifier of a beacon within one `BeaconField`. Ids are never
/// reused after removal, so hash-derived per-beacon randomness (noise
/// factors, `u` draws) stays stable as the field evolves.
using BeaconId = std::uint32_t;

struct Beacon {
  BeaconId id = 0;
  Vec2 pos;
  /// Active beacons transmit; passive ones exist but are silent — the
  /// density-control extension (§5/AFECA discussion) toggles this.
  bool active = true;
};

}  // namespace abp
