#include "field/generators.h"

#include <algorithm>

#include "common/assert.h"

namespace abp {

void scatter_uniform(BeaconField& field, std::size_t count, Rng& rng) {
  const AABB& b = field.bounds();
  for (std::size_t i = 0; i < count; ++i) {
    field.add({rng.uniform(b.lo.x, b.hi.x), rng.uniform(b.lo.y, b.hi.y)});
  }
}

void place_grid(BeaconField& field, std::size_t nx, std::size_t ny) {
  ABP_CHECK(nx >= 1 && ny >= 1, "grid dimensions must be positive");
  const AABB& b = field.bounds();
  const double dx = b.width() / static_cast<double>(nx);
  const double dy = b.height() / static_cast<double>(ny);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      field.add({b.lo.x + (static_cast<double>(i) + 0.5) * dx,
                 b.lo.y + (static_cast<double>(j) + 0.5) * dy});
    }
  }
}

void airdrop(BeaconField& field, std::size_t count, const Terrain& terrain,
             Rng& rng, double roll_gain, double jitter) {
  ABP_CHECK(roll_gain >= 0.0 && jitter >= 0.0, "negative airdrop parameter");
  const AABB& b = field.bounds();
  for (std::size_t i = 0; i < count; ++i) {
    Vec2 p{rng.uniform(b.lo.x, b.hi.x), rng.uniform(b.lo.y, b.hi.y)};
    // Roll downhill: displacement scales with local slope magnitude.
    const double h = 0.5;
    const double e0 = terrain.elevation(p);
    const Vec2 dir = terrain.downhill(p);
    if (dir.norm_sq() > 0.0) {
      const Vec2 ahead = b.clamp(p + dir * h);
      const double slope = std::max(0.0, (e0 - terrain.elevation(ahead)) / h);
      p += dir * (roll_gain * slope);
    }
    if (jitter > 0.0) {
      p += Vec2{rng.normal(0.0, jitter), rng.normal(0.0, jitter)};
    }
    field.add(b.clamp(p));
  }
}

void scatter_clustered(BeaconField& field, std::size_t count,
                       std::size_t clusters, double spread, Rng& rng) {
  ABP_CHECK(clusters >= 1, "need at least one cluster");
  ABP_CHECK(spread >= 0.0, "negative cluster spread");
  const AABB& b = field.bounds();
  std::vector<Vec2> centers;
  centers.reserve(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    centers.push_back(
        {rng.uniform(b.lo.x, b.hi.x), rng.uniform(b.lo.y, b.hi.y)});
  }
  for (std::size_t i = 0; i < count; ++i) {
    const Vec2 center = centers[static_cast<std::size_t>(rng.below(clusters))];
    const Vec2 p = center + Vec2{rng.normal(0.0, spread), rng.normal(0.0, spread)};
    field.add(b.clamp(p));
  }
}

}  // namespace abp
