#include "field/beacon_soa.h"

namespace abp {

BeaconSoA BeaconSoA::snapshot(const BeaconField& field) {
  BeaconSoA out;
  const std::size_t n = field.active_count();
  out.ids.reserve(n);
  out.xs.reserve(n);
  out.ys.reserve(n);
  // for_each_active walks slots in id order, so the arrays come out
  // ascending without a sort.
  field.for_each_active([&](const Beacon& b) {
    out.ids.push_back(b.id);
    out.xs.push_back(b.pos.x);
    out.ys.push_back(b.pos.y);
  });
  out.revision = field.revision();
  return out;
}

}  // namespace abp
