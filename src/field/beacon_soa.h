/// \file beacon_soa.h
/// \brief Structure-of-arrays snapshot of a `BeaconField`.
///
/// The survey kernel (loc/survey_kernel.h) evaluates batches of points
/// against the whole active beacon set; a SoA layout — one contiguous
/// array per coordinate, in ascending beacon-id order — is what lets the
/// inner loop broadcast one beacon against a vector of points with unit
/// stride loads and no pointer chasing. Ascending id order is load-bearing:
/// it is the documented accumulation order of `connected_sum`, so every
/// kernel arm that walks the snapshot front-to-back reproduces the scalar
/// centroid sums bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "field/beacon_field.h"

namespace abp {

struct BeaconSoA {
  /// Parallel arrays over live *active* beacons, ascending id.
  std::vector<BeaconId> ids;
  std::vector<double> xs;
  std::vector<double> ys;
  /// `BeaconField::revision()` at snapshot time (staleness detection).
  std::uint64_t revision = 0;

  std::size_t size() const { return ids.size(); }
  bool empty() const { return ids.empty(); }

  Beacon beacon(std::size_t i) const {
    return Beacon{ids[i], {xs[i], ys[i]}, true};
  }

  /// Snapshot the live active beacons of `field` (ascending id).
  static BeaconSoA snapshot(const BeaconField& field);
};

}  // namespace abp
