/// \file generators.h
/// \brief Beacon-field deployment generators.
///
/// The paper's evaluation draws each field by "randomly placing the beacons
/// in the 100m × 100m square terrain" (§4.1) — `scatter_uniform`. The other
/// generators back the motivating scenarios of §1: engineered uniform grids,
/// air drops perturbed by terrain (beacons rolling off a hilltop), and
/// clustered drops.
#pragma once

#include <cstddef>

#include "field/beacon_field.h"
#include "rng/rng.h"
#include "terrain/terrain.h"

namespace abp {

/// Place `count` beacons i.i.d. uniformly in the field's bounds.
void scatter_uniform(BeaconField& field, std::size_t count, Rng& rng);

/// Place an `nx × ny` uniform grid of beacons with equal margins, i.e. the
/// idealized engineered deployment of Figure 1. Spacing d between adjacent
/// beacons is width/nx (margin d/2), so `nx=ny=10` on a 100 m side gives
/// d = 10 m.
void place_grid(BeaconField& field, std::size_t nx, std::size_t ny);

/// Air-drop model (§1): aim `count` beacons at uniform positions, then let
/// each roll downhill on `terrain` for a distance proportional to the local
/// slope (steeper → farther), with small random scatter. On flat terrain
/// this reduces to `scatter_uniform`.
void airdrop(BeaconField& field, std::size_t count, const Terrain& terrain,
             Rng& rng, double roll_gain = 20.0, double jitter = 1.0);

/// Drop `count` beacons in `clusters` Gaussian clusters (sigma `spread`)
/// whose centers are uniform in bounds — a lumpy, poorly-covered deployment.
void scatter_clustered(BeaconField& field, std::size_t count,
                       std::size_t clusters, double spread, Rng& rng);

}  // namespace abp
