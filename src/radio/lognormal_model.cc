#include "radio/lognormal_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.h"
#include "rng/hash.h"

namespace abp {

namespace {
constexpr std::uint64_t kTagShadow = 0x7368ULL;  // "sh"
constexpr double kClampSigmas = 3.5;
}  // namespace

LogNormalShadowingModel::LogNormalShadowingModel(double nominal_range,
                                                 double path_loss_exponent,
                                                 double sigma_db,
                                                 std::uint64_t field_seed)
    : range_(nominal_range), exponent_(path_loss_exponent),
      sigma_db_(sigma_db), seed_(field_seed) {
  ABP_CHECK(nominal_range > 0.0, "nominal range must be positive");
  ABP_CHECK(path_loss_exponent >= 1.0, "path-loss exponent must be >= 1");
  ABP_CHECK(sigma_db >= 0.0, "shadowing sigma must be non-negative");
  max_range_ =
      range_ * std::pow(10.0, kClampSigmas * sigma_db_ / (10.0 * exponent_));
}

double LogNormalShadowingModel::shadowing_db(const Beacon& beacon,
                                             Vec2 point) const {
  // Box–Muller from two hash-derived uniforms; clamp to keep max_range a
  // true bound.
  const auto bx = static_cast<std::uint64_t>(quantize_cm(beacon.pos.x));
  const auto by = static_cast<std::uint64_t>(quantize_cm(beacon.pos.y));
  const std::uint64_t h1 = stable_hash64(
      seed_, kTagShadow, bx, by, std::uint64_t{1},
      static_cast<std::uint64_t>(quantize_cm(point.x)),
      static_cast<std::uint64_t>(quantize_cm(point.y)));
  const std::uint64_t h2 = stable_hash64(
      seed_, kTagShadow, bx, by, std::uint64_t{2},
      static_cast<std::uint64_t>(quantize_cm(point.x)),
      static_cast<std::uint64_t>(quantize_cm(point.y)));
  double u1 = hash_to_unit(h1);
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = hash_to_unit(h2);
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * std::numbers::pi * u2);
  const double x = sigma_db_ * z;
  return std::clamp(x, -kClampSigmas * sigma_db_, kClampSigmas * sigma_db_);
}

double LogNormalShadowingModel::effective_range(const Beacon& beacon,
                                                Vec2 point) const {
  if (sigma_db_ == 0.0) return range_;
  const double x = shadowing_db(beacon, point);
  return range_ * std::pow(10.0, x / (10.0 * exponent_));
}

std::string LogNormalShadowingModel::name() const {
  return "log-normal(n=" + std::to_string(exponent_) +
         ",sigma=" + std::to_string(sigma_db_) + "dB)";
}

}  // namespace abp
