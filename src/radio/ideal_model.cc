#include "radio/propagation.h"

#include "common/assert.h"

namespace abp {

IdealDiskModel::IdealDiskModel(double range) : range_(range) {
  ABP_CHECK(range > 0.0, "range must be positive");
}

}  // namespace abp
