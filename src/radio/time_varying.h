/// \file time_varying.h
/// \brief Time-varying propagation (§6 future work: "a more sophisticated
/// … propagation model (incorporating time varying propagation loss)").
///
/// Wraps any base model and modulates each beacon's effective range with a
/// slow multiplicative drift
///     m_B(t) = 1 + amplitude · sin(2π t / period + φ(B)),
/// with a hash-derived per-beacon phase φ(B) — beacons drift out of sync,
/// the way independent fading processes do. At fixed `time` the model is
/// still a deterministic pure function (the evaluation machinery keeps
/// working); advancing `set_time` moves the whole connectivity landscape,
/// which is what the placement-robustness ablation exercises: a survey
/// taken at time t0 is stale by t0+Δ, and placement decisions inherit that
/// staleness.
#pragma once

#include <cstdint>

#include "radio/propagation.h"

namespace abp {

class TimeVaryingModel final : public PropagationModel {
 public:
  /// `amplitude` ∈ [0, 1): peak relative range drift. `period` in the same
  /// time unit used with `set_time` (conventionally seconds).
  TimeVaryingModel(const PropagationModel& base, double amplitude,
                   double period, std::uint64_t seed);

  /// Advance the model clock; affects all subsequent queries.
  void set_time(double t) { time_ = t; }
  double time() const { return time_; }

  double effective_range(const Beacon& beacon, Vec2 point) const override;
  double nominal_range() const override { return base_->nominal_range(); }
  double max_range() const override {
    return base_->max_range() * (1.0 + amplitude_);
  }
  std::string name() const override;

  /// The per-beacon drift multiplier at the current time.
  double drift(const Beacon& beacon) const;

 private:
  const PropagationModel* base_;
  double amplitude_;
  double period_;
  std::uint64_t seed_;
  double time_ = 0.0;
};

}  // namespace abp
