#include "radio/time_varying.h"

#include <cmath>
#include <numbers>

#include "common/assert.h"
#include "rng/hash.h"

namespace abp {

namespace {
constexpr std::uint64_t kTagPhase = 0x7068ULL;  // "ph"
}  // namespace

TimeVaryingModel::TimeVaryingModel(const PropagationModel& base,
                                   double amplitude, double period,
                                   std::uint64_t seed)
    : base_(&base), amplitude_(amplitude), period_(period), seed_(seed) {
  ABP_CHECK(amplitude >= 0.0 && amplitude < 1.0,
            "amplitude must be in [0, 1)");
  ABP_CHECK(period > 0.0, "period must be positive");
}

double TimeVaryingModel::drift(const Beacon& beacon) const {
  if (amplitude_ == 0.0) return 1.0;
  const std::uint64_t h = stable_hash64(
      seed_, kTagPhase,
      static_cast<std::uint64_t>(quantize_cm(beacon.pos.x)),
      static_cast<std::uint64_t>(quantize_cm(beacon.pos.y)));
  const double phase = 2.0 * std::numbers::pi * hash_to_unit(h);
  return 1.0 + amplitude_ * std::sin(2.0 * std::numbers::pi * time_ / period_ +
                                     phase);
}

double TimeVaryingModel::effective_range(const Beacon& beacon,
                                         Vec2 point) const {
  return base_->effective_range(beacon, point) * drift(beacon);
}

std::string TimeVaryingModel::name() const {
  return "time-varying(" + base_->name() + ", a=" +
         std::to_string(amplitude_) + ")";
}

}  // namespace abp
