/// \file lognormal_model.h
/// \brief Log-normal shadowing propagation (Rappaport 1996, the paper's
/// [15]) — the "more sophisticated propagation model" of §6.
///
/// Received margin at distance d from a beacon whose threshold range is R:
///     M(d) = 10·n·log10(R/d) + X   [dB],
/// with path-loss exponent n and shadowing X ~ N(0, σ²) per (point, beacon),
/// static in time (hash-derived). Connectivity means M >= 0, equivalently
///     d <= R · 10^(X / (10 n)),
/// which is the effective-range form used by the library. X is clamped to
/// ±3.5σ so `max_range()` is a true bound for incremental updates.
#pragma once

#include <cstdint>

#include "radio/propagation.h"

namespace abp {

class LogNormalShadowingModel final : public PropagationModel {
 public:
  LogNormalShadowingModel(double nominal_range, double path_loss_exponent,
                          double sigma_db, std::uint64_t field_seed);

  double effective_range(const Beacon& beacon, Vec2 point) const override;
  double nominal_range() const override { return range_; }
  double max_range() const override { return max_range_; }
  std::string name() const override;

  double sigma_db() const { return sigma_db_; }
  double path_loss_exponent() const { return exponent_; }

  /// The shadowing draw X (dB), clamped to ±3.5σ. Keyed by the beacon's
  /// quantized position so re-deployment at the same spot is consistent.
  double shadowing_db(const Beacon& beacon, Vec2 point) const;

 private:
  double range_;
  double exponent_;
  double sigma_db_;
  std::uint64_t seed_;
  double max_range_;
};

}  // namespace abp
