#include "radio/noise_model.h"

#include "common/assert.h"
#include "rng/hash.h"

namespace abp {

namespace {
// Domain-separation tags so nf and u never reuse hash inputs.
constexpr std::uint64_t kTagNoiseFactor = 0x6E66ULL;  // "nf"
constexpr std::uint64_t kTagUDraw = 0x75ULL;          // "u"
}  // namespace

PerBeaconNoiseModel::PerBeaconNoiseModel(double nominal_range,
                                         double noise_max,
                                         std::uint64_t field_seed)
    : range_(nominal_range), noise_max_(noise_max), seed_(field_seed) {
  ABP_CHECK(nominal_range > 0.0, "nominal range must be positive");
  ABP_CHECK(noise_max >= 0.0 && noise_max < 1.0,
            "Noise must be in [0, 1) so effective range stays positive");
}

double PerBeaconNoiseModel::noise_factor(const Beacon& beacon) const {
  const std::uint64_t h = stable_hash64(
      seed_, kTagNoiseFactor,
      static_cast<std::uint64_t>(quantize_cm(beacon.pos.x)),
      static_cast<std::uint64_t>(quantize_cm(beacon.pos.y)));
  return noise_max_ * hash_to_unit(h);
}

std::uint64_t PerBeaconNoiseModel::u_draw_prefix(const Beacon& beacon) const {
  std::uint64_t s = kStableHashInit;
  s = stable_hash64_absorb(s, seed_, 1);
  s = stable_hash64_absorb(s, kTagUDraw, 2);
  s = stable_hash64_absorb(
      s, static_cast<std::uint64_t>(quantize_cm(beacon.pos.x)), 3);
  s = stable_hash64_absorb(
      s, static_cast<std::uint64_t>(quantize_cm(beacon.pos.y)), 4);
  return s;
}

double PerBeaconNoiseModel::u_draw(const Beacon& beacon, Vec2 point) const {
  // Prefix + resume is the same 6-word stable_hash64 as always, with the
  // beacon words absorbed first (see the sponge identity in rng/hash.h).
  std::uint64_t s = u_draw_prefix(beacon);
  s = stable_hash64_absorb(
      s, static_cast<std::uint64_t>(quantize_cm(point.x)), 5);
  s = stable_hash64_absorb(
      s, static_cast<std::uint64_t>(quantize_cm(point.y)), 6);
  return hash_to_symmetric(stable_hash64_finalize(s, 6));
}

double PerBeaconNoiseModel::effective_range(const Beacon& beacon,
                                            Vec2 point) const {
  if (noise_max_ == 0.0) return range_;
  return range_ * (1.0 + u_draw(beacon, point) * noise_factor(beacon));
}

bool PerBeaconNoiseModel::connected(const Beacon& beacon, Vec2 point) const {
  const double d2 = distance_sq(beacon.pos, point);
  const double certain_in = range_ * (1.0 - noise_max_);
  if (d2 <= certain_in * certain_in) return true;
  const double certain_out = range_ * (1.0 + noise_max_);
  if (d2 > certain_out * certain_out) return false;
  const double r = effective_range(beacon, point);
  return d2 <= r * r;
}

std::string PerBeaconNoiseModel::name() const {
  return "per-beacon-noise(" + std::to_string(noise_max_) + ")";
}

}  // namespace abp
