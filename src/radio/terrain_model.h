/// \file terrain_model.h
/// \brief Terrain-aware propagation: wraps any model and scales its
/// effective range by the terrain's line-of-sight link factor (§6 future
/// work: "analyze the effects of terrain commonality").
#pragma once

#include <memory>

#include "radio/propagation.h"
#include "terrain/terrain.h"

namespace abp {

class TerrainAwareModel final : public PropagationModel {
 public:
  /// Both `inner` and `terrain` must outlive this model.
  TerrainAwareModel(const PropagationModel& inner, const Terrain& terrain);

  double effective_range(const Beacon& beacon, Vec2 point) const override;
  double nominal_range() const override { return inner_->nominal_range(); }
  double max_range() const override { return inner_->max_range(); }
  std::string name() const override;

 private:
  const PropagationModel* inner_;
  const Terrain* terrain_;
};

}  // namespace abp
