/// \file noise_model.h
/// \brief The paper's propagation-noise model (§4.2.1).
///
/// Connectivity to beacon B at point P exists iff
///     distance(P, B) <= R · (1 + u(P,B) · nf(B)),
/// where nf(B) ~ U[0, Noise] is a fixed per-beacon noise factor ("random
/// regions with higher propagation noise") and u(P,B) ~ U[-1, 1] is drawn
/// per (point, beacon) pair, static in time. Both draws are realized as
/// stable hashes keyed by (field seed, quantized beacon position[, quantized
/// point]), so queries are pure functions, fields are reproducible from a
/// single seed, and a beacon removed and re-deployed at the same position
/// sees the identical propagation landscape — which is what makes oracle
/// evaluation and undo/redo in the trial loop exact.
#pragma once

#include <cstdint>

#include "radio/propagation.h"

namespace abp {

class PerBeaconNoiseModel final : public PropagationModel {
 public:
  /// `noise_max` is the paper's `Noise` parameter ∈ {0, 0.1, 0.3, 0.5};
  /// `field_seed` individualizes the noise landscape per trial field.
  PerBeaconNoiseModel(double nominal_range, double noise_max,
                      std::uint64_t field_seed);

  double effective_range(const Beacon& beacon, Vec2 point) const override;
  /// Equivalent to the base predicate but skips both hash evaluations when
  /// the distance is outside [R(1−Noise), R(1+Noise)] — connectivity there
  /// is certain regardless of the draws.
  bool connected(const Beacon& beacon, Vec2 point) const override;
  double nominal_range() const override { return range_; }
  double max_range() const override { return range_ * (1.0 + noise_max_); }
  std::string name() const override;

  double noise_max() const { return noise_max_; }

  /// The per-beacon noise factor nf(B) ∈ [0, noise_max].
  double noise_factor(const Beacon& beacon) const;

  /// The per-(point,beacon) draw u ∈ [-1, 1).
  double u_draw(const Beacon& beacon, Vec2 point) const;

  /// Memoized state of the u-draw hash after absorbing its four
  /// beacon-constant words (seed, tag, quantized beacon x/y). Resuming with
  /// the quantized point words at rounds 5 and 6 and finalizing at 6
  /// (rng/hash.h) reproduces `u_draw` bit-for-bit; the survey kernel
  /// precomputes this per beacon so the per-(point,beacon) cost drops from
  /// six absorbed words to two.
  std::uint64_t u_draw_prefix(const Beacon& beacon) const;

 private:
  double range_;
  double noise_max_;
  std::uint64_t seed_;
};

}  // namespace abp
