/// \file propagation.h
/// \brief Radio propagation models (§2.1 idealized model, §4.2.1 noise).
///
/// Every model is expressed as a deterministic *effective range* function
/// `range(beacon, point)`: the client at `point` hears `beacon` iff their
/// distance does not exceed it. This formulation
///  * reproduces the paper's predicate exactly (ideal: range ≡ R; noisy:
///    range = R(1 + u·nf(B)));
///  * is static in time and identical on every query ("location based and
///    static with respect to time", §4.2.1) because randomness is
///    hash-derived, never sampled;
///  * exposes `max_range()`, the upper bound that makes *exact* incremental
///    error-map updates possible (a new beacon cannot affect points farther
///    than `max_range()` from it).
#pragma once

#include <memory>
#include <string>

#include "field/beacon.h"
#include "geom/vec2.h"

namespace abp {

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  /// Effective communication range of `beacon` observed at `point`
  /// (meters, >= 0). Deterministic: same inputs, same answer.
  virtual double effective_range(const Beacon& beacon, Vec2 point) const = 0;

  /// Nominal transmission range R (§2.1: identical, fixed-power radios).
  virtual double nominal_range() const = 0;

  /// Upper bound on `effective_range` over all beacons and points.
  virtual double max_range() const = 0;

  /// Human-readable model name for reports.
  virtual std::string name() const = 0;

  /// Connectivity predicate: client at `point` hears `beacon`. Must equal
  /// `distance <= effective_range(beacon, point)`; models may override with
  /// a faster equivalent (e.g. skipping hash evaluation outside the
  /// uncertainty band).
  virtual bool connected(const Beacon& beacon, Vec2 point) const {
    return distance_sq(beacon.pos, point) <=
           square(effective_range(beacon, point));
  }

 protected:
  static double square(double v) { return v * v; }
};

/// §2.1 idealized model: perfect spherical propagation, identical range R.
class IdealDiskModel final : public PropagationModel {
 public:
  explicit IdealDiskModel(double range);

  double effective_range(const Beacon&, Vec2) const override { return range_; }
  double nominal_range() const override { return range_; }
  double max_range() const override { return range_; }
  std::string name() const override { return "ideal"; }

 private:
  double range_;
};

}  // namespace abp
