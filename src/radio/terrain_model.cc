#include "radio/terrain_model.h"

namespace abp {

TerrainAwareModel::TerrainAwareModel(const PropagationModel& inner,
                                     const Terrain& terrain)
    : inner_(&inner), terrain_(&terrain) {}

double TerrainAwareModel::effective_range(const Beacon& beacon,
                                          Vec2 point) const {
  const double base = inner_->effective_range(beacon, point);
  return base * terrain_->link_factor(beacon.pos, point);
}

std::string TerrainAwareModel::name() const {
  return "terrain(" + inner_->name() + ")";
}

}  // namespace abp
