#include "loc/multilateration.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.h"
#include "loc/connectivity.h"
#include "rng/hash.h"

namespace abp {

namespace {
constexpr std::uint64_t kTagRange = 0x726EULL;  // "rn"

// Hash-derived standard normal via Box–Muller (clamped to ±4σ).
double hash_normal(std::uint64_t seed, const Beacon& b, Vec2 p) {
  const auto bx = static_cast<std::uint64_t>(quantize_cm(b.pos.x));
  const auto by = static_cast<std::uint64_t>(quantize_cm(b.pos.y));
  const auto px = static_cast<std::uint64_t>(quantize_cm(p.x));
  const auto py = static_cast<std::uint64_t>(quantize_cm(p.y));
  double u1 = hash_to_unit(stable_hash64(seed, kTagRange, bx, by, px, py,
                                         std::uint64_t{1}));
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = hash_to_unit(stable_hash64(seed, kTagRange, bx, by, px, py,
                                               std::uint64_t{2}));
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * std::numbers::pi * u2);
  return std::clamp(z, -4.0, 4.0);
}
}  // namespace

RangingModel::RangingModel(const PropagationModel& connectivity,
                           double sigma_rel, std::uint64_t seed)
    : connectivity_(&connectivity), sigma_rel_(sigma_rel), seed_(seed) {
  ABP_CHECK(sigma_rel >= 0.0 && sigma_rel < 0.25,
            "relative ranging noise must be in [0, 0.25)");
}

std::vector<RangeMeasurement> RangingModel::measure(const BeaconField& field,
                                                    Vec2 point) const {
  std::vector<RangeMeasurement> out;
  for (const Beacon& b : connected_beacons(field, *connectivity_, point)) {
    const double true_dist = distance(b.pos, point);
    const double noisy =
        true_dist * (1.0 + sigma_rel_ * hash_normal(seed_, b, point));
    out.push_back({b, std::max(0.0, noisy)});
  }
  return out;
}

MultilaterationResult MultilaterationLocalizer::localize(Vec2 point) const {
  const auto ranges = ranging_->measure(*field_, point);
  MultilaterationResult result;
  result.beacons_used = ranges.size();

  // Centroid seed (and fallback).
  Vec2 centroid;
  if (ranges.empty()) {
    centroid = field_->active_centroid();
  } else {
    for (const auto& m : ranges) centroid += m.beacon.pos;
    centroid = centroid / static_cast<double>(ranges.size());
  }
  result.estimate = centroid;
  if (ranges.size() < 3) return result;

  // Gauss–Newton on  f_i(x) = ||x - b_i|| - r_i. Ill-conditioned (near
  // collinear) constellations can make raw Gauss–Newton diverge, so steps
  // are length-capped and the cost-minimizing iterate is returned — never
  // anything worse than the centroid seed.
  const auto cost = [&](Vec2 x) {
    double c = 0.0;
    for (const auto& m : ranges) {
      const double res = distance(x, m.beacon.pos) - m.range;
      c += res * res;
    }
    return c;
  };
  Vec2 x = centroid;
  Vec2 best = centroid;
  double best_cost = cost(centroid);
  const double seed_cost = best_cost;
  constexpr double kMaxStep = 30.0;  // meters per iteration

  for (int iter = 0; iter < 25; ++iter) {
    double jtj00 = 0, jtj01 = 0, jtj11 = 0, jtr0 = 0, jtr1 = 0;
    for (const auto& m : ranges) {
      const Vec2 d = x - m.beacon.pos;
      const double dist = std::max(d.norm(), 1e-9);
      const double jx = d.x / dist;
      const double jy = d.y / dist;
      const double res = dist - m.range;
      jtj00 += jx * jx;
      jtj01 += jx * jy;
      jtj11 += jy * jy;
      jtr0 += jx * res;
      jtr1 += jy * res;
    }
    const double det = jtj00 * jtj11 - jtj01 * jtj01;
    if (std::fabs(det) < 1e-9) break;  // degenerate (collinear) geometry
    Vec2 step{(-jtr0 * jtj11 + jtr1 * jtj01) / det,
              (jtr0 * jtj01 - jtr1 * jtj00) / det};
    const double len = step.norm();
    if (!std::isfinite(len)) break;
    if (len > kMaxStep) step = step * (kMaxStep / len);
    x += step;
    const double c = cost(x);
    if (c < best_cost) {
      best_cost = c;
      best = x;
    }
    if (len < 1e-7) break;
  }
  if (best_cost < seed_cost) {
    result.estimate = best;
    result.converged = true;
  }
  return result;
}

double gdop(Vec2 point, const std::vector<Beacon>& beacons) {
  if (beacons.size() < 3) return kGdopSingular;
  double h00 = 0, h01 = 0, h11 = 0;
  for (const Beacon& b : beacons) {
    const Vec2 d = point - b.pos;
    const double dist = std::max(d.norm(), 1e-9);
    const double ux = d.x / dist;
    const double uy = d.y / dist;
    h00 += ux * ux;
    h01 += ux * uy;
    h11 += uy * uy;
  }
  const double det = h00 * h11 - h01 * h01;
  if (det < 1e-9) return kGdopSingular;
  // trace of inverse(HᵀH) = (h00 + h11) / det.
  const double trace_inv = (h00 + h11) / det;
  return std::sqrt(trace_inv);
}

}  // namespace abp
