/// \file survey_data.h
/// \brief Measured localization-error data, as collected by the exploring
/// agent (§3: "based on its measurements of localization error at different
/// points in the region, it must compute good places to deploy additional
/// beacons").
///
/// Placement algorithms consume `SurveyData`, never the ground-truth
/// `ErrorMap` directly: in the paper's baseline setting the survey is
/// complete and noise-free (§3.1), in which case the two coincide
/// (`from_error_map`), but the survey-realism extension produces partial
/// tours and noisy readings through the same type.
#pragma once

#include "geom/grid2d.h"
#include "geom/lattice.h"
#include "loc/error_map.h"

namespace abp {

class SurveyData {
 public:
  explicit SurveyData(const Lattice2D& lattice);

  const Lattice2D& lattice() const { return lattice_; }

  /// Record a measurement at a lattice point (overwrites any previous one).
  void record(std::size_t flat, double measured_error);

  bool measured(std::size_t flat) const { return mask_[flat] != 0; }
  double value(std::size_t flat) const { return values_[flat]; }

  std::size_t measured_count() const { return measured_count_; }
  /// Fraction of lattice points with a measurement.
  double coverage() const;

  /// Mean / median of measured values (0 if nothing measured).
  double mean() const;
  double median() const;

  /// Merge another survey over the same lattice: `other`'s measurements
  /// overwrite this survey's at points both visited (later data wins —
  /// the convention for successive tours). Lattice geometry must match.
  void merge(const SurveyData& other);

  /// Zero out measured values within `radius` of `center` (points stay
  /// marked as measured). Used by one-shot batch placement to suppress the
  /// neighbourhood of an already-chosen candidate so the next proposal
  /// targets a different hot spot.
  void suppress_disk(Vec2 center, double radius);

  /// Complete, noise-free survey — the paper's §3.1 baseline assumption.
  static SurveyData from_error_map(const ErrorMap& map);

 private:
  Lattice2D lattice_;
  Grid2D<double> values_;
  Grid2D<std::uint8_t> mask_;
  std::size_t measured_count_ = 0;
  double sum_ = 0.0;
};

}  // namespace abp
