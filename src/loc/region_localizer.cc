#include "loc/region_localizer.h"

#include <algorithm>

#include "common/assert.h"
#include "loc/connectivity.h"

namespace abp {

RegionLocalizer::RegionLocalizer(const BeaconField& field,
                                 const PropagationModel& model,
                                 double sample_step)
    : field_(&field), model_(&model), sample_step_(sample_step) {
  ABP_CHECK(sample_step > 0.0, "sample step must be positive");
}

RegionLocalizationResult RegionLocalizer::localize(Vec2 point) const {
  const auto heard = connected_beacons(*field_, *model_, point);
  RegionLocalizationResult result;
  result.connected = heard.size();

  if (heard.empty()) {
    result.estimate = field_->active_centroid();
    return result;
  }

  // Centroid fallback (also the default if the sampled region is empty).
  Vec2 centroid;
  for (const Beacon& b : heard) centroid += b.pos;
  centroid = centroid / static_cast<double>(heard.size());
  result.estimate = centroid;

  // Candidate region: inside every heard beacon's maximum range. Intersect
  // the bounding boxes, clipped to the field bounds.
  const double reach = model_->max_range();
  AABB box = field_->bounds();
  for (const Beacon& b : heard) {
    box = AABB({std::max(box.lo.x, b.pos.x - reach),
                std::max(box.lo.y, b.pos.y - reach)},
               {std::min(box.hi.x, b.pos.x + reach),
                std::min(box.hi.y, b.pos.y + reach)});
    if (box.lo.x > box.hi.x || box.lo.y > box.hi.y) {
      return result;  // inconsistent observation (possible under noise)
    }
  }

  // Sample the box; a sample q is feasible iff its full connectivity
  // signature equals the observation.
  Vec2 sum;
  std::size_t count = 0;
  for (double y = box.lo.y; y <= box.hi.y; y += sample_step_) {
    for (double x = box.lo.x; x <= box.hi.x; x += sample_step_) {
      const Vec2 q{x, y};
      // Quick reject: every heard beacon must be heard at q.
      bool feasible = true;
      for (const Beacon& b : heard) {
        if (!model_->connected(b, q)) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      // Full signature: no beacon outside the heard set may be heard at q.
      std::size_t heard_at_q = 0;
      field_->query_disk(q, reach, [&](const Beacon& b) {
        if (model_->connected(b, q)) ++heard_at_q;
      });
      if (heard_at_q != heard.size()) continue;  // extra beacon heard
      sum += q;
      ++count;
    }
  }

  if (count > 0) {
    result.estimate = sum / static_cast<double>(count);
    result.used_region = true;
    result.region_area =
        static_cast<double>(count) * sample_step_ * sample_step_;
  }
  return result;
}

}  // namespace abp
