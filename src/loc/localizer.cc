#include "loc/localizer.h"

namespace abp {

const SurveyKernel& CentroidLocalizer::kernel() const {
  if (!kernel_ || kernel_->revision() != field_->revision()) {
    kernel_.emplace(*field_, *model_);
  }
  return *kernel_;
}

LocalizationResult CentroidLocalizer::localize(Vec2 point) const {
  const ConnectedSum cs = kernel().evaluate_point(point);
  if (cs.count == 0) {
    return {field_->active_centroid(), 0};
  }
  return {cs.sum / static_cast<double>(cs.count), cs.count};
}

}  // namespace abp
