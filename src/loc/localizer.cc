#include "loc/localizer.h"

#include "loc/connectivity.h"

namespace abp {

LocalizationResult CentroidLocalizer::localize(Vec2 point) const {
  const ConnectedSum cs = connected_sum(*field_, *model_, point);
  if (cs.count == 0) {
    return {field_->active_centroid(), 0};
  }
  return {cs.sum / static_cast<double>(cs.count), cs.count};
}

}  // namespace abp
