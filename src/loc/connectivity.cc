#include "loc/connectivity.h"

#include <algorithm>

namespace abp {

std::vector<Beacon> connected_beacons(const BeaconField& field,
                                      const PropagationModel& model,
                                      Vec2 point) {
  std::vector<Beacon> out;
  field.query_disk(point, model.max_range(), [&](const Beacon& b) {
    if (model.connected(b, point)) out.push_back(b);
  });
  std::sort(out.begin(), out.end(),
            [](const Beacon& a, const Beacon& b) { return a.id < b.id; });
  return out;
}

std::size_t connected_count(const BeaconField& field,
                            const PropagationModel& model, Vec2 point) {
  std::size_t n = 0;
  field.query_disk(point, model.max_range(), [&](const Beacon& b) {
    if (model.connected(b, point)) ++n;
  });
  return n;
}

ConnectedSum connected_sum(const BeaconField& field,
                           const PropagationModel& model, Vec2 point) {
  // Reused scratch buffer: this sits in the innermost loop of every error
  // map computation; per-call allocation would dominate.
  thread_local std::vector<std::pair<BeaconId, Vec2>> scratch;
  scratch.clear();
  field.query_disk(point, model.max_range(), [&](const Beacon& b) {
    if (model.connected(b, point)) scratch.emplace_back(b.id, b.pos);
  });
  std::sort(scratch.begin(), scratch.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ConnectedSum out;
  for (const auto& [id, pos] : scratch) {
    out.sum += pos;
    ++out.count;
  }
  return out;
}

}  // namespace abp
