#include "loc/connectivity.h"

namespace abp {

std::vector<Beacon> connected_beacons(const BeaconField& field,
                                      const PropagationModel& model,
                                      Vec2 point) {
  return SurveyKernel(field, model).connected_list(point);
}

std::size_t connected_count(const BeaconField& field,
                            const PropagationModel& model, Vec2 point) {
  return SurveyKernel(field, model).evaluate_point(point).count;
}

ConnectedSum connected_sum(const BeaconField& field,
                           const PropagationModel& model, Vec2 point) {
  return SurveyKernel(field, model).evaluate_point(point);
}

}  // namespace abp
