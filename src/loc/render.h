/// \file render.h
/// \brief ASCII rendering of error maps and beacon fields.
///
/// The paper's figures are heat-map-style plots; for a terminal-first
/// library the equivalent is a character raster. Each output character
/// covers `cell` lattice points; error magnitude maps to a shade ramp, and
/// beacons can be overlaid. Used by the examples and handy in tests when a
/// property fails ("show me the field").
#pragma once

#include <ostream>
#include <string>

#include "field/beacon_field.h"
#include "loc/error_map.h"

namespace abp {

struct RenderOptions {
  /// Lattice points per output character (both axes).
  std::size_t cell = 4;
  /// Error (meters) covered by each shade step; the 10-step ramp tops out
  /// at 10 × meters_per_shade.
  double meters_per_shade = 2.5;
  /// Overlay live active beacons as 'o' (and the newest as 'O').
  bool show_beacons = false;
};

/// Render `map` (optionally overlaying `field`'s beacons) to `out`,
/// top row = maximum y, matching the usual map orientation.
void render_error_map(std::ostream& out, const ErrorMap& map,
                      const BeaconField* field = nullptr,
                      const RenderOptions& options = {});

/// Single-line shade legend for the given options.
std::string render_legend(const RenderOptions& options = {});

}  // namespace abp
