/// \file connectivity.h
/// \brief Connectivity evaluation: which beacons does a client hear? (§2.2)
///
/// The localization algorithm's observable is the *connected set*: beacons
/// whose messages arrive above the CMthresh reception threshold. In the
/// analytic model that reduces to the propagation predicate; the DES
/// substrate (`src/des/`) validates the reduction packet-by-packet.
#pragma once

#include <vector>

#include "field/beacon_field.h"
#include "radio/propagation.h"

namespace abp {

/// All live, active beacons connected to a client at `point`, in ascending
/// id order (deterministic regardless of index iteration order).
std::vector<Beacon> connected_beacons(const BeaconField& field,
                                      const PropagationModel& model,
                                      Vec2 point);

/// Number of connected beacons at `point` (no allocation).
std::size_t connected_count(const BeaconField& field,
                            const PropagationModel& model, Vec2 point);

/// Position sum and count of the connected set, accumulated in ascending
/// beacon-id order. The canonical order makes the floating-point sum — and
/// therefore every centroid estimate and error map — independent of spatial
/// index iteration order, so incremental updates are bit-identical to full
/// recomputation.
struct ConnectedSum {
  Vec2 sum;
  std::size_t count = 0;
};
ConnectedSum connected_sum(const BeaconField& field,
                           const PropagationModel& model, Vec2 point);

}  // namespace abp
