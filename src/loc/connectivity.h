/// \file connectivity.h
/// \brief Connectivity evaluation: which beacons does a client hear? (§2.2)
///
/// The localization algorithm's observable is the *connected set*: beacons
/// whose messages arrive above the CMthresh reception threshold. In the
/// analytic model that reduces to the propagation predicate; the DES
/// substrate (`src/des/`) validates the reduction packet-by-packet.
///
/// These free functions are the cold-path convenience API: each call
/// snapshots the field into a one-shot `SurveyKernel`. Hot loops (error
/// maps, serving, placement search) hold a kernel and batch instead —
/// results are bit-identical either way (same ascending-id accumulation,
/// same predicate arithmetic).
#pragma once

#include <vector>

#include "field/beacon_field.h"
#include "loc/survey_kernel.h"
#include "radio/propagation.h"

namespace abp {

/// All live, active beacons connected to a client at `point`, in ascending
/// id order (deterministic regardless of index iteration order).
std::vector<Beacon> connected_beacons(const BeaconField& field,
                                      const PropagationModel& model,
                                      Vec2 point);

/// Number of connected beacons at `point`.
std::size_t connected_count(const BeaconField& field,
                            const PropagationModel& model, Vec2 point);

/// Position sum and count of the connected set (`ConnectedSum` lives in
/// loc/survey_kernel.h with the batch API).
ConnectedSum connected_sum(const BeaconField& field,
                           const PropagationModel& model, Vec2 point);

}  // namespace abp
