/// \file localizer.h
/// \brief Centroid localization (§2.2) and localization error.
///
/// A client estimates its position as the centroid of the positions of all
/// connected beacons:
///     (X_est, Y_est) = centroid{ (X_i, Y_i) : beacon i connected }.
/// Localization error is LE = ||(X_est,Y_est) − (X_a,Y_a)||.
///
/// When a client hears *no* beacon the paper leaves the estimate
/// unspecified; we use the centroid of the whole deployed field (≈ terrain
/// center), charging uncovered points a large-but-finite error. See the
/// interpretation table in DESIGN.md.
#pragma once

#include <optional>

#include "field/beacon_field.h"
#include "loc/survey_kernel.h"
#include "radio/propagation.h"

namespace abp {

/// Result of one localization attempt.
struct LocalizationResult {
  Vec2 estimate;
  std::size_t connected = 0;  ///< number of beacons heard
};

/// Live view over a field: observes every mutation. Internally the
/// localizer memoizes a `SurveyKernel` snapshot and rebuilds it whenever
/// `BeaconField::revision()` moves, so repeated queries against an
/// unchanged field pay the snapshot cost once. The cache makes the
/// localizer single-threaded per instance (like the field it watches);
/// concurrent readers each hold their own localizer or kernel.
class CentroidLocalizer {
 public:
  CentroidLocalizer(const BeaconField& field, const PropagationModel& model)
      : field_(&field), model_(&model) {}

  /// Estimate the position of a client whose true position is `point`.
  LocalizationResult localize(Vec2 point) const;

  /// Localization error LE at `point` (distance estimate ↔ truth).
  double error(Vec2 point) const {
    return distance(localize(point).estimate, point);
  }

  /// The memoized batch kernel for the field's current revision. Callers
  /// with many points per field state should evaluate `SurveyBatch`es
  /// against this instead of looping `localize`.
  const SurveyKernel& kernel() const;

  const BeaconField& field() const { return *field_; }
  const PropagationModel& model() const { return *model_; }

 private:
  const BeaconField* field_;
  const PropagationModel* model_;
  mutable std::optional<SurveyKernel> kernel_;
};

}  // namespace abp
