/// \file survey_kernel.h
/// \brief Batched point-evaluation kernel: the compute core of every survey.
///
/// The O(PT) lattice survey — per-point centroid-of-connected-beacons under
/// the (noisy) disk model — sits under every `serve/` query, every
/// `ErrorMap` recompute, and every placement decision. This header makes
/// the *batch* the unit of optimization: callers fill a `SurveyBatch`
/// (structure-of-arrays point coordinates), and one `SurveyKernel::evaluate`
/// call fuses the disk query, the noisy-disk connectivity test, and the
/// centroid accumulation over a SoA snapshot of the field (`BeaconSoA`).
///
/// Three arms implement the same contract and are selected at runtime:
///  * `kScalar`  — the reference loop, one point at a time (test oracle);
///  * `kGeneric` — chunked loop with per-chunk beacon prefilter, plain C++;
///  * `kAvx2`    — the chunked loop in AVX2 intrinsics (4 points/lane).
///
/// Determinism contract (the reason the arms can be property-tested for
/// bit-equality): every arm visits beacons in ascending id order and
/// accumulates each point's position sum in that order with plain IEEE
/// mul/add (no FMA contraction — the AVX2 arm is compiled with `-mavx2`
/// only), and the noisy-disk draws reuse `stable_hash64` exactly, with the
/// four beacon-constant words pre-absorbed per beacon (rng/hash.h). Results
/// are therefore bit-identical across arms, and bit-identical to the
/// historical scalar `connected_sum`.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "field/beacon_soa.h"
#include "geom/vec2.h"
#include "radio/propagation.h"

namespace abp {

/// Position sum and count of the connected set, accumulated in ascending
/// beacon-id order. The canonical order makes the floating-point sum — and
/// therefore every centroid estimate and error map — independent of spatial
/// index iteration order, so incremental updates are bit-identical to full
/// recomputation.
struct ConnectedSum {
  Vec2 sum;
  std::size_t count = 0;
};

/// A batch of survey points in structure-of-arrays form. Inputs are the
/// point coordinates; after `SurveyKernel::evaluate`, `sum_x/sum_y/counts`
/// hold each point's `ConnectedSum`. Reusable: `clear()` keeps capacity.
struct SurveyBatch {
  std::vector<double> xs, ys;           ///< inputs
  std::vector<double> sum_x, sum_y;     ///< outputs (position sums)
  std::vector<std::uint32_t> counts;    ///< outputs (connected counts)

  std::size_t size() const { return xs.size(); }
  bool empty() const { return xs.empty(); }

  void clear() {
    xs.clear();
    ys.clear();
  }
  void reserve(std::size_t n) {
    xs.reserve(n);
    ys.reserve(n);
  }
  void push(Vec2 p) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }

  Vec2 point(std::size_t i) const { return {xs[i], ys[i]}; }
  ConnectedSum result(std::size_t i) const {
    return {{sum_x[i], sum_y[i]}, counts[i]};
  }
};

/// Which kernel arm evaluates a batch.
enum class SurveyBackend { kScalar, kGeneric, kAvx2 };

/// Immutable evaluator binding a `BeaconSoA` snapshot to a propagation
/// model. For `PerBeaconNoiseModel`/`IdealDiskModel` the connectivity test
/// runs on precomputed per-beacon constants (noise factor, memoized hash
/// prefix, certain-in/out radii); any other model falls back to the
/// virtual `PropagationModel::connected` per (point, beacon) — still
/// batched, still ascending-id, still bit-identical to the scalar API.
///
/// The kernel snapshots the field at construction; it does not observe
/// later mutations (use `BeaconField::revision()` to detect staleness).
class SurveyKernel {
 public:
  SurveyKernel(const BeaconField& field, const PropagationModel& model);

  /// Evaluate every point in `batch` with the default backend.
  void evaluate(SurveyBatch& batch) const;
  /// Evaluate with an explicit arm (property tests / CI pin both arms).
  void evaluate(SurveyBatch& batch, SurveyBackend backend) const;

  /// Single-point evaluation (scalar arm, no allocation).
  ConnectedSum evaluate_point(Vec2 p) const;

  /// Connected beacons at `p`, ascending id (batched `connected_beacons`).
  std::vector<Beacon> connected_list(Vec2 p) const;

  /// Hypothetical extra beacon at a position (greedy-oracle primitive):
  /// same predicate a real beacon at `pos` would have — noise draws key on
  /// position, never id — with the per-beacon constants precomputed once.
  struct Hypothetical {
    Vec2 pos;
    double nf = 0.0;             // noise factor (fast path)
    std::uint64_t prefix = 0;    // u-draw hash prefix (fast path)
  };
  Hypothetical make_hypothetical(Vec2 pos) const;
  bool hypothetical_connected(const Hypothetical& h, Vec2 p) const;

  const BeaconSoA& soa() const { return soa_; }
  const PropagationModel& model() const { return *model_; }
  /// Field revision the snapshot was taken at.
  std::uint64_t revision() const { return soa_.revision; }
  /// True when the model hit the precomputed (non-virtual) fast path.
  bool fast_path() const { return fast_.has_value(); }

  /// Is the AVX2 arm compiled in and supported by this CPU?
  static bool avx2_supported();
  /// Runtime dispatch: `ABP_SURVEY_BACKEND=scalar|generic|avx2` overrides;
  /// otherwise AVX2 when available, else the generic arm.
  static SurveyBackend default_backend();

 private:
  struct FastPath {
    double range = 0.0;  // nominal R
    double in2 = 0.0;    // squared certain-in radius
    double out2 = 0.0;   // squared certain-out radius
    bool band = false;   // noise > 0: uncertainty band needs hash draws
    std::vector<double> nf;              // per-beacon noise factor
    std::vector<std::uint64_t> prefix;   // per-beacon u-draw hash prefix
  };

  void evaluate_scalar(SurveyBatch& batch) const;
  void evaluate_chunked(SurveyBatch& batch, bool use_avx2) const;
  void evaluate_fallback(SurveyBatch& batch) const;
  ConnectedSum point_fast(Vec2 p) const;
  ConnectedSum point_fallback(Vec2 p) const;

  BeaconSoA soa_;
  const PropagationModel* model_;
  std::optional<FastPath> fast_;
};

}  // namespace abp
