/// \file locus.h
/// \brief Localization-region (locus) analysis (§2.2 footnote 3, Fig 1, §6).
///
/// Under connectivity-based localization, all points that hear exactly the
/// same set of beacons are indistinguishable — they share one *localization
/// region* (the intersection of the connected disks minus the others). The
/// paper's Figure 1 illustrates how beacon density controls the granularity
/// of these regions, and §6 proposes placing beacons "to break down the loci
/// with the largest area into smaller loci". This module computes the
/// region decomposition over the survey lattice: each lattice point is
/// labeled by a hash of its sorted connected-beacon id set, and regions are
/// the label equivalence classes.
#pragma once

#include <cstdint>
#include <vector>

#include "field/beacon_field.h"
#include "geom/lattice.h"
#include "radio/propagation.h"

namespace abp {

/// One localization region: a maximal set of lattice points with identical
/// beacon connectivity.
struct LocusRegion {
  std::uint64_t signature = 0;   ///< hash of the sorted connected id set
  std::size_t point_count = 0;   ///< lattice points in the region
  double area = 0.0;             ///< point_count · step² (m²)
  Vec2 centroid;                 ///< mean of member lattice points
  std::size_t beacons_heard = 0; ///< |connected set| (0 = uncovered region)
};

/// Decomposition of the whole lattice into localization regions.
struct LocusAnalysis {
  std::vector<LocusRegion> regions;  ///< sorted by descending area
  std::size_t region_count() const { return regions.size(); }
  /// Mean region area (m²).
  double mean_area() const;
  /// The largest region that hears at least one beacon; regions.end() (i.e.
  /// nullptr) if every region is uncovered. Placement targets covered-but-
  /// coarse regions; the uncovered exterior is handled by coverage itself.
  const LocusRegion* largest_covered() const;
  /// The largest region overall (may be the uncovered exterior).
  const LocusRegion* largest() const;
};

/// Compute the locus decomposition of `lattice` under `field` + `model`.
LocusAnalysis analyze_loci(const BeaconField& field,
                           const PropagationModel& model,
                           const Lattice2D& lattice);

}  // namespace abp
