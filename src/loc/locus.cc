#include "loc/locus.h"

#include <algorithm>
#include <unordered_map>

#include "loc/connectivity.h"
#include "rng/hash.h"

namespace abp {

double LocusAnalysis::mean_area() const {
  if (regions.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : regions) total += r.area;
  return total / static_cast<double>(regions.size());
}

const LocusRegion* LocusAnalysis::largest_covered() const {
  for (const auto& r : regions) {
    if (r.beacons_heard > 0) return &r;  // regions sorted by area desc
  }
  return nullptr;
}

const LocusRegion* LocusAnalysis::largest() const {
  return regions.empty() ? nullptr : &regions.front();
}

LocusAnalysis analyze_loci(const BeaconField& field,
                           const PropagationModel& model,
                           const Lattice2D& lattice) {
  struct Accum {
    std::size_t count = 0;
    Vec2 sum;
    std::size_t heard = 0;
  };
  std::unordered_map<std::uint64_t, Accum> groups;

  // One field snapshot for the whole sweep; the per-point connected set is
  // already ascending-id, so signatures are stable.
  const SurveyKernel kernel(field, model);
  lattice.for_each([&](std::size_t, Vec2 p) {
    const auto connected = kernel.connected_list(p);
    // Order-independent (ids already sorted) signature of the set.
    std::uint64_t sig = 0x517CC1B727220A95ULL;
    for (const Beacon& b : connected) {
      sig = stable_hash64(sig, std::uint64_t{b.id});
    }
    Accum& a = groups[sig];
    ++a.count;
    a.sum += p;
    a.heard = connected.size();
  });

  const double cell_area = lattice.step() * lattice.step();
  LocusAnalysis out;
  out.regions.reserve(groups.size());
  for (const auto& [sig, a] : groups) {
    LocusRegion r;
    r.signature = sig;
    r.point_count = a.count;
    r.area = static_cast<double>(a.count) * cell_area;
    r.centroid = a.sum / static_cast<double>(a.count);
    r.beacons_heard = a.heard;
    out.regions.push_back(r);
  }
  std::sort(out.regions.begin(), out.regions.end(),
            [](const LocusRegion& a, const LocusRegion& b) {
              if (a.area != b.area) return a.area > b.area;
              return a.signature < b.signature;  // deterministic tie-break
            });
  return out;
}

}  // namespace abp
