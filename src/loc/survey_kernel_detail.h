/// \file survey_kernel_detail.h
/// \brief Internals shared by the survey-kernel arms. Not a public header:
/// included only by survey_kernel.cc and survey_kernel_avx2.cc.
///
/// Everything here has internal linkage (`static`) on purpose: the AVX2
/// translation unit is compiled with `-mavx2`, and letting one of its
/// inline helpers win COMDAT folding would leak VEX-encoded code into the
/// generic arms, crashing pre-AVX2 machines. Each TU gets its own copy.
#pragma once

#include <cstddef>
#include <cstdint>

#include "rng/hash.h"

namespace abp::survey_detail {

/// Points per chunk: one beacon prefilter per chunk, padded to kLanes.
inline constexpr std::size_t kChunk = 32;
/// Doubles per AVX2 vector.
inline constexpr std::size_t kLanes = 4;
/// Padding coordinate for tail lanes: far enough that no beacon can ever
/// connect (d2 ~ 1e60 rejects in the certain-out test), finite so the
/// arithmetic stays NaN-free.
inline constexpr double kPadSentinel = 1.0e30;
/// Slack added to the prefilter reach so floating-point rounding of the
/// chunk bounding box can never exclude a beacon that the exact predicate
/// would accept (rounding error is ~1e-13 m at terrain scale; the slack is
/// seven orders of magnitude larger and still negligible for culling).
inline constexpr double kReachSlack = 1.0e-6;

/// Per-chunk view of the fast-path model constants and beacon SoA.
struct FastView {
  const double* bx = nullptr;           ///< beacon x, ascending id
  const double* by = nullptr;           ///< beacon y, ascending id
  const double* nf = nullptr;           ///< per-beacon noise factor
  const std::uint64_t* prefix = nullptr;///< per-beacon u-draw hash prefix
  double range = 0.0;                   ///< nominal R
  double in2 = 0.0;                     ///< squared certain-in radius
  double out2 = 0.0;                    ///< squared certain-out radius
  bool band = false;                    ///< noise > 0
};

/// Resume the u-draw hash from a beacon's memoized 4-word prefix with the
/// two quantized point words (rounds 5 and 6 of the 6-word hash) — equal to
/// PerBeaconNoiseModel::u_draw bit-for-bit by the sponge identity in
/// rng/hash.h.
[[gnu::always_inline]] static inline double resume_u_draw(
    std::uint64_t prefix, std::uint64_t pxq, std::uint64_t pyq) {
  std::uint64_t s = stable_hash64_absorb(prefix, pxq, 5);
  s = stable_hash64_absorb(s, pyq, 6);
  return hash_to_symmetric(stable_hash64_finalize(s, 6));
}

/// Uncertainty-band connectivity test for beacon index `b`: identical op
/// sequence to PerBeaconNoiseModel::effective_range + the d2 <= r*r check.
[[gnu::always_inline]] static inline bool band_connected(
    const FastView& m, std::size_t b, double d2, std::uint64_t pxq,
    std::uint64_t pyq) {
  const double u = resume_u_draw(m.prefix[b], pxq, pyq);
  const double r = m.range * (1.0 + u * m.nf[b]);
  return d2 <= r * r;
}

/// Signature of a chunk evaluator arm: accumulate every candidate beacon
/// (indices into the SoA, ascending) into `npad` padded point lanes.
/// sx/sy/cnt are the chunk-local accumulators, zeroed by the driver.
using EvalChunkFn = void (*)(const FastView& m, const std::uint32_t* cand,
                             std::size_t ncand, const double* px,
                             const double* py, const std::uint64_t* pxq,
                             const std::uint64_t* pyq, std::size_t npad,
                             double* sx, double* sy, std::uint64_t* cnt);

#if defined(ABP_HAVE_AVX2_KERNEL)
/// The AVX2 arm (survey_kernel_avx2.cc, compiled with -mavx2). Only call
/// when __builtin_cpu_supports("avx2").
void eval_chunk_avx2(const FastView& m, const std::uint32_t* cand,
                     std::size_t ncand, const double* px, const double* py,
                     const std::uint64_t* pxq, const std::uint64_t* pyq,
                     std::size_t npad, double* sx, double* sy,
                     std::uint64_t* cnt);
#endif

}  // namespace abp::survey_detail
