#include "loc/survey_kernel.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "loc/survey_kernel_detail.h"
#include "radio/noise_model.h"
#include "rng/hash.h"

namespace abp {

using survey_detail::FastView;
using survey_detail::kChunk;
using survey_detail::kLanes;
using survey_detail::kPadSentinel;
using survey_detail::kReachSlack;

namespace {

/// The generic arm: same chunked shape as the AVX2 arm, plain C++ (the
/// compiler vectorizes the distance test where profitable; correctness
/// never depends on it).
void eval_chunk_generic(const FastView& m, const std::uint32_t* cand,
                        std::size_t ncand, const double* px, const double* py,
                        const std::uint64_t* pxq, const std::uint64_t* pyq,
                        std::size_t npad, double* sx, double* sy,
                        std::uint64_t* cnt) {
  for (std::size_t k = 0; k < ncand; ++k) {
    const std::uint32_t b = cand[k];
    const double bx = m.bx[b];
    const double by = m.by[b];
    for (std::size_t i = 0; i < npad; ++i) {
      const double dx = bx - px[i];
      const double dy = by - py[i];
      const double d2 = dx * dx + dy * dy;
      bool conn = d2 <= m.in2;
      if (!conn && m.band && d2 <= m.out2) {
        conn = survey_detail::band_connected(m, b, d2, pxq[i], pyq[i]);
      }
      if (conn) {
        sx[i] += bx;
        sy[i] += by;
        ++cnt[i];
      }
    }
  }
}

std::uint64_t quantize_word(double v) {
  return static_cast<std::uint64_t>(quantize_cm(v));
}

}  // namespace

SurveyKernel::SurveyKernel(const BeaconField& field,
                           const PropagationModel& model)
    : soa_(BeaconSoA::snapshot(field)), model_(&model) {
  if (const auto* noisy = dynamic_cast<const PerBeaconNoiseModel*>(&model)) {
    FastPath f;
    f.range = noisy->nominal_range();
    const double noise = noisy->noise_max();
    // Same products the scalar predicate computes per call, evaluated once.
    const double cin = f.range * (1.0 - noise);
    const double cout = f.range * (1.0 + noise);
    f.in2 = cin * cin;
    f.out2 = cout * cout;
    f.band = noise > 0.0;
    if (f.band) {
      f.nf.reserve(soa_.size());
      f.prefix.reserve(soa_.size());
      for (std::size_t i = 0; i < soa_.size(); ++i) {
        const Beacon b = soa_.beacon(i);
        f.nf.push_back(noisy->noise_factor(b));
        f.prefix.push_back(noisy->u_draw_prefix(b));
      }
    }
    fast_ = std::move(f);
  } else if (const auto* ideal = dynamic_cast<const IdealDiskModel*>(&model)) {
    FastPath f;
    f.range = ideal->nominal_range();
    f.in2 = f.out2 = f.range * f.range;
    f.band = false;
    fast_ = std::move(f);
  }
}

bool SurveyKernel::avx2_supported() {
#if defined(ABP_HAVE_AVX2_KERNEL)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SurveyBackend SurveyKernel::default_backend() {
  if (const char* env = std::getenv("ABP_SURVEY_BACKEND")) {
    if (std::strcmp(env, "scalar") == 0) return SurveyBackend::kScalar;
    if (std::strcmp(env, "generic") == 0) return SurveyBackend::kGeneric;
    if (std::strcmp(env, "avx2") == 0) return SurveyBackend::kAvx2;
  }
  return avx2_supported() ? SurveyBackend::kAvx2 : SurveyBackend::kGeneric;
}

void SurveyKernel::evaluate(SurveyBatch& batch) const {
  evaluate(batch, default_backend());
}

void SurveyKernel::evaluate(SurveyBatch& batch, SurveyBackend backend) const {
  if (!fast_) {
    evaluate_fallback(batch);
    return;
  }
  switch (backend) {
    case SurveyBackend::kScalar:
      evaluate_scalar(batch);
      break;
    case SurveyBackend::kGeneric:
      evaluate_chunked(batch, /*use_avx2=*/false);
      break;
    case SurveyBackend::kAvx2:
      // Degrades to the generic arm when AVX2 is compiled out/unsupported.
      evaluate_chunked(batch, avx2_supported());
      break;
  }
}

ConnectedSum SurveyKernel::point_fast(Vec2 p) const {
  const FastPath& f = *fast_;
  FastView m{soa_.xs.data(), soa_.ys.data(),  f.nf.data(), f.prefix.data(),
             f.range,        f.in2,           f.out2,      f.band};
  std::uint64_t pxq = 0;
  std::uint64_t pyq = 0;
  if (f.band) {
    pxq = quantize_word(p.x);
    pyq = quantize_word(p.y);
  }
  ConnectedSum out;
  for (std::size_t b = 0; b < soa_.size(); ++b) {
    const double dx = m.bx[b] - p.x;
    const double dy = m.by[b] - p.y;
    const double d2 = dx * dx + dy * dy;
    bool conn = d2 <= m.in2;
    if (!conn && m.band && d2 <= m.out2) {
      conn = survey_detail::band_connected(m, b, d2, pxq, pyq);
    }
    if (conn) {
      out.sum += Vec2{m.bx[b], m.by[b]};
      ++out.count;
    }
  }
  return out;
}

ConnectedSum SurveyKernel::point_fallback(Vec2 p) const {
  // Same cull the spatial index performed (distance <= max_range), then the
  // model's own predicate — beacons beyond max_range can never connect by
  // the PropagationModel contract.
  const double r = model_->max_range();
  const double r2 = r * r;
  ConnectedSum out;
  for (std::size_t b = 0; b < soa_.size(); ++b) {
    const double dx = soa_.xs[b] - p.x;
    const double dy = soa_.ys[b] - p.y;
    const double d2 = dx * dx + dy * dy;
    if (d2 > r2) continue;
    if (model_->connected(soa_.beacon(b), p)) {
      out.sum += Vec2{soa_.xs[b], soa_.ys[b]};
      ++out.count;
    }
  }
  return out;
}

ConnectedSum SurveyKernel::evaluate_point(Vec2 p) const {
  return fast_ ? point_fast(p) : point_fallback(p);
}

std::vector<Beacon> SurveyKernel::connected_list(Vec2 p) const {
  std::vector<Beacon> out;
  std::uint64_t pxq = 0;
  std::uint64_t pyq = 0;
  const bool band = fast_ && fast_->band;
  if (band) {
    pxq = quantize_word(p.x);
    pyq = quantize_word(p.y);
  }
  const double r = model_->max_range();
  const double r2 = r * r;
  for (std::size_t b = 0; b < soa_.size(); ++b) {
    const double dx = soa_.xs[b] - p.x;
    const double dy = soa_.ys[b] - p.y;
    const double d2 = dx * dx + dy * dy;
    bool conn;
    if (fast_) {
      conn = d2 <= fast_->in2;
      if (!conn && band && d2 <= fast_->out2) {
        FastView m{soa_.xs.data(), soa_.ys.data(),
                   fast_->nf.data(), fast_->prefix.data(),
                   fast_->range,     fast_->in2,
                   fast_->out2,      fast_->band};
        conn = survey_detail::band_connected(m, b, d2, pxq, pyq);
      }
    } else {
      conn = d2 <= r2 && model_->connected(soa_.beacon(b), p);
    }
    if (conn) out.push_back(soa_.beacon(b));
  }
  return out;
}

SurveyKernel::Hypothetical SurveyKernel::make_hypothetical(Vec2 pos) const {
  Hypothetical h;
  h.pos = pos;
  if (fast_ && fast_->band) {
    const auto* noisy = dynamic_cast<const PerBeaconNoiseModel*>(model_);
    const Beacon hb{std::numeric_limits<BeaconId>::max(), pos, true};
    h.nf = noisy->noise_factor(hb);
    h.prefix = noisy->u_draw_prefix(hb);
  }
  return h;
}

bool SurveyKernel::hypothetical_connected(const Hypothetical& h,
                                          Vec2 p) const {
  if (!fast_) {
    const Beacon hb{std::numeric_limits<BeaconId>::max(), h.pos, true};
    return model_->connected(hb, p);
  }
  const double dx = h.pos.x - p.x;
  const double dy = h.pos.y - p.y;
  const double d2 = dx * dx + dy * dy;
  if (d2 <= fast_->in2) return true;
  if (!fast_->band || d2 > fast_->out2) return false;
  const double u = survey_detail::resume_u_draw(h.prefix, quantize_word(p.x),
                                                quantize_word(p.y));
  const double r = fast_->range * (1.0 + u * h.nf);
  return d2 <= r * r;
}

void SurveyKernel::evaluate_scalar(SurveyBatch& batch) const {
  const std::size_t n = batch.size();
  batch.sum_x.assign(n, 0.0);
  batch.sum_y.assign(n, 0.0);
  batch.counts.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const ConnectedSum cs = point_fast(batch.point(i));
    batch.sum_x[i] = cs.sum.x;
    batch.sum_y[i] = cs.sum.y;
    batch.counts[i] = static_cast<std::uint32_t>(cs.count);
  }
}

void SurveyKernel::evaluate_fallback(SurveyBatch& batch) const {
  const std::size_t n = batch.size();
  batch.sum_x.assign(n, 0.0);
  batch.sum_y.assign(n, 0.0);
  batch.counts.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const ConnectedSum cs = point_fallback(batch.point(i));
    batch.sum_x[i] = cs.sum.x;
    batch.sum_y[i] = cs.sum.y;
    batch.counts[i] = static_cast<std::uint32_t>(cs.count);
  }
}

void SurveyKernel::evaluate_chunked(SurveyBatch& batch, bool use_avx2) const {
  const std::size_t n = batch.size();
  batch.sum_x.assign(n, 0.0);
  batch.sum_y.assign(n, 0.0);
  batch.counts.assign(n, 0);
  if (n == 0 || soa_.empty()) return;

  const FastPath& f = *fast_;
  const FastView view{soa_.xs.data(), soa_.ys.data(),
                      f.nf.data(),    f.prefix.data(),
                      f.range,        f.in2,
                      f.out2,         f.band};
  const double reach = model_->max_range() + kReachSlack;

  std::vector<std::uint32_t> cand;
  cand.reserve(soa_.size());

  alignas(32) double px[kChunk];
  alignas(32) double py[kChunk];
  alignas(32) double sx[kChunk];
  alignas(32) double sy[kChunk];
  alignas(32) std::uint64_t pxq[kChunk];
  alignas(32) std::uint64_t pyq[kChunk];
  alignas(32) std::uint64_t cnt[kChunk];

  for (std::size_t start = 0; start < n; start += kChunk) {
    const std::size_t m = std::min(kChunk, n - start);
    const std::size_t npad = (m + kLanes - 1) / kLanes * kLanes;

    double minx = std::numeric_limits<double>::infinity();
    double maxx = -minx;
    double miny = minx;
    double maxy = -minx;
    for (std::size_t i = 0; i < m; ++i) {
      px[i] = batch.xs[start + i];
      py[i] = batch.ys[start + i];
      minx = std::min(minx, px[i]);
      maxx = std::max(maxx, px[i]);
      miny = std::min(miny, py[i]);
      maxy = std::max(maxy, py[i]);
    }
    for (std::size_t i = m; i < npad; ++i) {
      px[i] = kPadSentinel;
      py[i] = kPadSentinel;
      pxq[i] = 0;
      pyq[i] = 0;
    }
    if (f.band) {
      for (std::size_t i = 0; i < m; ++i) {
        pxq[i] = quantize_word(px[i]);
        pyq[i] = quantize_word(py[i]);
      }
    }

    // Chunk-level disk query: beacons outside the padded bounding box
    // cannot connect to any point of the chunk (reach includes slack so
    // rounding can never drop a reachable beacon). Ascending id survives
    // because the SoA is walked front to back.
    cand.clear();
    const double lox = minx - reach;
    const double hix = maxx + reach;
    const double loy = miny - reach;
    const double hiy = maxy + reach;
    for (std::size_t b = 0; b < soa_.size(); ++b) {
      if (soa_.xs[b] >= lox && soa_.xs[b] <= hix && soa_.ys[b] >= loy &&
          soa_.ys[b] <= hiy) {
        cand.push_back(static_cast<std::uint32_t>(b));
      }
    }

    for (std::size_t i = 0; i < npad; ++i) {
      sx[i] = 0.0;
      sy[i] = 0.0;
      cnt[i] = 0;
    }

#if defined(ABP_HAVE_AVX2_KERNEL)
    if (use_avx2) {
      survey_detail::eval_chunk_avx2(view, cand.data(), cand.size(), px, py,
                                     pxq, pyq, npad, sx, sy, cnt);
    } else
#else
    (void)use_avx2;
#endif
    {
      eval_chunk_generic(view, cand.data(), cand.size(), px, py, pxq, pyq,
                         npad, sx, sy, cnt);
    }

    for (std::size_t i = 0; i < m; ++i) {
      batch.sum_x[start + i] = sx[i];
      batch.sum_y[start + i] = sy[i];
      batch.counts[start + i] = static_cast<std::uint32_t>(cnt[i]);
    }
  }
}

}  // namespace abp
