#include "loc/coverage.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/assert.h"
#include "loc/connectivity.h"

namespace abp {

namespace {

/// Minimal union-find over dense indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

CoverageStats analyze_coverage(const BeaconField& field,
                               const PropagationModel& model,
                               const Lattice2D& lattice, std::size_t k_max) {
  ABP_CHECK(k_max >= 1, "k_max must be at least 1");
  CoverageStats stats;
  stats.covered_fraction.assign(k_max, 0.0);

  // k-coverage over the lattice: one batched kernel pass for the counts.
  const SurveyKernel kernel(field, model);
  SurveyBatch batch;
  batch.reserve(lattice.size());
  lattice.for_each([&](std::size_t, Vec2 p) { batch.push(p); });
  kernel.evaluate(batch);
  std::vector<std::size_t> hits(k_max, 0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::size_t n = batch.counts[i];
    for (std::size_t k = 1; k <= k_max; ++k) {
      if (n >= k) ++hits[k - 1];
    }
  }
  for (std::size_t k = 0; k < k_max; ++k) {
    stats.covered_fraction[k] =
        static_cast<double>(hits[k]) / static_cast<double>(lattice.size());
  }

  // Beacon communication graph: beacons are "linked" when one hears the
  // other's transmissions (we use b→a reachability; with symmetric models
  // this is an undirected edge).
  std::vector<Beacon> beacons;
  field.for_each_active([&](const Beacon& b) { beacons.push_back(b); });
  if (beacons.empty()) return stats;

  std::unordered_map<BeaconId, std::size_t> dense;
  for (std::size_t i = 0; i < beacons.size(); ++i) {
    dense[beacons[i].id] = i;
  }
  UnionFind uf(beacons.size());
  std::vector<std::size_t> degree(beacons.size(), 0);
  for (std::size_t i = 0; i < beacons.size(); ++i) {
    field.query_disk(beacons[i].pos, model.max_range(),
                     [&](const Beacon& other) {
                       if (other.id == beacons[i].id) return;
                       if (!model.connected(other, beacons[i].pos)) return;
                       uf.unite(i, dense[other.id]);
                       ++degree[i];
                     });
  }

  std::unordered_map<std::size_t, std::size_t> component_size;
  for (std::size_t i = 0; i < beacons.size(); ++i) {
    ++component_size[uf.find(i)];
    if (degree[i] == 0) ++stats.isolated_beacons;
  }
  stats.components = component_size.size();
  for (const auto& [root, size] : component_size) {
    stats.largest_component = std::max(stats.largest_component, size);
  }
  return stats;
}

}  // namespace abp
