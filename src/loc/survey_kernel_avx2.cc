/// \file survey_kernel_avx2.cc
/// \brief AVX2 arm of the survey kernel: 4 points per vector.
///
/// Compiled with `-mavx2` (never `-mfma` / `-march=native`): without the FMA
/// ISA the compiler cannot contract mul+add, so the lane arithmetic here is
/// the same plain IEEE sequence as the scalar arms — that, plus ascending-id
/// beacon order, is what makes the arms bit-identical.
#if defined(ABP_HAVE_AVX2_KERNEL) && defined(__AVX2__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "loc/survey_kernel_detail.h"

namespace abp::survey_detail {

namespace {

/// Lane-select masks indexed by a 4-bit movemask: lane i is all-ones when
/// bit i is set. Used to add a beacon's position into exactly the connected
/// lanes (adding +0.0 to the rest, which cannot flip an accumulator's sign
/// because ascending-order partial sums never produce -0.0).
alignas(32) constexpr std::uint64_t kLaneMask[16][4] = {
    {0, 0, 0, 0},    {~0ULL, 0, 0, 0},
    {0, ~0ULL, 0, 0},    {~0ULL, ~0ULL, 0, 0},
    {0, 0, ~0ULL, 0},    {~0ULL, 0, ~0ULL, 0},
    {0, ~0ULL, ~0ULL, 0},    {~0ULL, ~0ULL, ~0ULL, 0},
    {0, 0, 0, ~0ULL},    {~0ULL, 0, 0, ~0ULL},
    {0, ~0ULL, 0, ~0ULL},    {~0ULL, ~0ULL, 0, ~0ULL},
    {0, 0, ~0ULL, ~0ULL},    {~0ULL, 0, ~0ULL, ~0ULL},
    {0, ~0ULL, ~0ULL, ~0ULL},    {~0ULL, ~0ULL, ~0ULL, ~0ULL},
};

}  // namespace

void eval_chunk_avx2(const FastView& m, const std::uint32_t* cand,
                     std::size_t ncand, const double* px, const double* py,
                     const std::uint64_t* pxq, const std::uint64_t* pyq,
                     std::size_t npad, double* sx, double* sy,
                     std::uint64_t* cnt) {
  const __m256d vin2 = _mm256_set1_pd(m.in2);
  const __m256d vout2 = _mm256_set1_pd(m.out2);
  const __m256i vone = _mm256_set1_epi64x(1);
  alignas(32) double d2lane[kLanes];

  for (std::size_t k = 0; k < ncand; ++k) {
    const std::uint32_t b = cand[k];
    const __m256d vbx = _mm256_set1_pd(m.bx[b]);
    const __m256d vby = _mm256_set1_pd(m.by[b]);

    for (std::size_t i = 0; i < npad; i += kLanes) {
      const __m256d vpx = _mm256_load_pd(px + i);
      const __m256d vpy = _mm256_load_pd(py + i);
      const __m256d dx = _mm256_sub_pd(vbx, vpx);
      const __m256d dy = _mm256_sub_pd(vby, vpy);
      const __m256d d2 =
          _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));

      const __m256d min = _mm256_cmp_pd(d2, vin2, _CMP_LE_OQ);
      int conn = _mm256_movemask_pd(min);
      if (m.band) {
        // Lanes inside the uncertainty band: past certain-in, within
        // certain-out. Resolve each with the per-lane hash draw.
        const __m256d mout = _mm256_cmp_pd(d2, vout2, _CMP_LE_OQ);
        int bandmask = _mm256_movemask_pd(_mm256_andnot_pd(min, mout));
        if (bandmask) {
          _mm256_store_pd(d2lane, d2);
          do {
            const int lane = __builtin_ctz(static_cast<unsigned>(bandmask));
            bandmask &= bandmask - 1;
            if (band_connected(m, b, d2lane[lane], pxq[i + lane],
                               pyq[i + lane])) {
              conn |= 1 << lane;
            }
          } while (bandmask);
        }
      }
      if (!conn) continue;

      const __m256d mask = _mm256_load_pd(
          reinterpret_cast<const double*>(kLaneMask[conn]));
      const __m256d asx = _mm256_load_pd(sx + i);
      const __m256d asy = _mm256_load_pd(sy + i);
      _mm256_store_pd(sx + i,
                      _mm256_add_pd(asx, _mm256_and_pd(mask, vbx)));
      _mm256_store_pd(sy + i,
                      _mm256_add_pd(asy, _mm256_and_pd(mask, vby)));
      const __m256i acnt = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(cnt + i));
      const __m256i inc =
          _mm256_and_si256(_mm256_castpd_si256(mask), vone);
      _mm256_store_si256(reinterpret_cast<__m256i*>(cnt + i),
                         _mm256_add_epi64(acnt, inc));
    }
  }
}

}  // namespace abp::survey_detail

#endif  // ABP_HAVE_AVX2_KERNEL && __AVX2__
