/// \file coverage.h
/// \brief Coverage and connectivity analysis of a beacon field.
///
/// §1 suggests the placement algorithms "may generalize to other problem
/// domains where node placement is rather critical: global coverage or
/// universal connectivity in wireless sensor networks". This module
/// provides the metrics those domains optimize:
///  * k-coverage — the fraction of the terrain hearing at least k beacons
///    (k=1 is plain coverage; localization quality needs k ≥ 3-ish);
///  * the beacon communication graph — which beacons can hear each other —
///    and its connected components (a partitioned field cannot flood-
///    disseminate calibration data; "universal connectivity" means one
///    component).
#pragma once

#include <cstddef>
#include <vector>

#include "field/beacon_field.h"
#include "geom/lattice.h"
#include "radio/propagation.h"

namespace abp {

struct CoverageStats {
  /// covered_fraction[k-1] = fraction of lattice points hearing ≥ k
  /// beacons, for k = 1..k_max.
  std::vector<double> covered_fraction;
  /// Connected components of the beacon communication graph (0 for an
  /// empty field).
  std::size_t components = 0;
  /// Beacons hearing no other beacon.
  std::size_t isolated_beacons = 0;
  /// Size of the largest component (beacons).
  std::size_t largest_component = 0;

  /// Convenience: fraction hearing at least k beacons.
  double at_least(std::size_t k) const {
    return k == 0 || k > covered_fraction.size() ? (k == 0 ? 1.0 : 0.0)
                                                 : covered_fraction[k - 1];
  }
};

/// Analyze `field` under `model` over the survey lattice.
CoverageStats analyze_coverage(const BeaconField& field,
                               const PropagationModel& model,
                               const Lattice2D& lattice,
                               std::size_t k_max = 3);

}  // namespace abp
