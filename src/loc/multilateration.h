/// \file multilateration.h
/// \brief Multilateration localization + GDOP (§6 future work).
///
/// The paper contrasts proximity localization (error governed by beacon
/// placement/density) with multilateration (error governed by beacon
/// *geometry*) and proposes recasting the placement algorithms for it. This
/// module provides the substrate for that comparison:
///  * `RangingModel` — range estimates to in-range beacons with
///    multiplicative noise, hash-derived so they are static per
///    (beacon, point) pair (like the connectivity noise);
///  * `MultilaterationLocalizer` — nonlinear least squares (Gauss–Newton)
///    position fit from three or more ranges, centroid-seeded;
///  * `gdop` — geometric dilution of precision, the classical measure of
///    how beacon geometry amplifies ranging error (collinear beacons ⇒
///    unbounded GDOP), which drives the GDOP-based placement extension.
#pragma once

#include <optional>
#include <vector>

#include "field/beacon_field.h"
#include "radio/propagation.h"

namespace abp {

/// A range (distance) measurement to one beacon.
struct RangeMeasurement {
  Beacon beacon;
  double range = 0.0;  ///< estimated distance (meters)
};

/// Produces distance estimates to every connected beacon. Multiplicative
/// Gaussian noise with relative std-dev `sigma_rel` (e.g. 0.05 = 5%),
/// deterministic per (beacon position, point).
class RangingModel {
 public:
  RangingModel(const PropagationModel& connectivity, double sigma_rel,
               std::uint64_t seed);

  /// Measurements to all connected beacons, ascending beacon id.
  std::vector<RangeMeasurement> measure(const BeaconField& field,
                                        Vec2 point) const;

  double sigma_rel() const { return sigma_rel_; }

 private:
  const PropagationModel* connectivity_;
  double sigma_rel_;
  std::uint64_t seed_;
};

/// Result of a multilateration fit.
struct MultilaterationResult {
  Vec2 estimate;
  std::size_t beacons_used = 0;
  bool converged = false;  ///< false ⇒ centroid fallback was returned
};

class MultilaterationLocalizer {
 public:
  MultilaterationLocalizer(const BeaconField& field,
                           const RangingModel& ranging)
      : field_(&field), ranging_(&ranging) {}

  /// Least-squares position estimate at `point`. With fewer than 3 ranges
  /// (or a degenerate geometry) falls back to the centroid of the ranged
  /// beacons and reports converged = false.
  MultilaterationResult localize(Vec2 point) const;

  double error(Vec2 point) const {
    return distance(localize(point).estimate, point);
  }

 private:
  const BeaconField* field_;
  const RangingModel* ranging_;
};

/// Geometric dilution of precision of the beacon geometry seen from `point`:
/// sqrt(trace((HᵀH)⁻¹)) with H the unit-vector Jacobian. Returns
/// `kGdopSingular` for fewer than 3 beacons or (near-)collinear geometry.
double gdop(Vec2 point, const std::vector<Beacon>& beacons);

inline constexpr double kGdopSingular = 1e9;

}  // namespace abp
