/// \file region_localizer.h
/// \brief Full-locus-information localization (§2.2 footnote 3 and §6).
///
/// The centroid-of-beacons estimate "summarizes the locus"; the paper notes
/// that "an alternative representation of the localization estimate is the
/// full locus information" and suggests (§6) pursuing locus-based methods
/// "from a theoretical standpoint". This localizer computes that estimate:
/// the centroid of the *feasible region* — all positions whose connectivity
/// signature (which beacons are heard AND which nearby beacons are not)
/// matches the client's observation. Under the idealized disk model this is
/// the centroid of an intersection of disks minus the in-range non-heard
/// disks, i.e. the optimal estimate under a uniform position prior.
///
/// The region is integrated numerically on a sampling grid clipped to the
/// bounding box of the connected disks. As the paper warns, "the locus
/// information is not reliable under non ideal radio propagation": with a
/// noisy model the signature match is evaluated through the same noisy
/// predicate, and the region may come out empty — the estimator then falls
/// back to the plain beacon centroid (reported via `used_region = false`).
#pragma once

#include "field/beacon_field.h"
#include "loc/localizer.h"
#include "radio/propagation.h"

namespace abp {

struct RegionLocalizationResult {
  Vec2 estimate;
  std::size_t connected = 0;   ///< beacons heard
  bool used_region = false;    ///< false ⇒ centroid fallback was returned
  double region_area = 0.0;    ///< sampled feasible-region area (m²)
};

class RegionLocalizer {
 public:
  /// `sample_step`: spacing of the numeric integration grid (meters).
  RegionLocalizer(const BeaconField& field, const PropagationModel& model,
                  double sample_step = 1.0);

  RegionLocalizationResult localize(Vec2 point) const;

  double error(Vec2 point) const {
    return distance(localize(point).estimate, point);
  }

 private:
  const BeaconField* field_;
  const PropagationModel* model_;
  double sample_step_;
};

}  // namespace abp
