#include "loc/survey_data.h"

#include "common/assert.h"
#include "common/stats.h"

namespace abp {

SurveyData::SurveyData(const Lattice2D& lattice)
    : lattice_(lattice),
      values_(lattice.nx(), lattice.ny(), 0.0),
      mask_(lattice.nx(), lattice.ny(), 0) {}

void SurveyData::record(std::size_t flat, double measured_error) {
  ABP_CHECK(measured_error >= 0.0, "negative measured error");
  if (mask_[flat]) {
    sum_ -= values_[flat];
  } else {
    mask_[flat] = 1;
    ++measured_count_;
  }
  values_[flat] = measured_error;
  sum_ += measured_error;
}

double SurveyData::coverage() const {
  return static_cast<double>(measured_count_) /
         static_cast<double>(lattice_.size());
}

double SurveyData::mean() const {
  return measured_count_ ? sum_ / static_cast<double>(measured_count_) : 0.0;
}

double SurveyData::median() const {
  if (measured_count_ == 0) return 0.0;
  std::vector<double> vals;
  vals.reserve(measured_count_);
  for (std::size_t i = 0; i < mask_.size(); ++i) {
    if (mask_[i]) vals.push_back(values_[i]);
  }
  return abp::median(vals);
}

void SurveyData::merge(const SurveyData& other) {
  ABP_CHECK(lattice_.nx() == other.lattice_.nx() &&
                lattice_.ny() == other.lattice_.ny() &&
                lattice_.step() == other.lattice_.step(),
            "cannot merge surveys over different lattices");
  for (std::size_t flat = 0; flat < lattice_.size(); ++flat) {
    if (other.measured(flat)) record(flat, other.value(flat));
  }
}

void SurveyData::suppress_disk(Vec2 center, double radius) {
  lattice_.for_each_in_disk(center, radius, [&](std::size_t flat, Vec2) {
    if (!mask_[flat]) return;
    sum_ -= values_[flat];
    values_[flat] = 0.0;
  });
}

SurveyData SurveyData::from_error_map(const ErrorMap& map) {
  SurveyData data(map.lattice());
  for (std::size_t i = 0; i < map.lattice().size(); ++i) {
    data.record(i, map.value(i));
  }
  return data;
}

}  // namespace abp
