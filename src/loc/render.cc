#include "loc/render.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/assert.h"

namespace abp {

namespace {
constexpr const char* kShades = " .:-=+*#%@";
constexpr std::size_t kShadeCount = 10;
}  // namespace

void render_error_map(std::ostream& out, const ErrorMap& map,
                      const BeaconField* field,
                      const RenderOptions& options) {
  ABP_CHECK(options.cell >= 1, "cell must be at least 1");
  ABP_CHECK(options.meters_per_shade > 0.0,
            "meters_per_shade must be positive");
  const Lattice2D& lattice = map.lattice();

  // Character raster dimensions.
  const std::size_t cols = (lattice.nx() + options.cell - 1) / options.cell;
  const std::size_t rows = (lattice.ny() + options.cell - 1) / options.cell;
  std::vector<std::string> raster(rows, std::string(cols, ' '));

  for (std::size_t j = 0; j < lattice.ny(); j += options.cell) {
    for (std::size_t i = 0; i < lattice.nx(); i += options.cell) {
      const double e = map.value(lattice.index(i, j));
      const auto shade = std::min<std::size_t>(
          kShadeCount - 1,
          static_cast<std::size_t>(e / options.meters_per_shade));
      raster[j / options.cell][i / options.cell] = kShades[shade];
    }
  }

  if (options.show_beacons && field != nullptr) {
    BeaconId newest = 0;
    bool any = false;
    field->for_each_active([&](const Beacon& b) {
      newest = std::max(newest, b.id);
      any = true;
    });
    field->for_each_active([&](const Beacon& b) {
      const auto [i, j] = lattice.coords(lattice.nearest(b.pos));
      const std::size_t ci = std::min(i / options.cell, cols - 1);
      const std::size_t cj = std::min(j / options.cell, rows - 1);
      raster[cj][ci] = (any && b.id == newest) ? 'O' : 'o';
    });
  }

  for (std::size_t r = rows; r-- > 0;) {
    out << raster[r] << '\n';
  }
}

std::string render_legend(const RenderOptions& options) {
  std::string legend = "shade:";
  for (std::size_t s = 0; s < kShadeCount; ++s) {
    legend += " '";
    legend += kShades[s];
    legend += "'<";
    const double hi = options.meters_per_shade * static_cast<double>(s + 1);
    char buf[16];
    std::snprintf(buf, sizeof buf, "%g", hi);
    legend += buf;
    legend += "m";
  }
  legend += " | beacons: o (newest O)";
  return legend;
}

}  // namespace abp
