#include "loc/error_map.h"

#include <limits>

#include "common/assert.h"
#include "loc/connectivity.h"

namespace abp {

ErrorMap::ErrorMap(const Lattice2D& lattice)
    : lattice_(lattice),
      err_(lattice.nx(), lattice.ny(), 0.0),
      conn_(lattice.nx(), lattice.ny(), 0) {}

double ErrorMap::point_error(const BeaconField& field,
                             const PropagationModel& model, Vec2 p,
                             std::size_t* count_out) const {
  const ConnectedSum cs = connected_sum(field, model, p);
  if (count_out) *count_out = cs.count;
  const Vec2 est = cs.count == 0 ? field.active_centroid()
                                 : cs.sum / static_cast<double>(cs.count);
  return distance(est, p);
}

void ErrorMap::set_value(std::size_t flat, double v) {
  sum_ += v - err_[flat];
  err_[flat] = v;
}

void ErrorMap::compute(const BeaconField& field,
                       const PropagationModel& model) {
  sum_ = 0.0;
  lattice_.for_each([&](std::size_t flat, Vec2 p) {
    std::size_t n = 0;
    const double e = point_error(field, model, p, &n);
    err_[flat] = e;
    conn_[flat] = static_cast<std::uint16_t>(n);
    sum_ += e;
  });
}

void ErrorMap::apply_addition(const BeaconField& field,
                              const PropagationModel& model,
                              const Beacon& beacon) {
  ABP_DCHECK(field.get(beacon.id).has_value(),
             "beacon must already be in the field");
  // 1. Points within reach of the new beacon: full recompute.
  lattice_.for_each_in_disk(
      beacon.pos, model.max_range(), [&](std::size_t flat, Vec2 p) {
        std::size_t n = 0;
        set_value(flat, point_error(field, model, p, &n));
        conn_[flat] = static_cast<std::uint16_t>(n);
      });
  // 2. Still-uncovered points elsewhere: fallback estimate moved with the
  // field centroid; no connectivity can have changed for them.
  const Vec2 centroid = field.active_centroid();
  const double reach = model.max_range();
  const double reach2 = reach * reach;
  lattice_.for_each([&](std::size_t flat, Vec2 p) {
    if (conn_[flat] != 0) return;
    if (distance_sq(p, beacon.pos) <= reach2) return;  // handled above
    set_value(flat, distance(centroid, p));
  });
}

void ErrorMap::apply_removal(const BeaconField& field,
                             const PropagationModel& model, Vec2 removed_pos) {
  lattice_.for_each_in_disk(
      removed_pos, model.max_range(), [&](std::size_t flat, Vec2 p) {
        std::size_t n = 0;
        set_value(flat, point_error(field, model, p, &n));
        conn_[flat] = static_cast<std::uint16_t>(n);
      });
  const Vec2 centroid = field.active_centroid();
  const double reach = model.max_range();
  const double reach2 = reach * reach;
  lattice_.for_each([&](std::size_t flat, Vec2 p) {
    if (conn_[flat] != 0) return;
    if (distance_sq(p, removed_pos) <= reach2) return;
    set_value(flat, distance(centroid, p));
  });
}

double ErrorMap::mean_if_added(const BeaconField& field,
                               const PropagationModel& model, Vec2 pos) const {
  // Hypothetical beacon: id is irrelevant to propagation (noise draws are
  // keyed by position), so any placeholder works.
  const Beacon hypothetical{std::numeric_limits<BeaconId>::max(), pos, true};
  const std::size_t active_n = field.active_count();
  const Vec2 new_centroid =
      active_n + 1 == 0
          ? field.bounds().center()
          : (field.active_centroid() * static_cast<double>(active_n) + pos) /
                static_cast<double>(active_n + 1);

  double delta = 0.0;
  const double reach = model.max_range();
  const double reach2 = reach * reach;

  // Points the new beacon might reach: recompute with the extra candidate.
  // The candidate is summed last, matching the canonical id order of
  // `connected_sum` once the beacon is actually added (new ids are always
  // the highest in the field), so the prediction is bit-exact.
  lattice_.for_each_in_disk(pos, reach, [&](std::size_t flat, Vec2 p) {
    ConnectedSum cs = connected_sum(field, model, p);
    if (model.connected(hypothetical, p)) {
      cs.sum += pos;
      ++cs.count;
    }
    const Vec2 est = cs.count == 0 ? new_centroid
                                   : cs.sum / static_cast<double>(cs.count);
    delta += distance(est, p) - err_[flat];
  });

  // Uncovered points out of reach: fallback moves to the new centroid.
  lattice_.for_each([&](std::size_t flat, Vec2 p) {
    if (conn_[flat] != 0) return;
    if (distance_sq(p, pos) <= reach2) return;
    delta += distance(new_centroid, p) - err_[flat];
  });

  return (sum_ + delta) / static_cast<double>(lattice_.size());
}

double ErrorMap::mean() const {
  return sum_ / static_cast<double>(lattice_.size());
}

double ErrorMap::median() const { return abp::median(err_.data()); }

Summary ErrorMap::summary() const { return summarize(err_.data()); }

double ErrorMap::uncovered_fraction() const {
  std::size_t n = 0;
  for (std::uint16_t c : conn_.data()) {
    if (c == 0) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(conn_.size());
}

}  // namespace abp
