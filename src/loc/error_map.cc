#include "loc/error_map.h"

#include <limits>

#include "common/assert.h"

namespace abp {

namespace {

/// Centroid estimate + distance-to-truth epilogue shared by every sweep:
/// same expression the scalar localizer evaluates per point.
double estimate_error(const ConnectedSum& cs, Vec2 fallback, Vec2 p) {
  const Vec2 est =
      cs.count == 0 ? fallback : cs.sum / static_cast<double>(cs.count);
  return distance(est, p);
}

}  // namespace

ErrorMap::ErrorMap(const Lattice2D& lattice)
    : lattice_(lattice),
      err_(lattice.nx(), lattice.ny(), 0.0),
      conn_(lattice.nx(), lattice.ny(), 0) {}

void ErrorMap::set_value(std::size_t flat, double v) {
  sum_ += v - err_[flat];
  err_[flat] = v;
}

void ErrorMap::compute(const BeaconField& field,
                       const PropagationModel& model) {
  compute(field, SurveyKernel(field, model));
}

void ErrorMap::compute(const BeaconField& field, const SurveyKernel& kernel) {
  scratch_.clear();
  scratch_.reserve(lattice_.size());
  lattice_.for_each([&](std::size_t, Vec2 p) { scratch_.push(p); });
  kernel.evaluate(scratch_);

  const Vec2 centroid = field.active_centroid();
  sum_ = 0.0;
  std::size_t i = 0;
  lattice_.for_each([&](std::size_t flat, Vec2 p) {
    const ConnectedSum cs = scratch_.result(i++);
    const double e = estimate_error(cs, centroid, p);
    err_[flat] = e;
    conn_[flat] = static_cast<std::uint16_t>(cs.count);
    sum_ += e;
  });
}

void ErrorMap::apply_addition(const BeaconField& field,
                              const PropagationModel& model,
                              const Beacon& beacon) {
  apply_addition(field, SurveyKernel(field, model), beacon);
}

void ErrorMap::apply_addition(const BeaconField& field,
                              const SurveyKernel& kernel,
                              const Beacon& beacon) {
  ABP_DCHECK(field.get(beacon.id).has_value(),
             "beacon must already be in the field");
  const Vec2 centroid = field.active_centroid();
  const double reach = kernel.model().max_range();
  const double reach2 = reach * reach;

  // 1. Points within reach of the new beacon: full recompute, batched.
  scratch_.clear();
  lattice_.for_each_in_disk(beacon.pos, reach,
                            [&](std::size_t, Vec2 p) { scratch_.push(p); });
  kernel.evaluate(scratch_);
  std::size_t i = 0;
  lattice_.for_each_in_disk(
      beacon.pos, reach, [&](std::size_t flat, Vec2 p) {
        const ConnectedSum cs = scratch_.result(i++);
        set_value(flat, estimate_error(cs, centroid, p));
        conn_[flat] = static_cast<std::uint16_t>(cs.count);
      });

  // 2. Still-uncovered points elsewhere: fallback estimate moved with the
  // field centroid; no connectivity can have changed for them.
  lattice_.for_each([&](std::size_t flat, Vec2 p) {
    if (conn_[flat] != 0) return;
    if (distance_sq(p, beacon.pos) <= reach2) return;  // handled above
    set_value(flat, distance(centroid, p));
  });
}

void ErrorMap::apply_removal(const BeaconField& field,
                             const PropagationModel& model, Vec2 removed_pos) {
  apply_removal(field, SurveyKernel(field, model), removed_pos);
}

void ErrorMap::apply_removal(const BeaconField& field,
                             const SurveyKernel& kernel, Vec2 removed_pos) {
  const Vec2 centroid = field.active_centroid();
  const double reach = kernel.model().max_range();
  const double reach2 = reach * reach;

  scratch_.clear();
  lattice_.for_each_in_disk(removed_pos, reach,
                            [&](std::size_t, Vec2 p) { scratch_.push(p); });
  kernel.evaluate(scratch_);
  std::size_t i = 0;
  lattice_.for_each_in_disk(
      removed_pos, reach, [&](std::size_t flat, Vec2 p) {
        const ConnectedSum cs = scratch_.result(i++);
        set_value(flat, estimate_error(cs, centroid, p));
        conn_[flat] = static_cast<std::uint16_t>(cs.count);
      });

  lattice_.for_each([&](std::size_t flat, Vec2 p) {
    if (conn_[flat] != 0) return;
    if (distance_sq(p, removed_pos) <= reach2) return;
    set_value(flat, distance(centroid, p));
  });
}

double ErrorMap::mean_if_added(const BeaconField& field,
                               const PropagationModel& model, Vec2 pos) const {
  return mean_if_added(field, SurveyKernel(field, model), pos);
}

double ErrorMap::mean_if_added(const BeaconField& field,
                               const SurveyKernel& kernel, Vec2 pos) const {
  // Hypothetical beacon: id is irrelevant to propagation (noise draws are
  // keyed by position), so the kernel precomputes its constants once.
  const SurveyKernel::Hypothetical hyp = kernel.make_hypothetical(pos);
  const std::size_t active_n = field.active_count();
  const Vec2 new_centroid =
      active_n + 1 == 0
          ? field.bounds().center()
          : (field.active_centroid() * static_cast<double>(active_n) + pos) /
                static_cast<double>(active_n + 1);

  double delta = 0.0;
  const double reach = kernel.model().max_range();
  const double reach2 = reach * reach;

  // Points the new beacon might reach: recompute with the extra candidate.
  // The candidate is summed last, matching the canonical id order of the
  // kernel once the beacon is actually added (new ids are always the
  // highest in the field), so the prediction is bit-exact.
  scratch_.clear();
  lattice_.for_each_in_disk(pos, reach,
                            [&](std::size_t, Vec2 p) { scratch_.push(p); });
  kernel.evaluate(scratch_);
  std::size_t i = 0;
  lattice_.for_each_in_disk(pos, reach, [&](std::size_t flat, Vec2 p) {
    ConnectedSum cs = scratch_.result(i++);
    if (kernel.hypothetical_connected(hyp, p)) {
      cs.sum += pos;
      ++cs.count;
    }
    delta += estimate_error(cs, new_centroid, p) - err_[flat];
  });

  // Uncovered points out of reach: fallback moves to the new centroid.
  lattice_.for_each([&](std::size_t flat, Vec2 p) {
    if (conn_[flat] != 0) return;
    if (distance_sq(p, pos) <= reach2) return;
    delta += distance(new_centroid, p) - err_[flat];
  });

  return (sum_ + delta) / static_cast<double>(lattice_.size());
}

double ErrorMap::mean() const {
  return sum_ / static_cast<double>(lattice_.size());
}

double ErrorMap::median() const { return abp::median(err_.data()); }

Summary ErrorMap::summary() const { return summarize(err_.data()); }

double ErrorMap::uncovered_fraction() const {
  std::size_t n = 0;
  for (std::uint16_t c : conn_.data()) {
    if (c == 0) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(conn_.size());
}

}  // namespace abp
