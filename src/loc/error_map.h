/// \file error_map.h
/// \brief Localization error over the survey lattice, with exact
/// incremental updates.
///
/// The evaluation (§4.1) measures LE at every lattice corner before and
/// after adding a beacon. Recomputing the full map after each candidate
/// placement would dominate runtime, so `ErrorMap` exploits the structure of
/// centroid localization:
///
///  * adding beacon B can change the connected set only at points within
///    `model.max_range()` of B — those are recomputed exactly;
///  * points that hear *no* beacon fall back to the field centroid (see
///    localizer.h), which shifts when the field changes — those points are
///    updated in O(#uncovered) without any connectivity queries.
///
/// All lattice sweeps evaluate through the batched `SurveyKernel`
/// (survey_kernel.h): points are gathered into a `SurveyBatch` and resolved
/// in one fused kernel call, then the scalar epilogue (centroid fallback,
/// distance-to-truth) runs per point. The result is bit-identical to the
/// historical per-point path and to a full recomputation (enforced by
/// property tests) at a fraction of the cost. A hypothetical-addition query
/// (`mean_if_added`) supports the greedy-oracle placement baseline without
/// mutating anything.
///
/// Each method has two forms: the `(field, model)` form snapshots a one-shot
/// kernel, and the `(field, kernel)` form takes a caller-held kernel so hot
/// loops (placement search, serving) amortize the snapshot. The kernel must
/// be a snapshot of `field`'s current revision.
#pragma once

#include <span>

#include "common/stats.h"
#include "field/beacon_field.h"
#include "geom/grid2d.h"
#include "geom/lattice.h"
#include "loc/survey_kernel.h"
#include "radio/propagation.h"

namespace abp {

class ErrorMap {
 public:
  explicit ErrorMap(const Lattice2D& lattice);

  const Lattice2D& lattice() const { return lattice_; }

  /// Full recomputation of LE (and connectivity counts) at every lattice
  /// point for the current field state.
  void compute(const BeaconField& field, const PropagationModel& model);
  void compute(const BeaconField& field, const SurveyKernel& kernel);

  /// Exact update after `beacon` has just been added to `field`.
  void apply_addition(const BeaconField& field, const PropagationModel& model,
                      const Beacon& beacon);
  void apply_addition(const BeaconField& field, const SurveyKernel& kernel,
                      const Beacon& beacon);

  /// Exact update after a beacon at `removed_pos` has just been removed
  /// from (or deactivated in) `field`.
  void apply_removal(const BeaconField& field, const PropagationModel& model,
                     Vec2 removed_pos);
  void apply_removal(const BeaconField& field, const SurveyKernel& kernel,
                     Vec2 removed_pos);

  /// Mean LE the map would have if a beacon were added at `pos` — computed
  /// without mutating the field or this map (greedy-oracle primitive).
  double mean_if_added(const BeaconField& field, const PropagationModel& model,
                       Vec2 pos) const;
  double mean_if_added(const BeaconField& field, const SurveyKernel& kernel,
                       Vec2 pos) const;

  /// LE value at a flat lattice index.
  double value(std::size_t flat) const { return err_[flat]; }
  /// Connected-beacon count at a flat lattice index.
  std::size_t connected(std::size_t flat) const { return conn_[flat]; }

  std::span<const double> values() const { return err_.data(); }

  /// Mean LE over all lattice points (O(1); maintained incrementally).
  double mean() const;
  /// Median LE over all lattice points (O(PT)).
  double median() const;
  /// Full summary (mean/median/quantiles/min/max).
  Summary summary() const;

  /// Fraction of lattice points hearing no beacon.
  double uncovered_fraction() const;

 private:
  void set_value(std::size_t flat, double v);

  Lattice2D lattice_;
  Grid2D<double> err_;
  Grid2D<std::uint16_t> conn_;
  double sum_ = 0.0;
  /// Reused point buffer for the batched sweeps. Makes concurrent calls on
  /// one ErrorMap (even const ones) a data race — match the map's existing
  /// single-writer discipline.
  mutable SurveyBatch scratch_;
};

}  // namespace abp
