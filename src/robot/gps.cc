#include "robot/gps.h"

#include "common/assert.h"

namespace abp {

GpsModel::GpsModel(double sigma) : sigma_(sigma) {
  ABP_CHECK(sigma >= 0.0, "GPS sigma must be non-negative");
}

Vec2 GpsModel::fix(Vec2 true_pos, Rng& rng) const {
  if (sigma_ == 0.0) return true_pos;
  return true_pos + Vec2{rng.normal(0.0, sigma_), rng.normal(0.0, sigma_)};
}

}  // namespace abp
