#include "robot/tour.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.h"

namespace abp {

std::vector<std::size_t> boustrophedon_tour(const Lattice2D& lattice,
                                            std::size_t stride) {
  ABP_CHECK(stride >= 1, "stride must be at least 1");
  std::vector<std::size_t> tour;
  bool reverse = false;
  for (std::size_t j = 0; j < lattice.ny(); j += stride) {
    std::vector<std::size_t> row;
    for (std::size_t i = 0; i < lattice.nx(); i += stride) {
      row.push_back(lattice.index(i, j));
    }
    if (reverse) std::reverse(row.begin(), row.end());
    tour.insert(tour.end(), row.begin(), row.end());
    reverse = !reverse;
  }
  return tour;
}

std::vector<std::size_t> random_walk_tour(const Lattice2D& lattice,
                                          Vec2 start, std::size_t steps,
                                          Rng& rng) {
  std::vector<std::size_t> tour;
  tour.reserve(steps + 1);
  std::size_t flat = lattice.nearest(start);
  tour.push_back(flat);
  for (std::size_t s = 0; s < steps; ++s) {
    auto [i, j] = lattice.coords(flat);
    // Candidate 4-neighbourhood moves that stay on the lattice.
    std::size_t candidates[4];
    std::size_t n = 0;
    if (i + 1 < lattice.nx()) candidates[n++] = lattice.index(i + 1, j);
    if (i > 0) candidates[n++] = lattice.index(i - 1, j);
    if (j + 1 < lattice.ny()) candidates[n++] = lattice.index(i, j + 1);
    if (j > 0) candidates[n++] = lattice.index(i, j - 1);
    flat = candidates[rng.below(n)];
    tour.push_back(flat);
  }
  return tour;
}

std::vector<std::size_t> subsample_tour(const Lattice2D& lattice,
                                        double fraction, Rng& rng) {
  ABP_CHECK(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
  std::vector<std::size_t> all(lattice.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  rng.shuffle(all);
  const auto keep = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(all.size())));
  all.resize(std::max<std::size_t>(1, keep));
  return all;
}

double tour_length(const Lattice2D& lattice,
                   const std::vector<std::size_t>& tour) {
  double total = 0.0;
  for (std::size_t k = 1; k < tour.size(); ++k) {
    total += distance(lattice.point(tour[k - 1]), lattice.point(tour[k]));
  }
  return total;
}

}  // namespace abp
