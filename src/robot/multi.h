/// \file multi.h
/// \brief Multi-robot surveying: partition the terrain among k agents.
///
/// The paper's procedure uses one mobile agent; a complete survey of the
/// Table-1 terrain is a ~10 km drive. With k robots each sweeping one
/// vertical strip in parallel, wall-clock survey time divides by ~k while
/// the merged survey is identical to a single complete pass. The cost
/// model (driving speed + per-measurement dwell) turns tours into hours,
/// so deployments can budget agents against staleness (see the
/// time-varying ablation for why staleness matters).
#pragma once

#include <vector>

#include "loc/survey_data.h"
#include "robot/surveyor.h"

namespace abp {

struct SurveyCostModel {
  double speed = 1.0;             ///< driving speed (m/s)
  double measurement_time = 2.0;  ///< dwell per measured point (s)

  /// Total time (s) to drive `distance` meters and take `points` readings.
  double time(double distance, std::size_t points) const {
    return distance / speed +
           measurement_time * static_cast<double>(points);
  }
};

struct MultiSurveyResult {
  SurveyData survey;                    ///< merged measurements
  std::vector<double> travel_distance;  ///< per robot (meters)
  std::vector<std::size_t> points;      ///< per robot (measurements)

  /// Wall-clock time: the slowest robot (they work in parallel).
  double makespan(const SurveyCostModel& cost) const;
  /// Total robot-time: sum over robots (energy/labour).
  double total_time(const SurveyCostModel& cost) const;
};

/// Survey the lattice with `robots` agents, each sweeping an equal strip
/// of lattice columns in a boustrophedon pattern at `stride`. The merged
/// survey covers exactly the union of the strips' lattice points.
MultiSurveyResult multi_robot_survey(const Surveyor& surveyor,
                                     const Lattice2D& lattice,
                                     std::size_t robots, std::size_t stride,
                                     Rng& rng);

}  // namespace abp
