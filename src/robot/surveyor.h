/// \file surveyor.h
/// \brief The exploring agent: walks a tour, measures localization error at
/// each visited point, and produces the `SurveyData` placement algorithms
/// consume (§3).
///
/// At each tour point the agent (1) obtains a GPS fix of its true position,
/// (2) runs the client localization algorithm with its sensor-class radio,
/// and (3) records |estimate − fix| — which equals the true LE only when
/// GPS is ideal. Optional additive measurement noise models radio
/// non-determinism the §3.1 baseline abstracts away. With the default
/// configuration (full tour, ideal GPS, zero noise) the survey equals the
/// ground-truth error map exactly; tests enforce that equivalence.
#pragma once

#include "field/beacon_field.h"
#include "loc/localizer.h"
#include "loc/survey_data.h"
#include "radio/propagation.h"
#include "robot/gps.h"
#include "robot/tour.h"
#include "rng/rng.h"

namespace abp {

struct SurveyorConfig {
  GpsModel gps{0.0};
  /// Std-dev of additive zero-mean Gaussian noise on each LE reading
  /// (meters); readings are clamped at 0.
  double measurement_noise = 0.0;
};

class Surveyor {
 public:
  Surveyor(const BeaconField& field, const PropagationModel& model,
           SurveyorConfig config = {});

  /// One measurement at a lattice point: localize with the sensor radio at
  /// the true position, difference against the GPS fix, add instrument
  /// noise. This is the primitive online explorers build on.
  double measure_point(const Lattice2D& lattice, std::size_t flat,
                       Rng& rng) const;

  /// Walk `tour` (flat lattice indices) and record one measurement per
  /// visited point. Later visits to the same point overwrite earlier ones.
  SurveyData survey(const Lattice2D& lattice,
                    const std::vector<std::size_t>& tour, Rng& rng) const;

  /// Convenience: complete boustrophedon survey (the §3.1 baseline).
  SurveyData survey_complete(const Lattice2D& lattice, Rng& rng) const;

 private:
  const BeaconField* field_;
  const PropagationModel* model_;
  /// Lives as long as the surveyor so the field snapshot inside its kernel
  /// is reused across measurements (rebuilt only when the field mutates
  /// between calls — e.g. the adaptive explorer deploying mid-tour).
  CentroidLocalizer localizer_;
  SurveyorConfig config_;
};

}  // namespace abp
