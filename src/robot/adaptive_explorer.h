/// \file adaptive_explorer.h
/// \brief Online, measurement-driven exploration — the generalization of
/// §3.1's "off-line algorithm with complete terrain exploration" that the
/// authors say they are "currently working on ways to generalize".
///
/// Complete exploration costs PT measurements and ~10 km of driving at the
/// paper's parameters. The adaptive explorer spends a fixed measurement
/// budget in two phases:
///
///  1. a coarse serpentine pass (stride `coarse_stride`) to sketch the
///     error landscape, then
///  2. iterative refinement: repeatedly take the measured point with the
///     highest reading whose neighbourhood is still unexplored, and
///     measure the unmeasured lattice points within `refine_radius` of it
///     (nearest first) — exactly where a subsequent Max/Grid placement
///     decision needs resolution, because high-error areas attract the
///     beacon.
///
/// The result is a partial `SurveyData` plus the tour actually driven, so
/// callers can trade placement quality against survey cost (see
/// bench_ablation_explorer).
#pragma once

#include <vector>

#include "loc/survey_data.h"
#include "robot/surveyor.h"

namespace abp {

struct ExplorerConfig {
  /// Stride of the coarse serpentine pass (lattice steps).
  std::size_t coarse_stride = 8;
  /// Total measurement budget, coarse pass included. 0 means "coarse pass
  /// only".
  std::size_t max_measurements = 1500;
  /// Neighbourhood radius refined around each selected hot spot (meters);
  /// the natural value is the radio range R.
  double refine_radius = 15.0;
};

struct ExplorationResult {
  SurveyData survey;
  /// Lattice points in visit order (coarse pass, then refinements).
  std::vector<std::size_t> tour;
  /// Greedy travel distance of `tour` (meters).
  double travel_distance = 0.0;
};

/// Run the two-phase exploration with `surveyor`'s instruments.
ExplorationResult explore_adaptive(const Surveyor& surveyor,
                                   const Lattice2D& lattice,
                                   const ExplorerConfig& config, Rng& rng);

}  // namespace abp
