#include "robot/surveyor.h"

#include <algorithm>

namespace abp {

Surveyor::Surveyor(const BeaconField& field, const PropagationModel& model,
                   SurveyorConfig config)
    : field_(&field),
      model_(&model),
      localizer_(field, model),
      config_(config) {}

double Surveyor::measure_point(const Lattice2D& lattice, std::size_t flat,
                               Rng& rng) const {
  const Vec2 true_pos = lattice.point(flat);
  // The agent's radio observes connectivity at its *true* position; the
  // GPS fix only affects where it believes it is.
  const Vec2 estimate = localizer_.localize(true_pos).estimate;
  const Vec2 fix = config_.gps.fix(true_pos, rng);
  double reading = distance(estimate, fix);
  if (config_.measurement_noise > 0.0) {
    reading += rng.normal(0.0, config_.measurement_noise);
  }
  return std::max(0.0, reading);
}

SurveyData Surveyor::survey(const Lattice2D& lattice,
                            const std::vector<std::size_t>& tour,
                            Rng& rng) const {
  SurveyData data(lattice);
  for (std::size_t flat : tour) {
    data.record(flat, measure_point(lattice, flat, rng));
  }
  return data;
}

SurveyData Surveyor::survey_complete(const Lattice2D& lattice,
                                     Rng& rng) const {
  return survey(lattice, boustrophedon_tour(lattice), rng);
}

}  // namespace abp
