#include "robot/adaptive_explorer.h"

#include <algorithm>

#include "common/assert.h"
#include "robot/tour.h"

namespace abp {

ExplorationResult explore_adaptive(const Surveyor& surveyor,
                                   const Lattice2D& lattice,
                                   const ExplorerConfig& config, Rng& rng) {
  ABP_CHECK(config.coarse_stride >= 1, "coarse stride must be >= 1");
  ABP_CHECK(config.refine_radius > 0.0, "refine radius must be positive");

  ExplorationResult result{SurveyData(lattice), {}, 0.0};
  std::vector<std::uint8_t> refined(lattice.size(), 0);

  const auto measure = [&](std::size_t flat) {
    result.survey.record(flat,
                         surveyor.measure_point(lattice, flat, rng));
    result.tour.push_back(flat);
  };

  // Phase 1: coarse serpentine sketch.
  for (std::size_t flat : boustrophedon_tour(lattice, config.coarse_stride)) {
    if (config.max_measurements != 0 &&
        result.tour.size() >= config.max_measurements) {
      break;
    }
    measure(flat);
  }

  // Phase 2: refine the hottest unexplored neighbourhoods.
  while (config.max_measurements != 0 &&
         result.tour.size() < config.max_measurements) {
    // Select the highest measured reading whose neighbourhood has not been
    // refined yet.
    double best = -1.0;
    std::size_t hot = lattice.size();
    for (std::size_t flat = 0; flat < lattice.size(); ++flat) {
      if (!result.survey.measured(flat) || refined[flat]) continue;
      if (result.survey.value(flat) > best) {
        best = result.survey.value(flat);
        hot = flat;
      }
    }
    if (hot == lattice.size()) break;  // everything measured is refined
    refined[hot] = 1;

    // Visit unmeasured points in the hot spot's neighbourhood, nearest
    // first (greedy short hops).
    const Vec2 center = lattice.point(hot);
    std::vector<std::pair<double, std::size_t>> todo;
    lattice.for_each_in_disk(center, config.refine_radius,
                             [&](std::size_t flat, Vec2 p) {
                               if (result.survey.measured(flat)) return;
                               todo.emplace_back(distance_sq(p, center), flat);
                             });
    std::sort(todo.begin(), todo.end());
    for (const auto& [d2, flat] : todo) {
      if (result.tour.size() >= config.max_measurements) break;
      measure(flat);
      // Refining a whole disk marks its interior as explored too, so the
      // selection loop does not immediately re-target a neighbour.
      refined[flat] = 1;
    }
  }

  result.travel_distance = tour_length(lattice, result.tour);
  return result;
}

}  // namespace abp
