/// \file tour.h
/// \brief Tour planners: the path the exploring agent walks while
/// instrumenting the terrain (§3).
///
/// A tour is the ordered list of lattice points the agent visits and
/// measures. The paper's baseline is complete exploration (§3.1) —
/// `boustrophedon_tour` with stride 1 visits every lattice point in a
/// serpentine sweep, the standard complete-coverage path for a ground
/// robot. Coarser strides, random walks and uniform subsampling model the
/// partial exploration the authors list as future generalization.
#pragma once

#include <vector>

#include "geom/lattice.h"
#include "rng/rng.h"

namespace abp {

/// Serpentine (lawnmower) sweep over the lattice: row 0 left→right, row
/// `stride` right→left, … Visits every `stride`-th row and every
/// `stride`-th point within a row; stride 1 is complete coverage. Returned
/// values are flat lattice indices in visit order.
std::vector<std::size_t> boustrophedon_tour(const Lattice2D& lattice,
                                            std::size_t stride = 1);

/// Random walk of `steps` lattice moves starting at the lattice point
/// nearest `start`; each move goes to a uniformly-chosen 4-neighbour
/// (staying in bounds). Revisited points appear once per visit.
std::vector<std::size_t> random_walk_tour(const Lattice2D& lattice,
                                          Vec2 start, std::size_t steps,
                                          Rng& rng);

/// A uniformly-random subset containing ceil(fraction · PT) distinct
/// lattice points, in randomized order.
std::vector<std::size_t> subsample_tour(const Lattice2D& lattice,
                                        double fraction, Rng& rng);

/// Total travel distance (meters) of a tour over the lattice.
double tour_length(const Lattice2D& lattice,
                   const std::vector<std::size_t>& tour);

}  // namespace abp
