/// \file gps.h
/// \brief GPS receiver model for the exploring agent (§3: "a high precision
/// differential GPS receiver").
///
/// The paper's baseline assumes the agent knows its position exactly; the
/// survey-realism extension perturbs each fix with isotropic Gaussian error
/// to study how placement quality degrades when the instrumenting agent is
/// less precise than differential GPS.
#pragma once

#include "geom/vec2.h"
#include "rng/rng.h"

namespace abp {

class GpsModel {
 public:
  /// `sigma` is the per-axis standard deviation of the fix error (meters);
  /// 0 models the paper's differential-GPS assumption.
  explicit GpsModel(double sigma = 0.0);

  /// A position fix for an agent truly located at `true_pos`.
  Vec2 fix(Vec2 true_pos, Rng& rng) const;

  double sigma() const { return sigma_; }
  bool ideal() const { return sigma_ == 0.0; }

 private:
  double sigma_;
};

}  // namespace abp
