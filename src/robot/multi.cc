#include "robot/multi.h"

#include <algorithm>

#include "common/assert.h"
#include "robot/tour.h"

namespace abp {

double MultiSurveyResult::makespan(const SurveyCostModel& cost) const {
  double worst = 0.0;
  for (std::size_t r = 0; r < travel_distance.size(); ++r) {
    worst = std::max(worst, cost.time(travel_distance[r], points[r]));
  }
  return worst;
}

double MultiSurveyResult::total_time(const SurveyCostModel& cost) const {
  double total = 0.0;
  for (std::size_t r = 0; r < travel_distance.size(); ++r) {
    total += cost.time(travel_distance[r], points[r]);
  }
  return total;
}

MultiSurveyResult multi_robot_survey(const Surveyor& surveyor,
                                     const Lattice2D& lattice,
                                     std::size_t robots, std::size_t stride,
                                     Rng& rng) {
  ABP_CHECK(robots >= 1, "need at least one robot");
  ABP_CHECK(stride >= 1, "stride must be at least 1");

  MultiSurveyResult result{SurveyData(lattice), {}, {}};

  // Equal column strips: robot r gets columns [r*W, (r+1)*W).
  const std::size_t columns = lattice.nx();
  ABP_CHECK(robots <= columns, "more robots than lattice columns");
  for (std::size_t r = 0; r < robots; ++r) {
    const std::size_t lo = r * columns / robots;
    const std::size_t hi = (r + 1) * columns / robots;
    // Boustrophedon within the strip.
    std::vector<std::size_t> tour;
    bool reverse = false;
    for (std::size_t j = 0; j < lattice.ny(); j += stride) {
      std::vector<std::size_t> row;
      for (std::size_t i = lo; i < hi; i += stride) {
        row.push_back(lattice.index(i, j));
      }
      if (reverse) std::reverse(row.begin(), row.end());
      tour.insert(tour.end(), row.begin(), row.end());
      reverse = !reverse;
    }
    for (std::size_t flat : tour) {
      result.survey.record(flat,
                           surveyor.measure_point(lattice, flat, rng));
    }
    result.travel_distance.push_back(tour_length(lattice, tour));
    result.points.push_back(tour.size());
  }
  return result;
}

}  // namespace abp
