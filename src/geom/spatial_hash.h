/// \file spatial_hash.h
/// \brief Uniform-cell spatial index over points.
///
/// Connectivity evaluation asks "which beacons are within range of P?" for
/// every lattice point × every trial; a uniform-grid bucket index turns that
/// from O(#beacons) into O(#beacons within ~range). Cell size should be the
/// maximum query radius (the radio model's `max_range()`), so a disk query
/// touches at most a 3×3 block of cells.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "geom/aabb.h"
#include "geom/vec2.h"

namespace abp {

class SpatialHash {
 public:
  /// `cell_size` is the bucket edge length (meters).
  explicit SpatialHash(double cell_size);

  double cell_size() const { return cell_size_; }
  std::size_t size() const { return count_; }

  /// Insert an item with external id at `pos`. Ids need not be unique, but
  /// `remove` erases only one matching (id, pos) entry.
  void insert(std::uint32_t id, Vec2 pos);

  /// Remove one entry with this id from the bucket containing `pos`.
  /// Returns false if no such entry exists.
  bool remove(std::uint32_t id, Vec2 pos);

  /// Invoke `fn(id, pos)` for every item within `radius` of `center`.
  void query_disk(Vec2 center, double radius,
                  const std::function<void(std::uint32_t, Vec2)>& fn) const;

  /// Invoke `fn(id, pos)` for every item (arbitrary order).
  void for_each(const std::function<void(std::uint32_t, Vec2)>& fn) const;

  void clear();

 private:
  struct Entry {
    std::uint32_t id;
    Vec2 pos;
  };

  std::int64_t cell_of(double v) const;
  static std::uint64_t key(std::int64_t cx, std::int64_t cy);

  double cell_size_;
  std::size_t count_ = 0;
  std::unordered_map<std::uint64_t, std::vector<Entry>> buckets_;
};

}  // namespace abp
