/// \file aabb.h
/// \brief Axis-aligned bounding box (the terrain is one, §4.1).
#pragma once

#include <algorithm>

#include "common/assert.h"
#include "geom/vec2.h"

namespace abp {

struct AABB {
  Vec2 lo;  ///< minimum corner
  Vec2 hi;  ///< maximum corner

  constexpr AABB() = default;
  AABB(Vec2 lo_, Vec2 hi_) : lo(lo_), hi(hi_) {
    ABP_CHECK(lo.x <= hi.x && lo.y <= hi.y, "inverted AABB corners");
  }

  /// Square box anchored at the origin — the paper's Side×Side terrain.
  static AABB square(double side) {
    ABP_CHECK(side > 0.0, "terrain side must be positive");
    return AABB({0.0, 0.0}, {side, side});
  }

  static AABB centered(Vec2 center, double half_w, double half_h) {
    return AABB(center - Vec2{half_w, half_h}, center + Vec2{half_w, half_h});
  }

  double width() const { return hi.x - lo.x; }
  double height() const { return hi.y - lo.y; }
  double area() const { return width() * height(); }
  Vec2 center() const { return (lo + hi) * 0.5; }

  bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  bool intersects(const AABB& o) const {
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y && o.lo.y <= hi.y;
  }

  /// Nearest point inside the box to `p`.
  Vec2 clamp(Vec2 p) const {
    return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y)};
  }
};

}  // namespace abp
