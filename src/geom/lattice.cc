#include "geom/lattice.h"

#include <algorithm>

namespace abp {

namespace {
// Convert a world coordinate to the lowest lattice ordinate >= it (floor /
// ceil pair clamped to the axis range).
std::size_t floor_ord(double world, double origin, double step,
                      std::size_t n) {
  const double t = (world - origin) / step;
  const long long v = static_cast<long long>(std::ceil(t - 1e-9));
  return static_cast<std::size_t>(std::clamp<long long>(v, 0, static_cast<long long>(n) - 1));
}
std::size_t ceil_ord(double world, double origin, double step, std::size_t n) {
  const double t = (world - origin) / step;
  const long long v = static_cast<long long>(std::floor(t + 1e-9));
  return static_cast<std::size_t>(std::clamp<long long>(v, 0, static_cast<long long>(n) - 1));
}
}  // namespace

void Lattice2D::for_each_in_disk(
    Vec2 center, double radius,
    const std::function<void(std::size_t, Vec2)>& fn) const {
  ABP_CHECK(radius >= 0.0, "negative disk radius");
  const double r2 = radius * radius;
  const std::size_t i0 = floor_ord(center.x - radius, bounds_.lo.x, step_, nx_);
  const std::size_t i1 = ceil_ord(center.x + radius, bounds_.lo.x, step_, nx_);
  const std::size_t j0 = floor_ord(center.y - radius, bounds_.lo.y, step_, ny_);
  const std::size_t j1 = ceil_ord(center.y + radius, bounds_.lo.y, step_, ny_);
  for (std::size_t j = j0; j <= j1; ++j) {
    for (std::size_t i = i0; i <= i1; ++i) {
      const Vec2 p = point(i, j);
      if (distance_sq(p, center) <= r2) fn(index(i, j), p);
    }
  }
}

void Lattice2D::for_each_in_box(
    const AABB& box, const std::function<void(std::size_t, Vec2)>& fn) const {
  const std::size_t i0 = floor_ord(box.lo.x, bounds_.lo.x, step_, nx_);
  const std::size_t i1 = ceil_ord(box.hi.x, bounds_.lo.x, step_, nx_);
  const std::size_t j0 = floor_ord(box.lo.y, bounds_.lo.y, step_, ny_);
  const std::size_t j1 = ceil_ord(box.hi.y, bounds_.lo.y, step_, ny_);
  for (std::size_t j = j0; j <= j1; ++j) {
    for (std::size_t i = i0; i <= i1; ++i) {
      const Vec2 p = point(i, j);
      if (box.contains(p)) fn(index(i, j), p);
    }
  }
}

}  // namespace abp
