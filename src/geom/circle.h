/// \file circle.h
/// \brief Circles/disks: radio coverage under the idealized model (§2.1).
///
/// The locus of positions consistent with a connectivity observation is an
/// intersection of disks (§2.2 footnote 3); the lens-area formula here backs
/// the locus-analysis module and the overlap-ratio error-bound bench.
#pragma once

#include "geom/vec2.h"

namespace abp {

struct Circle {
  Vec2 center;
  double radius = 0.0;

  constexpr Circle() = default;
  constexpr Circle(Vec2 c, double r) : center(c), radius(r) {}

  bool contains(Vec2 p) const {
    return distance_sq(center, p) <= radius * radius;
  }

  double area() const;
};

/// Area of the intersection ("lens") of two disks; 0 when disjoint, the
/// smaller disk's area when nested.
double circle_intersection_area(const Circle& a, const Circle& b);

/// True if the two circles' boundaries or interiors share any point.
bool circles_overlap(const Circle& a, const Circle& b);

}  // namespace abp
