/// \file grid2d.h
/// \brief Dense row-major 2-D array (error maps, height maps, masks).
#pragma once

#include <vector>

#include "common/assert.h"

namespace abp {

template <typename T>
class Grid2D {
 public:
  Grid2D() = default;

  Grid2D(std::size_t nx, std::size_t ny, T fill = T{})
      : nx_(nx), ny_(ny), data_(nx * ny, fill) {
    ABP_CHECK(nx > 0 && ny > 0, "grid dimensions must be positive");
  }

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& at(std::size_t i, std::size_t j) {
    ABP_DCHECK(i < nx_ && j < ny_, "grid index out of range");
    return data_[j * nx_ + i];
  }
  const T& at(std::size_t i, std::size_t j) const {
    ABP_DCHECK(i < nx_ && j < ny_, "grid index out of range");
    return data_[j * nx_ + i];
  }

  T& operator[](std::size_t flat) {
    ABP_DCHECK(flat < data_.size(), "flat index out of range");
    return data_[flat];
  }
  const T& operator[](std::size_t flat) const {
    ABP_DCHECK(flat < data_.size(), "flat index out of range");
    return data_[flat];
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

 private:
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<T> data_;
};

}  // namespace abp
