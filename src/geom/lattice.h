/// \file lattice.h
/// \brief The survey measurement lattice (§3.2: points `step` meters apart).
///
/// The robot measures localization error at every lattice corner
/// `(i·step, j·step)` with `0 ≤ i,j ≤ Side/step`; with the paper's defaults
/// (Side=100, step=1) that is PT = 101×101 = 10201 points. `Lattice2D` maps
/// between flat indices, (i,j) grid coordinates, and world positions, and
/// enumerates the lattice points inside a disk — the key primitive behind
/// exact incremental error-map updates.
#pragma once

#include <cmath>
#include <cstddef>
#include <functional>

#include "common/assert.h"
#include "geom/aabb.h"
#include "geom/vec2.h"

namespace abp {

class Lattice2D {
 public:
  /// Lattice over `bounds` with spacing `step`; `bounds` extents must be
  /// (near-)integral multiples of `step`, matching the paper's geometry.
  Lattice2D(const AABB& bounds, double step)
      : bounds_(bounds), step_(step) {
    ABP_CHECK(step > 0.0, "lattice step must be positive");
    nx_ = static_cast<std::size_t>(std::llround(bounds.width() / step)) + 1;
    ny_ = static_cast<std::size_t>(std::llround(bounds.height() / step)) + 1;
    ABP_CHECK(nx_ >= 2 && ny_ >= 2, "lattice too small");
  }

  const AABB& bounds() const { return bounds_; }
  double step() const { return step_; }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  /// Total number of lattice points (the paper's PT).
  std::size_t size() const { return nx_ * ny_; }

  /// World position of grid coordinates (i, j).
  Vec2 point(std::size_t i, std::size_t j) const {
    ABP_DCHECK(i < nx_ && j < ny_, "lattice index out of range");
    return {bounds_.lo.x + static_cast<double>(i) * step_,
            bounds_.lo.y + static_cast<double>(j) * step_};
  }

  /// Flat row-major index of (i, j).
  std::size_t index(std::size_t i, std::size_t j) const {
    ABP_DCHECK(i < nx_ && j < ny_, "lattice index out of range");
    return j * nx_ + i;
  }

  /// Grid coordinates of a flat index.
  std::pair<std::size_t, std::size_t> coords(std::size_t flat) const {
    ABP_DCHECK(flat < size(), "flat index out of range");
    return {flat % nx_, flat / nx_};
  }

  /// World position of a flat index.
  Vec2 point(std::size_t flat) const {
    const auto [i, j] = coords(flat);
    return point(i, j);
  }

  /// Nearest lattice point (by rounding) to a world position; the position
  /// is clamped into bounds first.
  std::size_t nearest(Vec2 p) const {
    const Vec2 q = bounds_.clamp(p);
    const auto i = static_cast<std::size_t>(
        std::llround((q.x - bounds_.lo.x) / step_));
    const auto j = static_cast<std::size_t>(
        std::llround((q.y - bounds_.lo.y) / step_));
    return index(std::min(i, nx_ - 1), std::min(j, ny_ - 1));
  }

  /// Invoke `fn(flat_index, position)` for every lattice point.
  void for_each(const std::function<void(std::size_t, Vec2)>& fn) const {
    for (std::size_t j = 0; j < ny_; ++j) {
      for (std::size_t i = 0; i < nx_; ++i) {
        fn(index(i, j), point(i, j));
      }
    }
  }

  /// Invoke `fn(flat_index, position)` for every lattice point within
  /// `radius` of `center` (inclusive). Scans only the bounding sub-grid and
  /// filters by exact distance, so the cost is O(points in the disk).
  void for_each_in_disk(Vec2 center, double radius,
                        const std::function<void(std::size_t, Vec2)>& fn) const;

  /// Invoke `fn(flat_index, position)` for every lattice point inside the
  /// axis-aligned box (inclusive of boundary points).
  void for_each_in_box(const AABB& box,
                       const std::function<void(std::size_t, Vec2)>& fn) const;

 private:
  AABB bounds_;
  double step_;
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
};

}  // namespace abp
