#include "geom/spatial_hash.h"

#include <cmath>

#include "common/assert.h"

namespace abp {

SpatialHash::SpatialHash(double cell_size) : cell_size_(cell_size) {
  ABP_CHECK(cell_size > 0.0, "cell size must be positive");
}

std::int64_t SpatialHash::cell_of(double v) const {
  return static_cast<std::int64_t>(std::floor(v / cell_size_));
}

std::uint64_t SpatialHash::key(std::int64_t cx, std::int64_t cy) {
  // Interleave the two 32-bit (wrapped) cell ordinates into one key.
  const auto ux = static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx));
  const auto uy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  return (ux << 32) | uy;
}

void SpatialHash::insert(std::uint32_t id, Vec2 pos) {
  buckets_[key(cell_of(pos.x), cell_of(pos.y))].push_back({id, pos});
  ++count_;
}

bool SpatialHash::remove(std::uint32_t id, Vec2 pos) {
  const auto it = buckets_.find(key(cell_of(pos.x), cell_of(pos.y)));
  if (it == buckets_.end()) return false;
  auto& entries = it->second;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].id == id) {
      entries[i] = entries.back();
      entries.pop_back();
      if (entries.empty()) buckets_.erase(it);
      --count_;
      return true;
    }
  }
  return false;
}

void SpatialHash::query_disk(
    Vec2 center, double radius,
    const std::function<void(std::uint32_t, Vec2)>& fn) const {
  ABP_CHECK(radius >= 0.0, "negative query radius");
  const double r2 = radius * radius;
  const std::int64_t cx0 = cell_of(center.x - radius);
  const std::int64_t cx1 = cell_of(center.x + radius);
  const std::int64_t cy0 = cell_of(center.y - radius);
  const std::int64_t cy1 = cell_of(center.y + radius);
  for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      const auto it = buckets_.find(key(cx, cy));
      if (it == buckets_.end()) continue;
      for (const Entry& e : it->second) {
        if (distance_sq(e.pos, center) <= r2) fn(e.id, e.pos);
      }
    }
  }
}

void SpatialHash::for_each(
    const std::function<void(std::uint32_t, Vec2)>& fn) const {
  for (const auto& [k, entries] : buckets_) {
    for (const Entry& e : entries) fn(e.id, e.pos);
  }
}

void SpatialHash::clear() {
  buckets_.clear();
  count_ = 0;
}

}  // namespace abp
