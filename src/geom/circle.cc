#include "geom/circle.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.h"

namespace abp {

double Circle::area() const {
  return std::numbers::pi * radius * radius;
}

bool circles_overlap(const Circle& a, const Circle& b) {
  const double rsum = a.radius + b.radius;
  return distance_sq(a.center, b.center) <= rsum * rsum;
}

double circle_intersection_area(const Circle& a, const Circle& b) {
  ABP_DCHECK(a.radius >= 0.0 && b.radius >= 0.0, "negative radius");
  const double d = distance(a.center, b.center);
  const double r1 = a.radius;
  const double r2 = b.radius;
  if (d >= r1 + r2) return 0.0;                      // disjoint
  if (d <= std::fabs(r1 - r2)) {                     // nested
    const double r = std::min(r1, r2);
    return std::numbers::pi * r * r;
  }
  // Standard two-circle lens area.
  const double alpha =
      2.0 * std::acos(std::clamp((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1),
                                 -1.0, 1.0));
  const double beta =
      2.0 * std::acos(std::clamp((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2),
                                 -1.0, 1.0));
  const double seg1 = 0.5 * r1 * r1 * (alpha - std::sin(alpha));
  const double seg2 = 0.5 * r2 * r2 * (beta - std::sin(beta));
  return seg1 + seg2;
}

}  // namespace abp
