/// \file simulation.h
/// \brief High-level facade: one object owning terrain bounds, propagation
/// model, beacon field, survey lattice and the live error map.
///
/// This is the entry point a downstream user starts with (see
/// examples/quickstart.cpp):
///
///     abp::Simulation sim({.noise = 0.3, .seed = 7});
///     sim.deploy_uniform(40);
///     abp::GridPlacement grid;
///     sim.place_with(grid);             // survey → propose → deploy
///     std::cout << sim.mean_error();    // localization quality now
///
/// The error map is kept current incrementally across placements; direct
/// field edits are possible through `field()` followed by `refresh()`.
#pragma once

#include <memory>

#include "eval/config.h"
#include "field/beacon_field.h"
#include "loc/error_map.h"
#include "loc/survey_data.h"
#include "placement/placement.h"
#include "radio/propagation.h"
#include "rng/rng.h"

namespace abp {

struct SimulationConfig {
  double side = 100.0;   ///< terrain side (m) — Table 1
  double range = 15.0;   ///< nominal radio range R (m) — Table 1
  double step = 1.0;     ///< survey lattice spacing (m) — Table 1
  double noise = 0.0;    ///< paper Noise parameter (0 = ideal propagation)
  std::uint64_t seed = 20010421;  ///< master seed (field + noise + agents)
};

class Simulation {
 public:
  /// Standard setup: square terrain, the paper's noise model.
  explicit Simulation(const SimulationConfig& config = {});

  /// Advanced setup: caller-supplied propagation model over `bounds`.
  Simulation(AABB bounds, double step, std::unique_ptr<PropagationModel> model,
             std::uint64_t seed);

  // Not copyable (owns the model and internal RNG stream); movable.
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  Simulation(Simulation&&) = default;

  const AABB& bounds() const { return field_.bounds(); }
  const Lattice2D& lattice() const { return lattice_; }
  const PropagationModel& model() const { return *model_; }
  const BeaconField& field() const { return field_; }
  /// Mutable field access for custom deployments; call `refresh()` after
  /// editing it directly.
  BeaconField& mutable_field() { return field_; }

  /// Deploy `count` uniform-random beacons (the §4.1 field distribution).
  void deploy_uniform(std::size_t count);

  /// Recompute the error map from scratch (after external field edits).
  void refresh();

  const ErrorMap& error_map() const { return map_; }
  double mean_error() const { return map_.mean(); }
  double median_error() const { return map_.median(); }
  double uncovered_fraction() const { return map_.uncovered_fraction(); }

  /// Complete, noise-free survey of the current state (§3.1 baseline).
  SurveyData survey() const { return SurveyData::from_error_map(map_); }

  /// One adaptive-placement step with the built-in exact survey:
  /// survey → algorithm proposes → beacon deployed → map updated.
  /// Returns the new beacon's id.
  BeaconId place_with(const PlacementAlgorithm& algorithm);

  /// Same, but the algorithm sees caller-provided survey data (e.g. from a
  /// partial or noisy robot tour).
  BeaconId place_from_survey(const SurveyData& survey,
                             const PlacementAlgorithm& algorithm);

  /// Deploy a beacon at an explicit position (clamped to bounds) and update
  /// the map incrementally.
  BeaconId place_at(Vec2 pos);

  /// The simulation's RNG stream (used for algorithm randomness).
  Rng& rng() { return rng_; }

 private:
  Lattice2D lattice_;
  std::unique_ptr<PropagationModel> model_;
  BeaconField field_;
  ErrorMap map_;
  Rng rng_;
  std::uint64_t field_rng_seed_ = 0;
};

}  // namespace abp
