#include "core/adaptive_session.h"

#include "common/assert.h"

namespace abp {

SessionReport run_adaptive_session(Simulation& sim,
                                   const PlacementAlgorithm& algorithm,
                                   const SessionConfig& config) {
  ABP_CHECK(config.target_mean_error >= 0.0, "negative target error");
  SessionReport report;

  for (std::size_t step = 0; step < config.max_beacons; ++step) {
    if (sim.mean_error() <= config.target_mean_error) {
      report.reached_target = true;
      break;
    }
    SessionStep entry;
    entry.step = step;
    entry.mean_before = sim.mean_error();
    entry.median_before = sim.median_error();

    const BeaconId id = sim.place_with(algorithm);
    entry.position = sim.field().get(id)->pos;
    entry.mean_after = sim.mean_error();
    entry.median_after = sim.median_error();
    report.steps.push_back(entry);

    if (config.min_step_improvement >= 0.0 &&
        entry.improvement() < config.min_step_improvement) {
      break;
    }
  }
  if (sim.mean_error() <= config.target_mean_error) {
    report.reached_target = true;
  }
  report.final_mean_error = sim.mean_error();
  report.final_median_error = sim.median_error();
  return report;
}

}  // namespace abp
