/// \file adaptive_session.h
/// \brief Iterative adaptive beacon placement: the §3 field procedure as a
/// loop — survey, place, re-measure — until the localization quality target
/// is met or the beacon budget is spent.
#pragma once

#include <vector>

#include "core/simulation.h"

namespace abp {

struct SessionConfig {
  /// Stop once mean LE drops to this level (meters).
  double target_mean_error = 0.0;
  /// Hard budget of additional beacons the agent can carry (§3: the robot
  /// "has a capability to carry a certain number of beacons").
  std::size_t max_beacons = 10;
  /// Stop early if a step improves mean LE by less than this (meters);
  /// negative disables the check.
  double min_step_improvement = -1.0;
};

/// Log entry for one placement step.
struct SessionStep {
  std::size_t step = 0;
  Vec2 position;
  double mean_before = 0.0;
  double mean_after = 0.0;
  double median_before = 0.0;
  double median_after = 0.0;

  double improvement() const { return mean_before - mean_after; }
};

struct SessionReport {
  std::vector<SessionStep> steps;
  bool reached_target = false;
  double final_mean_error = 0.0;
  double final_median_error = 0.0;
  std::size_t beacons_added() const { return steps.size(); }
};

/// Run the adaptive loop on `sim` with `algorithm`. Each iteration performs
/// a complete survey, one placement, and a re-measure; the loop stops at
/// the target error, the beacon budget, or a too-small improvement.
SessionReport run_adaptive_session(Simulation& sim,
                                   const PlacementAlgorithm& algorithm,
                                   const SessionConfig& config);

}  // namespace abp
