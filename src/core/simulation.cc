#include "core/simulation.h"

#include "common/assert.h"
#include "field/generators.h"
#include "radio/noise_model.h"

namespace abp {

namespace {
constexpr std::uint64_t kPurposeField = 1;
constexpr std::uint64_t kPurposeNoise = 2;
constexpr std::uint64_t kPurposeAlgorithms = 3;
}  // namespace

Simulation::Simulation(const SimulationConfig& config)
    : Simulation(AABB::square(config.side), config.step,
                 std::make_unique<PerBeaconNoiseModel>(
                     config.range, config.noise,
                     derive_seed(config.seed, kPurposeNoise)),
                 config.seed) {}

Simulation::Simulation(AABB bounds, double step,
                       std::unique_ptr<PropagationModel> model,
                       std::uint64_t seed)
    : lattice_(bounds, step),
      model_(std::move(model)),
      field_(bounds, model_ ? model_->max_range() : 20.0),
      map_(lattice_),
      rng_(derive_seed(seed, kPurposeAlgorithms)) {
  ABP_CHECK(model_ != nullptr, "propagation model required");
  field_rng_seed_ = derive_seed(seed, kPurposeField);
  map_.compute(field_, *model_);
}

void Simulation::deploy_uniform(std::size_t count) {
  Rng rng(field_rng_seed_);
  field_rng_seed_ = rng.next_u64();  // fresh stream per deployment call
  scatter_uniform(field_, count, rng);
  refresh();
}

void Simulation::refresh() { map_.compute(field_, *model_); }

BeaconId Simulation::place_with(const PlacementAlgorithm& algorithm) {
  const SurveyData data = survey();
  return place_from_survey(data, algorithm);
}

BeaconId Simulation::place_from_survey(const SurveyData& survey,
                                       const PlacementAlgorithm& algorithm) {
  PlacementContext ctx = PlacementContext::basic(survey, bounds(),
                                                 model_->nominal_range());
  ctx.field = &field_;
  ctx.model = model_.get();
  ctx.truth = &map_;
  const Vec2 pos = bounds().clamp(algorithm.propose(ctx, rng_));
  return place_at(pos);
}

BeaconId Simulation::place_at(Vec2 pos) {
  const BeaconId id = field_.add(bounds().clamp(pos));
  map_.apply_addition(field_, *model_, *field_.get(id));
  return id;
}

}  // namespace abp
