#include "des/simulator.h"

#include <utility>

namespace abp {

void Simulator::schedule_at(double when, Handler handler) {
  ABP_CHECK(when >= now_, "cannot schedule into the past");
  ABP_CHECK(handler != nullptr, "null event handler");
  queue_.push(Event{when, next_seq_++, std::move(handler)});
}

void Simulator::run_until(double until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    // priority_queue::top is const; move out via const_cast is UB — copy the
    // handler instead (events are small).
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.handler();
  }
  if (now_ < until) now_ = until;
}

}  // namespace abp
