/// \file beaconing.h
/// \brief Packet-level simulation of the beaconing protocol (§2.2).
///
/// Beacons transmit a packet of duration `packet_time` every `period` T,
/// with a random initial phase and optional per-packet jitter (real
/// 802.11-era beacons jitter to avoid lockstep collisions). A client listens
/// for a window `listen_time` t >> T and counts, per beacon, the fraction of
/// that beacon's packets it received; a beacon is *connected* if the
/// fraction meets `cm_thresh` (§2.2: "if the percentage of messages received
/// exceeds a threshold CMthresh, that beacon is considered connected").
///
/// The channel is ALOHA-like: a packet is lost at the client when another
/// packet from any other in-range beacon overlaps it in time (§1:
/// "at very high densities, the probability of collisions among signals
/// transmitted by the beacons increases").
#pragma once

#include <map>
#include <vector>

#include "des/simulator.h"
#include "field/beacon_field.h"
#include "loc/localizer.h"
#include "radio/propagation.h"
#include "rng/rng.h"

namespace abp {

/// Channel access discipline for beacon transmissions.
enum class MacMode {
  kAloha,  ///< transmit blindly; overlaps collide (§1's worst case)
  kCsma,   ///< carrier-sense: defer with random backoff while the channel
           ///< is busy (bounded retries), the standard mitigation
};

struct BeaconingConfig {
  double period = 1.0;        ///< T: beacon transmit period (s)
  double listen_time = 20.0;  ///< t: client listening window (s); t >> T
  double packet_time = 0.005; ///< on-air duration of one packet (s)
  double cm_thresh = 0.5;     ///< CMthresh: reception-rate threshold
  double jitter = 0.1;        ///< per-packet uniform phase jitter, ×period
  MacMode mac = MacMode::kAloha;
  std::size_t csma_retries = 3;  ///< max deferrals per packet (CSMA only)
};

/// Outcome of one client's listening window.
struct ListenOutcome {
  /// Beacons deemed connected by the protocol (ascending id).
  std::vector<BeaconId> connected;
  /// Per-beacon reception statistics for in-range beacons. `sent` counts
  /// the packets the beacon was due to transmit in the window (the
  /// CMthresh denominator); under CSMA a packet that exhausts its retries
  /// is counted in `sent` but never received.
  struct PerBeacon {
    BeaconId id;
    std::size_t sent = 0;
    std::size_t received = 0;
  };
  std::vector<PerBeacon> detail;
  /// Fraction of in-range packets lost (collided or dropped after CSMA
  /// retries).
  double loss_rate = 0.0;
  /// Packets abandoned because the channel never went idle (CSMA only).
  std::size_t dropped_packets = 0;
  /// Centroid position estimate from `connected` (field centroid if empty).
  Vec2 estimate;
};

/// Simulate one client at `point` listening for `cfg.listen_time` seconds.
/// Packet receptions are evaluated against the in-range beacon set under
/// `model` (a packet from an out-of-range beacon is never received and does
/// not collide). Deterministic given `rng`'s seed.
ListenOutcome simulate_listen(const BeaconField& field,
                              const PropagationModel& model, Vec2 point,
                              const BeaconingConfig& cfg, Rng& rng);

}  // namespace abp
