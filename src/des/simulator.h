/// \file simulator.h
/// \brief Minimal discrete-event simulator core.
///
/// The localization substrate of §2.2 is a *timed* protocol: beacons
/// transmit every T seconds, clients integrate over a window t >> T and
/// threshold the per-beacon reception rate (CMthresh). The evaluation uses
/// the analytic connectivity predicate, but this simulator executes the
/// actual protocol so we can (a) validate the reduction and (b) reproduce
/// the §1 self-interference motivation — collision probability rising with
/// beacon density.
///
/// Events are (time, sequence) ordered; ties break by insertion order so
/// runs are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/assert.h"

namespace abp {

class Simulator {
 public:
  using Handler = std::function<void()>;

  double now() const { return now_; }

  /// Schedule `handler` to run at absolute time `when` (>= now).
  void schedule_at(double when, Handler handler);

  /// Schedule `handler` after a delay (>= 0).
  void schedule_in(double delay, Handler handler) {
    schedule_at(now_ + delay, std::move(handler));
  }

  /// Run events until the queue empties or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed.
  void run_until(double until);

  /// Number of events executed so far.
  std::uint64_t executed() const { return executed_; }

  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace abp
