#include "des/beaconing.h"

#include <algorithm>

#include "common/assert.h"
#include "loc/connectivity.h"

namespace abp {

ListenOutcome simulate_listen(const BeaconField& field,
                              const PropagationModel& model, Vec2 point,
                              const BeaconingConfig& cfg, Rng& rng) {
  ABP_CHECK(cfg.period > 0.0, "beacon period must be positive");
  ABP_CHECK(cfg.listen_time >= cfg.period,
            "listen window must cover at least one period");
  ABP_CHECK(cfg.packet_time > 0.0 && cfg.packet_time < cfg.period,
            "packet must be shorter than the period");
  ABP_CHECK(cfg.cm_thresh > 0.0 && cfg.cm_thresh <= 1.0,
            "CMthresh must be in (0, 1]");
  ABP_CHECK(cfg.jitter >= 0.0 && cfg.jitter < 1.0, "jitter must be in [0,1)");

  // Beacons whose packets reach this client. Out-of-range transmissions are
  // below sensitivity: they neither deliver nor collide here.
  std::vector<Beacon> in_range = connected_beacons(field, model, point);

  struct Packet {
    std::size_t beacon_idx;
    bool collided = false;
    bool transmitted = false;
    bool dropped = false;
    std::size_t retries_left = 0;
  };
  std::vector<Packet> packets;

  Simulator sim;
  std::vector<std::size_t> active;  // indices into `packets`

  const auto begin_transmission = [&](std::size_t pkt) {
    if (!active.empty()) {
      packets[pkt].collided = true;
      for (std::size_t other : active) packets[other].collided = true;
    }
    packets[pkt].transmitted = true;
    active.push_back(pkt);
    sim.schedule_in(cfg.packet_time, [&, pkt] {
      active.erase(std::find(active.begin(), active.end(), pkt));
    });
  };

  // Recursive-ish attempt handler for CSMA (plain transmission for ALOHA).
  std::function<void(std::size_t)> attempt = [&](std::size_t pkt) {
    if (cfg.mac == MacMode::kAloha || active.empty()) {
      begin_transmission(pkt);
      return;
    }
    if (packets[pkt].retries_left == 0) {
      packets[pkt].dropped = true;
      return;
    }
    --packets[pkt].retries_left;
    // Random backoff, bounded so the retransmission stays near its slot.
    const double backoff = rng.uniform(cfg.packet_time, 4.0 * cfg.packet_time);
    sim.schedule_in(backoff, [&, pkt] { attempt(pkt); });
  };

  // Schedule every packet of every in-range beacon in the window.
  // Deterministic order: beacons ascending id (in_range is sorted), then
  // packet index.
  for (std::size_t bi = 0; bi < in_range.size(); ++bi) {
    const double phase = rng.uniform(0.0, cfg.period);
    for (double base = phase; base + cfg.packet_time <= cfg.listen_time;
         base += cfg.period) {
      const double start =
          base + (cfg.jitter > 0.0
                      ? rng.uniform(0.0, cfg.jitter * cfg.period)
                      : 0.0);
      if (start + cfg.packet_time > cfg.listen_time) continue;
      const std::size_t pkt = packets.size();
      packets.push_back({bi, false, false, false, cfg.csma_retries});
      sim.schedule_at(start, [&, pkt] { attempt(pkt); });
    }
  }
  sim.run_until(cfg.listen_time);

  // Aggregate per-beacon outcomes.
  ListenOutcome out;
  std::vector<ListenOutcome::PerBeacon> detail(in_range.size());
  for (std::size_t bi = 0; bi < in_range.size(); ++bi) {
    detail[bi].id = in_range[bi].id;
  }
  std::size_t lost = 0;
  for (const Packet& p : packets) {
    ++detail[p.beacon_idx].sent;
    const bool received = p.transmitted && !p.collided;
    if (received) {
      ++detail[p.beacon_idx].received;
    } else {
      ++lost;
    }
    if (p.dropped) ++out.dropped_packets;
  }
  out.loss_rate = packets.empty()
                      ? 0.0
                      : static_cast<double>(lost) /
                            static_cast<double>(packets.size());

  Vec2 sum;
  for (std::size_t bi = 0; bi < in_range.size(); ++bi) {
    const auto& d = detail[bi];
    if (d.sent > 0 && static_cast<double>(d.received) >=
                          cfg.cm_thresh * static_cast<double>(d.sent)) {
      out.connected.push_back(d.id);
      sum += in_range[bi].pos;
    }
  }
  out.estimate = out.connected.empty()
                     ? field.active_centroid()
                     : sum / static_cast<double>(out.connected.size());
  out.detail = std::move(detail);
  return out;
}

}  // namespace abp
