/// \file field_io.h
/// \brief Text serialization of beacon fields and survey data.
///
/// A deployment tool needs to persist what was placed and what was
/// measured: the robot surveys today, the analyst re-runs placement
/// tomorrow. The format is a small line-oriented text format — stable,
/// diffable, and readable in a terminal:
///
///     abp-field 1
///     bounds 0 0 100 100
///     beacon <id> <x> <y> <active>
///     ...
///
///     abp-survey 1
///     bounds 0 0 100 100
///     step 1
///     point <flat-index> <measured-error>
///     ...
///
/// Round-trips preserve ids, positions (17 significant digits), active
/// flags, and measurement masks exactly.
///
/// The read paths treat their input as untrusted (files cross machines;
/// the serve layer ships snapshots over the network): every malformed,
/// truncated, or hostile input — non-finite numbers, inverted bounds,
/// out-of-bounds positions, duplicate or absurd ids, lattice sizes that
/// would exhaust memory — is reported as a clean `IoError` carrying the
/// offending record, never as a tripped internal invariant.
#pragma once

#include <iosfwd>
#include <string>

#include "common/assert.h"
#include "field/beacon_field.h"
#include "loc/survey_data.h"

namespace abp {

/// Malformed or unreadable input/output. Derives from CheckFailure so
/// existing catch sites keep working, but read paths throw only this.
class IoError : public CheckFailure {
 public:
  explicit IoError(const std::string& what) : CheckFailure(what) {}
};

/// Write `field` (live beacons only, ascending id) to `out`.
void write_field(std::ostream& out, const BeaconField& field);

/// Parse a field written by `write_field`. Ids are preserved: the returned
/// field allocates the same ids to the same beacons (gaps from removed
/// beacons become permanently unused ids). Throws IoError on malformed
/// input.
BeaconField read_field(std::istream& in);

/// Write survey data (measured points only) to `out`.
void write_survey(std::ostream& out, const SurveyData& survey);

/// Parse survey data written by `write_survey`. Throws IoError on
/// malformed input.
SurveyData read_survey(std::istream& in);

/// File-path conveniences (throw IoError on I/O or parse failure).
void save_field(const std::string& path, const BeaconField& field);
BeaconField load_field(const std::string& path);
void save_survey(const std::string& path, const SurveyData& survey);
SurveyData load_survey(const std::string& path);

}  // namespace abp
