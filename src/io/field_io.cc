#include "io/field_io.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/assert.h"

namespace abp {

namespace {

// Hostile-input ceilings: ids drive a slot-vector resize and the lattice
// drives two dense grids, so absurd values must be rejected before any
// allocation happens. The id cap matches the writer's runaway-scan guard.
constexpr BeaconId kMaxBeaconId = 100000000u;
constexpr std::size_t kMaxLatticePoints = 1u << 24;

void write_double(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

[[noreturn]] void malformed(const std::string& what) { throw IoError(what); }

std::string next_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    // Skip blank lines and comments.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return line;
  }
  return {};
}

/// Require that `is` parsed successfully and has nothing but whitespace
/// left — trailing junk on a record is as suspect as a missing token.
bool fully_consumed(std::istringstream& is) {
  if (is.fail()) return false;
  std::string rest;
  is >> rest;
  return rest.empty();
}

double finite_or_throw(double v, const std::string& line) {
  if (!std::isfinite(v)) malformed("non-finite number in record: " + line);
  return v;
}

AABB parse_bounds(const std::string& line) {
  if (line.empty()) malformed("truncated input: missing bounds record");
  std::istringstream is(line);
  std::string tag;
  double x0, y0, x1, y1;
  is >> tag >> x0 >> y0 >> x1 >> y1;
  if (!fully_consumed(is) || tag != "bounds") {
    malformed("expected 'bounds x0 y0 x1 y1', got: " + line);
  }
  finite_or_throw(x0, line);
  finite_or_throw(y0, line);
  finite_or_throw(x1, line);
  finite_or_throw(y1, line);
  if (x0 > x1 || y0 > y1) malformed("inverted bounds: " + line);
  return AABB({x0, y0}, {x1, y1});
}

}  // namespace

void write_field(std::ostream& out, const BeaconField& field) {
  out << "abp-field 1\n";
  out << "bounds ";
  write_double(out, field.bounds().lo.x);
  out << ' ';
  write_double(out, field.bounds().lo.y);
  out << ' ';
  write_double(out, field.bounds().hi.x);
  out << ' ';
  write_double(out, field.bounds().hi.y);
  out << '\n';
  out << "next-id " << field.next_id() << '\n';
  // Live beacons (including passive ones), ascending id. `get` is the only
  // way to see passive beacons, so scan ids until all live ones are found;
  // ids are dense up to the allocation high-water mark.
  std::vector<Beacon> live;
  for (BeaconId id = 0; live.size() < field.size(); ++id) {
    ABP_CHECK(id < kMaxBeaconId, "runaway id scan");
    if (const auto b = field.get(id)) live.push_back(*b);
  }
  for (const Beacon& b : live) {
    out << "beacon " << b.id << ' ';
    write_double(out, b.pos.x);
    out << ' ';
    write_double(out, b.pos.y);
    out << ' ' << (b.active ? 1 : 0) << '\n';
  }
}

BeaconField read_field(std::istream& in) {
  const std::string header = next_line(in);
  if (header.rfind("abp-field 1", 0) != 0) {
    malformed("not an abp-field version-1 stream");
  }
  BeaconField field(parse_bounds(next_line(in)));
  BeaconId next_id = 0;
  bool saw_next_id = false;
  std::string line;
  while (!(line = next_line(in)).empty()) {
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "next-id") {
      is >> next_id;
      if (!fully_consumed(is)) malformed("malformed next-id record: " + line);
      if (next_id > kMaxBeaconId) {
        malformed("next-id exceeds the id ceiling: " + line);
      }
      saw_next_id = true;
      continue;
    }
    if (tag != "beacon") malformed("unexpected record: " + line);
    BeaconId id;
    double x, y;
    int active;
    is >> id >> x >> y >> active;
    if (!fully_consumed(is)) malformed("malformed beacon record: " + line);
    if (id >= kMaxBeaconId) malformed("beacon id exceeds the ceiling: " + line);
    if (id < field.next_id()) {
      malformed("duplicate or out-of-order beacon id: " + line);
    }
    finite_or_throw(x, line);
    finite_or_throw(y, line);
    if (!field.bounds().contains({x, y})) {
      malformed("beacon position outside bounds: " + line);
    }
    if (active != 0 && active != 1) {
      malformed("beacon active flag must be 0 or 1: " + line);
    }
    field.add_with_id(id, {x, y}, active != 0);
  }
  if (saw_next_id) field.reserve_ids(next_id);
  return field;
}

void write_survey(std::ostream& out, const SurveyData& survey) {
  const Lattice2D& lattice = survey.lattice();
  out << "abp-survey 1\n";
  out << "bounds ";
  write_double(out, lattice.bounds().lo.x);
  out << ' ';
  write_double(out, lattice.bounds().lo.y);
  out << ' ';
  write_double(out, lattice.bounds().hi.x);
  out << ' ';
  write_double(out, lattice.bounds().hi.y);
  out << '\n';
  out << "step ";
  write_double(out, lattice.step());
  out << '\n';
  for (std::size_t flat = 0; flat < lattice.size(); ++flat) {
    if (!survey.measured(flat)) continue;
    out << "point " << flat << ' ';
    write_double(out, survey.value(flat));
    out << '\n';
  }
}

SurveyData read_survey(std::istream& in) {
  const std::string header = next_line(in);
  if (header.rfind("abp-survey 1", 0) != 0) {
    malformed("not an abp-survey version-1 stream");
  }
  const AABB bounds = parse_bounds(next_line(in));
  const std::string step_line = next_line(in);
  if (step_line.empty()) malformed("truncated input: missing step record");
  std::istringstream step_is(step_line);
  std::string tag;
  double step;
  step_is >> tag >> step;
  if (!fully_consumed(step_is) || tag != "step") {
    malformed("expected 'step <meters>', got: " + step_line);
  }
  finite_or_throw(step, step_line);
  if (step <= 0.0) malformed("step must be positive: " + step_line);
  // Reject lattices that would exhaust memory before allocating the grids.
  const double nx = std::floor(bounds.width() / step) + 1.0;
  const double ny = std::floor(bounds.height() / step) + 1.0;
  if (nx * ny > static_cast<double>(kMaxLatticePoints)) {
    malformed("survey lattice too large (bounds/step mismatch)");
  }
  SurveyData survey = [&] {
    try {
      return SurveyData{Lattice2D(bounds, step)};
    } catch (const IoError&) {
      throw;
    } catch (const CheckFailure& e) {
      malformed(std::string("invalid survey geometry: ") + e.what());
    }
  }();
  std::string line;
  while (!(line = next_line(in)).empty()) {
    std::istringstream is(line);
    std::size_t flat;
    double value;
    is >> tag >> flat >> value;
    if (!fully_consumed(is) || tag != "point") {
      malformed("malformed point record: " + line);
    }
    if (flat >= survey.lattice().size()) {
      malformed("point index out of range: " + line);
    }
    finite_or_throw(value, line);
    survey.record(flat, value);
  }
  return survey;
}

void save_field(const std::string& path, const BeaconField& field) {
  std::ofstream out(path);
  if (!out.good()) throw IoError("cannot open for writing: " + path);
  write_field(out, field);
  if (!out.good()) throw IoError("write failed: " + path);
}

BeaconField load_field(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw IoError("cannot open for reading: " + path);
  return read_field(in);
}

void save_survey(const std::string& path, const SurveyData& survey) {
  std::ofstream out(path);
  if (!out.good()) throw IoError("cannot open for writing: " + path);
  write_survey(out, survey);
  if (!out.good()) throw IoError("write failed: " + path);
}

SurveyData load_survey(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw IoError("cannot open for reading: " + path);
  return read_survey(in);
}

}  // namespace abp
