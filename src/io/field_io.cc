#include "io/field_io.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/assert.h"

namespace abp {

namespace {

void write_double(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

std::string next_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    // Skip blank lines and comments.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return line;
  }
  return {};
}

AABB parse_bounds(const std::string& line) {
  std::istringstream is(line);
  std::string tag;
  double x0, y0, x1, y1;
  is >> tag >> x0 >> y0 >> x1 >> y1;
  ABP_CHECK(!is.fail() && tag == "bounds", "expected 'bounds x0 y0 x1 y1'");
  return AABB({x0, y0}, {x1, y1});
}

}  // namespace

void write_field(std::ostream& out, const BeaconField& field) {
  out << "abp-field 1\n";
  out << "bounds ";
  write_double(out, field.bounds().lo.x);
  out << ' ';
  write_double(out, field.bounds().lo.y);
  out << ' ';
  write_double(out, field.bounds().hi.x);
  out << ' ';
  write_double(out, field.bounds().hi.y);
  out << '\n';
  out << "next-id " << field.next_id() << '\n';
  // Live beacons (including passive ones), ascending id. `get` is the only
  // way to see passive beacons, so scan ids until all live ones are found;
  // ids are dense up to the allocation high-water mark.
  std::vector<Beacon> live;
  for (BeaconId id = 0; live.size() < field.size(); ++id) {
    ABP_CHECK(id < 100000000u, "runaway id scan");
    if (const auto b = field.get(id)) live.push_back(*b);
  }
  for (const Beacon& b : live) {
    out << "beacon " << b.id << ' ';
    write_double(out, b.pos.x);
    out << ' ';
    write_double(out, b.pos.y);
    out << ' ' << (b.active ? 1 : 0) << '\n';
  }
}

BeaconField read_field(std::istream& in) {
  const std::string header = next_line(in);
  ABP_CHECK(header.rfind("abp-field 1", 0) == 0,
            "not an abp-field version-1 stream");
  BeaconField field(parse_bounds(next_line(in)));
  BeaconId next_id = 0;
  bool saw_next_id = false;
  std::string line;
  while (!(line = next_line(in)).empty()) {
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "next-id") {
      is >> next_id;
      ABP_CHECK(!is.fail(), "malformed next-id record: " + line);
      saw_next_id = true;
      continue;
    }
    ABP_CHECK(tag == "beacon", "unexpected record: " + line);
    BeaconId id;
    double x, y;
    int active;
    is >> id >> x >> y >> active;
    ABP_CHECK(!is.fail(), "malformed beacon record: " + line);
    field.add_with_id(id, {x, y}, active != 0);
  }
  if (saw_next_id) field.reserve_ids(next_id);
  return field;
}

void write_survey(std::ostream& out, const SurveyData& survey) {
  const Lattice2D& lattice = survey.lattice();
  out << "abp-survey 1\n";
  out << "bounds ";
  write_double(out, lattice.bounds().lo.x);
  out << ' ';
  write_double(out, lattice.bounds().lo.y);
  out << ' ';
  write_double(out, lattice.bounds().hi.x);
  out << ' ';
  write_double(out, lattice.bounds().hi.y);
  out << '\n';
  out << "step ";
  write_double(out, lattice.step());
  out << '\n';
  for (std::size_t flat = 0; flat < lattice.size(); ++flat) {
    if (!survey.measured(flat)) continue;
    out << "point " << flat << ' ';
    write_double(out, survey.value(flat));
    out << '\n';
  }
}

SurveyData read_survey(std::istream& in) {
  const std::string header = next_line(in);
  ABP_CHECK(header.rfind("abp-survey 1", 0) == 0,
            "not an abp-survey version-1 stream");
  const AABB bounds = parse_bounds(next_line(in));
  const std::string step_line = next_line(in);
  std::istringstream step_is(step_line);
  std::string tag;
  double step;
  step_is >> tag >> step;
  ABP_CHECK(!step_is.fail() && tag == "step", "expected 'step <meters>'");
  SurveyData survey{Lattice2D(bounds, step)};
  std::string line;
  while (!(line = next_line(in)).empty()) {
    std::istringstream is(line);
    std::size_t flat;
    double value;
    is >> tag >> flat >> value;
    ABP_CHECK(!is.fail() && tag == "point", "malformed point record: " + line);
    ABP_CHECK(flat < survey.lattice().size(), "point index out of range");
    survey.record(flat, value);
  }
  return survey;
}

void save_field(const std::string& path, const BeaconField& field) {
  std::ofstream out(path);
  ABP_CHECK(out.good(), "cannot open for writing: " + path);
  write_field(out, field);
  ABP_CHECK(out.good(), "write failed: " + path);
}

BeaconField load_field(const std::string& path) {
  std::ifstream in(path);
  ABP_CHECK(in.good(), "cannot open for reading: " + path);
  return read_field(in);
}

void save_survey(const std::string& path, const SurveyData& survey) {
  std::ofstream out(path);
  ABP_CHECK(out.good(), "cannot open for writing: " + path);
  write_survey(out, survey);
  ABP_CHECK(out.good(), "write failed: " + path);
}

SurveyData load_survey(const std::string& path) {
  std::ifstream in(path);
  ABP_CHECK(in.good(), "cannot open for reading: " + path);
  return read_survey(in);
}

}  // namespace abp
