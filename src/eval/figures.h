/// \file figures.h
/// \brief One driver per paper figure, shared by the bench binaries and the
/// integration tests (same code path ⇒ what the tests validate is what the
/// benches print).
#pragma once

#include <string>

#include "eval/runner.h"

namespace abp {

struct FigureOptions {
  std::size_t trials = 100;   ///< fields per cell (paper: 1000)
  std::uint64_t seed = 20010421;
  std::size_t threads = 0;    ///< 0 = hardware concurrency
  /// Optional coarser density axis (every k-th paper count); 1 = all 23.
  std::size_t count_stride = 1;
  ProgressFn progress = {};
};

/// Build the §4.1 sweep config from options.
SweepConfig make_sweep_config(const FigureOptions& opt,
                              std::vector<double> noise_levels);

/// Fig 4 — mean LE vs density, ideal propagation, no placement.
SweepOutcome run_fig4(const FigureOptions& opt);

/// Fig 5 — improvement in mean/median error vs density, ideal, for
/// Random, Max and Grid.
SweepOutcome run_fig5(const FigureOptions& opt);

/// Fig 6 — mean LE vs density for Noise ∈ {0, 0.1, 0.3, 0.5}.
SweepOutcome run_fig6(const FigureOptions& opt);

/// Figs 7/8/9 — one algorithm ("random" / "max" / "grid") across all four
/// noise levels.
SweepOutcome run_fig_alg_noise(const std::string& algorithm,
                               const FigureOptions& opt);

}  // namespace abp
