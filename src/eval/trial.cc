#include "eval/trial.h"

#include "common/assert.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "loc/survey_data.h"
#include "radio/noise_model.h"
#include "rng/rng.h"
#include "terrain/heightmap.h"

namespace abp {

namespace {
// Seed-derivation purpose tags (any distinct constants work; named for
// greppability).
constexpr std::uint64_t kPurposeField = 1;
constexpr std::uint64_t kPurposeNoise = 2;
constexpr std::uint64_t kPurposeAlgorithm = 3;
}  // namespace

TrialResult run_trial(const PaperParams& params, std::size_t beacon_count,
                      double noise,
                      std::span<const PlacementAlgorithm* const> algorithms,
                      std::uint64_t trial_seed, Deployment deployment) {
  ABP_CHECK(beacon_count >= 1, "need at least one beacon");

  const AABB bounds = params.bounds();
  const Lattice2D lattice = params.lattice();
  const PerBeaconNoiseModel model(params.range, noise,
                                  derive_seed(trial_seed, kPurposeNoise));

  BeaconField field(bounds, model.max_range());
  Rng field_rng(derive_seed(trial_seed, kPurposeField));
  switch (deployment) {
    case Deployment::kUniform:
      scatter_uniform(field, beacon_count, field_rng);
      break;
    case Deployment::kClustered:
      scatter_clustered(field, beacon_count, 4, params.side / 16.0,
                        field_rng);
      break;
    case Deployment::kAirdropHill: {
      const HillTerrain hill(bounds, bounds.center(), 30.0,
                             params.side / 6.0);
      airdrop(field, beacon_count, hill, field_rng);
      break;
    }
  }

  ErrorMap map(lattice);
  map.compute(field, model);

  TrialResult result;
  result.mean_before = map.mean();
  result.median_before = map.median();
  result.uncovered_before = map.uncovered_fraction();
  if (algorithms.empty()) return result;

  // All algorithms see the same complete, noise-free survey (§3.1).
  const SurveyData survey = SurveyData::from_error_map(map);
  const ErrorMap before = map;  // snapshot for exact rollback

  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    const PlacementAlgorithm& alg = *algorithms[a];
    PlacementContext ctx =
        PlacementContext::basic(survey, bounds, params.range);
    ctx.field = &field;
    ctx.model = &model;
    ctx.truth = &map;

    Rng alg_rng(derive_seed(trial_seed, kPurposeAlgorithm, a));
    const Vec2 pos = bounds.clamp(alg.propose(ctx, alg_rng));

    const BeaconId id = field.add(pos);
    map.apply_addition(field, model, *field.get(id));

    AlgorithmOutcome outcome;
    outcome.name = alg.name();
    outcome.position = pos;
    outcome.mean_after = map.mean();
    outcome.median_after = map.median();
    result.outcomes.push_back(std::move(outcome));

    // Roll back: remove the beacon and restore the snapshot (bit-exact).
    ABP_CHECK(field.remove(id), "rollback failed");
    map = before;
  }
  return result;
}

}  // namespace abp
