/// \file runner.h
/// \brief The sweep runner: §4.1's full experimental protocol.
///
/// For every (noise level × beacon count) cell, run `trials` independent
/// random fields (the paper: 1000) and aggregate each metric across trials
/// with mean and 95% confidence interval — the error bars in every paper
/// figure. Trials are distributed over a thread pool; per-trial seeds are
/// derived from (master seed, noise index, count index, trial index), so
/// the result is bit-identical regardless of thread count or scheduling.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/stats.h"
#include "eval/config.h"
#include "eval/trial.h"

namespace abp {

/// Aggregated metrics for one (noise, count) cell.
struct CellResult {
  std::size_t beacons = 0;
  double noise = 0.0;
  double density = 0.0;
  double beacons_per_coverage = 0.0;

  Summary mean_error;      ///< per-trial mean LE (before placement)
  Summary median_error;    ///< per-trial median LE (before placement)
  Summary uncovered;       ///< per-trial uncovered fraction

  /// Per algorithm (same order as passed to run): improvement summaries.
  std::vector<Summary> improvement_mean;
  std::vector<Summary> improvement_median;
};

struct SweepOutcome {
  SweepConfig config;
  std::vector<std::string> algorithm_names;
  /// cells[noise_idx][count_idx]
  std::vector<std::vector<CellResult>> cells;

  const CellResult& cell(std::size_t noise_idx, std::size_t count_idx) const {
    return cells[noise_idx][count_idx];
  }
};

/// Progress callback: (completed cells, total cells).
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

/// Run the sweep. `algorithms` may be empty for measurement-only sweeps
/// (Figs 4/6). Deterministic in `config.seed`.
SweepOutcome run_sweep(const SweepConfig& config,
                       std::span<const PlacementAlgorithm* const> algorithms,
                       const ProgressFn& progress = {});

/// Saturation analysis of a mean-LE-vs-density series (§4.2): the smallest
/// density whose mean LE is within `tolerance` (default 10%) of the
/// eventual floor (the minimum across the series).
struct Saturation {
  double density = 0.0;                ///< saturation beacon density (per m²)
  double beacons_per_coverage = 0.0;
  double error = 0.0;                  ///< mean LE at the floor (m)
};
Saturation find_saturation(const SweepOutcome& outcome, std::size_t noise_idx,
                           double tolerance = 1.10);

}  // namespace abp
