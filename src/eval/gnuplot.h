/// \file gnuplot.h
/// \brief Gnuplot export: regenerate the paper's plots graphically.
///
/// For a sweep outcome, writes `<basename>.dat` (whitespace table with one
/// block per figure series, gnuplot `index`-addressable) and
/// `<basename>.gp` (a ready-to-run script with errorbars on the paper's
/// axes: density on x, a secondary beacons-per-coverage axis, meters on y).
/// Running `gnuplot <basename>.gp` produces `<basename>.png`.
#pragma once

#include <ostream>
#include <string>

#include "eval/runner.h"

namespace abp {

/// Write the .dat series blocks. Block order: for each noise level, the
/// mean-error series; then for each (algorithm × noise), the
/// improvement-in-mean series; then improvement-in-median likewise. Each
/// block is preceded by a `# name` comment and separated by blank lines.
void write_gnuplot_data(std::ostream& out, const SweepOutcome& outcome);

/// Write the .gp plotting script referencing `<basename>.dat`.
void write_gnuplot_script(std::ostream& out, const SweepOutcome& outcome,
                          const std::string& basename,
                          const std::string& title);

/// Convenience: write both files (`basename + ".dat"/".gp"`).
void export_gnuplot(const std::string& basename, const std::string& title,
                    const SweepOutcome& outcome);

}  // namespace abp
