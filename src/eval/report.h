/// \file report.h
/// \brief Paper-style rendering of sweep outcomes: aligned text tables for
/// the terminal (one per figure) and a long-format CSV for plotting.
#pragma once

#include <ostream>
#include <string>

#include "eval/runner.h"

namespace abp {

/// Figs 4/6: mean localization error vs density, one column per noise
/// level, each "mean ± ci95". Also prints the fraction-of-range (LE / R)
/// for the ideal column, matching the figures' right-hand axis.
void print_mean_error_table(std::ostream& out, const SweepOutcome& outcome);

/// Fig 5 style: improvements vs density for every algorithm at one noise
/// level — two tables (Δmean, Δmedian).
void print_improvement_tables(std::ostream& out, const SweepOutcome& outcome,
                              std::size_t noise_idx);

/// Figs 7/8/9 style: one algorithm across all noise levels — two tables
/// (Δmean, Δmedian) with one column per noise level.
void print_algorithm_noise_tables(std::ostream& out,
                                  const SweepOutcome& outcome,
                                  std::size_t alg_idx);

/// Saturation summary line for a noise level (§4.2 headline numbers).
void print_saturation(std::ostream& out, const SweepOutcome& outcome,
                      std::size_t noise_idx);

/// Long-format CSV with every aggregated number in the outcome:
/// noise,beacons,density,beacons_per_coverage,metric,algorithm,mean,ci95,
/// median_of_trials,trials. `metric` ∈ {mean_error, median_error,
/// uncovered, improvement_mean, improvement_median}.
void write_sweep_csv(std::ostream& out, const SweepOutcome& outcome);

/// Open `path` and write the CSV (no-op when `path` is empty); prints a
/// confirmation line to stderr.
void maybe_write_csv(const std::string& path, const SweepOutcome& outcome);

}  // namespace abp
