/// \file config.h
/// \brief Experiment configuration: the paper's Table 1 parameters and the
/// §4.1 sweep definition.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/aabb.h"
#include "geom/lattice.h"

namespace abp {

/// Table 1 — simulation parameters.
struct PaperParams {
  double side = 100.0;        ///< terrain side (m)
  double range = 15.0;        ///< nominal radio range R (m)
  double step = 1.0;          ///< survey lattice spacing (m)
  std::size_t num_grids = 400;  ///< NG for the Grid algorithm

  AABB bounds() const { return AABB::square(side); }
  Lattice2D lattice() const { return Lattice2D(bounds(), step); }

  /// PT: number of lattice measurement points, (Side/step + 1)².
  std::size_t pt() const { return lattice().size(); }

  /// Beacons-per-nominal-radio-coverage-area for a given count
  /// (count/Side² · πR², the paper's secondary x-axis).
  double beacons_per_coverage(std::size_t count) const;

  /// Deployment density (beacons per m²) for a given count.
  double density(std::size_t count) const {
    return static_cast<double>(count) / (side * side);
  }
};

/// How each trial's beacon field is deployed. The paper evaluates uniform
/// random fields (§4.1); the alternatives model the §1 motivating
/// scenarios (air drops perturbed by terrain, lumpy drops) for the
/// deployment-distribution ablation.
enum class Deployment {
  kUniform,      ///< i.i.d. uniform (§4.1)
  kClustered,    ///< 4 Gaussian clusters, sigma Side/16
  kAirdropHill,  ///< aimed uniform, rolled off a central hill (§1)
};

/// §4.1 sweep: which densities, noise levels and how many random fields.
struct SweepConfig {
  PaperParams params;
  Deployment deployment = Deployment::kUniform;
  /// Beacon counts; the paper sweeps 20..240 in steps of 10.
  std::vector<std::size_t> beacon_counts = paper_beacon_counts();
  /// Maximum noise factors; the paper uses {0, 0.1, 0.3, 0.5}.
  std::vector<double> noise_levels{0.0};
  /// Random beacon fields per (count, noise) cell; the paper uses 1000.
  std::size_t trials = 100;
  /// Master seed; every trial derives its own stream from it.
  std::uint64_t seed = 20010421;  // ICDCS 2001 — April 2001, Phoenix AZ
  /// Worker threads (0 = hardware concurrency).
  std::size_t threads = 0;

  /// The paper's density axis: 20, 30, …, 240 beacons.
  static std::vector<std::size_t> paper_beacon_counts();

  /// The paper's noise axis: 0, 0.1, 0.3, 0.5.
  static std::vector<double> paper_noise_levels();
};

}  // namespace abp
