#include "eval/runner.h"

#include <atomic>
#include <limits>

#include "common/assert.h"
#include "common/thread_pool.h"
#include "rng/rng.h"

namespace abp {

SweepOutcome run_sweep(const SweepConfig& config,
                       std::span<const PlacementAlgorithm* const> algorithms,
                       const ProgressFn& progress) {
  ABP_CHECK(config.trials >= 1, "need at least one trial");
  ABP_CHECK(!config.beacon_counts.empty(), "empty beacon-count axis");
  ABP_CHECK(!config.noise_levels.empty(), "empty noise axis");

  const std::size_t n_noise = config.noise_levels.size();
  const std::size_t n_counts = config.beacon_counts.size();
  const std::size_t n_algs = algorithms.size();
  const std::size_t n_cells = n_noise * n_counts;
  const std::size_t total_trials = n_cells * config.trials;

  // Per-trial metric storage, preallocated so workers never contend.
  // Layout: [cell][trial].
  struct TrialMetrics {
    double mean_before, median_before, uncovered;
    // Per algorithm improvements (fixed small count).
    std::vector<double> imp_mean, imp_median;
  };
  std::vector<TrialMetrics> metrics(total_trials);

  ThreadPool pool(config.threads);
  std::atomic<std::size_t> cells_done{0};
  std::atomic<std::size_t> trials_done{0};

  pool.parallel_for(total_trials, [&](std::size_t k) {
    const std::size_t cell = k / config.trials;
    const std::size_t trial = k % config.trials;
    const std::size_t noise_idx = cell / n_counts;
    const std::size_t count_idx = cell % n_counts;

    const std::uint64_t trial_seed =
        derive_seed(config.seed, noise_idx, count_idx, trial);
    const TrialResult r =
        run_trial(config.params, config.beacon_counts[count_idx],
                  config.noise_levels[noise_idx], algorithms, trial_seed,
                  config.deployment);

    TrialMetrics& m = metrics[k];
    m.mean_before = r.mean_before;
    m.median_before = r.median_before;
    m.uncovered = r.uncovered_before;
    m.imp_mean.resize(n_algs);
    m.imp_median.resize(n_algs);
    for (std::size_t a = 0; a < n_algs; ++a) {
      m.imp_mean[a] = r.improvement_mean(a);
      m.imp_median[a] = r.improvement_median(a);
    }

    if (progress) {
      const std::size_t done = trials_done.fetch_add(1) + 1;
      if (done % config.trials == 0) {
        progress(cells_done.fetch_add(1) + 1, n_cells);
      }
    }
  });

  // Aggregate.
  SweepOutcome outcome;
  outcome.config = config;
  for (const auto* alg : algorithms) {
    outcome.algorithm_names.push_back(alg->name());
  }
  outcome.cells.resize(n_noise);
  std::vector<double> buf(config.trials);
  for (std::size_t ni = 0; ni < n_noise; ++ni) {
    outcome.cells[ni].resize(n_counts);
    for (std::size_t ci = 0; ci < n_counts; ++ci) {
      CellResult& cell = outcome.cells[ni][ci];
      cell.beacons = config.beacon_counts[ci];
      cell.noise = config.noise_levels[ni];
      cell.density = config.params.density(cell.beacons);
      cell.beacons_per_coverage =
          config.params.beacons_per_coverage(cell.beacons);

      const std::size_t base = (ni * n_counts + ci) * config.trials;
      auto collect = [&](auto&& get) {
        for (std::size_t t = 0; t < config.trials; ++t) {
          buf[t] = get(metrics[base + t]);
        }
        return summarize(buf);
      };
      cell.mean_error = collect([](const TrialMetrics& m) { return m.mean_before; });
      cell.median_error =
          collect([](const TrialMetrics& m) { return m.median_before; });
      cell.uncovered = collect([](const TrialMetrics& m) { return m.uncovered; });
      cell.improvement_mean.resize(n_algs);
      cell.improvement_median.resize(n_algs);
      for (std::size_t a = 0; a < n_algs; ++a) {
        cell.improvement_mean[a] =
            collect([a](const TrialMetrics& m) { return m.imp_mean[a]; });
        cell.improvement_median[a] =
            collect([a](const TrialMetrics& m) { return m.imp_median[a]; });
      }
    }
  }
  return outcome;
}

Saturation find_saturation(const SweepOutcome& outcome, std::size_t noise_idx,
                           double tolerance) {
  ABP_CHECK(noise_idx < outcome.cells.size(), "noise index out of range");
  ABP_CHECK(tolerance >= 1.0, "tolerance must be >= 1");
  const auto& row = outcome.cells[noise_idx];
  ABP_CHECK(!row.empty(), "empty sweep row");

  double floor = std::numeric_limits<double>::infinity();
  for (const CellResult& c : row) {
    floor = std::min(floor, c.mean_error.mean);
  }
  for (const CellResult& c : row) {
    if (c.mean_error.mean <= tolerance * floor) {
      return {c.density, c.beacons_per_coverage, floor};
    }
  }
  const CellResult& last = row.back();
  return {last.density, last.beacons_per_coverage, floor};
}

}  // namespace abp
