#include "eval/report.h"

#include <fstream>
#include <iostream>

#include "common/assert.h"
#include "common/csv.h"
#include "common/table.h"

namespace abp {

namespace {
std::string pm(const Summary& s, int precision = 3) {
  return TextTable::fmt(s.mean, precision) + " ±" +
         TextTable::fmt(s.ci95, precision);
}
}  // namespace

void print_mean_error_table(std::ostream& out, const SweepOutcome& outcome) {
  std::vector<std::string> cols{"beacons", "density", "b/cov"};
  for (double n : outcome.config.noise_levels) {
    cols.push_back(n == 0.0 ? "Ideal (m)"
                            : "Noise=" + TextTable::fmt(n, 1) + " (m)");
  }
  cols.push_back("frac-of-R (ideal col)");
  TextTable table(cols);

  const double r = outcome.config.params.range;
  const std::size_t n_counts = outcome.config.beacon_counts.size();
  for (std::size_t ci = 0; ci < n_counts; ++ci) {
    std::vector<std::string> row;
    const CellResult& first = outcome.cells[0][ci];
    row.push_back(std::to_string(first.beacons));
    row.push_back(TextTable::fmt(first.density, 4));
    row.push_back(TextTable::fmt(first.beacons_per_coverage, 2));
    for (std::size_t ni = 0; ni < outcome.cells.size(); ++ni) {
      row.push_back(pm(outcome.cells[ni][ci].mean_error, 2));
    }
    row.push_back(TextTable::fmt(first.mean_error.mean / r, 3));
    table.add_row(std::move(row));
  }
  table.print(out);
}

void print_improvement_tables(std::ostream& out, const SweepOutcome& outcome,
                              std::size_t noise_idx) {
  ABP_CHECK(noise_idx < outcome.cells.size(), "noise index out of range");
  ABP_CHECK(!outcome.algorithm_names.empty(), "sweep ran no algorithms");

  for (const bool median : {false, true}) {
    out << (median ? "Improvement in MEDIAN error (m), Noise="
                   : "Improvement in MEAN error (m), Noise=")
        << TextTable::fmt(outcome.config.noise_levels[noise_idx], 1) << "\n";
    std::vector<std::string> cols{"beacons", "density", "b/cov"};
    for (const auto& name : outcome.algorithm_names) cols.push_back(name);
    TextTable table(cols);
    for (std::size_t ci = 0; ci < outcome.config.beacon_counts.size(); ++ci) {
      const CellResult& cell = outcome.cells[noise_idx][ci];
      std::vector<std::string> row{
          std::to_string(cell.beacons), TextTable::fmt(cell.density, 4),
          TextTable::fmt(cell.beacons_per_coverage, 2)};
      for (std::size_t a = 0; a < outcome.algorithm_names.size(); ++a) {
        row.push_back(pm(median ? cell.improvement_median[a]
                                : cell.improvement_mean[a]));
      }
      table.add_row(std::move(row));
    }
    table.print(out);
    out << "\n";
  }
}

void print_algorithm_noise_tables(std::ostream& out,
                                  const SweepOutcome& outcome,
                                  std::size_t alg_idx) {
  ABP_CHECK(alg_idx < outcome.algorithm_names.size(),
            "algorithm index out of range");
  for (const bool median : {false, true}) {
    out << "Algorithm '" << outcome.algorithm_names[alg_idx]
        << "': improvement in " << (median ? "MEDIAN" : "MEAN")
        << " error (m) vs density and noise\n";
    std::vector<std::string> cols{"beacons", "density", "b/cov"};
    for (double n : outcome.config.noise_levels) {
      cols.push_back(n == 0.0 ? "Ideal" : "Noise=" + TextTable::fmt(n, 1));
    }
    TextTable table(cols);
    for (std::size_t ci = 0; ci < outcome.config.beacon_counts.size(); ++ci) {
      const CellResult& first = outcome.cells[0][ci];
      std::vector<std::string> row{
          std::to_string(first.beacons), TextTable::fmt(first.density, 4),
          TextTable::fmt(first.beacons_per_coverage, 2)};
      for (std::size_t ni = 0; ni < outcome.cells.size(); ++ni) {
        const CellResult& cell = outcome.cells[ni][ci];
        row.push_back(pm(median ? cell.improvement_median[alg_idx]
                                : cell.improvement_mean[alg_idx]));
      }
      table.add_row(std::move(row));
    }
    table.print(out);
    out << "\n";
  }
}

void print_saturation(std::ostream& out, const SweepOutcome& outcome,
                      std::size_t noise_idx) {
  const Saturation sat = find_saturation(outcome, noise_idx);
  out << "Noise=" << TextTable::fmt(outcome.config.noise_levels[noise_idx], 1)
      << ": saturation density ≈ " << TextTable::fmt(sat.density, 4)
      << " beacons/m² (" << TextTable::fmt(sat.beacons_per_coverage, 1)
      << " per coverage area), floor mean LE ≈ "
      << TextTable::fmt(sat.error, 2) << " m ("
      << TextTable::fmt(sat.error / outcome.config.params.range, 2)
      << " R)\n";
}

void write_sweep_csv(std::ostream& out, const SweepOutcome& outcome) {
  CsvWriter csv(out);
  csv.header({"noise", "beacons", "density", "beacons_per_coverage", "metric",
              "algorithm", "mean", "ci95", "median_of_trials", "trials"});
  const auto emit = [&](const CellResult& cell, const std::string& metric,
                        const std::string& alg, const Summary& s) {
    csv.begin_row();
    csv.number(cell.noise);
    csv.number(cell.beacons);
    csv.number(cell.density);
    csv.number(cell.beacons_per_coverage);
    csv.cell(metric);
    csv.cell(alg);
    csv.number(s.mean);
    csv.number(s.ci95);
    csv.number(s.median);
    csv.number(s.count);
    csv.end_row();
  };
  for (const auto& row : outcome.cells) {
    for (const CellResult& cell : row) {
      emit(cell, "mean_error", "", cell.mean_error);
      emit(cell, "median_error", "", cell.median_error);
      emit(cell, "uncovered", "", cell.uncovered);
      for (std::size_t a = 0; a < outcome.algorithm_names.size(); ++a) {
        emit(cell, "improvement_mean", outcome.algorithm_names[a],
             cell.improvement_mean[a]);
        emit(cell, "improvement_median", outcome.algorithm_names[a],
             cell.improvement_median[a]);
      }
    }
  }
}

void maybe_write_csv(const std::string& path, const SweepOutcome& outcome) {
  if (path.empty()) return;
  std::ofstream file(path);
  ABP_CHECK(file.good(), "cannot open CSV output path: " + path);
  write_sweep_csv(file, outcome);
  std::cerr << "wrote " << path << "\n";
}

}  // namespace abp
