#include "eval/figures.h"

#include "common/assert.h"
#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "placement/random_placement.h"

namespace abp {

SweepConfig make_sweep_config(const FigureOptions& opt,
                              std::vector<double> noise_levels) {
  ABP_CHECK(opt.count_stride >= 1, "count stride must be >= 1");
  SweepConfig config;
  config.trials = opt.trials;
  config.seed = opt.seed;
  config.threads = opt.threads;
  config.noise_levels = std::move(noise_levels);
  if (opt.count_stride > 1) {
    const auto all = SweepConfig::paper_beacon_counts();
    config.beacon_counts.clear();
    for (std::size_t i = 0; i < all.size(); i += opt.count_stride) {
      config.beacon_counts.push_back(all[i]);
    }
  }
  return config;
}

namespace {
const PlacementAlgorithm* const* paper_algorithms(std::size_t* count) {
  static const RandomPlacement random;
  static const MaxPlacement max;
  static const GridPlacement grid;  // NG = 400 (Table 1)
  static const PlacementAlgorithm* const algs[] = {&random, &max, &grid};
  *count = 3;
  return algs;
}
}  // namespace

SweepOutcome run_fig4(const FigureOptions& opt) {
  return run_sweep(make_sweep_config(opt, {0.0}), {}, opt.progress);
}

SweepOutcome run_fig5(const FigureOptions& opt) {
  std::size_t n = 0;
  const auto* algs = paper_algorithms(&n);
  return run_sweep(make_sweep_config(opt, {0.0}), {algs, n}, opt.progress);
}

SweepOutcome run_fig6(const FigureOptions& opt) {
  return run_sweep(
      make_sweep_config(opt, SweepConfig::paper_noise_levels()), {},
      opt.progress);
}

SweepOutcome run_fig_alg_noise(const std::string& algorithm,
                               const FigureOptions& opt) {
  static const RandomPlacement random;
  static const MaxPlacement max;
  static const GridPlacement grid;
  const PlacementAlgorithm* alg = nullptr;
  if (algorithm == "random") alg = &random;
  else if (algorithm == "max") alg = &max;
  else if (algorithm == "grid") alg = &grid;
  ABP_CHECK(alg != nullptr, "unknown algorithm: " + algorithm);
  const PlacementAlgorithm* const algs[] = {alg};
  return run_sweep(
      make_sweep_config(opt, SweepConfig::paper_noise_levels()), {algs, 1},
      opt.progress);
}

}  // namespace abp
