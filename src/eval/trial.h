/// \file trial.h
/// \brief One experimental trial: one random beacon field, measured before
/// and after each algorithm's proposed placement (§4.1).
///
/// Per trial: generate a field of `beacon_count` uniform-random beacons,
/// compute the ground-truth error map, then for EACH algorithm
/// independently add its proposed beacon, re-measure, and roll the field
/// back — so all algorithms are compared on the identical field, exactly as
/// the paper's per-field metrics require. The error map is snapshotted and
/// restored rather than recomputed, and additions use the exact incremental
/// update; a trial is O(PT · K̄) instead of O(algorithms · PT · K̄).
///
/// Determinism: everything derives from `trial_seed`; field generation,
/// the propagation noise landscape, and each algorithm's RNG stream use
/// disjoint derived seeds, so results are independent of scheduling.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "eval/config.h"
#include "placement/placement.h"

namespace abp {

/// Outcome of one algorithm on one trial field.
struct AlgorithmOutcome {
  std::string name;
  Vec2 position;              ///< where the beacon was placed
  double mean_after = 0.0;    ///< mean LE after the placement
  double median_after = 0.0;  ///< median LE after the placement
};

struct TrialResult {
  double mean_before = 0.0;
  double median_before = 0.0;
  double uncovered_before = 0.0;  ///< fraction of lattice hearing 0 beacons
  std::vector<AlgorithmOutcome> outcomes;  ///< one per algorithm, in order

  double improvement_mean(std::size_t alg) const {
    return mean_before - outcomes[alg].mean_after;
  }
  double improvement_median(std::size_t alg) const {
    return median_before - outcomes[alg].median_after;
  }
};

/// Run one trial. `noise` is the paper's Noise parameter (0 = ideal
/// propagation). `algorithms` may be empty (measurement-only trials for
/// Figs 4/6). `deployment` selects the field distribution (paper: uniform).
TrialResult run_trial(const PaperParams& params, std::size_t beacon_count,
                      double noise,
                      std::span<const PlacementAlgorithm* const> algorithms,
                      std::uint64_t trial_seed,
                      Deployment deployment = Deployment::kUniform);

}  // namespace abp
