#include "eval/config.h"

#include <numbers>

namespace abp {

double PaperParams::beacons_per_coverage(std::size_t count) const {
  return density(count) * std::numbers::pi * range * range;
}

std::vector<std::size_t> SweepConfig::paper_beacon_counts() {
  std::vector<std::size_t> counts;
  for (std::size_t n = 20; n <= 240; n += 10) counts.push_back(n);
  return counts;
}

std::vector<double> SweepConfig::paper_noise_levels() {
  return {0.0, 0.1, 0.3, 0.5};
}

}  // namespace abp
