#include "placement/coverage_placement.h"

#include <vector>

#include "common/assert.h"
#include "loc/connectivity.h"

namespace abp {

CoveragePlacement::CoveragePlacement(std::size_t stride) : stride_(stride) {
  ABP_CHECK(stride >= 1, "stride must be at least 1");
}

Vec2 CoveragePlacement::propose(const PlacementContext& ctx, Rng&) const {
  ABP_CHECK(ctx.field != nullptr && ctx.model != nullptr,
            "coverage placement requires field and model");
  ABP_CHECK(ctx.survey != nullptr, "coverage placement requires the lattice");
  ABP_CHECK(ctx.nominal_range > 0.0, "coverage placement requires R");
  const Lattice2D& lattice = ctx.survey->lattice();

  // Precompute which lattice points are currently uncovered: one batched
  // kernel pass instead of a per-point field snapshot.
  const SurveyKernel kernel(*ctx.field, *ctx.model);
  SurveyBatch batch;
  batch.reserve(lattice.size());
  lattice.for_each([&](std::size_t, Vec2 p) { batch.push(p); });
  kernel.evaluate(batch);
  std::vector<std::uint8_t> uncovered(lattice.size(), 0);
  std::size_t idx = 0;
  lattice.for_each([&](std::size_t flat, Vec2) {
    uncovered[flat] = batch.counts[idx++] == 0;
  });

  std::size_t best_gain = 0;
  Vec2 best_pos = lattice.point(0);
  bool first = true;
  for (std::size_t j = 0; j < lattice.ny(); j += stride_) {
    for (std::size_t i = 0; i < lattice.nx(); i += stride_) {
      const Vec2 candidate = lattice.point(i, j);
      std::size_t gain = 0;
      lattice.for_each_in_disk(candidate, ctx.nominal_range,
                               [&](std::size_t flat, Vec2) {
                                 gain += uncovered[flat];
                               });
      if (first || gain > best_gain) {
        best_gain = gain;
        best_pos = candidate;
        first = false;
      }
    }
  }
  return best_pos;
}

}  // namespace abp
