/// \file density_control.h
/// \brief Beacon self-scheduling by density (the §5/§6 discussion: beacons
/// "decide whether to turn themselves on i.e., be active or be passive",
/// in the spirit of AFECA's density-adaptive duty cycling).
///
/// Beyond the saturation density (~0.01 beacons/m² ideal, §4.2) extra
/// active beacons buy almost no localization accuracy while costing power
/// and increasing self-interference (§1). The greedy controller repeatedly
/// deactivates the active beacon whose silencing costs the least mean
/// localization error, as long as the resulting mean stays within
/// `tolerance_factor` of the all-active baseline. The result is the active
/// subset a self-scheduling deployment should converge to.
#pragma once

#include <vector>

#include "loc/error_map.h"
#include "placement/placement.h"

namespace abp {

struct DensityControlConfig {
  /// Stop when no deactivation keeps mean LE ≤ tolerance_factor × baseline.
  double tolerance_factor = 1.05;
  /// Evaluate at most this many candidate beacons per round (random subset
  /// when the active count is larger); 0 = evaluate all.
  std::size_t candidate_sample = 0;
  /// Hard cap on deactivations (0 = no cap).
  std::size_t max_deactivations = 0;
};

struct DensityControlResult {
  std::size_t initial_active = 0;
  std::size_t final_active = 0;
  double baseline_mean = 0.0;  ///< mean LE with all beacons active
  double final_mean = 0.0;     ///< mean LE with the chosen active subset
  std::vector<BeaconId> deactivated;  ///< in deactivation order
};

/// Run the greedy controller. `map` must be current for `field` + `model`;
/// it is updated in place and reflects the final active subset on return.
DensityControlResult greedy_density_control(BeaconField& field,
                                            const PropagationModel& model,
                                            ErrorMap& map,
                                            const DensityControlConfig& config,
                                            Rng& rng);

}  // namespace abp
