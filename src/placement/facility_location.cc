#include "placement/facility_location.h"

#include <algorithm>
#include <limits>

#include "common/assert.h"

namespace abp {

namespace {

std::vector<Vec2> demand_points(const Lattice2D& lattice,
                                std::size_t stride) {
  std::vector<Vec2> out;
  for (std::size_t j = 0; j < lattice.ny(); j += stride) {
    for (std::size_t i = 0; i < lattice.nx(); i += stride) {
      out.push_back(lattice.point(i, j));
    }
  }
  return out;
}

double capped(double d, double cap) {
  return cap > 0.0 ? std::min(d, cap) : d;
}

}  // namespace

std::vector<Vec2> greedy_kmedian_deployment(const Lattice2D& lattice,
                                            std::size_t k,
                                            const KMedianConfig& config) {
  ABP_CHECK(k >= 1, "need at least one facility");
  ABP_CHECK(config.site_stride >= 1 && config.demand_stride >= 1,
            "strides must be at least 1");
  ABP_CHECK(config.distance_cap >= 0.0, "negative distance cap");

  const std::vector<Vec2> sites = demand_points(lattice, config.site_stride);
  const std::vector<Vec2> demand =
      demand_points(lattice, config.demand_stride);
  ABP_CHECK(k <= sites.size(), "more facilities than candidate sites");

  // Current capped distance of each demand point to its nearest chosen
  // facility. The unserved sentinel must be finite and modest — gains are
  // summed over all demand points, and an astronomical sentinel would
  // overflow the sum and erase the differences between sites. The lattice
  // diagonal bounds every real distance.
  const double diagonal =
      distance(lattice.bounds().lo, lattice.bounds().hi);
  const double init =
      config.distance_cap > 0.0 ? config.distance_cap : diagonal;
  std::vector<double> nearest(demand.size(), init);

  std::vector<Vec2> chosen;
  std::vector<bool> used(sites.size(), false);
  chosen.reserve(k);
  for (std::size_t round = 0; round < k; ++round) {
    double best_gain = -1.0;
    std::size_t best_site = sites.size();
    for (std::size_t s = 0; s < sites.size(); ++s) {
      if (used[s]) continue;
      double gain = 0.0;
      for (std::size_t d = 0; d < demand.size(); ++d) {
        const double dist =
            capped(distance(sites[s], demand[d]), config.distance_cap);
        if (dist < nearest[d]) gain += nearest[d] - dist;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_site = s;
      }
    }
    ABP_DCHECK(best_site < sites.size(), "no site found");
    used[best_site] = true;
    chosen.push_back(sites[best_site]);
    for (std::size_t d = 0; d < demand.size(); ++d) {
      const double dist =
          capped(distance(sites[best_site], demand[d]), config.distance_cap);
      nearest[d] = std::min(nearest[d], dist);
    }
  }
  return chosen;
}

double kmedian_objective(const Lattice2D& lattice,
                         const std::vector<Vec2>& positions,
                         const KMedianConfig& config) {
  ABP_CHECK(!positions.empty(), "empty deployment");
  const std::vector<Vec2> demand =
      demand_points(lattice, config.demand_stride);
  double total = 0.0;
  for (const Vec2& d : demand) {
    double best = std::numeric_limits<double>::max();
    for (const Vec2& p : positions) {
      best = std::min(best, distance(p, d));
    }
    total += capped(best, config.distance_cap);
  }
  return total / static_cast<double>(demand.size());
}

}  // namespace abp
