/// \file coverage_placement.h
/// \brief Coverage-maximizing placement — the §1 generalization ("global
/// coverage … in wireless sensor networks") expressed as a placement rule.
///
/// Scores each candidate lattice point (subsampled by `stride`) by how
/// many currently-uncovered lattice points a beacon there would cover
/// (points within the nominal range R that hear no beacon today), and
/// proposes the argmax. Ignores error magnitudes entirely, so it contrasts
/// cleanly with Max (pointwise error) and Grid (area error mass) in the
/// coverage-vs-accuracy ablation.
#pragma once

#include "placement/placement.h"

namespace abp {

class CoveragePlacement final : public PlacementAlgorithm {
 public:
  explicit CoveragePlacement(std::size_t stride = 2);

  std::string name() const override { return "coverage"; }

  /// Requires ctx.field and ctx.model (needs connectivity, not errors).
  Vec2 propose(const PlacementContext& ctx, Rng& rng) const override;

 private:
  std::size_t stride_;
};

}  // namespace abp
