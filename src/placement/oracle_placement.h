/// \file oracle_placement.h
/// \brief Greedy oracle: the best single placement under full knowledge.
///
/// Not a paper algorithm — an upper-bound baseline for the ablation study.
/// The oracle evaluates the *true* post-placement mean localization error
/// for every candidate lattice point (subsampled by `stride`) using the
/// ground-truth error map's hypothetical-addition query, and picks the
/// argmin. It answers "how much headroom do Grid/Max leave on the table?"
/// (§4: the efficacy of placement algorithms is predicated on the solution
/// space being dense — the oracle measures the best point of that space).
#pragma once

#include "placement/placement.h"

namespace abp {

class OraclePlacement final : public PlacementAlgorithm {
 public:
  /// `stride`: evaluate every stride-th lattice point per axis (1 = every
  /// point; the default 2 cuts cost 4× with negligible loss).
  explicit OraclePlacement(std::size_t stride = 2);

  std::string name() const override { return "oracle"; }

  /// Requires ctx.field, ctx.model and ctx.truth.
  Vec2 propose(const PlacementContext& ctx, Rng& rng) const override;

 private:
  std::size_t stride_;
};

}  // namespace abp
