#include "placement/max_placement.h"

#include "common/assert.h"

namespace abp {

Vec2 MaxPlacement::propose(const PlacementContext& ctx, Rng&) const {
  ABP_CHECK(ctx.survey != nullptr, "Max requires survey data");
  const SurveyData& survey = *ctx.survey;
  ABP_CHECK(survey.measured_count() > 0, "Max requires measurements");

  double best = -1.0;
  std::size_t best_flat = 0;
  const std::size_t n = survey.lattice().size();
  for (std::size_t flat = 0; flat < n; ++flat) {
    if (!survey.measured(flat)) continue;
    const double v = survey.value(flat);
    if (v > best) {
      best = v;
      best_flat = flat;
    }
  }
  return survey.lattice().point(best_flat);
}

}  // namespace abp
