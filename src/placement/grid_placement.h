/// \file grid_placement.h
/// \brief The Grid algorithm (§3.2.3): cumulative error over overlapping
/// grids.
///
/// The terrain is divided into NG partially-overlapping square grids of
/// side gridSide = 2R ("each grid encloses the radio reachability region of
/// its center"). With m = √NG grids per axis, grid (i,j) for 1 ≤ i,j ≤ m is
/// centered at
///     Xc(i,j) = gridSide/2 + (i−1)·(Side − gridSide)/(m − 1),
/// and likewise for Yc — centers span [R, Side−R] uniformly. For each grid
/// the *cumulative* measured localization error over the lattice points it
/// contains is computed; the new beacon goes to the center of the grid with
/// the maximum cumulative error. "Based on the observation that adding a
/// new beacon affects its nearby area, not just the point where it is
/// placed" — which is why Grid, unlike Max, can improve many points at
/// once. Complexity O(NG · PG).
#pragma once

#include <vector>

#include "placement/placement.h"

namespace abp {

class GridPlacement final : public PlacementAlgorithm {
 public:
  /// `num_grids` is the paper's NG (default 400); must be a perfect square
  /// with at least 2 grids per axis. `grid_side_factor` scales the grid
  /// side relative to R (paper: 2).
  ///
  /// `normalized` switches the grid score from the paper's *cumulative*
  /// error to the *mean* error over the grid's measured points. The
  /// cumulative form implicitly assumes uniform measurement density — a
  /// survey that concentrates measurements (e.g. the adaptive explorer)
  /// inflates the score of heavily-sampled grids regardless of how bad
  /// they are. Normalization removes that bias (see
  /// bench_ablation_explorer); the paper's algorithm is the default.
  explicit GridPlacement(std::size_t num_grids = 400,
                         double grid_side_factor = 2.0,
                         bool normalized = false);

  std::string name() const override {
    return normalized_ ? "grid-norm" : "grid";
  }
  Vec2 propose(const PlacementContext& ctx, Rng& rng) const override;

  /// One candidate grid's center and cumulative error (exposed for tests
  /// and diagnostics).
  struct GridScore {
    Vec2 center;
    double cumulative_error = 0.0;
    std::size_t points = 0;  ///< measured points in this grid (≈ paper PG)

    /// The score `propose` ranks by: cumulative (paper) or mean.
    double score(bool normalized) const {
      if (!normalized) return cumulative_error;
      return points == 0 ? 0.0
                         : cumulative_error / static_cast<double>(points);
    }
  };

  /// Scores of all NG grids, row-major in (i, j).
  std::vector<GridScore> scores(const PlacementContext& ctx) const;

  std::size_t num_grids() const { return num_grids_; }
  std::size_t grids_per_axis() const { return per_axis_; }

 private:
  std::size_t num_grids_;
  std::size_t per_axis_;
  double grid_side_factor_;
  bool normalized_;
};

}  // namespace abp
