/// \file random_placement.h
/// \brief The Random algorithm (§3.2.1): "select a random point in the
/// terrain as a candidate point for adding an additional beacon".
///
/// O(1); takes no measurements. Investigated "primarily for comparison with
/// the other algorithms, but also because it is similar in character to
/// uncontrolled airdrop of additional nodes". Its gains are expected to be
/// (and measured to be, Fig 7) independent of the noise level.
#pragma once

#include "placement/placement.h"

namespace abp {

class RandomPlacement final : public PlacementAlgorithm {
 public:
  std::string name() const override { return "random"; }
  Vec2 propose(const PlacementContext& ctx, Rng& rng) const override;
};

}  // namespace abp
