#include "placement/distributed_scheduler.h"

#include "common/assert.h"

namespace abp {

namespace {

/// Active beacons within radius of `b`, excluding `b` itself.
std::size_t active_neighbors(const BeaconField& field, const Beacon& b,
                             double radius) {
  std::size_t n = 0;
  field.query_disk(b.pos, radius, [&](const Beacon& other) {
    if (other.id != b.id) ++n;
  });
  return n;
}

}  // namespace

DistributedSchedulerResult distributed_density_control(
    BeaconField& field, const DistributedSchedulerConfig& config, Rng& rng) {
  ABP_CHECK(config.neighbor_radius > 0.0, "neighbor radius must be positive");
  ABP_CHECK(config.min_active_neighbors <= config.max_active_neighbors,
            "min_active_neighbors must not exceed max_active_neighbors");
  ABP_CHECK(config.backoff_probability > 0.0 &&
                config.backoff_probability <= 1.0,
            "backoff probability must be in (0, 1]");

  DistributedSchedulerResult result;
  result.initial_active = field.active_count();

  // All deployed beacons (live, whatever their current state).
  std::vector<BeaconId> everyone;
  for (BeaconId id = 0; everyone.size() < field.size(); ++id) {
    ABP_CHECK(id < 100000000u, "runaway id scan");
    if (field.get(id)) everyone.push_back(id);
  }

  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    ++result.rounds;
    bool changed = false;
    // Random decision order each round models unsynchronized nodes.
    rng.shuffle(everyone);
    for (BeaconId id : everyone) {
      const Beacon b = *field.get(id);
      const std::size_t heard =
          active_neighbors(field, b, config.neighbor_radius);
      if (b.active && heard > config.max_active_neighbors) {
        if (rng.bernoulli(config.backoff_probability)) {
          field.set_active(id, false);
          changed = true;
        }
      } else if (!b.active && heard < config.min_active_neighbors) {
        field.set_active(id, true);
        changed = true;
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  result.final_active = field.active_count();
  return result;
}

}  // namespace abp
