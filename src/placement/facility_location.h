/// \file facility_location.h
/// \brief Engineered deployment via greedy k-median — the §5 connection.
///
/// The paper situates beacon placement next to the facility-location
/// literature ("determine a set of locations at which to open facilities,
/// so as to minimize the total … assignment costs"; NP-hard, approached
/// with approximation algorithms). For centroid localization the natural
/// assignment cost of a client is its distance to the nearest beacon, so
/// the classic greedy k-median (repeatedly open the facility that most
/// reduces total assignment cost) is the "engineered deployment" an
/// operator with full terrain control would compute offline — the
/// counterpoint to §4.1's random fields and the adaptive algorithms that
/// repair them. Greedy enjoys the standard (1 − 1/e) submodular
/// approximation guarantee for the coverage-style objective.
#pragma once

#include <vector>

#include "geom/lattice.h"
#include "geom/vec2.h"

namespace abp {

struct KMedianConfig {
  /// Candidate sites: every `site_stride`-th lattice point per axis.
  std::size_t site_stride = 4;
  /// Demand points: every `demand_stride`-th lattice point per axis.
  std::size_t demand_stride = 2;
  /// Distances are capped at this value in the objective (beyond a cap the
  /// client is "unserved" either way); 0 disables the cap. Capping makes
  /// the objective coverage-like and the greedy near-optimal in practice.
  double distance_cap = 0.0;
};

/// Greedily choose `k` beacon positions minimizing the (capped) mean
/// distance from every demand point to its nearest chosen position.
/// Deterministic; O(k · |sites| · |demand|) with incremental min-distance
/// maintenance.
std::vector<Vec2> greedy_kmedian_deployment(const Lattice2D& lattice,
                                            std::size_t k,
                                            const KMedianConfig& config = {});

/// The objective value (capped mean distance to nearest position) of an
/// arbitrary deployment over the same demand set.
double kmedian_objective(const Lattice2D& lattice,
                         const std::vector<Vec2>& positions,
                         const KMedianConfig& config = {});

}  // namespace abp
