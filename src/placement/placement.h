/// \file placement.h
/// \brief The adaptive beacon placement problem and algorithm interface
/// (§3: "given an existing field of beacons, how should additional beacons
/// be placed for best advantage").
///
/// An algorithm receives the agent's survey of measured localization error
/// and proposes ONE position for an additional beacon. The three paper
/// algorithms (Random / Max / Grid, §3.2) need only the survey and the
/// terrain bounds; extension algorithms (oracle, locus, GDOP) additionally
/// inspect the live field and propagation model through the optional
/// context pointers — they model richer instrumentation, not the paper's
/// baseline setting.
#pragma once

#include <memory>
#include <string>

#include "field/beacon_field.h"
#include "geom/aabb.h"
#include "loc/survey_data.h"
#include "radio/propagation.h"
#include "rng/rng.h"

namespace abp {

struct PlacementContext {
  /// Measured localization error over the lattice (never null).
  const SurveyData* survey = nullptr;
  /// Deployment region (the terrain square).
  AABB bounds;
  /// Nominal transmission range R (drives the Grid algorithm's grid side).
  double nominal_range = 0.0;

  /// Optional richer instrumentation for extension algorithms; the paper's
  /// three algorithms ignore these.
  const BeaconField* field = nullptr;
  const PropagationModel* model = nullptr;
  const ErrorMap* truth = nullptr;

  /// Convenience factory for the common case.
  static PlacementContext basic(const SurveyData& survey, AABB bounds,
                                double nominal_range) {
    PlacementContext ctx;
    ctx.survey = &survey;
    ctx.bounds = bounds;
    ctx.nominal_range = nominal_range;
    return ctx;
  }
};

class PlacementAlgorithm {
 public:
  virtual ~PlacementAlgorithm() = default;

  /// Short identifier used in result tables ("random", "max", "grid", …).
  virtual std::string name() const = 0;

  /// Propose the position for one additional beacon.
  virtual Vec2 propose(const PlacementContext& ctx, Rng& rng) const = 0;
};

}  // namespace abp
