#include "placement/random_placement.h"

namespace abp {

Vec2 RandomPlacement::propose(const PlacementContext& ctx, Rng& rng) const {
  return {rng.uniform(ctx.bounds.lo.x, ctx.bounds.hi.x),
          rng.uniform(ctx.bounds.lo.y, ctx.bounds.hi.y)};
}

}  // namespace abp
