#include "placement/gdop_placement.h"

#include "common/assert.h"
#include "loc/connectivity.h"
#include "loc/multilateration.h"

namespace abp {

GdopPlacement::GdopPlacement(std::size_t stride) : stride_(stride) {
  ABP_CHECK(stride >= 1, "stride must be at least 1");
}

Vec2 GdopPlacement::propose(const PlacementContext& ctx, Rng&) const {
  ABP_CHECK(ctx.field != nullptr && ctx.model != nullptr,
            "GDOP placement requires field and model");
  ABP_CHECK(ctx.survey != nullptr, "GDOP placement requires the lattice");
  const Lattice2D& lattice = ctx.survey->lattice();

  // One snapshot for the whole candidate sweep.
  const SurveyKernel kernel(*ctx.field, *ctx.model);

  double worst = -1.0;
  Vec2 worst_pos = lattice.point(0);
  for (std::size_t j = 0; j < lattice.ny(); j += stride_) {
    for (std::size_t i = 0; i < lattice.nx(); i += stride_) {
      const Vec2 p = lattice.point(i, j);
      const auto beacons = kernel.connected_list(p);
      const double g = gdop(p, beacons);
      if (g > worst) {
        worst = g;
        worst_pos = p;
      }
    }
  }
  return worst_pos;
}

}  // namespace abp
