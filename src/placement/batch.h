/// \file batch.h
/// \brief Multi-beacon batch placement (§6 future work: "evaluate the
/// algorithms with respect to the gains obtained when several beacons are
/// added at once (instead of just one beacon)").
///
/// Two strategies:
///  * **Sequential** — after each placement the terrain is re-surveyed and
///    the algorithm re-run: k tours, k placements, maximal information.
///  * **One-shot** — a single survey; after each proposal the neighbourhood
///    (radius R) of the chosen point is suppressed in the survey copy so
///    the next proposal targets a different hot spot. One tour, k
///    placements, stale information.
/// The ablation bench compares the two against k× the single-beacon gain.
#pragma once

#include <vector>

#include "loc/error_map.h"
#include "placement/placement.h"

namespace abp {

enum class BatchMode {
  kSequential,  ///< re-survey between placements
  kOneShot,     ///< one survey, suppress around each pick
};

struct BatchResult {
  std::vector<Vec2> positions;   ///< where the k beacons were placed
  std::vector<BeaconId> ids;     ///< their ids in the field
  double mean_before = 0.0;      ///< mean LE before any placement
  double mean_after = 0.0;       ///< mean LE after all k placements
  double median_before = 0.0;
  double median_after = 0.0;
};

/// Place `k` additional beacons into `field` using `algorithm`. `map` must
/// be the current ground-truth error map for `field` + `model`; it is kept
/// up to date incrementally and reflects the final state on return.
/// The survey given to the algorithm is derived from `map` (complete,
/// noise-free — the §3.1 baseline).
BatchResult place_batch(BeaconField& field, const PropagationModel& model,
                        ErrorMap& map, const PlacementAlgorithm& algorithm,
                        std::size_t k, BatchMode mode, Rng& rng);

}  // namespace abp
