#include "placement/refined_grid_placement.h"

#include <limits>

#include "common/assert.h"
#include "loc/error_map.h"

namespace abp {

RefinedGridPlacement::RefinedGridPlacement(std::size_t num_grids,
                                           double grid_side_factor,
                                           std::size_t refine_stride)
    : coarse_(num_grids, grid_side_factor),
      grid_side_factor_(grid_side_factor),
      refine_stride_(refine_stride) {
  ABP_CHECK(refine_stride >= 1, "refine stride must be at least 1");
}

Vec2 RefinedGridPlacement::propose(const PlacementContext& ctx,
                                   Rng& rng) const {
  ABP_CHECK(ctx.field != nullptr && ctx.model != nullptr &&
                ctx.truth != nullptr,
            "refined grid requires field, model and ground truth");
  // Stage 1: Grid's cheap area scoring picks the winning grid center.
  const Vec2 center = coarse_.propose(ctx, rng);

  // Stage 2: true-improvement search over the winning grid's box.
  const double half = grid_side_factor_ * ctx.nominal_range / 2.0;
  const AABB box = AABB::centered(center, half, half);
  const Lattice2D& lattice = ctx.truth->lattice();

  double best_mean = std::numeric_limits<double>::infinity();
  Vec2 best_pos = center;
  std::size_t visited = 0;
  lattice.for_each_in_box(box, [&](std::size_t flat, Vec2 p) {
    const auto [i, j] = lattice.coords(flat);
    if (i % refine_stride_ != 0 || j % refine_stride_ != 0) return;
    ++visited;
    const double after = ctx.truth->mean_if_added(*ctx.field, *ctx.model, p);
    if (after < best_mean) {
      best_mean = after;
      best_pos = p;
    }
  });
  ABP_DCHECK(visited > 0, "empty refinement box");
  // Never do worse than the plain grid center.
  if (ctx.truth->mean_if_added(*ctx.field, *ctx.model, center) < best_mean) {
    best_pos = center;
  }
  return best_pos;
}

}  // namespace abp
