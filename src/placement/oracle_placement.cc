#include "placement/oracle_placement.h"

#include "common/assert.h"
#include "loc/survey_kernel.h"

namespace abp {

OraclePlacement::OraclePlacement(std::size_t stride) : stride_(stride) {
  ABP_CHECK(stride >= 1, "stride must be at least 1");
}

Vec2 OraclePlacement::propose(const PlacementContext& ctx, Rng&) const {
  ABP_CHECK(ctx.field != nullptr && ctx.model != nullptr &&
                ctx.truth != nullptr,
            "oracle requires field, model and ground-truth error map");
  const ErrorMap& truth = *ctx.truth;
  const Lattice2D& lattice = truth.lattice();

  // One snapshot scores every candidate: the field does not change during
  // the search, so the kernel (and its per-beacon precomputation) is shared
  // across all mean_if_added sweeps.
  const SurveyKernel kernel(*ctx.field, *ctx.model);

  double best_mean = std::numeric_limits<double>::infinity();
  Vec2 best_pos = lattice.point(0);
  for (std::size_t j = 0; j < lattice.ny(); j += stride_) {
    for (std::size_t i = 0; i < lattice.nx(); i += stride_) {
      const Vec2 candidate = lattice.point(i, j);
      const double after = truth.mean_if_added(*ctx.field, kernel, candidate);
      if (after < best_mean) {
        best_mean = after;
        best_pos = candidate;
      }
    }
  }
  return best_pos;
}

}  // namespace abp
