#include "placement/locus_placement.h"

#include "common/assert.h"
#include "loc/locus.h"

namespace abp {

Vec2 LocusPlacement::propose(const PlacementContext& ctx, Rng&) const {
  ABP_CHECK(ctx.field != nullptr && ctx.model != nullptr,
            "locus placement requires field and model");
  ABP_CHECK(ctx.survey != nullptr, "locus placement requires the lattice");
  const LocusAnalysis analysis =
      analyze_loci(*ctx.field, *ctx.model, ctx.survey->lattice());
  const LocusRegion* target =
      covered_only_ ? analysis.largest_covered() : analysis.largest();
  if (target == nullptr) target = analysis.largest();
  ABP_CHECK(target != nullptr, "empty locus analysis");
  return ctx.bounds.clamp(target->centroid);
}

}  // namespace abp
