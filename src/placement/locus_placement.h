/// \file locus_placement.h
/// \brief Locus-area placement (§6 future work): "adding new beacons to
/// break down the loci with the largest area into smaller loci".
///
/// Uses the locus decomposition (loc/locus.h): every maximal set of points
/// with identical beacon connectivity is one localization region; a large
/// region means coarse localization everywhere inside it. The algorithm
/// places the new beacon at the centroid of the largest region, splitting
/// it into (up to) two smaller loci along the new beacon's range boundary.
/// "To some extent, the Grid algorithm incorporates this strategy" — the
/// ablation bench quantifies how much.
#pragma once

#include "placement/placement.h"

namespace abp {

class LocusPlacement final : public PlacementAlgorithm {
 public:
  /// If `covered_only` is true, target the largest region that already
  /// hears ≥1 beacon (refining granularity); otherwise target the largest
  /// region overall, which at low density is usually the uncovered
  /// exterior (extending coverage).
  explicit LocusPlacement(bool covered_only = false)
      : covered_only_(covered_only) {}

  std::string name() const override {
    return covered_only_ ? "locus-covered" : "locus";
  }

  /// Requires ctx.field and ctx.model (the locus decomposition needs
  /// connectivity signatures, not just scalar error readings).
  Vec2 propose(const PlacementContext& ctx, Rng& rng) const override;

 private:
  bool covered_only_;
};

}  // namespace abp
