/// \file refined_grid_placement.h
/// \brief Grid + local refinement — a natural fourth algorithm in the
/// §3.2 processing hierarchy ("these are by no means the only possible
/// algorithms, but these are representative of the effectiveness
/// attainable with different degrees of processing").
///
/// The Grid algorithm can only propose one of the NG fixed grid centers,
/// which all lie ≥ R from the terrain edge — corners can never be repaired
/// and the center need not be the best point of the winning grid (see the
/// oracle ablation). This variant keeps Grid's cheap area scoring to pick
/// the winning grid, then evaluates the true post-placement mean error
/// (`ErrorMap::mean_if_added`) on a `refine_stride`-subsampled lattice
/// inside that grid's box and proposes the argmin: oracle-quality
/// placement restricted to the area Grid already identified, at ~NG× less
/// cost than the full oracle.
#pragma once

#include "placement/grid_placement.h"

namespace abp {

class RefinedGridPlacement final : public PlacementAlgorithm {
 public:
  explicit RefinedGridPlacement(std::size_t num_grids = 400,
                                double grid_side_factor = 2.0,
                                std::size_t refine_stride = 3);

  std::string name() const override { return "grid-refined"; }

  /// Requires ctx.field, ctx.model and ctx.truth (like the oracle).
  Vec2 propose(const PlacementContext& ctx, Rng& rng) const override;

 private:
  GridPlacement coarse_;
  double grid_side_factor_;
  std::size_t refine_stride_;
};

}  // namespace abp
