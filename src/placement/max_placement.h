/// \file max_placement.h
/// \brief The Max algorithm (§3.2.2): place the new beacon at the measured
/// point with the highest localization error.
///
/// "Predicated on the assumption that points with high localization error
/// are spatially correlated … it is sensitive to local maxima." Complexity
/// is linear in PT, the number of measured points. Ties break to the lowest
/// flat lattice index (row-major scan order) for determinism; ties have
/// measure zero under noise.
#pragma once

#include "placement/placement.h"

namespace abp {

class MaxPlacement final : public PlacementAlgorithm {
 public:
  std::string name() const override { return "max"; }
  Vec2 propose(const PlacementContext& ctx, Rng& rng) const override;
};

}  // namespace abp
