#include "placement/batch.h"

#include "common/assert.h"
#include "loc/survey_data.h"

namespace abp {

BatchResult place_batch(BeaconField& field, const PropagationModel& model,
                        ErrorMap& map, const PlacementAlgorithm& algorithm,
                        std::size_t k, BatchMode mode, Rng& rng) {
  ABP_CHECK(k >= 1, "batch size must be at least 1");
  BatchResult result;
  result.mean_before = map.mean();
  result.median_before = map.median();

  auto make_ctx = [&](const SurveyData& survey) {
    PlacementContext ctx = PlacementContext::basic(survey, field.bounds(),
                                                   model.nominal_range());
    ctx.field = &field;
    ctx.model = &model;
    ctx.truth = &map;
    return ctx;
  };

  if (mode == BatchMode::kSequential) {
    for (std::size_t step = 0; step < k; ++step) {
      const SurveyData survey = SurveyData::from_error_map(map);
      const Vec2 pos =
          field.bounds().clamp(algorithm.propose(make_ctx(survey), rng));
      const BeaconId id = field.add(pos);
      map.apply_addition(field, model, *field.get(id));
      result.positions.push_back(pos);
      result.ids.push_back(id);
    }
  } else {
    SurveyData survey = SurveyData::from_error_map(map);
    std::vector<Vec2> picks;
    for (std::size_t step = 0; step < k; ++step) {
      const Vec2 pos =
          field.bounds().clamp(algorithm.propose(make_ctx(survey), rng));
      picks.push_back(pos);
      survey.suppress_disk(pos, model.nominal_range());
    }
    for (const Vec2 pos : picks) {
      const BeaconId id = field.add(pos);
      map.apply_addition(field, model, *field.get(id));
      result.positions.push_back(pos);
      result.ids.push_back(id);
    }
  }

  result.mean_after = map.mean();
  result.median_after = map.median();
  return result;
}

}  // namespace abp
