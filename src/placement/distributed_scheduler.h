/// \file distributed_scheduler.h
/// \brief Beacon-based distributed self-scheduling — the §6 "alternative
/// approach … wherein a reasonably dense beacon deployment is assumed, and
/// the beacon nodes themselves instrument the terrain conditions based on
/// interactions with other (beacon) nodes, and decide whether to turn
/// themselves on i.e., be active or be passive."
///
/// Unlike the greedy controller (density_control.h), which needs a global
/// error map, every decision here uses only information a beacon can learn
/// locally by listening to its neighbours (AFECA-style):
///
///  * an ACTIVE beacon hearing more than `max_active_neighbors` other
///    active beacons is redundant and deactivates with probability
///    `backoff_probability` per round (randomized so that mutually
///    redundant neighbours don't all switch off simultaneously);
///  * a PASSIVE beacon hearing fewer than `min_active_neighbors` active
///    beacons reactivates (coverage repair).
///
/// Rounds iterate in random order until no beacon changes state.
#pragma once

#include <cstddef>

#include "field/beacon_field.h"
#include "rng/rng.h"

namespace abp {

struct DistributedSchedulerConfig {
  /// Radius within which beacons hear each other (the radio range R).
  double neighbor_radius = 15.0;
  /// Deactivate (probabilistically) above this many active neighbours.
  std::size_t max_active_neighbors = 4;
  /// Reactivate below this many active neighbours.
  std::size_t min_active_neighbors = 2;
  /// Per-round deactivation probability for redundant beacons.
  double backoff_probability = 0.5;
  /// Safety cap on protocol rounds.
  std::size_t max_rounds = 50;
};

struct DistributedSchedulerResult {
  std::size_t initial_active = 0;
  std::size_t final_active = 0;
  std::size_t rounds = 0;     ///< rounds executed
  bool converged = false;     ///< a full round ran with no state change
};

/// Run the protocol on `field` (mutates active flags). Deterministic given
/// `rng`'s seed.
DistributedSchedulerResult distributed_density_control(
    BeaconField& field, const DistributedSchedulerConfig& config, Rng& rng);

}  // namespace abp
