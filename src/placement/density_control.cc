#include "placement/density_control.h"

#include <algorithm>
#include <limits>

#include "common/assert.h"

namespace abp {

namespace {

/// Mean LE after hypothetically deactivating `beacon`, leaving no trace.
double mean_if_deactivated(BeaconField& field, const PropagationModel& model,
                           ErrorMap& map, const Beacon& beacon) {
  field.set_active(beacon.id, false);
  map.apply_removal(field, model, beacon.pos);
  const double mean = map.mean();
  field.set_active(beacon.id, true);
  map.apply_addition(field, model, beacon);
  return mean;
}

}  // namespace

DensityControlResult greedy_density_control(BeaconField& field,
                                            const PropagationModel& model,
                                            ErrorMap& map,
                                            const DensityControlConfig& config,
                                            Rng& rng) {
  ABP_CHECK(config.tolerance_factor >= 1.0,
            "tolerance factor must be at least 1");
  DensityControlResult result;
  result.initial_active = field.active_count();
  result.baseline_mean = map.mean();
  const double budget = config.tolerance_factor * result.baseline_mean;

  for (;;) {
    if (config.max_deactivations != 0 &&
        result.deactivated.size() >= config.max_deactivations) {
      break;
    }
    std::vector<BeaconId> candidates = field.active_ids();
    if (candidates.size() <= 1) break;
    if (config.candidate_sample != 0 &&
        candidates.size() > config.candidate_sample) {
      rng.shuffle(candidates);
      candidates.resize(config.candidate_sample);
      std::sort(candidates.begin(), candidates.end());
    }

    double best_mean = std::numeric_limits<double>::infinity();
    BeaconId best_id = 0;
    for (BeaconId id : candidates) {
      const Beacon beacon = *field.get(id);
      const double mean = mean_if_deactivated(field, model, map, beacon);
      if (mean < best_mean) {
        best_mean = mean;
        best_id = id;
      }
    }
    if (best_mean > budget) break;  // every deactivation would overshoot

    const Beacon victim = *field.get(best_id);
    field.set_active(best_id, false);
    map.apply_removal(field, model, victim.pos);
    result.deactivated.push_back(best_id);
  }

  result.final_active = field.active_count();
  result.final_mean = map.mean();
  return result;
}

}  // namespace abp
