/// \file gdop_placement.h
/// \brief GDOP-driven placement for multilateration (§6 future work:
/// "recast our existing beacon placement algorithms for multilateration
/// based localization approaches").
///
/// For multilateration the error at a point is governed by the *geometry*
/// of the beacons heard there, summarized by the geometric dilution of
/// precision. This algorithm scores every lattice point (subsampled by
/// `stride`) by its GDOP — points hearing fewer than three beacons or a
/// near-collinear constellation score `kGdopSingular` — and places the new
/// beacon at the worst-scoring point, directly repairing the locally worst
/// geometry (a new anchor at the client's own position contributes an
/// independent bearing there).
#pragma once

#include "placement/placement.h"

namespace abp {

class GdopPlacement final : public PlacementAlgorithm {
 public:
  explicit GdopPlacement(std::size_t stride = 2);

  std::string name() const override { return "gdop"; }

  /// Requires ctx.field and ctx.model.
  Vec2 propose(const PlacementContext& ctx, Rng& rng) const override;

 private:
  std::size_t stride_;
};

}  // namespace abp
