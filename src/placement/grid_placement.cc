#include "placement/grid_placement.h"

#include <cmath>

#include "common/assert.h"

namespace abp {

GridPlacement::GridPlacement(std::size_t num_grids, double grid_side_factor,
                             bool normalized)
    : num_grids_(num_grids), grid_side_factor_(grid_side_factor),
      normalized_(normalized) {
  per_axis_ = static_cast<std::size_t>(std::llround(
      std::sqrt(static_cast<double>(num_grids))));
  ABP_CHECK(per_axis_ * per_axis_ == num_grids_,
            "NG must be a perfect square");
  ABP_CHECK(per_axis_ >= 2, "need at least 2 grids per axis");
  ABP_CHECK(grid_side_factor > 0.0, "grid side factor must be positive");
}

std::vector<GridPlacement::GridScore> GridPlacement::scores(
    const PlacementContext& ctx) const {
  ABP_CHECK(ctx.survey != nullptr, "Grid requires survey data");
  ABP_CHECK(ctx.nominal_range > 0.0, "Grid requires the nominal range R");
  const SurveyData& survey = *ctx.survey;
  const Lattice2D& lattice = survey.lattice();
  const AABB& bounds = ctx.bounds;

  const double grid_side = grid_side_factor_ * ctx.nominal_range;
  ABP_CHECK(grid_side <= bounds.width() && grid_side <= bounds.height(),
            "gridSide = 2R exceeds the terrain — Grid is undefined");

  const double m = static_cast<double>(per_axis_);
  const double span_x = bounds.width() - grid_side;
  const double span_y = bounds.height() - grid_side;

  std::vector<GridScore> out;
  out.reserve(num_grids_);
  for (std::size_t j = 1; j <= per_axis_; ++j) {
    for (std::size_t i = 1; i <= per_axis_; ++i) {
      // Paper §3.2.3 step 3.2 (generalized to rectangle bounds):
      //   Xc = gridSide/2 + (i-1)(Side - gridSide)/(sqrt(NG) - 1).
      const Vec2 center{
          bounds.lo.x + grid_side / 2.0 +
              (static_cast<double>(i) - 1.0) * span_x / (m - 1.0),
          bounds.lo.y + grid_side / 2.0 +
              (static_cast<double>(j) - 1.0) * span_y / (m - 1.0)};
      GridScore score;
      score.center = center;
      const AABB cell = AABB::centered(center, grid_side / 2.0,
                                       grid_side / 2.0);
      lattice.for_each_in_box(cell, [&](std::size_t flat, Vec2) {
        if (!survey.measured(flat)) return;
        score.cumulative_error += survey.value(flat);
        ++score.points;
      });
      out.push_back(score);
    }
  }
  return out;
}

Vec2 GridPlacement::propose(const PlacementContext& ctx, Rng&) const {
  const auto all = scores(ctx);
  ABP_CHECK(!all.empty(), "no candidate grids");
  const GridScore* best = &all.front();
  for (const auto& s : all) {
    if (s.score(normalized_) > best->score(normalized_)) best = &s;
  }
  return best->center;
}

}  // namespace abp
