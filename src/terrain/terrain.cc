#include "terrain/terrain.h"

namespace abp {

Vec2 Terrain::downhill(Vec2 p) const {
  const double h = 0.25;  // finite-difference step (meters)
  const AABB box = bounds();
  const Vec2 px0 = box.clamp({p.x - h, p.y});
  const Vec2 px1 = box.clamp({p.x + h, p.y});
  const Vec2 py0 = box.clamp({p.x, p.y - h});
  const Vec2 py1 = box.clamp({p.x, p.y + h});
  const double dx = (elevation(px1) - elevation(px0)) / (px1.x - px0.x);
  const double dy = (elevation(py1) - elevation(py0)) / (py1.y - py0.y);
  const Vec2 grad{dx, dy};
  if (grad.norm_sq() < 1e-12) return {};
  return (grad * -1.0).normalized();
}

}  // namespace abp
