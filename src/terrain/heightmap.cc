#include "terrain/heightmap.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "rng/rng.h"

namespace abp {

HeightmapTerrain::HeightmapTerrain(AABB bounds, Grid2D<double> heights,
                                   double obstruction_softness)
    : bounds_(bounds), heights_(std::move(heights)),
      softness_(obstruction_softness) {
  ABP_CHECK(heights_.nx() >= 2 && heights_.ny() >= 2,
            "heightmap needs at least 2x2 samples");
  ABP_CHECK(softness_ > 0.0, "obstruction softness must be positive");
  min_h_ = *std::min_element(heights_.data().begin(), heights_.data().end());
  max_h_ = *std::max_element(heights_.data().begin(), heights_.data().end());
}

double HeightmapTerrain::elevation(Vec2 p) const {
  const Vec2 q = bounds_.clamp(p);
  const double fx = (q.x - bounds_.lo.x) / bounds_.width() *
                    static_cast<double>(heights_.nx() - 1);
  const double fy = (q.y - bounds_.lo.y) / bounds_.height() *
                    static_cast<double>(heights_.ny() - 1);
  const std::size_t i0 = std::min(static_cast<std::size_t>(fx), heights_.nx() - 2);
  const std::size_t j0 = std::min(static_cast<std::size_t>(fy), heights_.ny() - 2);
  const double tx = fx - static_cast<double>(i0);
  const double ty = fy - static_cast<double>(j0);
  const double h00 = heights_.at(i0, j0);
  const double h10 = heights_.at(i0 + 1, j0);
  const double h01 = heights_.at(i0, j0 + 1);
  const double h11 = heights_.at(i0 + 1, j0 + 1);
  return h00 * (1 - tx) * (1 - ty) + h10 * tx * (1 - ty) +
         h01 * (1 - tx) * ty + h11 * tx * ty;
}

double HeightmapTerrain::link_factor(Vec2 a, Vec2 b) const {
  const double length = distance(a, b);
  if (length < 1e-9) return 1.0;
  // Antennas sit ~1 m above ground; the chord between them must clear the
  // surface. Sample at ~1 m intervals and integrate the intrusion.
  constexpr double kAntenna = 1.0;
  const double ha = elevation(a) + kAntenna;
  const double hb = elevation(b) + kAntenna;
  const int samples = std::max(2, static_cast<int>(length));
  double blockage = 0.0;
  for (int s = 1; s < samples; ++s) {
    const double t = static_cast<double>(s) / samples;
    const Vec2 p = lerp(a, b, t);
    const double los = ha + (hb - ha) * t;
    const double intrusion = elevation(p) - los;
    if (intrusion > 0.0) blockage += intrusion * (length / samples);
  }
  return std::exp(-blockage / (softness_ * length));
}

HeightmapTerrain HeightmapTerrain::fractal(AABB bounds, std::uint64_t seed,
                                           unsigned detail, double amplitude,
                                           double roughness,
                                           double obstruction_softness) {
  ABP_CHECK(detail >= 1 && detail <= 12, "fractal detail out of [1,12]");
  ABP_CHECK(roughness > 0.0 && roughness < 1.0, "roughness must be in (0,1)");
  const std::size_t n = (std::size_t{1} << detail) + 1;
  Grid2D<double> h(n, n, 0.0);
  Rng rng(seed);

  // Seed the corners.
  h.at(0, 0) = rng.uniform(-amplitude, amplitude);
  h.at(n - 1, 0) = rng.uniform(-amplitude, amplitude);
  h.at(0, n - 1) = rng.uniform(-amplitude, amplitude);
  h.at(n - 1, n - 1) = rng.uniform(-amplitude, amplitude);

  double scale = amplitude;
  for (std::size_t side = n - 1; side >= 2; side /= 2) {
    const std::size_t half = side / 2;
    // Diamond step: centers of squares.
    for (std::size_t j = half; j < n; j += side) {
      for (std::size_t i = half; i < n; i += side) {
        const double avg = (h.at(i - half, j - half) + h.at(i + half, j - half) +
                            h.at(i - half, j + half) + h.at(i + half, j + half)) /
                           4.0;
        h.at(i, j) = avg + rng.uniform(-scale, scale);
      }
    }
    // Square step: edge midpoints.
    for (std::size_t j = 0; j < n; j += half) {
      for (std::size_t i = (j / half) % 2 == 0 ? half : 0; i < n; i += side) {
        double sum = 0.0;
        int cnt = 0;
        if (i >= half) { sum += h.at(i - half, j); ++cnt; }
        if (i + half < n) { sum += h.at(i + half, j); ++cnt; }
        if (j >= half) { sum += h.at(i, j - half); ++cnt; }
        if (j + half < n) { sum += h.at(i, j + half); ++cnt; }
        h.at(i, j) = sum / cnt + rng.uniform(-scale, scale);
      }
    }
    scale *= roughness;
  }
  return HeightmapTerrain(bounds, std::move(h), obstruction_softness);
}

HillTerrain::HillTerrain(AABB bounds, Vec2 peak, double height, double sigma)
    : bounds_(bounds), peak_(peak), height_(height), sigma_(sigma) {
  ABP_CHECK(height >= 0.0, "hill height must be non-negative");
  ABP_CHECK(sigma > 0.0, "hill sigma must be positive");
}

double HillTerrain::elevation(Vec2 p) const {
  const double d2 = distance_sq(p, peak_);
  return height_ * std::exp(-d2 / (2.0 * sigma_ * sigma_));
}

double HillTerrain::link_factor(Vec2 a, Vec2 b) const {
  // The hill blocks links whose chord passes below the surface: reuse the
  // same sampled line-of-sight logic as the heightmap, analytically.
  const double length = distance(a, b);
  if (length < 1e-9) return 1.0;
  constexpr double kAntenna = 1.0;
  const double ha = elevation(a) + kAntenna;
  const double hb = elevation(b) + kAntenna;
  const int samples = std::max(2, static_cast<int>(length));
  double blockage = 0.0;
  for (int s = 1; s < samples; ++s) {
    const double t = static_cast<double>(s) / samples;
    const double los = ha + (hb - ha) * t;
    const double intrusion = elevation(lerp(a, b, t)) - los;
    if (intrusion > 0.0) blockage += intrusion * (length / samples);
  }
  return std::exp(-blockage / (5.0 * length));
}

}  // namespace abp
