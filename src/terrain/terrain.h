/// \file terrain.h
/// \brief Terrain abstraction (§1: "uneven terrains and obstacles bring in
/// an additional dimension of uncertainty"; §6: "a more sophisticated
/// terrain map").
///
/// A terrain contributes two things to the simulation:
///  * an elevation surface, which beacon deployment can interact with
///    (air-dropped beacons roll downhill — the paper's hilltop motivation);
///  * a propagation attenuation factor for a link, which terrain-aware radio
///    models fold into the effective range.
#pragma once

#include <memory>

#include "geom/aabb.h"
#include "geom/vec2.h"

namespace abp {

class Terrain {
 public:
  virtual ~Terrain() = default;

  /// Ground elevation (meters) at `p`.
  virtual double elevation(Vec2 p) const = 0;

  /// Link quality multiplier in (0, 1] for the path a→b; 1 means
  /// unobstructed. Radio models multiply effective range by this factor.
  virtual double link_factor(Vec2 a, Vec2 b) const = 0;

  /// Downhill gradient direction (negative elevation gradient, normalized);
  /// the zero vector on flat ground. Default: central differences.
  virtual Vec2 downhill(Vec2 p) const;

  /// Horizontal extent of the terrain.
  virtual AABB bounds() const = 0;
};

/// Flat, obstruction-free terrain — the paper's evaluation setting (§4).
class FlatTerrain final : public Terrain {
 public:
  explicit FlatTerrain(AABB bounds, double elevation = 0.0)
      : bounds_(bounds), elevation_(elevation) {}

  double elevation(Vec2) const override { return elevation_; }
  double link_factor(Vec2, Vec2) const override { return 1.0; }
  Vec2 downhill(Vec2) const override { return {}; }
  AABB bounds() const override { return bounds_; }

 private:
  AABB bounds_;
  double elevation_;
};

}  // namespace abp
