/// \file heightmap.h
/// \brief Grid-sampled terrain with bilinear interpolation and
/// line-of-sight-based link attenuation.
///
/// Backs the future-work experiments (§6: "more sophisticated terrain map
/// and propagation model"). Heights come either from an explicit grid or
/// from the fractal diamond–square generator, which produces the kind of
/// correlated "random regions with higher propagation noise" the paper's
/// noise model emulates statistically.
#pragma once

#include <cstdint>

#include "geom/aabb.h"
#include "geom/grid2d.h"
#include "terrain/terrain.h"

namespace abp {

class HeightmapTerrain final : public Terrain {
 public:
  /// Wrap an explicit height grid over `bounds`. The grid must be at least
  /// 2×2; heights are bilinearly interpolated between samples.
  HeightmapTerrain(AABB bounds, Grid2D<double> heights,
                   double obstruction_softness = 5.0);

  /// Generate fractal terrain with the diamond–square algorithm.
  /// `detail` sets the grid to (2^detail + 1)²; `amplitude` is the initial
  /// corner displacement scale (meters); `roughness` in (0,1) controls how
  /// quickly displacement decays per octave (higher = rougher).
  static HeightmapTerrain fractal(AABB bounds, std::uint64_t seed,
                                  unsigned detail = 6, double amplitude = 20.0,
                                  double roughness = 0.55,
                                  double obstruction_softness = 5.0);

  double elevation(Vec2 p) const override;

  /// Attenuation from terrain blocking: sample the a→b chord; where the
  /// ground rises above the line of sight, accumulate the blockage and map
  /// it through exp(-blockage / softness) so factor ∈ (0, 1].
  double link_factor(Vec2 a, Vec2 b) const override;

  AABB bounds() const override { return bounds_; }

  double min_height() const { return min_h_; }
  double max_height() const { return max_h_; }

 private:
  AABB bounds_;
  Grid2D<double> heights_;
  double softness_;
  double min_h_ = 0.0;
  double max_h_ = 0.0;
};

/// Smooth Gaussian hill — the §1 airdrop motivation ("beacons roll over the
/// hill, lighter sensor nodes stay atop").
class HillTerrain final : public Terrain {
 public:
  HillTerrain(AABB bounds, Vec2 peak, double height, double sigma);

  double elevation(Vec2 p) const override;
  double link_factor(Vec2 a, Vec2 b) const override;
  AABB bounds() const override { return bounds_; }

  Vec2 peak() const { return peak_; }

 private:
  AABB bounds_;
  Vec2 peak_;
  double height_;
  double sigma_;
};

}  // namespace abp
