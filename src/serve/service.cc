#include "serve/service.h"

#include <deque>
#include <sstream>
#include <utility>

#include "io/field_io.h"
#include "loc/localizer.h"
#include "loc/survey_data.h"
#include "placement/coverage_placement.h"
#include "placement/grid_placement.h"
#include "placement/locus_placement.h"
#include "placement/max_placement.h"
#include "placement/random_placement.h"
#include "rng/hash.h"

namespace abp::serve {

namespace {

Response error_response(const Request& request, Status status,
                        std::string message) {
  Response response;
  response.seq = request.seq;
  response.status = status;
  response.message = std::move(message);
  return response;
}

const PlacementAlgorithm* algorithm_by_name(const std::string& name) {
  static const RandomPlacement random;
  static const MaxPlacement max;
  static const GridPlacement grid;
  static const GridPlacement grid_norm(400, 2.0, true);
  static const CoveragePlacement coverage;
  static const LocusPlacement locus;
  if (name == "random") return &random;
  if (name == "max") return &max;
  if (name == "grid") return &grid;
  if (name == "grid-norm") return &grid_norm;
  if (name == "coverage") return &coverage;
  if (name == "locus") return &locus;
  return nullptr;
}

constexpr std::uint32_t kMaxProposalsPerRequest = 64;

/// Stable 64-bit digest of a deployment name, so each named field gets an
/// independent noise landscape and RNG stream from one service seed.
std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  for (const unsigned char c : name) h = stable_hash64(h, c);
  return h;
}

}  // namespace

struct LocalizationService::Deployment {
  Deployment(BeaconField f, const ServiceConfig& config, std::uint64_t seed)
      : field(std::move(f)),
        model(config.nominal_range, config.noise, derive_seed(seed, 2)),
        lattice(field.bounds(), config.lattice_step),
        map(lattice),
        rng(derive_seed(seed, 9)),
        localizer(field, model) {
    map.compute(field, localizer.kernel());
  }

  std::mutex mu;
  BeaconField field;
  PerBeaconNoiseModel model;
  Lattice2D lattice;
  ErrorMap map;
  Rng rng;
  /// Revision-cached survey kernel over `field`/`model` (guarded by `mu`
  /// like everything else). `install_snapshot` rebuilds field and model in
  /// place, so the pointers stay valid and the field's fresh revision
  /// invalidates the cached snapshot automatically.
  CentroidLocalizer localizer;
  /// Replication version (guarded by `mu`); 0 = unversioned.
  std::uint64_t version = 0;

  /// Exactly-once write state (guarded by `mu`): the ack data of each
  /// remembered request id, FIFO-bounded by `ServiceConfig::dedup_window`.
  /// Both client `add-beacon` applies and replicated `mutate` applies
  /// record here, so a replica that replays the log reconstructs the same
  /// index the primary built. `dedup_complete` flips false the first time
  /// an id is evicted (or the history is discarded by a snapshot install):
  /// from then on an unknown id on a retry is ambiguous → `dedup-expired`.
  struct DedupEntry {
    std::uint64_t version = 0;
    std::vector<Vec2> positions;
    std::vector<std::uint32_t> beacon_ids;
  };
  std::map<std::uint64_t, DedupEntry> dedup;
  std::deque<std::uint64_t> dedup_order;  ///< insertion order, for eviction
  bool dedup_complete = true;
};

LocalizationService::LocalizationService(ServiceConfig config)
    : config_(config) {}

LocalizationService::~LocalizationService() = default;

void LocalizationService::add_field(const std::string& name,
                                    BeaconField field, std::uint64_t version) {
  ABP_CHECK(valid_field_name(name), "invalid deployment name: " + name);
  auto deployment = std::make_unique<Deployment>(
      std::move(field), config_, derive_seed(config_.seed, name_seed(name)));
  deployment->version = version;
  std::lock_guard<std::mutex> lock(mu_);
  deployments_[name] = std::move(deployment);
}

std::uint64_t LocalizationService::field_version(
    const std::string& name) const {
  Deployment* deployment = find_deployment(name);
  if (deployment == nullptr) return 0;
  std::lock_guard<std::mutex> lock(deployment->mu);
  return deployment->version;
}

std::vector<std::string> LocalizationService::field_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(deployments_.size());
  for (const auto& [name, unused] : deployments_) names.push_back(name);
  return names;
}

LocalizationService::Deployment* LocalizationService::find_deployment(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = deployments_.find(name);
  return it == deployments_.end() ? nullptr : it->second.get();
}

Response LocalizationService::handle(const Request& request) {
  switch (request.endpoint) {
    case Endpoint::kStats: {
      Response response;
      response.seq = request.seq;
      response.text = metrics_.render_text();
      return response;
    }
    case Endpoint::kListFields: {
      Response response;
      response.seq = request.seq;
      for (const std::string& name : field_names()) {
        response.text += name;
        response.text += '\n';
      }
      return response;
    }
    default:
      break;
  }
  if (request.endpoint == Endpoint::kAdmin) {
    // Membership is a router concern; a direct server has no table to
    // mutate. Terminal bad-request, never retryable.
    return error_response(request, Status::kBadRequest,
                          "admin is a router-only endpoint");
  }
  if (request.endpoint == Endpoint::kSnapshot && !request.text.empty()) {
    return install_snapshot(request);
  }
  Deployment* deployment = find_deployment(request.field);
  if (request.endpoint == Endpoint::kVersion) {
    // Cheap replication probe: answer the deployment's current version
    // without the snapshot body. Unknown deployments answer `ok` with the
    // version record omitted (real versions start at 1), so the replicator
    // can distinguish "never installed" from "lagging" in one round trip.
    Response response;
    response.seq = request.seq;
    if (deployment != nullptr) {
      std::lock_guard<std::mutex> lock(deployment->mu);
      response.version = deployment->version;
    }
    return response;
  }
  if (deployment == nullptr) {
    if (request.endpoint == Endpoint::kMutate) {
      // A mutation for a deployment this replica has never seen: answer the
      // retryable mismatch (at version 0) so the sender's install-then-retry
      // repair path ships a full snapshot first.
      Response mismatch = error_response(
          request, Status::kVersionMismatch,
          "mutate for unknown field: " + request.field);
      return mismatch;
    }
    return error_response(request, Status::kNotFound,
                          "unknown field: " + request.field);
  }
  return handle_field_request(*deployment, request);
}

Response LocalizationService::handle_field_request(Deployment& deployment,
                                                   const Request& request) {
  std::lock_guard<std::mutex> lock(deployment.mu);
  return handle_locked(deployment, request);
}

Response LocalizationService::handle_locked(Deployment& deployment,
                                            const Request& request) {
  if (request.points.size() > kMaxPointsPerRequest) {
    return error_response(request, Status::kBadRequest,
                          "too many points in one request");
  }
  // Version-fenced mutation: handled before the read fence because a mutate
  // carries the version it *establishes*, not the version it expects.
  if (request.endpoint == Endpoint::kMutate) {
    return apply_mutation_locked(deployment, request);
  }
  // Version fencing (cluster routing): a request stamped with an expected
  // version must not be served from an *older* snapshot. The fence is
  // one-sided — a replica that is ahead of the fence has absorbed every
  // write the fence guarantees, so it serves the read; only a lagging
  // replica answers the retryable mismatch (the router re-syncs the
  // deployment and re-sends).
  if (request.version != 0 && deployment.version < request.version) {
    Response mismatch = error_response(
        request, Status::kVersionMismatch,
        "deployment '" + request.field + "' is at version " +
            std::to_string(deployment.version) + ", request expects " +
            std::to_string(request.version));
    mismatch.version = deployment.version;
    return mismatch;
  }
  Response response;
  response.seq = request.seq;
  try {
    switch (request.endpoint) {
      case Endpoint::kLocalize: {
        // The whole request resolves in one batched kernel call against the
        // deployment's cached field snapshot.
        const SurveyKernel& kernel = deployment.localizer.kernel();
        SurveyBatch batch;
        batch.reserve(request.points.size());
        for (const Vec2 p : request.points) batch.push(p);
        kernel.evaluate(batch);
        const Vec2 fallback = deployment.field.active_centroid();
        response.estimates.reserve(request.points.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const ConnectedSum cs = batch.result(i);
          const Vec2 est = cs.count == 0
                               ? fallback
                               : cs.sum / static_cast<double>(cs.count);
          response.estimates.push_back(
              {est, static_cast<std::uint32_t>(cs.count)});
        }
        break;
      }
      case Endpoint::kErrorAt: {
        const SurveyKernel& kernel = deployment.localizer.kernel();
        SurveyBatch batch;
        batch.reserve(request.points.size());
        for (const Vec2 p : request.points) batch.push(p);
        kernel.evaluate(batch);
        const Vec2 fallback = deployment.field.active_centroid();
        response.errors.reserve(request.points.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          const ConnectedSum cs = batch.result(i);
          const Vec2 est = cs.count == 0
                               ? fallback
                               : cs.sum / static_cast<double>(cs.count);
          response.errors.push_back(distance(est, batch.point(i)));
        }
        break;
      }
      case Endpoint::kPropose: {
        const std::string name =
            request.algorithm.empty() ? "grid" : request.algorithm;
        const PlacementAlgorithm* algorithm = algorithm_by_name(name);
        if (algorithm == nullptr) {
          return error_response(request, Status::kNotFound,
                                "unknown algorithm: " + name);
        }
        if (request.count > kMaxProposalsPerRequest) {
          return error_response(request, Status::kBadRequest,
                                "too many proposals in one request");
        }
        // Propose against the current survey; successive proposals suppress
        // the previous pick's neighbourhood (one-shot batch idiom) so k
        // proposals target k distinct hot spots without mutating the field.
        SurveyData survey = SurveyData::from_error_map(deployment.map);
        PlacementContext ctx = PlacementContext::basic(
            survey, deployment.field.bounds(), config_.nominal_range);
        ctx.field = &deployment.field;
        ctx.model = &deployment.model;
        ctx.truth = &deployment.map;
        for (std::uint32_t k = 0; k < request.count; ++k) {
          const Vec2 pos = deployment.field.bounds().clamp(
              algorithm->propose(ctx, deployment.rng));
          response.positions.push_back(pos);
          survey.suppress_disk(pos, config_.nominal_range);
        }
        break;
      }
      case Endpoint::kAddBeacon: {
        if (request.points.empty()) {
          return error_response(request, Status::kBadRequest,
                                "add-beacon needs at least one point");
        }
        if (request.request_id != 0) {
          const auto hit = deployment.dedup.find(request.request_id);
          if (hit != deployment.dedup.end()) {
            // Duplicate delivery (lost ack, duplicated frame): answer the
            // original ack; the beacons are already deployed.
            response.positions = hit->second.positions;
            response.beacon_ids = hit->second.beacon_ids;
            break;
          }
          if (request.attempt > 0 && !deployment.dedup_complete) {
            // A retry whose id may have aged out of the window: appending
            // again could double-deploy, so refuse definitively instead.
            return error_response(
                request, Status::kDedupExpired,
                "request id unknown and the dedup window for '" +
                    request.field +
                    "' has rolled over; verify the write and mint a fresh "
                    "id");
          }
        }
        for (const Vec2 p : request.points) {
          const Vec2 pos = deployment.field.bounds().clamp(p);
          const BeaconId id = deployment.field.add(pos);
          deployment.map.apply_addition(deployment.field,
                                        deployment.localizer.kernel(),
                                        *deployment.field.get(id));
          response.positions.push_back(pos);
          response.beacon_ids.push_back(id);
        }
        record_dedup_locked(deployment, request.request_id,
                            deployment.version, response);
        break;
      }
      case Endpoint::kSnapshot: {
        std::ostringstream os;
        write_field(os, deployment.field);
        response.text = os.str();
        response.version = deployment.version;
        break;
      }
      case Endpoint::kStats:
      case Endpoint::kListFields:
      case Endpoint::kVersion:
      case Endpoint::kMutate:
        // Handled before deployment lookup / before the fence; unreachable.
        return error_response(request, Status::kInternal,
                              "endpoint misrouted to a deployment");
    }
  } catch (const CheckFailure& e) {
    return error_response(request, Status::kInternal, e.what());
  }
  return response;
}

Response LocalizationService::apply_mutation_locked(Deployment& deployment,
                                                    const Request& request) {
  if (request.version == 0) {
    return error_response(request, Status::kBadRequest,
                          "mutate requires the version it establishes");
  }
  if (request.points.empty()) {
    return error_response(request, Status::kBadRequest,
                          "mutate needs at least one point");
  }
  Response response;
  response.seq = request.seq;
  if (deployment.version >= request.version) {
    // Already absorbed — via this very mutation on a prior delivery, a later
    // one, or a snapshot that included it. Ack idempotently at the version
    // actually held; re-applying would double-deploy the beacons.
    response.version = deployment.version;
    response.mutation_ack = deployment.version;
    return response;
  }
  if (deployment.version + 1 != request.version) {
    // Lagging: this replica is missing at least one earlier mutation. The
    // retryable mismatch (carrying the held version) routes the sender into
    // the install-then-retry / replay repair path.
    Response mismatch = error_response(
        request, Status::kVersionMismatch,
        "deployment '" + request.field + "' is at version " +
            std::to_string(deployment.version) + ", mutation establishes " +
            std::to_string(request.version));
    mismatch.version = deployment.version;
    return mismatch;
  }
  try {
    for (const Vec2 p : request.points) {
      const Vec2 pos = deployment.field.bounds().clamp(p);
      const BeaconId id = deployment.field.add(pos);
      deployment.map.apply_addition(deployment.field,
                                    deployment.localizer.kernel(),
                                    *deployment.field.get(id));
      response.positions.push_back(pos);
      response.beacon_ids.push_back(id);
    }
  } catch (const CheckFailure& e) {
    return error_response(request, Status::kInternal, e.what());
  }
  deployment.version = request.version;
  response.version = request.version;
  response.mutation_ack = request.version;
  // The mutate carries the client write's request id; recording it here is
  // what makes live fan-out, recovery replay, and a later direct retry all
  // see the same dedup state. (Idempotent acks above don't record — a
  // mutation absorbed via snapshot has no reconstructible ack, which the
  // snapshot path accounts for by dropping `dedup_complete`.)
  if (request.request_id != 0) {
    Response ack;
    ack.positions = response.positions;
    ack.beacon_ids = response.beacon_ids;
    record_dedup_locked(deployment, request.request_id, request.version, ack);
  }
  return response;
}

void LocalizationService::record_dedup_locked(Deployment& deployment,
                                              std::uint64_t request_id,
                                              std::uint64_t version,
                                              const Response& response) {
  if (request_id == 0 || config_.dedup_window == 0) return;
  const bool inserted =
      deployment.dedup
          .emplace(request_id, Deployment::DedupEntry{version,
                                                      response.positions,
                                                      response.beacon_ids})
          .second;
  if (!inserted) return;  // replayed mutate for an id already remembered
  deployment.dedup_order.push_back(request_id);
  while (deployment.dedup_order.size() > config_.dedup_window) {
    deployment.dedup.erase(deployment.dedup_order.front());
    deployment.dedup_order.pop_front();
    deployment.dedup_complete = false;
  }
}

Response LocalizationService::install_snapshot(const Request& request) {
  // Parse outside any lock; a malformed body must not wedge serving.
  std::optional<BeaconField> parsed;
  try {
    std::istringstream is(request.text);
    parsed = read_field(is);
  } catch (const CheckFailure& e) {
    return error_response(request, Status::kBadRequest,
                          std::string("snapshot install rejected: ") +
                              e.what());
  }
  const std::uint64_t seed =
      derive_seed(config_.seed, name_seed(request.field));
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = deployments_.find(request.field);
    if (it == deployments_.end()) {
      auto created =
          std::make_unique<Deployment>(std::move(*parsed), config_, seed);
      created->version = request.version;
      // A snapshot carries no request-id history. At version 1 there can
      // have been no prior writes, so the empty index is complete; past
      // that, ids may have been folded into the snapshot and unknown-id
      // retries are ambiguous.
      created->dedup_complete = request.version <= 1;
      deployments_.emplace(request.field, std::move(created));
      Response response;
      response.seq = request.seq;
      response.version = request.version;
      return response;
    }
  }
  // Existing deployment: rebuild its state in place under its own lock, so
  // concurrent requests holding the Deployment pointer stay valid (the map
  // entry is never replaced once created).
  Deployment& deployment = *find_deployment(request.field);
  std::lock_guard<std::mutex> lock(deployment.mu);
  try {
    deployment.field = std::move(*parsed);
    deployment.model = PerBeaconNoiseModel(config_.nominal_range,
                                           config_.noise,
                                           derive_seed(seed, 2));
    deployment.lattice = Lattice2D(deployment.field.bounds(),
                                   config_.lattice_step);
    deployment.map = ErrorMap(deployment.lattice);
    deployment.rng = Rng(derive_seed(seed, 9));
    deployment.map.compute(deployment.field, deployment.localizer.kernel());
    deployment.version = request.version;
    // The snapshot discards id history: any write folded into it is no
    // longer answerable from the index, so unknown-id retries become
    // ambiguous (same rule as the fresh-install path above).
    deployment.dedup.clear();
    deployment.dedup_order.clear();
    deployment.dedup_complete = request.version <= 1;
  } catch (const CheckFailure& e) {
    return error_response(request, Status::kInternal, e.what());
  }
  Response response;
  response.seq = request.seq;
  response.version = request.version;
  return response;
}

std::vector<Response> LocalizationService::handle_batch(
    std::span<const Request> requests) {
  std::vector<Response> responses(requests.size());
  // Fast path: all requests are point queries against one known deployment —
  // lock once, resolve every point in a single pass.
  bool coalescable = !requests.empty();
  for (const Request& request : requests) {
    if (!endpoint_traits(request.endpoint).batchable ||
        request.field != requests.front().field) {
      coalescable = false;
      break;
    }
  }
  if (coalescable) {
    Deployment* deployment = find_deployment(requests.front().field);
    if (deployment != nullptr) {
      std::lock_guard<std::mutex> lock(deployment->mu);
      for (std::size_t i = 0; i < requests.size(); ++i) {
        responses[i] = handle_locked(*deployment, requests[i]);
      }
      return responses;
    }
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    responses[i] = handle(requests[i]);
  }
  return responses;
}

}  // namespace abp::serve
