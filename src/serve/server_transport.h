/// \file server_transport.h
/// \brief Server-side transport interface of the localization query
/// service.
///
/// A `ServerTransport` owns the listening socket and the lifecycle of every
/// accepted connection, feeding complete frames into a `FrameSink` — a
/// local `Server` or the cluster `Router` — and writing the
/// (request-ordered) responses back. Two implementations speak the same
/// wire protocol behind this interface:
///
///  * `TcpServerTransport` (tcp_transport.h) — the legacy thread-per-
///    connection path: each accepted socket occupies one `ThreadPool`
///    worker for its lifetime, so concurrency is capped at
///    `conn_workers`.
///  * `EpollServerTransport` (epoll_transport.h) — an event-loop path:
///    one (or `event_shards`) epoll loop(s) own non-blocking sockets with
///    per-connection state machines, lifting the concurrent-connection
///    ceiling to the fd limit.
///
/// Both drive the shared `Connection` state machine (connection.h), so
/// framing, reply ordering, in-flight caps and write watermarks behave
/// identically; `abp serve --transport={threaded,epoll}` and the benches
/// switch between them through `make_server_transport`.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace abp::serve {

class FrameSink;

enum class TransportKind {
  kThreaded,  ///< thread-per-connection on a fixed pool
  kEpoll,     ///< non-blocking event loop(s)
};

const char* transport_kind_name(TransportKind kind);
std::optional<TransportKind> transport_kind_from_name(std::string_view name);

/// One options struct for both transports; fields that do not apply to a
/// given kind are ignored (`conn_workers` by epoll, `event_shards` by
/// threaded).
struct TransportOptions {
  std::uint16_t port = 0;        ///< 0 = ephemeral (read back via port())
  double read_timeout_s = 5.0;   ///< idle-connection timeout
  double write_timeout_s = 5.0;  ///< max stall writing to a slow peer
  /// Per-connection unanswered-request cap for pipelined clients;
  /// 0 = unbounded. Excess frames are shed with retryable `overloaded`.
  std::size_t max_inflight = 0;
  std::size_t conn_workers = 4;  ///< threaded: pool size (= conn ceiling)
  std::size_t event_shards = 1;  ///< epoll: independent event loops
  /// Write-queue watermarks (bytes): reading from a peer pauses above the
  /// high mark and resumes under the low mark.
  std::size_t write_high_watermark = 1u << 20;
  std::size_t write_low_watermark = 256u << 10;
};

class ServerTransport {
 public:
  virtual ~ServerTransport() = default;

  /// Bind, listen on 127.0.0.1 and start serving. Throws `ServeError` on
  /// socket failure.
  virtual void start() = 0;

  /// Graceful stop: stop accepting, let open connections finish writing
  /// every response they accepted (bounded by the write timeout), close
  /// everything. Idempotent.
  virtual void stop() = 0;

  /// Bound port (valid after start()).
  virtual std::uint16_t port() const = 0;

  virtual const char* name() const = 0;

  /// Currently open connections. The chaos suite's fd/slot-leak probe:
  /// must read 0 once every client is gone (and always after stop()).
  virtual std::size_t open_connections() const = 0;

  /// Total connections accepted since start().
  virtual std::uint64_t connections_accepted() const = 0;
};

std::unique_ptr<ServerTransport> make_server_transport(
    TransportKind kind, FrameSink& sink, const TransportOptions& options = {});

}  // namespace abp::serve
