/// \file service.h
/// \brief The localization query service: named `BeaconField` deployments
/// answering localization/placement requests.
///
/// This is the serving-side counterpart of the batch reproduction: the same
/// substrate (centroid localization over a spatially indexed field, the
/// incremental error map, the §3.2 placement algorithms) behind a
/// request/response API. Each named deployment owns its field, propagation
/// model, lattice and error map under one mutex; point queries
/// (localize / error-at) against the same deployment can be executed as one
/// batch that takes the lock once and walks the spatial index in a single
/// pass — the amortization `Server` exploits for throughput.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "field/beacon_field.h"
#include "geom/lattice.h"
#include "loc/error_map.h"
#include "radio/noise_model.h"
#include "rng/rng.h"
#include "serve/metrics.h"
#include "serve/protocol.h"

namespace abp::serve {

struct ServiceConfig {
  double nominal_range = 15.0;  ///< radio range R (Table 1)
  double noise = 0.0;           ///< paper Noise parameter
  double lattice_step = 1.0;    ///< survey lattice spacing (m)
  std::uint64_t seed = 20010421;
  /// Request ids remembered per deployment for exactly-once `add-beacon`
  /// (FIFO eviction). Mirrors the router's `--log-retain` window: a
  /// duplicate within the window collects the original ack; a *retry*
  /// whose id has been evicted is answered `dedup-expired`.
  std::size_t dedup_window = 64;
};

class LocalizationService {
 public:
  explicit LocalizationService(ServiceConfig config = {});
  ~LocalizationService();

  LocalizationService(const LocalizationService&) = delete;
  LocalizationService& operator=(const LocalizationService&) = delete;

  /// Install (or replace) a deployment under `name`. Computes the initial
  /// error map — O(lattice · beacons-in-range) once per install. `version`
  /// tags the deployment for cluster replication; 0 (the default) means
  /// unversioned — version records never appear on the wire and requests
  /// are never version-checked.
  void add_field(const std::string& name, BeaconField field,
                 std::uint64_t version = 0);

  std::vector<std::string> field_names() const;

  /// Current version of a deployment; 0 if unknown or unversioned.
  std::uint64_t field_version(const std::string& name) const;

  /// Handle one request; never throws on untrusted request content.
  Response handle(const Request& request);

  /// Handle point-query requests (localize / error-at) that all target the
  /// same deployment: the deployment lock is taken once and all points are
  /// resolved in a single pass over the spatial index. Responses are
  /// returned in request order. Non-point-query requests fall back to
  /// `handle` individually.
  std::vector<Response> handle_batch(std::span<const Request> requests);

  ServiceMetrics& metrics() { return metrics_; }
  const ServiceConfig& config() const { return config_; }

 private:
  struct Deployment;

  Deployment* find_deployment(const std::string& name) const;
  Response handle_field_request(Deployment& deployment, const Request& request);
  Response handle_locked(Deployment& deployment, const Request& request);
  /// Version-fenced `mutate`: apply (at exactly version-1), ack idempotently
  /// (at or past the version), or answer the retryable mismatch (lagging).
  Response apply_mutation_locked(Deployment& deployment,
                                 const Request& request);
  /// Remember an applied write's request id (bounded FIFO) so a duplicate
  /// delivery re-collects the original ack instead of re-applying.
  void record_dedup_locked(Deployment& deployment, std::uint64_t request_id,
                           std::uint64_t version, const Response& response);
  /// Snapshot request carrying a field body: install it (replica sync).
  Response install_snapshot(const Request& request);

  ServiceConfig config_;
  ServiceMetrics metrics_;
  mutable std::mutex mu_;  ///< guards the deployment map structure
  std::map<std::string, std::unique_ptr<Deployment>> deployments_;
};

}  // namespace abp::serve
