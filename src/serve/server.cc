#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/assert.h"

namespace abp::serve {

namespace {

std::string rejection_payload(std::uint64_t seq, Status status,
                              const std::string& message,
                              std::uint32_t retry_after_ms = 0) {
  Response response;
  response.seq = seq;
  response.status = status;
  response.message = message;
  if (status == Status::kOverloaded) response.retry_after_ms = retry_after_ms;
  return format_response(response);
}

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Server::Server(LocalizationService& service, Options options)
    : service_(service), options_(options) {
  ABP_CHECK(options_.max_batch >= 1, "max_batch must be at least 1");
  if (options_.quota.enabled()) {
    quotas_ = std::make_unique<PrincipalQuotas>(options_.quota);
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

double Server::now_ms() const {
  return options_.clock_ms ? options_.clock_ms() : steady_now_ms();
}

void Server::reject(const Request& request, Status status,
                    const std::string& why, std::size_t bytes_in,
                    const std::function<void(std::string)>& reply,
                    std::uint32_t retry_after_ms) {
  const std::string rejection = rejection_payload(
      request.seq, status, why,
      retry_after_ms != 0 ? retry_after_ms : options_.retry_after_hint_ms);
  service_.metrics().record(request.endpoint, status, bytes_in,
                            rejection.size(), 0.0);
  service_.metrics().record_shed(status);
  reply(rejection);
}

void Server::submit(std::string payload,
                    std::function<void(std::string)> reply) {
  const std::size_t bytes_in = payload.size();
  std::string parse_error;
  std::optional<Request> request = parse_request(payload, &parse_error);
  if (!request) {
    service_.metrics().record_bad_frame(bytes_in);
    reply(rejection_payload(0, Status::kBadRequest, parse_error));
    return;
  }
  service_.metrics().record_submitted(request->principal);
  if (quotas_) {
    const PrincipalQuotas::Decision decision =
        quotas_->admit(request->principal, now_ms());
    if (!decision.admitted) {
      // Quota shed: retryable `overloaded` with a hint from this
      // principal's own bucket deficit. Counts toward shed-overloaded via
      // record_quota_shed, so admission reconciliation is unchanged.
      const std::string rejection = rejection_payload(
          request->seq, Status::kOverloaded,
          "quota exceeded for principal " +
              std::to_string(request->principal) + "; retry with backoff",
          decision.retry_after_ms);
      service_.metrics().record(request->endpoint, Status::kOverloaded,
                                bytes_in, rejection.size(), 0.0);
      service_.metrics().record_quota_shed(request->principal);
      reply(rejection);
      return;
    }
  }
  Status shed_status = Status::kUnavailable;
  std::string shed_why = "shutting down";
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_ &&
        (options_.max_queue == 0 || queue_.size() < options_.max_queue)) {
      Pending pending;
      pending.request = std::move(*request);
      pending.reply = std::move(reply);
      pending.bytes_in = bytes_in;
      pending.arrival_ms = now_ms();
      queue_.push_back(std::move(pending));
      cv_work_.notify_one();
      return;
    }
    if (!stopping_) {
      shed_status = Status::kOverloaded;
      shed_why = "queue depth limit (" + std::to_string(options_.max_queue) +
                 ") reached; retry with backoff";
    }
  }
  // Shed: answer immediately without entering the queue.
  reject(*request, shed_status, shed_why, bytes_in, reply);
}

void Server::record_bad_frame(std::size_t bytes_in) {
  service_.metrics().record_bad_frame(bytes_in);
}

void Server::pump_ready() {
  if (options_.workers == 0) pump();
}

void Server::shed_overloaded(std::string payload,
                             std::function<void(std::string)> reply,
                             const std::string& why) {
  const std::size_t bytes_in = payload.size();
  std::string parse_error;
  const std::optional<Request> request = parse_request(payload, &parse_error);
  if (!request) {
    service_.metrics().record_bad_frame(bytes_in);
    reply(rejection_payload(0, Status::kBadRequest, parse_error));
    return;
  }
  service_.metrics().record_submitted(request->principal);
  reject(*request, Status::kOverloaded, why, bytes_in, reply);
}

std::vector<Server::Pending> Server::take_batch_locked() {
  std::vector<Pending> batch;
  if (queue_.empty()) return batch;
  // Fair rotation across principals: seed with the oldest request of the
  // smallest principal id strictly greater than the last one served,
  // wrapping to the smallest queued id. One queued principal → the front
  // of the queue every time, i.e. plain FIFO.
  auto next = queue_.end();   // oldest request of smallest id > cursor
  auto wrap = queue_.begin(); // oldest request of smallest id overall
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const std::uint64_t id = it->request.principal;
    if (id > last_principal_ &&
        (next == queue_.end() || id < next->request.principal)) {
      next = it;
    }
    if (id < wrap->request.principal) wrap = it;
  }
  const auto seed = next != queue_.end() ? next : wrap;
  last_principal_ = seed->request.principal;
  batch.push_back(std::move(*seed));
  queue_.erase(seed);
  if (!endpoint_traits(batch.front().request.endpoint).batchable) {
    return batch;
  }
  // Coalesce further point queries against the same deployment from
  // anywhere in the queue — across principals, so fairness never costs
  // batching throughput; non-matching requests keep their positions.
  // (Copy the key: growing `batch` invalidates references into it.)
  const std::string field = batch.front().request.field;
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < options_.max_batch;) {
    if (endpoint_traits(it->request.endpoint).batchable &&
        it->request.field == field) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

void Server::run_batch(std::vector<Pending> batch) {
  // Deadline propagation through coalescing: shed every request whose
  // budget expired while it sat in the queue — its slot is released and no
  // handler work happens on its behalf.
  const double now = now_ms();
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (Pending& pending : batch) {
    const std::uint32_t deadline = pending.request.deadline_ms;
    if (deadline != 0 &&
        now - pending.arrival_ms >= static_cast<double>(deadline)) {
      Response shed;
      shed.seq = pending.request.seq;
      shed.status = Status::kDeadlineExceeded;
      shed.message = "deadline of " + std::to_string(deadline) +
                     " ms expired before execution";
      std::string payload = format_response(shed);
      service_.metrics().record(pending.request.endpoint, shed.status,
                                pending.bytes_in, payload.size(),
                                pending.timer.elapsed_ms() * 1e3);
      service_.metrics().record_shed(Status::kDeadlineExceeded);
      pending.reply(std::move(payload));
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (!live.empty()) {
    std::vector<Request> requests;
    requests.reserve(live.size());
    for (const Pending& pending : live) requests.push_back(pending.request);
    std::vector<Response> responses = service_.handle_batch(requests);
    service_.metrics().record_batch(live.size());
    service_.metrics().record_completed(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      std::string payload = format_response_capped(responses[i]);
      service_.metrics().record(requests[i].endpoint, responses[i].status,
                                live[i].bytes_in, payload.size(),
                                live[i].timer.elapsed_ms() * 1e3);
      live[i].reply(std::move(payload));
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_ -= batch.size();
    if (!live.empty()) batches_ += 1;
    served_ += batch.size();
  }
  cv_drain_.notify_all();
}

void Server::pump() {
  ABP_CHECK(options_.workers == 0, "pump() is for manual-mode servers");
  for (;;) {
    std::vector<Pending> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch = take_batch_locked();
      in_flight_ += batch.size();
    }
    if (batch.empty()) return;
    run_batch(std::move(batch));
  }
}

void Server::worker_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return quit_ || !queue_.empty(); });
      if (queue_.empty()) return;  // quit_ and drained
      batch = take_batch_locked();
      in_flight_ += batch.size();
    }
    run_batch(std::move(batch));
  }
}

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && quit_) return;
    stopping_ = true;
  }
  if (options_.workers == 0) {
    pump();  // drain on this thread
    std::lock_guard<std::mutex> lock(mu_);
    quit_ = true;
    return;
  }
  {
    // Wait until everything accepted has been answered.
    std::unique_lock<std::mutex> lock(mu_);
    cv_drain_.wait(lock,
                   [this] { return queue_.empty() && in_flight_ == 0; });
    quit_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

bool Server::shutting_down() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stopping_;
}

std::uint64_t Server::batches_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

std::uint64_t Server::requests_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return served_;
}

std::size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t Server::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

}  // namespace abp::serve
