/// \file event_loop.h
/// \brief Minimal epoll event loop with eventfd wakeup.
///
/// One `EventLoop` owns an `epoll` instance and an `eventfd`. The owning
/// thread calls `run()`, which blocks in `epoll_wait` dispatching readiness
/// events to per-fd handlers; any other thread may `post()` a closure (it
/// runs on the loop thread before the next dispatch) or `wakeup()` the
/// loop. This is the race-free path for worker-thread replies: a reply
/// callback posts a flush task, the eventfd write pops the loop out of
/// `epoll_wait`, and the loop thread — the only thread that ever touches a
/// connection's socket — writes the response out.
///
/// `run()` also invokes an `on_tick` callback at least every `tick_ms`
/// of real time (and after every dispatch round). Deadline bookkeeping
/// (idle-connection timeouts, write-stall budgets) lives in the tick and
/// reads the *injectable* server clock, so fault-injection tests advance a
/// manual clock and observe expiry within one real tick.
///
/// Threading contract: `add_fd`/`modify_fd`/`remove_fd` and handler
/// execution happen on the loop thread (or before `run()` starts);
/// `post`/`wakeup`/`stop` are safe from any thread.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace abp::serve {

class EventLoop {
 public:
  /// Receives the `epoll_events` mask that fired for the fd.
  using EventHandler = std::function<void(std::uint32_t)>;

  /// Creates the epoll and eventfd descriptors; throws ServeError on
  /// failure.
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` for `events` (EPOLLIN/EPOLLOUT/...). Loop thread only.
  void add_fd(int fd, std::uint32_t events, EventHandler handler);
  /// Change the interest mask of a registered fd. Loop thread only.
  void modify_fd(int fd, std::uint32_t events);
  /// Deregister `fd` (does not close it). Safe to call from within the
  /// fd's own handler. Loop thread only.
  void remove_fd(int fd);

  /// Run `task` on the loop thread before the next dispatch round; wakes
  /// the loop. Safe from any thread.
  void post(std::function<void()> task);
  /// Pop the loop out of `epoll_wait`. Safe from any thread.
  void wakeup();

  /// Dispatch until `stop()`; `on_tick` (may be empty) runs after every
  /// wait, at least every `tick_ms` of real time.
  void run(const std::function<void()>& on_tick, int tick_ms);
  /// End `run()` after the current dispatch round. Safe from any thread.
  void stop();

 private:
  void drain_eventfd();
  void run_posted();

  int epoll_fd_ = -1;
  int event_fd_ = -1;
  bool stop_ = false;  ///< loop thread reads; writers go through post()

  // Handlers are wrapped in shared_ptr so a handler that removes its own
  // (or another) fd mid-dispatch cannot free the closure being executed.
  std::unordered_map<int, std::shared_ptr<EventHandler>> handlers_;

  std::mutex mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace abp::serve
