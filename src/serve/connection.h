/// \file connection.h
/// \brief Transport-agnostic per-connection state machine.
///
/// Both server transports — the legacy thread-per-connection path
/// (`TcpServerTransport`) and the epoll event loop
/// (`EpollServerTransport`) — drive the same `Connection` object; only the
/// socket-readiness mechanism differs. The state machine owns everything
/// that must be correct regardless of how bytes arrive:
///
///  * **Frame reassembly** — received chunks feed a `FrameDecoder`; every
///    complete frame is submitted to the `FrameSink` (a local `Server` or
///    the cluster `Router`). Corrupt framing enqueues one final bad-request
///    response (ordered after everything already submitted), after which
///    the connection should be flushed and closed.
///  * **Ordered replies** — each submitted frame takes a ticket; worker
///    threads complete tickets in any order, and completed responses are
///    released into the write queue strictly in request order, so
///    pipelined clients can match responses positionally.
///  * **In-flight cap** — with `Limits::max_inflight > 0`, frames arriving
///    while that many tickets are unanswered are shed through
///    `FrameSink::shed_overloaded` (centralized accounting), exactly like
///    the pre-redesign per-burst cap but enforced against true concurrency.
///  * **Write watermarks** — responses queued for (or handed to) the
///    socket count against a high watermark; above it `want_read()` goes
///    false so the transport stops reading from a peer that is not
///    draining its responses ("backpressure"), and reading resumes once
///    the backlog falls under the low watermark.
///
/// Completed responses are kept as one buffer per frame end-to-end (the
/// ready map, the in-order write queue, the transport's `Outbox`) and leave
/// through `writev`, so a burst of pipelined replies is never coalesced
/// into a fresh allocation just to cross the socket boundary.
///
/// Thread safety: `on_bytes`, `fetch_writable` and `wrote` are called by
/// the owning I/O thread only; reply completion arrives from any worker
/// thread. The `wake` callback fires (outside the lock) whenever the write
/// queue transitions empty → non-empty, which is how worker-thread replies
/// reach an event loop parked in `epoll_wait` (via `eventfd`) or a
/// connection thread parked in `poll`.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "serve/frame_sink.h"
#include "serve/protocol.h"

namespace abp::serve {

class Connection : public std::enable_shared_from_this<Connection> {
 public:
  struct Limits {
    /// Unanswered-request cap per connection; 0 = unbounded. Excess frames
    /// are shed with the retryable `overloaded` status.
    std::size_t max_inflight = 0;
    /// Stop reading when unwritten response bytes exceed this.
    std::size_t write_high_watermark = 1u << 20;
    /// Resume reading when the backlog falls to or under this.
    std::size_t write_low_watermark = 256u << 10;
  };

  /// `wake` may be empty; when set it is invoked (without the internal lock
  /// held, possibly from a worker thread) whenever completed responses make
  /// the write queue non-empty.
  ///
  /// Connections are shared-owned: each submitted frame's reply callback
  /// holds a `shared_ptr` back to the connection, so a request that is
  /// still queued in the sink when the socket dies completes into a
  /// harmless orphan instead of a dangling pointer.
  Connection(std::uint64_t id, FrameSink& sink, Limits limits,
             std::function<void()> wake);

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Feed bytes received from the peer. Submits every complete frame (or
  /// sheds it past the in-flight cap); on corrupt framing records the bad
  /// frame and enqueues the final bad-request response.
  void on_bytes(std::string_view bytes);

  /// Move every in-order completed response frame into `out` (appended as
  /// separate per-frame buffers — no coalescing). The bytes stay counted
  /// against the watermark until `wrote()`. Returns bytes moved.
  std::size_t fetch_writable(std::deque<std::string>& out);

  /// Coalescing variant for callers without a vectored write path (tests,
  /// raw inspection).
  std::size_t fetch_writable(std::string& out);

  /// Acknowledge `n` bytes as actually sent to the socket; may resume
  /// reading (check `want_read()` after).
  void wrote(std::size_t n);

  /// False while the peer's response backlog is above the high watermark
  /// or the stream is corrupt — the transport must stop reading.
  bool want_read() const;

  /// True when in-order completed responses are queued for fetching.
  bool has_writable() const;

  /// True once every accepted frame has been answered and every response
  /// byte fetched *and* acknowledged via `wrote()` — safe to close.
  bool drained() const;

  /// Framing is unsyncable; flush remaining writes, then close.
  bool corrupt() const { return decoder_.corrupt(); }

  std::uint64_t id() const { return id_; }
  std::size_t in_flight() const;
  /// Response bytes not yet acknowledged by `wrote()` (watermark gauge).
  std::size_t outstanding_write_bytes() const;
  /// Sink-clock reading of the last read/reply/write activity.
  double last_activity_ms() const;

  /// Drop the wake callback. Transports call this when tearing a
  /// connection down: replies still queued in the sink keep the
  /// `Connection` alive (their callbacks hold a shared_ptr) and complete
  /// harmlessly into its buffers, but must never touch transport state
  /// that may already be gone.
  void disarm_wake();

 private:
  void complete(std::uint64_t ticket, std::string payload);

  const std::uint64_t id_;
  FrameSink* sink_;
  const Limits limits_;
  std::function<void()> wake_;  ///< guarded by mu_; see disarm_wake()

  // I/O-thread-only state.
  FrameDecoder decoder_;
  std::uint64_t next_ticket_ = 0;
  bool corrupt_reported_ = false;

  mutable std::mutex mu_;
  std::uint64_t next_release_ = 0;  ///< ticket the write queue waits on
  std::map<std::uint64_t, std::string> ready_;  ///< completed out of order
  std::deque<std::string> write_queue_;  ///< in-order frames, one buffer each
  std::size_t write_queue_bytes_ = 0;
  std::size_t unacked_bytes_ = 0;
  std::size_t inflight_ = 0;
  bool paused_ = false;
  double last_activity_ms_ = 0.0;
};

/// Response frames fetched from a connection but not yet fully sent. The
/// frames stay as separate buffers so the transport can hand the whole
/// backlog to one `writev` call; `offset` is the send cursor within the
/// front frame.
struct Outbox {
  std::deque<std::string> frames;
  std::size_t offset = 0;  ///< bytes of frames.front() already sent

  bool empty() const { return frames.empty(); }
  /// Drop `n` sent bytes from the front (n may span several frames).
  void consume(std::size_t n);
};

/// Socket helpers shared by both transports (the fd must be non-blocking).
struct IoResult {
  std::size_t bytes = 0;    ///< bytes moved this call
  bool peer_closed = false; ///< read side: orderly shutdown from the peer
  bool would_block = false; ///< write side: unsent bytes remain (arm POLLOUT)
  bool error = false;       ///< hard socket error; close the connection
};

/// Drain everything currently readable into `connection.on_bytes`.
IoResult read_available(int fd, Connection& connection);

/// Send queued responses with vectored writes: refills `outbox` from the
/// connection when it runs dry, gathers the queued frames into one
/// `writev` per loop iteration (no coalescing copy), and acknowledges
/// progress via `wrote()`. Returns with `would_block` when the socket
/// buffer fills before the backlog is gone.
IoResult write_available(int fd, Connection& connection, Outbox& outbox);

}  // namespace abp::serve
