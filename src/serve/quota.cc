#include "serve/quota.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace abp::serve {

PrincipalQuotas::PrincipalQuotas(QuotaOptions options) : options_(options) {
  ABP_CHECK(options_.enabled(), "PrincipalQuotas needs --quota-rps > 0");
  ABP_CHECK(options_.capacity() > 0.0, "quota burst must be positive");
}

PrincipalQuotas::Decision PrincipalQuotas::admit(std::uint64_t principal,
                                                 double now_ms) {
  const double capacity = options_.capacity();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, created] = buckets_.try_emplace(principal);
  Bucket& bucket = it->second;
  if (created) {
    bucket.tokens = capacity;  // first contact starts with a full burst
    bucket.updated_ms = now_ms;
  }
  // Continuous refill; a non-monotonic clock reading refills nothing
  // rather than draining the bucket.
  const double elapsed_ms = std::max(0.0, now_ms - bucket.updated_ms);
  bucket.tokens = std::min(capacity,
                           bucket.tokens + elapsed_ms * options_.rps / 1e3);
  bucket.updated_ms = now_ms;
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return {};
  }
  Decision shed;
  shed.admitted = false;
  const double deficit_ms = (1.0 - bucket.tokens) / options_.rps * 1e3;
  shed.retry_after_ms = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(deficit_ms)));
  return shed;
}

std::size_t PrincipalQuotas::principals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_.size();
}

}  // namespace abp::serve
