/// \file frame_sink.h
/// \brief The frame-consumer interface behind every server transport.
///
/// PR 4 put one `Connection` state machine behind both server transports;
/// this splits the other side of that seam. A `FrameSink` is whatever
/// consumes complete request frames and answers them through a callback:
///
///  * `Server` (server.h) — parses, batches and executes requests against a
///    local `LocalizationService`; what `abp serve` fronts.
///  * `cluster::Router` (cluster/router.h) — forwards frames to backend
///    replicas chosen by consistent hashing; what `abp route` fronts.
///
/// Transports and connections only ever talk to this interface, so the
/// entire socket layer (threaded and epoll, framing, ordered replies,
/// in-flight caps, watermarks, timeouts) is reused verbatim by the cluster
/// routing tier.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace abp::serve {

class FrameSink {
 public:
  virtual ~FrameSink() = default;

  /// Consume one request frame payload. `reply` must be invoked exactly
  /// once with the encoded response payload — possibly immediately, on the
  /// calling thread, or later from any other thread.
  virtual void submit(std::string payload,
                      std::function<void(std::string)> reply) = 0;

  /// Transport-level admission rejection: answer `payload`'s request with
  /// the retryable `overloaded` status (diagnosed with `why`) without
  /// consuming it, keeping shed accounting centralized in the sink. Used by
  /// connections enforcing per-connection in-flight limits.
  virtual void shed_overloaded(std::string payload,
                               std::function<void(std::string)> reply,
                               const std::string& why) = 0;

  /// Record an input that never became a request (corrupt framing).
  virtual void record_bad_frame(std::size_t bytes_in) = 0;

  /// Monotonic milliseconds on the sink's (injectable) clock; transports
  /// use it for idle/write-stall timeouts so fault-injection tests stay
  /// deterministic.
  virtual double now_ms() const = 0;

  /// Called by transports after feeding bytes that may have queued work.
  /// Sinks that execute on the caller's thread (a manual-mode `Server`)
  /// drain their queue here; asynchronous sinks ignore it.
  virtual void pump_ready() {}
};

}  // namespace abp::serve
