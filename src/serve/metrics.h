/// \file metrics.h
/// \brief Built-in observability for the localization query service.
///
/// Per-endpoint request/error/byte counters plus a log-spaced latency
/// histogram (`abp::Histogram`), aggregated under one lock — contention is
/// negligible next to a localization pass, and a single lock keeps snapshots
/// consistent. The `stats` endpoint and the shutdown dump both render the
/// shared `MetricsSnapshot` text format (schema line + `name value` lines):
///
///     abp-serve-stats 1
///     endpoint.localize.requests 128
///     endpoint.localize.p99us 55.0
///     ...
///     admission.submitted 130
///     admission.shed-overloaded 6
///     principal.7.submitted 64
///
/// The admission counters carry the drain-aware reconciliation the chaos
/// suite asserts: after every accepted request has been answered,
/// `submitted == completed + shed-overloaded + shed-unavailable +
/// shed-deadline` — no request is ever dropped without an accounted reply.
/// Per-principal counters (submitted / quota sheds) ride the same snapshot;
/// quota sheds also count toward `shed-overloaded`, so the reconciliation
/// is unchanged by quota enforcement.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <iterator>
#include <map>
#include <mutex>
#include <string>

#include "common/metrics_snapshot.h"
#include "common/stats.h"
#include "serve/protocol.h"

namespace abp::serve {

/// Point-in-time copy of one endpoint's counters.
struct EndpointSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;  ///< responses with status != ok
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t latency_samples = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

class ServiceMetrics {
 public:
  ServiceMetrics();

  /// Record one completed request (parse succeeded; status may be an error).
  void record(Endpoint endpoint, Status status, std::size_t bytes_in,
              std::size_t bytes_out, double latency_us);

  /// Record an input that never became a request (corrupt frame or
  /// unparseable payload).
  void record_bad_frame(std::size_t bytes_in);

  /// Record one executed batch of `coalesced` point-query requests.
  void record_batch(std::size_t coalesced);

  /// Admission accounting. Every parse-ok submission is recorded once via
  /// `record_submitted` (attributed to its principal), then exactly once
  /// more as either completed (handler executed, any status) or shed
  /// (rejected or expired before execution, by cause).
  void record_submitted(std::uint64_t principal = 0);
  void record_completed(std::size_t n = 1);
  /// `cause` must be kOverloaded, kUnavailable or kDeadlineExceeded.
  void record_shed(Status cause);
  /// Per-principal quota shed: the bucket for `principal` was empty. Also
  /// counts as a `kOverloaded` shed (the caller answers `overloaded`), so
  /// the admission reconciliation is unchanged.
  void record_quota_shed(std::uint64_t principal);

  EndpointSnapshot endpoint_snapshot(Endpoint endpoint) const;
  std::uint64_t total_requests() const;
  std::uint64_t total_errors() const;
  std::uint64_t bad_frames() const;
  std::uint64_t batches() const;
  std::uint64_t coalesced_requests() const;
  std::uint64_t submitted() const;
  std::uint64_t completed() const;
  std::uint64_t shed(Status cause) const;
  std::uint64_t shed_total() const;
  std::uint64_t quota_sheds() const;
  std::uint64_t principal_submitted(std::uint64_t principal) const;
  std::uint64_t principal_quota_sheds(std::uint64_t principal) const;

  /// Uniform snapshot of every counter (schema `abp-serve-stats 1`).
  MetricsSnapshot snapshot() const;

  /// Render the stats text (the `stats` endpoint body / shutdown dump) —
  /// `snapshot().render_text()`.
  void render(std::ostream& out) const;
  std::string render_text() const;

 private:
  struct PerEndpoint {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    Histogram latency_us = Histogram::latency_us();
  };

  static constexpr std::size_t kEndpointCount = std::size(kAllEndpoints);

  mutable std::mutex mu_;
  PerEndpoint per_endpoint_[kEndpointCount];
  std::uint64_t bad_frames_ = 0;
  std::uint64_t bad_frame_bytes_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t shed_overloaded_ = 0;
  std::uint64_t shed_unavailable_ = 0;
  std::uint64_t shed_deadline_ = 0;
  std::uint64_t shed_quota_ = 0;
  /// principal id -> {submitted, quota sheds}; anonymous traffic is id 0.
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
      principals_;
};

/// Point-in-time copy of one backend's routing/health counters.
struct BackendSnapshot {
  std::uint64_t forwarded = 0;  ///< requests sent (first attempts + retries)
  std::uint64_t ok = 0;         ///< responses with status == ok
  std::uint64_t errors = 0;     ///< responses with status != ok
  std::uint64_t transport_failures = 0;  ///< send/flush/connect failures
  std::uint64_t retries = 0;    ///< re-sends to another replica
  std::uint64_t version_mismatches = 0;  ///< stale-snapshot rejections
  std::uint64_t installs = 0;   ///< snapshot installs shipped
  std::uint64_t mutations = 0;  ///< mutate requests shipped (writes + replay)
  std::uint64_t mutation_acks = 0;  ///< mutate requests acknowledged
  std::uint64_t replays = 0;    ///< log entries replayed on recovery
  std::uint64_t probes = 0;     ///< heartbeat probes sent
  std::uint64_t probe_failures = 0;
  std::uint64_t marked_down = 0;  ///< health transitions into `open`
  std::uint64_t recovered = 0;    ///< health transitions back to `closed`
};

/// Observability for the cluster router (`abp route`): per-backend
/// forwarding and health counters plus cache, filter and per-principal
/// accounting, rendered as the router's `stats` endpoint body in the
/// shared `MetricsSnapshot` format:
///
///     abp-route-stats 1
///     backend.127.0.0.1:7001.forwarded 42
///     ...
///     router.received 50
///     cache.hits 12
///     principal.7.submitted 20
///
/// `router.unrouted` counts requests answered `unavailable` because every
/// replica of the target deployment was down.
class RouterMetrics {
 public:
  RouterMetrics();

  /// Register a backend so it renders (with zero counters) before traffic.
  void add_backend(const std::string& backend);

  void record_received(std::uint64_t principal = 0);
  /// Request answered by the router itself (stats / list-fields /
  /// cache hits / filter rejects).
  void record_local();
  void record_forward(const std::string& backend);
  void record_result(const std::string& backend, Status status);
  void record_transport_failure(const std::string& backend);
  void record_retry(const std::string& backend);
  void record_version_mismatch(const std::string& backend);
  void record_install(const std::string& backend);
  void record_mutation(const std::string& backend);
  void record_mutation_ack(const std::string& backend);
  void record_replay(const std::string& backend);
  void record_probe(const std::string& backend, bool ok);
  void record_marked_down(const std::string& backend);
  void record_recovered(const std::string& backend);
  /// Request shed `unavailable` because no live replica remained.
  void record_unrouted();
  /// Write-path accounting: one `record_write` per client `add-beacon`
  /// accepted into the log, then exactly one of `record_write_ack`
  /// (quorum reached) or `record_write_quorum_failure` (quorum impossible;
  /// the write stays logged and is answered retryable `unavailable`).
  /// A retried write whose id hits the dedup index records a `dedup_hit`
  /// instead of a new `write`; if the original quorum was lost, the retry's
  /// re-fan-out can still record a `write_ack` — so over a run with retries,
  /// `write_acks` may exceed `writes - quorum_failures`.
  void record_write();
  void record_write_ack();
  void record_write_quorum_failure();
  /// Duplicate delivery suppressed: answered from the dedup index without
  /// a new log append.
  void record_write_dedup_hit();
  /// Retry whose id rolled out of the dedup window: answered terminal
  /// `dedup-expired`, never silently re-appended.
  void record_write_dedup_expired();
  /// Response-cache accounting for cacheable read endpoints: a hit is
  /// answered locally without touching a backend; an invalidation drops
  /// every entry of one deployment when a quorum-acked write bumps its
  /// version.
  void record_cache_hit();
  void record_cache_miss();
  void record_cache_invalidation(std::size_t entries_dropped);
  /// Unknown-deployment request answered locally because the membership
  /// filter proved the name is not deployed (no backend round-trip).
  void record_filter_reject();
  /// Per-principal quota shed: the bucket for `principal` was empty.
  void record_quota_shed(std::uint64_t principal);
  /// Membership control plane: the current ring epoch and per-state member
  /// counts — gauges, replaced whole on every transition so the stats
  /// output always reflects the live table.
  void set_membership(std::uint64_t epoch, std::uint64_t active,
                      std::uint64_t joining, std::uint64_t draining);
  /// Handoff shipments to a joining (or ownership-gaining) backend: one
  /// `handoff_snapshot` per blocking full-state install, one
  /// `handoff_replay` per mutation-log suffix replayed to close the gap
  /// that opened while the snapshot shipped.
  void record_handoff_snapshot();
  void record_handoff_replay();

  BackendSnapshot backend_snapshot(const std::string& backend) const;
  std::uint64_t received() const;
  std::uint64_t forwarded_total() const;
  std::uint64_t unrouted() const;
  std::uint64_t writes() const;
  std::uint64_t write_acks() const;
  std::uint64_t write_quorum_failures() const;
  std::uint64_t write_dedup_hits() const;
  std::uint64_t write_dedup_expired() const;
  std::uint64_t cache_hits() const;
  std::uint64_t cache_misses() const;
  std::uint64_t cache_invalidations() const;
  std::uint64_t cache_entries_invalidated() const;
  std::uint64_t filter_rejects() const;
  std::uint64_t quota_sheds() const;
  std::uint64_t principal_received(std::uint64_t principal) const;
  std::uint64_t principal_quota_sheds(std::uint64_t principal) const;
  std::uint64_t membership_epoch() const;
  std::uint64_t membership_active() const;
  std::uint64_t membership_joining() const;
  std::uint64_t membership_draining() const;
  std::uint64_t handoff_snapshots() const;
  std::uint64_t handoff_replays() const;

  /// Uniform snapshot of every counter (schema `abp-route-stats 1`).
  MetricsSnapshot snapshot() const;

  void render(std::ostream& out) const;
  std::string render_text() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, BackendSnapshot> backends_;
  std::uint64_t received_ = 0;
  std::uint64_t local_ = 0;
  std::uint64_t unrouted_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t write_acks_ = 0;
  std::uint64_t write_quorum_failures_ = 0;
  std::uint64_t write_dedup_hits_ = 0;
  std::uint64_t write_dedup_expired_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_invalidations_ = 0;
  std::uint64_t cache_entries_invalidated_ = 0;
  std::uint64_t filter_rejects_ = 0;
  std::uint64_t quota_sheds_ = 0;
  std::uint64_t membership_epoch_ = 0;
  std::uint64_t membership_active_ = 0;
  std::uint64_t membership_joining_ = 0;
  std::uint64_t membership_draining_ = 0;
  std::uint64_t handoff_snapshots_ = 0;
  std::uint64_t handoff_replays_ = 0;
  /// principal id -> {received, quota sheds}; anonymous traffic is id 0.
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
      principals_;
};

}  // namespace abp::serve
