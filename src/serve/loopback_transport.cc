#include "serve/transport.h"

#include <utility>

namespace abp::serve {

std::string LoopbackTransport::roundtrip_frame(const std::string& frame) {
  // Decode exactly as a remote transport would: corrupt framing yields the
  // canonical bad-request response instead of reaching the server.
  FrameDecoder decoder;
  decoder.feed(frame);
  std::optional<std::string> payload = decoder.next();
  if (!payload) {
    server_->service().metrics().record_bad_frame(frame.size());
    Response response;
    response.status = Status::kBadRequest;
    response.message = decoder.corrupt() ? decoder.error() : "truncated frame";
    return encode_frame(format_response(response));
  }
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  server_->submit(std::move(*payload), [&promise](std::string reply) {
    promise.set_value(std::move(reply));
  });
  if (server_->options().workers == 0) server_->pump();
  return encode_frame(future.get());
}

Response LoopbackTransport::roundtrip(const Request& request) {
  const std::string reply_frame =
      roundtrip_frame(encode_frame(format_request(request)));
  FrameDecoder decoder;
  decoder.feed(reply_frame);
  const std::optional<std::string> payload = decoder.next();
  if (!payload) throw ServeError("loopback: bad response frame");
  std::string error;
  const std::optional<Response> response = parse_response(*payload, &error);
  if (!response) throw ServeError("loopback: bad response payload: " + error);
  return *response;
}

void LoopbackTransport::send_async(
    const Request& request, std::function<void(std::string)> on_reply_frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  server_->submit(format_request(request),
                  [this, cb = std::move(on_reply_frame)](std::string reply) {
                    cb(encode_frame(reply));
                    std::lock_guard<std::mutex> lock(mu_);
                    if (--outstanding_ == 0) cv_.notify_all();
                  });
}

void LoopbackTransport::flush() {
  if (server_->options().workers == 0) server_->pump();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_ == 0; });
}

}  // namespace abp::serve
