#include "serve/server_transport.h"

#include "serve/epoll_transport.h"
#include "serve/tcp_transport.h"

namespace abp::serve {

const char* transport_kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kThreaded: return "threaded";
    case TransportKind::kEpoll: return "epoll";
  }
  return "unknown";
}

std::optional<TransportKind> transport_kind_from_name(std::string_view name) {
  if (name == "threaded") return TransportKind::kThreaded;
  if (name == "epoll") return TransportKind::kEpoll;
  return std::nullopt;
}

std::unique_ptr<ServerTransport> make_server_transport(
    TransportKind kind, FrameSink& sink, const TransportOptions& options) {
  switch (kind) {
    case TransportKind::kThreaded:
      return std::make_unique<TcpServerTransport>(sink, options);
    case TransportKind::kEpoll:
      return std::make_unique<EpollServerTransport>(sink, options);
  }
  return nullptr;
}

}  // namespace abp::serve
