#include "serve/fault_transport.h"

#include <chrono>
#include <future>
#include <thread>
#include <utility>

#include "common/assert.h"

namespace abp::serve {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kResetBeforeSend: return "reset-before-send";
    case FaultKind::kResetAfterSend: return "reset-after-send";
    case FaultKind::kTruncateRequest: return "truncate-request";
    case FaultKind::kCorruptRequest: return "corrupt-request";
    case FaultKind::kTruncateResponse: return "truncate-response";
    case FaultKind::kCorruptResponse: return "corrupt-response";
    case FaultKind::kStallBeforeExecute: return "stall-before-execute";
    case FaultKind::kSlowLorisRequest: return "slow-loris-request";
    case FaultKind::kDuplicateRequest: return "duplicate-request";
  }
  return "unknown";
}

FaultScript make_retry_storm_script(std::size_t steps, std::uint64_t seed,
                                    bool cycle) {
  Rng rng(derive_seed(seed, 0x570F));
  std::vector<FaultStep> mix;
  mix.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const std::uint64_t roll = rng.below(100);
    FaultStep step;
    if (roll < 40) {
      step.kind = FaultKind::kNone;
    } else if (roll < 65) {
      step.kind = FaultKind::kDuplicateRequest;
    } else if (roll < 85) {
      step.kind = FaultKind::kResetBeforeSend;
    } else {
      step.kind = FaultKind::kResetAfterSend;
    }
    mix.push_back(step);
  }
  return FaultScript(std::move(mix), cycle);
}

FaultStep FaultScript::next() {
  ++consumed_;
  if (steps_.empty()) return FaultStep{};
  if (next_ >= steps_.size()) {
    if (!cycle_) return FaultStep{};
    next_ = 0;
  }
  return steps_[next_++];
}

FaultTransport::FaultTransport(Server& server, Options options)
    : server_(&server),
      options_(std::move(options)),
      rng_(derive_seed(options_.seed, 0xFA01)) {}

FaultTransport::FaultTransport(std::function<std::string(std::string)> exchange,
                               Options options)
    : exchange_(std::move(exchange)),
      options_(std::move(options)),
      rng_(derive_seed(options_.seed, 0xFA01)) {
  ABP_CHECK(exchange_ != nullptr, "FaultTransport needs a frame exchange");
}

void FaultTransport::stall(double ms) {
  if (ms <= 0.0) return;
  if (options_.clock) {
    options_.clock->advance(ms);
  } else {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

/// Carry the frame to the peer and bring the response frame back,
/// stalling between enqueue and drain when the script says so. In server
/// mode this mirrors `LoopbackTransport::roundtrip_frame`, with the stall
/// inserted where a real network would park the request in the queue.
std::string FaultTransport::deliver(std::string frame, double stall_ms) {
  if (!server_) {
    stall(stall_ms);  // generic mode: stall before delivery
    return exchange_(std::move(frame));
  }
  FrameDecoder decoder;
  decoder.feed(frame);
  std::optional<std::string> payload = decoder.next();
  if (!payload) {
    server_->service().metrics().record_bad_frame(frame.size());
    Response response;
    response.status = Status::kBadRequest;
    response.message = decoder.corrupt() ? decoder.error() : "truncated frame";
    return encode_frame(format_response(response));
  }
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  server_->submit(std::move(*payload), [&promise](std::string reply) {
    promise.set_value(std::move(reply));
  });
  stall(stall_ms);  // the queued request ages here; deadlines may expire
  if (server_->options().workers == 0) server_->pump();
  return encode_frame(future.get());
}

std::string FaultTransport::roundtrip_frame(std::string frame) {
  ++exchanges_;
  const FaultStep step = options_.script.next();
  if (step.kind != FaultKind::kNone) ++injected_;
  switch (step.kind) {
    case FaultKind::kNone:
      return deliver(std::move(frame), 0.0);
    case FaultKind::kResetBeforeSend:
      throw ServeError("injected: connection reset before send");
    case FaultKind::kResetAfterSend: {
      deliver(std::move(frame), 0.0);  // the server works; the reply is lost
      throw ServeError("injected: connection reset awaiting response");
    }
    case FaultKind::kTruncateRequest: {
      // A prefix reaches the peer, then the connection dies. The truncated
      // bytes can never form a frame, so the peer sees nothing to answer.
      const std::size_t keep =
          1 + static_cast<std::size_t>(rng_.below(frame.size() - 1));
      frame.resize(keep);
      throw ServeError("injected: connection reset after " +
                       std::to_string(keep) + " bytes of partial frame");
    }
    case FaultKind::kCorruptRequest: {
      const std::size_t pos =
          static_cast<std::size_t>(rng_.below(frame.size()));
      frame[pos] = static_cast<char>(
          frame[pos] ^ (1u << static_cast<unsigned>(rng_.below(8))));
      return deliver(std::move(frame), 0.0);
    }
    case FaultKind::kTruncateResponse: {
      std::string reply = deliver(std::move(frame), 0.0);
      const std::size_t keep =
          1 + static_cast<std::size_t>(rng_.below(reply.size() - 1));
      reply.resize(keep);
      return reply;
    }
    case FaultKind::kCorruptResponse: {
      std::string reply = deliver(std::move(frame), 0.0);
      const std::size_t pos =
          static_cast<std::size_t>(rng_.below(reply.size()));
      reply[pos] = static_cast<char>(
          reply[pos] ^ (1u << static_cast<unsigned>(rng_.below(8))));
      return reply;
    }
    case FaultKind::kStallBeforeExecute:
      return deliver(std::move(frame), step.stall_ms);
    case FaultKind::kSlowLorisRequest: {
      // The peer receives a dribble of bytes that never completes while the
      // connection holds a slot, then the connection dies.
      stall(step.stall_ms);
      throw ServeError("injected: slow-loris connection reset");
    }
    case FaultKind::kDuplicateRequest: {
      // A retransmit the sender never asked for: the same frame reaches the
      // peer twice and the first reply comes back. The peer's dedup layer
      // decides whether the second delivery re-executes.
      std::string first = deliver(frame, 0.0);
      deliver(std::move(frame), 0.0);
      return first;
    }
  }
  throw ServeError("injected: unknown fault kind");  // unreachable
}

void FaultTransport::send_async(
    const Request& request, std::function<void(std::string)> on_reply_frame) {
  on_reply_frame(roundtrip_frame(encode_frame(format_request(request))));
}

Response FaultTransport::roundtrip(const Request& request) {
  const std::string reply_frame =
      roundtrip_frame(encode_frame(format_request(request)));
  FrameDecoder decoder;
  decoder.feed(reply_frame);
  const std::optional<std::string> payload = decoder.next();
  if (!payload) {
    throw ServeError("fault transport: bad response frame" +
                     (decoder.corrupt() ? ": " + decoder.error() : ""));
  }
  std::string error;
  const std::optional<Response> response = parse_response(*payload, &error);
  if (!response) {
    throw ServeError("fault transport: bad response payload: " + error);
  }
  return *response;
}

}  // namespace abp::serve
