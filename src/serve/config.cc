#include "serve/config.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/assert.h"

namespace abp::serve {

namespace {

/// Parse "x,y;x,y;…" into points (query --points).
std::vector<Vec2> parse_point_list(const std::string& text) {
  std::vector<Vec2> points;
  std::istringstream groups(text);
  std::string group;
  while (std::getline(groups, group, ';')) {
    if (group.empty()) continue;
    std::istringstream is(group);
    double x, y;
    char comma = '\0';
    is >> x >> comma >> y;
    ABP_CHECK(!is.fail() && comma == ',',
              "bad --points entry (want x,y): " + group);
    points.push_back({x, y});
  }
  return points;
}

}  // namespace

ServeConfig ServeConfig::from_flags(const Flags& flags) {
  ServeConfig config;
  FlagTable()
      .text("field", &config.field_path)
      .text("name", &config.name)
      .number("noise", &config.noise)
      .u64("seed", &config.seed)
      .size("dedup-window", &config.dedup_window)
      .boolean("oneshot", &config.oneshot)
      .text("in", &config.in_path)
      .text("out", &config.out_path)
      .size("workers", &config.workers)
      .size("batch", &config.batch)
      .size("max-queue", &config.max_queue)
      .size("max-inflight", &config.max_inflight)
      .u32("retry-after-ms", &config.retry_after_hint_ms)
      .port("port", &config.port)
      .size_at_least("event-shards", 1, &config.event_shards)
      .number("read-timeout-s", &config.read_timeout_s)
      .number("write-timeout-s", &config.write_timeout_s)
      .number("quota-rps", &config.quota_rps)
      .number("quota-burst", &config.quota_burst)
      .parse(flags);

  const std::string transport = flags.get_string("transport", "threaded");
  const std::optional<TransportKind> kind = transport_kind_from_name(transport);
  ABP_CHECK(kind.has_value(),
            "unknown --transport: " + transport + " (want threaded|epoll)");
  config.transport = *kind;

  config.validate();
  return config;
}

void ServeConfig::validate() const {
  ABP_CHECK(!field_path.empty(), "serve requires --field");
  if (oneshot) {
    ABP_CHECK(!in_path.empty(), "serve --oneshot requires --in");
    ABP_CHECK(port == 0,
              "--oneshot and --port are mutually exclusive");
  } else {
    ABP_CHECK(in_path.empty() && out_path.empty(),
              "--in/--out only apply to --oneshot serving");
  }
  if (event_shards > 1) {
    ABP_CHECK(transport == TransportKind::kEpoll,
              "--event-shards > 1 requires --transport epoll");
  }
  ABP_CHECK(batch > 0, "--batch must be positive");
  ABP_CHECK(read_timeout_s > 0.0 && write_timeout_s > 0.0,
            "timeouts must be positive");
  ABP_CHECK(quota_rps >= 0.0 && quota_burst >= 0.0,
            "quota values must be non-negative");
  ABP_CHECK(quota_burst == 0.0 || quota_rps > 0.0,
            "--quota-burst requires --quota-rps > 0");
}

ServiceConfig ServeConfig::service_config() const {
  ServiceConfig config;
  config.noise = noise;
  config.seed = seed;
  config.dedup_window = dedup_window;
  return config;
}

Server::Options ServeConfig::server_options() const {
  Server::Options options;
  options.workers = oneshot ? 0 : workers;
  options.max_batch = batch;
  options.max_queue = max_queue;
  options.retry_after_hint_ms = retry_after_hint_ms;
  options.quota.rps = quota_rps;
  options.quota.burst = quota_burst;
  return options;
}

TransportOptions ServeConfig::transport_options() const {
  TransportOptions options;
  options.port = port;
  options.read_timeout_s = read_timeout_s;
  options.write_timeout_s = write_timeout_s;
  options.max_inflight = max_inflight;
  options.conn_workers = std::max<std::size_t>(workers, 2);
  options.event_shards = event_shards;
  return options;
}

QueryConfig QueryConfig::from_flags(const Flags& flags) {
  QueryConfig config;
  config.decode_path = flags.get_string("decode", "");
  config.encode_path = flags.get_string("encode-to", "");
  config.field_path = flags.get_string("field", "");
  const std::string connect = flags.get_string("connect", "");

  const int destinations = (config.decode_path.empty() ? 0 : 1) +
                           (config.encode_path.empty() ? 0 : 1) +
                           (config.field_path.empty() ? 0 : 1) +
                           (connect.empty() ? 0 : 1);
  ABP_CHECK(destinations == 1,
            "query needs exactly one of --field, --connect, --encode-to, "
            "--decode");

  if (!config.decode_path.empty()) {
    config.mode = Mode::kDecode;
    return config;  // decode takes no request flags
  }

  const std::string type = flags.get_string("type", "localize");
  const std::optional<Endpoint> endpoint = endpoint_from_name(type);
  ABP_CHECK(endpoint.has_value(), "unknown --type: " + type);
  config.request.endpoint = *endpoint;
  config.request.seq = 1;
  std::string points_text;
  // `--principal` mints the request's multi-tenant identity (0 = anonymous,
  // record omitted on the wire). Exactly-once writes: resending the same
  // command with the same --request-id (and a bumped --attempt) collects
  // the original ack instead of appending a second beacon.
  FlagTable()
      .u64("seq", &config.request.seq)
      .text("name", &config.request.field)
      .text("points", &points_text)
      .text("algorithm", &config.request.algorithm)
      .u32("count", &config.request.count)
      .u32("deadline-ms", &config.request.deadline_ms)
      .u64("principal", &config.request.principal)
      .u64("request-id", &config.request.request_id)
      .u32("attempt", &config.request.attempt)
      .parse(flags);
  config.request.points = parse_point_list(points_text);
  ABP_CHECK(config.request.attempt == 0 || config.request.request_id != 0,
            "--attempt requires --request-id");

  if (!config.encode_path.empty()) {
    config.mode = Mode::kEncode;
    FlagTable()
        .boolean("append", &config.append)
        .boolean("corrupt", &config.corrupt)
        .parse(flags);
    return config;
  }

  if (!connect.empty()) {
    config.mode = Mode::kConnect;
    const auto colon = connect.rfind(':');
    ABP_CHECK(colon != std::string::npos, "--connect wants HOST:PORT");
    config.host = connect.substr(0, colon);
    std::istringstream port_is(connect.substr(colon + 1));
    int port = 0;
    port_is >> port;
    ABP_CHECK(!port_is.fail() && port > 0 && port <= 65535,
              "bad --connect port");
    config.port = static_cast<std::uint16_t>(port);
    config.retry.max_attempts = 4;
    config.retry.base_backoff_ms = 25.0;  // CLI default, above the struct's
    FlagTable()
        .size("retries", &config.retry.max_attempts)
        .number("backoff-ms", &config.retry.base_backoff_ms)
        .number("budget-ms", &config.retry.deadline_budget_ms)
        .u64("retry-seed", &config.retry.seed)
        .parse(flags);
    config.validate();
    return config;
  }

  config.mode = Mode::kLocalField;
  FlagTable()
      .number("noise", &config.noise)
      .u64("seed", &config.seed)
      .size("batch", &config.batch)
      .parse(flags);
  config.validate();
  return config;
}

void QueryConfig::validate() const {
  switch (mode) {
    case Mode::kDecode:
      ABP_CHECK(!decode_path.empty(), "decode mode needs a path");
      break;
    case Mode::kEncode:
      ABP_CHECK(!encode_path.empty(), "encode mode needs a path");
      break;
    case Mode::kConnect:
      ABP_CHECK(!host.empty() && port != 0, "connect mode needs HOST:PORT");
      ABP_CHECK(retry.max_attempts >= 1, "--retries must be at least 1");
      break;
    case Mode::kLocalField:
      ABP_CHECK(!field_path.empty(), "local mode needs --field");
      ABP_CHECK(batch > 0, "--batch must be positive");
      break;
  }
}

}  // namespace abp::serve
