#include "serve/config.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/assert.h"

namespace abp::serve {

namespace {

/// Parse "x,y;x,y;…" into points (query --points).
std::vector<Vec2> parse_point_list(const std::string& text) {
  std::vector<Vec2> points;
  std::istringstream groups(text);
  std::string group;
  while (std::getline(groups, group, ';')) {
    if (group.empty()) continue;
    std::istringstream is(group);
    double x, y;
    char comma = '\0';
    is >> x >> comma >> y;
    ABP_CHECK(!is.fail() && comma == ',',
              "bad --points entry (want x,y): " + group);
    points.push_back({x, y});
  }
  return points;
}

std::size_t get_size(const Flags& flags, const std::string& key,
                     std::size_t def) {
  const int value = flags.get_int(key, static_cast<int>(def));
  ABP_CHECK(value >= 0, "--" + key + " must be non-negative");
  return static_cast<std::size_t>(value);
}

}  // namespace

ServeConfig ServeConfig::from_flags(const Flags& flags) {
  ServeConfig config;
  config.field_path = flags.get_string("field", "");
  config.name = flags.get_string("name", "default");
  config.noise = flags.get_double("noise", 0.0);
  config.seed = flags.get_u64("seed", 1);
  config.dedup_window = get_size(flags, "dedup-window", 64);

  config.oneshot = flags.get_bool("oneshot", false);
  config.in_path = flags.get_string("in", "");
  config.out_path = flags.get_string("out", "");

  config.workers = get_size(flags, "workers", 0);
  config.batch = get_size(flags, "batch", 16);
  config.max_queue = get_size(flags, "max-queue", 0);
  config.max_inflight = get_size(flags, "max-inflight", 0);
  config.retry_after_hint_ms =
      static_cast<std::uint32_t>(get_size(flags, "retry-after-ms", 0));

  const std::string transport = flags.get_string("transport", "threaded");
  const std::optional<TransportKind> kind = transport_kind_from_name(transport);
  ABP_CHECK(kind.has_value(),
            "unknown --transport: " + transport + " (want threaded|epoll)");
  config.transport = *kind;
  const int port = flags.get_int("port", 0);
  ABP_CHECK(port >= 0 && port <= 65535, "--port must be in [0, 65535]");
  config.port = static_cast<std::uint16_t>(port);
  config.event_shards = std::max<std::size_t>(
      1, get_size(flags, "event-shards", 1));
  config.read_timeout_s = flags.get_double("read-timeout-s", 30.0);
  config.write_timeout_s = flags.get_double("write-timeout-s", 5.0);

  config.validate();
  return config;
}

void ServeConfig::validate() const {
  ABP_CHECK(!field_path.empty(), "serve requires --field");
  if (oneshot) {
    ABP_CHECK(!in_path.empty(), "serve --oneshot requires --in");
    ABP_CHECK(port == 0,
              "--oneshot and --port are mutually exclusive");
  } else {
    ABP_CHECK(in_path.empty() && out_path.empty(),
              "--in/--out only apply to --oneshot serving");
  }
  if (event_shards > 1) {
    ABP_CHECK(transport == TransportKind::kEpoll,
              "--event-shards > 1 requires --transport epoll");
  }
  ABP_CHECK(batch > 0, "--batch must be positive");
  ABP_CHECK(read_timeout_s > 0.0 && write_timeout_s > 0.0,
            "timeouts must be positive");
}

ServiceConfig ServeConfig::service_config() const {
  ServiceConfig config;
  config.noise = noise;
  config.seed = seed;
  config.dedup_window = dedup_window;
  return config;
}

Server::Options ServeConfig::server_options() const {
  Server::Options options;
  options.workers = oneshot ? 0 : workers;
  options.max_batch = batch;
  options.max_queue = max_queue;
  options.retry_after_hint_ms = retry_after_hint_ms;
  return options;
}

TransportOptions ServeConfig::transport_options() const {
  TransportOptions options;
  options.port = port;
  options.read_timeout_s = read_timeout_s;
  options.write_timeout_s = write_timeout_s;
  options.max_inflight = max_inflight;
  options.conn_workers = std::max<std::size_t>(workers, 2);
  options.event_shards = event_shards;
  return options;
}

QueryConfig QueryConfig::from_flags(const Flags& flags) {
  QueryConfig config;
  config.decode_path = flags.get_string("decode", "");
  config.encode_path = flags.get_string("encode-to", "");
  config.field_path = flags.get_string("field", "");
  const std::string connect = flags.get_string("connect", "");

  const int destinations = (config.decode_path.empty() ? 0 : 1) +
                           (config.encode_path.empty() ? 0 : 1) +
                           (config.field_path.empty() ? 0 : 1) +
                           (connect.empty() ? 0 : 1);
  ABP_CHECK(destinations == 1,
            "query needs exactly one of --field, --connect, --encode-to, "
            "--decode");

  if (!config.decode_path.empty()) {
    config.mode = Mode::kDecode;
    return config;  // decode takes no request flags
  }

  const std::string type = flags.get_string("type", "localize");
  const std::optional<Endpoint> endpoint = endpoint_from_name(type);
  ABP_CHECK(endpoint.has_value(), "unknown --type: " + type);
  config.request.endpoint = *endpoint;
  config.request.seq = flags.get_u64("seq", 1);
  config.request.field = flags.get_string("name", "default");
  config.request.points = parse_point_list(flags.get_string("points", ""));
  config.request.algorithm = flags.get_string("algorithm", "");
  config.request.count =
      static_cast<std::uint32_t>(flags.get_int("count", 1));
  config.request.deadline_ms =
      static_cast<std::uint32_t>(flags.get_int("deadline-ms", 0));
  // Exactly-once writes: resending the same command with the same
  // --request-id (and a bumped --attempt) collects the original ack
  // instead of appending a second beacon.
  config.request.request_id = flags.get_u64("request-id", 0);
  config.request.attempt =
      static_cast<std::uint32_t>(get_size(flags, "attempt", 0));
  ABP_CHECK(config.request.attempt == 0 || config.request.request_id != 0,
            "--attempt requires --request-id");

  if (!config.encode_path.empty()) {
    config.mode = Mode::kEncode;
    config.append = flags.get_bool("append", false);
    config.corrupt = flags.get_bool("corrupt", false);
    return config;
  }

  if (!connect.empty()) {
    config.mode = Mode::kConnect;
    const auto colon = connect.rfind(':');
    ABP_CHECK(colon != std::string::npos, "--connect wants HOST:PORT");
    config.host = connect.substr(0, colon);
    std::istringstream port_is(connect.substr(colon + 1));
    int port = 0;
    port_is >> port;
    ABP_CHECK(!port_is.fail() && port > 0 && port <= 65535,
              "bad --connect port");
    config.port = static_cast<std::uint16_t>(port);
    config.retry.max_attempts = get_size(flags, "retries", 4);
    config.retry.base_backoff_ms = flags.get_double("backoff-ms", 25.0);
    config.retry.deadline_budget_ms = flags.get_double("budget-ms", 0.0);
    config.retry.seed = flags.get_u64("retry-seed", 1);
    config.validate();
    return config;
  }

  config.mode = Mode::kLocalField;
  config.noise = flags.get_double("noise", 0.0);
  config.seed = flags.get_u64("seed", 1);
  config.batch = get_size(flags, "batch", 16);
  config.validate();
  return config;
}

void QueryConfig::validate() const {
  switch (mode) {
    case Mode::kDecode:
      ABP_CHECK(!decode_path.empty(), "decode mode needs a path");
      break;
    case Mode::kEncode:
      ABP_CHECK(!encode_path.empty(), "encode mode needs a path");
      break;
    case Mode::kConnect:
      ABP_CHECK(!host.empty() && port != 0, "connect mode needs HOST:PORT");
      ABP_CHECK(retry.max_attempts >= 1, "--retries must be at least 1");
      break;
    case Mode::kLocalField:
      ABP_CHECK(!field_path.empty(), "local mode needs --field");
      ABP_CHECK(batch > 0, "--batch must be positive");
      break;
  }
}

}  // namespace abp::serve
