/// \file tcp_transport.h
/// \brief POSIX TCP transport for the localization query service.
///
/// `TcpServerTransport` listens on a loopback/ANY address, accepts
/// connections on a dedicated thread, and handles each connection on the
/// shared `abp::ThreadPool`: frames are read with a per-connection idle
/// timeout, submitted to the `Server` (which batches across connections),
/// and the responses written back in request order. Pipelined clients may
/// put up to `max_inflight` requests in flight per connection; frames
/// beyond the cap are shed with the retryable `overloaded` status before
/// they reach the queue. Graceful stop: the listener closes first (no new
/// connections), open connections are woken and finish writing what they
/// have accepted, then the pool drains.
///
/// Robust I/O: reads and accepts retry `EINTR` instead of dropping the
/// connection, writes loop over partial sends and `EAGAIN` (a send timeout
/// is armed on every accepted socket so a slow-loris reader cannot park a
/// handler in `send()` forever), and `write_timeout_s` bounds the total
/// stall any single peer can impose on the write path.
///
/// `TcpClientTransport` is the matching blocking client used by `abp query
/// --connect` and the smoke tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "serve/transport.h"

namespace abp::serve {

class TcpServerTransport {
 public:
  struct Options {
    std::uint16_t port = 0;        ///< 0 = ephemeral (read back via port())
    double read_timeout_s = 5.0;   ///< idle read timeout per connection
    double write_timeout_s = 5.0;  ///< max stall writing to a slow peer
    std::size_t conn_workers = 4;  ///< thread-pool size for connections
    /// Per-connection in-flight request cap for pipelined clients;
    /// 0 = unbounded. Excess frames in a burst are shed `overloaded`.
    std::size_t max_inflight = 0;
  };

  explicit TcpServerTransport(Server& server)
      : TcpServerTransport(server, Options()) {}
  TcpServerTransport(Server& server, Options options);
  ~TcpServerTransport();

  TcpServerTransport(const TcpServerTransport&) = delete;
  TcpServerTransport& operator=(const TcpServerTransport&) = delete;

  /// Bind, listen on 127.0.0.1, start the accept thread. Throws ServeError
  /// on socket failure.
  void start();

  /// Graceful stop: stop accepting, wake idle connections, drain handlers.
  /// Idempotent.
  void stop();

  /// Bound port (valid after start()).
  std::uint16_t port() const { return port_; }

 private:
  void accept_loop();
  void handle_connection(int fd);

  Server* server_;
  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  ThreadPool pool_;
  std::mutex conn_mu_;
  std::set<int> conn_fds_;
};

class TcpClientTransport final : public ClientTransport {
 public:
  /// Connect to `host:port`; `timeout_s` bounds each response wait.
  TcpClientTransport(const std::string& host, std::uint16_t port,
                     double timeout_s = 5.0);
  ~TcpClientTransport() override;

  TcpClientTransport(const TcpClientTransport&) = delete;
  TcpClientTransport& operator=(const TcpClientTransport&) = delete;

  Response roundtrip(const Request& request) override;
  std::string name() const override { return "tcp"; }

  /// Raw byte access for protocol-abuse tests.
  void send_raw(const std::string& bytes);
  /// Next response frame payload; throws ServeError on timeout/close.
  std::string read_payload();
  /// True once the server has closed the connection.
  bool closed_by_peer();

 private:
  int fd_ = -1;
  double timeout_s_;
  FrameDecoder decoder_;
};

}  // namespace abp::serve
