/// \file tcp_transport.h
/// \brief POSIX TCP transports for the localization query service.
///
/// `TcpServerTransport` is the thread-per-connection implementation of the
/// `ServerTransport` interface: a dedicated thread accepts connections and
/// each accepted socket occupies one `abp::ThreadPool` worker for its
/// lifetime, so concurrency is capped at `conn_workers`. Since the
/// transport redesign it drives the same non-blocking `Connection` state
/// machine as the epoll path (connection.h): framing, request-ordered
/// replies, per-connection in-flight shedding and write-watermark
/// backpressure are byte-identical across transports. Each handler parks
/// in `poll()` on {socket, eventfd}; worker threads completing replies
/// signal the eventfd, so response latency is wake-driven rather than
/// quantized to the poll tick. Idle and write-stall timeouts read the
/// server's injectable clock.
///
/// Graceful stop: the listener closes first (no new connections), open
/// connections get `SHUT_RD` and finish writing what they accepted, then
/// the pool drains.
///
/// `TcpClientTransport` is the matching blocking client used by `abp query
/// --connect` and the smoke tests; `send_async`/`flush` pipeline multiple
/// requests on the wire and match responses positionally.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "serve/connection.h"
#include "serve/server_transport.h"
#include "serve/transport.h"

namespace abp::serve {

class TcpServerTransport final : public ServerTransport {
 public:
  using Options = TransportOptions;

  explicit TcpServerTransport(FrameSink& sink)
      : TcpServerTransport(sink, Options()) {}
  TcpServerTransport(FrameSink& sink, Options options);
  ~TcpServerTransport() override;

  TcpServerTransport(const TcpServerTransport&) = delete;
  TcpServerTransport& operator=(const TcpServerTransport&) = delete;

  void start() override;
  void stop() override;

  std::uint16_t port() const override { return port_; }
  const char* name() const override { return "threaded"; }
  std::size_t open_connections() const override;
  std::uint64_t connections_accepted() const override {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void handle_connection(int fd);

  FrameSink* sink_;
  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  ThreadPool pool_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> next_conn_id_{0};
  mutable std::mutex conn_mu_;
  std::set<int> conn_fds_;
};

class TcpClientTransport final : public ClientTransport {
 public:
  /// Connect to `host:port`; `timeout_s` bounds each response wait.
  TcpClientTransport(const std::string& host, std::uint16_t port,
                     double timeout_s = 5.0);
  ~TcpClientTransport() override;

  TcpClientTransport(const TcpClientTransport&) = delete;
  TcpClientTransport& operator=(const TcpClientTransport&) = delete;

  Response roundtrip(const Request& request) override;

  /// Pipelined send: the frame goes on the wire immediately, the reply
  /// callback is queued and runs inside a later `flush()` (responses are
  /// matched positionally — the server guarantees request order). Single
  /// owning thread only.
  void send_async(const Request& request,
                  std::function<void(std::string)> on_reply_frame) override;

  /// Read one response per outstanding `send_async` (in order) and run the
  /// callbacks. Throws `ServeError` on timeout/close, with the remaining
  /// callbacks dropped — after a flush failure the connection is dead.
  void flush() override;

  std::string name() const override { return "tcp"; }

  /// Raw byte access for protocol-abuse tests.
  void send_raw(const std::string& bytes);
  /// Next response frame payload; throws ServeError on timeout/close.
  std::string read_payload();
  /// True once the server has closed the connection.
  bool closed_by_peer();

 private:
  int fd_ = -1;
  double timeout_s_;
  FrameDecoder decoder_;
  std::deque<std::function<void(std::string)>> pending_;
};

}  // namespace abp::serve
