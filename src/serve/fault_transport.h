/// \file fault_transport.h
/// \brief Deterministic fault injection around the serve stack.
///
/// `FaultTransport` sits where a flaky network would: between a client and
/// the server's frame boundary. Each exchange consumes the next step of a
/// `FaultScript` and perturbs the byte stream accordingly — dropped
/// connections (before or after the server works), truncated frames,
/// seeded single-bit corruption, stalls that expire queued deadlines, and
/// slow-loris partial delivery. Every decision is a pure function of the
/// script and the seed, so a chaos run replays bit-identically; wall-clock
/// stalls go through a `ManualClock` shared with `Server::Options::clock_ms`
/// so no test ever sleeps.
///
/// Two wiring modes:
///  * over a `Server` (in-process, like `LoopbackTransport`) — supports
///    mid-queue stalls, which is how deadline shedding is driven;
///  * over any raw frame exchange function (e.g. a lambda around
///    `TcpClientTransport::send_raw`/`read_payload`) — faults on a real
///    socket pair.
#pragma once

#include <cstdint>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "rng/rng.h"
#include "serve/transport.h"

namespace abp::serve {

/// Virtual time source for deterministic deadline tests: install
/// `clock.fn()` as both `Server::Options::clock_ms` and the
/// `RetryingClient` clock, then advance it explicitly.
struct ManualClock {
  double now_ms = 0.0;
  void advance(double ms) { now_ms += ms; }
  std::function<double()> fn() {
    return [this] { return now_ms; };
  }
};

enum class FaultKind {
  kNone,              ///< pass through untouched
  kResetBeforeSend,   ///< connection dies; the server never sees the request
  kResetAfterSend,    ///< server executes, the response is lost in transit
  kTruncateRequest,   ///< a seeded prefix of the frame arrives, then reset
  kCorruptRequest,    ///< one seeded bit of the request frame flips
  kTruncateResponse,  ///< response frame cut short → client framing error
  kCorruptResponse,   ///< one seeded bit of the response frame flips
  kStallBeforeExecute,///< request queues, then `stall_ms` pass before drain
  kSlowLorisRequest,  ///< partial delivery + stall holding the slot, then reset
  kDuplicateRequest,  ///< the frame is delivered twice; first reply returned
};

const char* fault_kind_name(FaultKind kind);

/// All injectable kinds, for chaos-suite iteration.
inline constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::kNone,              FaultKind::kResetBeforeSend,
    FaultKind::kResetAfterSend,    FaultKind::kTruncateRequest,
    FaultKind::kCorruptRequest,    FaultKind::kTruncateResponse,
    FaultKind::kCorruptResponse,   FaultKind::kStallBeforeExecute,
    FaultKind::kSlowLorisRequest,  FaultKind::kDuplicateRequest};

static_assert(std::size(kAllFaultKinds) ==
                  static_cast<std::size_t>(FaultKind::kDuplicateRequest) + 1,
              "every FaultKind enumerator must appear in kAllFaultKinds; "
              "keep kDuplicateRequest the last enumerator or update this");

struct FaultStep {
  FaultKind kind = FaultKind::kNone;
  double stall_ms = 0.0;  ///< kStallBeforeExecute / kSlowLorisRequest
};

/// Scripted fault sequence: one step per exchange, cycling (default) or
/// yielding kNone once exhausted.
class FaultScript {
 public:
  FaultScript() = default;
  explicit FaultScript(std::vector<FaultStep> steps, bool cycle = true)
      : steps_(std::move(steps)), cycle_(cycle) {}

  FaultStep next();
  std::size_t consumed() const { return consumed_; }

 private:
  std::vector<FaultStep> steps_;
  bool cycle_ = true;
  std::size_t next_ = 0;
  std::size_t consumed_ = 0;
};

/// Seeded duplicate-heavy fault mix for retry-storm drills: mostly clean
/// exchanges salted with duplicate deliveries and resets on both sides of
/// the send, the faults a write path must survive exactly-once. The same
/// (steps, seed) always yields the same script.
FaultScript make_retry_storm_script(std::size_t steps, std::uint64_t seed,
                                    bool cycle = true);

class FaultTransport final : public ClientTransport {
 public:
  struct Options {
    FaultScript script;
    std::uint64_t seed = 0xFA017;  ///< positions/bits of truncation/corruption
    ManualClock* clock = nullptr;  ///< stalls advance this; nullptr = real sleep
  };

  /// In-process mode over `server` (manual or threaded).
  FaultTransport(Server& server, Options options);
  /// Wrap any raw frame exchange (bytes in → response frame out). Mid-queue
  /// stalls degrade to stalls before delivery in this mode.
  FaultTransport(std::function<std::string(std::string)> exchange,
                 Options options);

  /// Throws `ServeError` for injected connection-level faults, exactly as a
  /// real transport would.
  Response roundtrip(const Request& request) override;

  /// Synchronous pipelining: the reply callback runs inside the call, after
  /// the scripted fault is applied. Connection-level faults throw (like
  /// `roundtrip`) and the callback never runs.
  void send_async(const Request& request,
                  std::function<void(std::string)> on_reply_frame) override;

  std::string name() const override { return "fault"; }

  /// Frame-level exchange applying the next scripted fault.
  std::string roundtrip_frame(std::string frame);

  std::size_t exchanges() const { return exchanges_; }
  std::size_t faults_injected() const { return injected_; }

 private:
  std::string deliver(std::string frame, double stall_ms);
  void stall(double ms);

  Server* server_ = nullptr;
  std::function<std::string(std::string)> exchange_;
  Options options_;
  Rng rng_;
  std::size_t exchanges_ = 0;
  std::size_t injected_ = 0;
};

}  // namespace abp::serve
