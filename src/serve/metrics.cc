#include "serve/metrics.h"

#include <ostream>

namespace abp::serve {

namespace {

std::size_t endpoint_slot(Endpoint endpoint) {
  for (std::size_t i = 0; i < std::size(kAllEndpoints); ++i) {
    if (kAllEndpoints[i] == endpoint) return i;
  }
  return 0;
}

}  // namespace

ServiceMetrics::ServiceMetrics() = default;

void ServiceMetrics::record(Endpoint endpoint, Status status,
                            std::size_t bytes_in, std::size_t bytes_out,
                            double latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  PerEndpoint& pe = per_endpoint_[endpoint_slot(endpoint)];
  ++pe.requests;
  if (status != Status::kOk) ++pe.errors;
  pe.bytes_in += bytes_in;
  pe.bytes_out += bytes_out;
  pe.latency_us.add(latency_us);
}

void ServiceMetrics::record_bad_frame(std::size_t bytes_in) {
  std::lock_guard<std::mutex> lock(mu_);
  ++bad_frames_;
  bad_frame_bytes_ += bytes_in;
}

void ServiceMetrics::record_batch(std::size_t coalesced) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  coalesced_ += coalesced;
}

void ServiceMetrics::record_submitted(std::uint64_t principal) {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
  ++principals_[principal].first;
}

void ServiceMetrics::record_completed(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  completed_ += n;
}

void ServiceMetrics::record_shed(Status cause) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (cause) {
    case Status::kOverloaded: ++shed_overloaded_; break;
    case Status::kUnavailable: ++shed_unavailable_; break;
    case Status::kDeadlineExceeded: ++shed_deadline_; break;
    default: ++shed_unavailable_; break;  // unreachable by contract
  }
}

void ServiceMetrics::record_quota_shed(std::uint64_t principal) {
  std::lock_guard<std::mutex> lock(mu_);
  ++shed_overloaded_;  // quota sheds answer `overloaded`
  ++shed_quota_;
  ++principals_[principal].second;
}

EndpointSnapshot ServiceMetrics::endpoint_snapshot(Endpoint endpoint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const PerEndpoint& pe = per_endpoint_[endpoint_slot(endpoint)];
  EndpointSnapshot snap;
  snap.requests = pe.requests;
  snap.errors = pe.errors;
  snap.bytes_in = pe.bytes_in;
  snap.bytes_out = pe.bytes_out;
  snap.latency_samples = pe.latency_us.count();
  snap.p50_us = pe.latency_us.p50();
  snap.p95_us = pe.latency_us.p95();
  snap.p99_us = pe.latency_us.p99();
  return snap;
}

std::uint64_t ServiceMetrics::total_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const PerEndpoint& pe : per_endpoint_) total += pe.requests;
  return total;
}

std::uint64_t ServiceMetrics::total_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const PerEndpoint& pe : per_endpoint_) total += pe.errors;
  return total;
}

std::uint64_t ServiceMetrics::bad_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bad_frames_;
}

std::uint64_t ServiceMetrics::batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

std::uint64_t ServiceMetrics::coalesced_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesced_;
}

std::uint64_t ServiceMetrics::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

std::uint64_t ServiceMetrics::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

std::uint64_t ServiceMetrics::shed(Status cause) const {
  std::lock_guard<std::mutex> lock(mu_);
  switch (cause) {
    case Status::kOverloaded: return shed_overloaded_;
    case Status::kUnavailable: return shed_unavailable_;
    case Status::kDeadlineExceeded: return shed_deadline_;
    default: return 0;
  }
}

std::uint64_t ServiceMetrics::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_overloaded_ + shed_unavailable_ + shed_deadline_;
}

std::uint64_t ServiceMetrics::quota_sheds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_quota_;
}

std::uint64_t ServiceMetrics::principal_submitted(
    std::uint64_t principal) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = principals_.find(principal);
  return it == principals_.end() ? 0 : it->second.first;
}

std::uint64_t ServiceMetrics::principal_quota_sheds(
    std::uint64_t principal) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = principals_.find(principal);
  return it == principals_.end() ? 0 : it->second.second;
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap("abp-serve-stats 1");
  std::uint64_t total_requests = 0;
  std::uint64_t total_errors = 0;
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    const PerEndpoint& pe = per_endpoint_[i];
    total_requests += pe.requests;
    total_errors += pe.errors;
    const std::string prefix =
        std::string("endpoint.") + endpoint_name(kAllEndpoints[i]) + '.';
    snap.set_count(prefix + "requests", pe.requests);
    snap.set_count(prefix + "errors", pe.errors);
    snap.set_count(prefix + "bytes-in", pe.bytes_in);
    snap.set_count(prefix + "bytes-out", pe.bytes_out);
    snap.set_gauge(prefix + "p50us", pe.latency_us.p50());
    snap.set_gauge(prefix + "p95us", pe.latency_us.p95());
    snap.set_gauge(prefix + "p99us", pe.latency_us.p99());
  }
  snap.set_count("total.requests", total_requests);
  snap.set_count("total.errors", total_errors);
  snap.set_count("total.bad-frames", bad_frames_);
  snap.set_count("total.batches", batches_);
  snap.set_count("total.coalesced", coalesced_);
  snap.set_count("admission.submitted", submitted_);
  snap.set_count("admission.completed", completed_);
  snap.set_count("admission.shed-overloaded", shed_overloaded_);
  snap.set_count("admission.shed-unavailable", shed_unavailable_);
  snap.set_count("admission.shed-deadline", shed_deadline_);
  snap.set_count("admission.shed-quota", shed_quota_);
  for (const auto& [id, counts] : principals_) {
    const std::string prefix = "principal." + std::to_string(id) + '.';
    snap.set_count(prefix + "submitted", counts.first);
    snap.set_count(prefix + "shed-quota", counts.second);
  }
  return snap;
}

void ServiceMetrics::render(std::ostream& out) const {
  out << snapshot().render_text();
}

std::string ServiceMetrics::render_text() const {
  return snapshot().render_text();
}

RouterMetrics::RouterMetrics() = default;

void RouterMetrics::add_backend(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  backends_.try_emplace(backend);
}

void RouterMetrics::record_received(std::uint64_t principal) {
  std::lock_guard<std::mutex> lock(mu_);
  ++received_;
  ++principals_[principal].first;
}

void RouterMetrics::record_local() {
  std::lock_guard<std::mutex> lock(mu_);
  ++local_;
}

void RouterMetrics::record_forward(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].forwarded;
}

void RouterMetrics::record_result(const std::string& backend, Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  BackendSnapshot& b = backends_[backend];
  if (status == Status::kOk) {
    ++b.ok;
  } else {
    ++b.errors;
  }
}

void RouterMetrics::record_transport_failure(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].transport_failures;
}

void RouterMetrics::record_retry(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].retries;
}

void RouterMetrics::record_version_mismatch(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].version_mismatches;
}

void RouterMetrics::record_install(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].installs;
}

void RouterMetrics::record_mutation(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].mutations;
}

void RouterMetrics::record_mutation_ack(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].mutation_acks;
}

void RouterMetrics::record_replay(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].replays;
}

void RouterMetrics::record_probe(const std::string& backend, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  BackendSnapshot& b = backends_[backend];
  ++b.probes;
  if (!ok) ++b.probe_failures;
}

void RouterMetrics::record_marked_down(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].marked_down;
}

void RouterMetrics::record_recovered(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].recovered;
}

void RouterMetrics::record_unrouted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++unrouted_;
}

void RouterMetrics::record_write() {
  std::lock_guard<std::mutex> lock(mu_);
  ++writes_;
}

void RouterMetrics::record_write_ack() {
  std::lock_guard<std::mutex> lock(mu_);
  ++write_acks_;
}

void RouterMetrics::record_write_quorum_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++write_quorum_failures_;
}

void RouterMetrics::record_write_dedup_hit() {
  std::lock_guard<std::mutex> lock(mu_);
  ++write_dedup_hits_;
}

void RouterMetrics::record_write_dedup_expired() {
  std::lock_guard<std::mutex> lock(mu_);
  ++write_dedup_expired_;
}

void RouterMetrics::record_cache_hit() {
  std::lock_guard<std::mutex> lock(mu_);
  ++cache_hits_;
}

void RouterMetrics::record_cache_miss() {
  std::lock_guard<std::mutex> lock(mu_);
  ++cache_misses_;
}

void RouterMetrics::record_cache_invalidation(std::size_t entries_dropped) {
  std::lock_guard<std::mutex> lock(mu_);
  ++cache_invalidations_;
  cache_entries_invalidated_ += entries_dropped;
}

void RouterMetrics::record_filter_reject() {
  std::lock_guard<std::mutex> lock(mu_);
  ++filter_rejects_;
}

void RouterMetrics::record_quota_shed(std::uint64_t principal) {
  std::lock_guard<std::mutex> lock(mu_);
  ++quota_sheds_;
  ++principals_[principal].second;
}

void RouterMetrics::set_membership(std::uint64_t epoch, std::uint64_t active,
                                   std::uint64_t joining,
                                   std::uint64_t draining) {
  std::lock_guard<std::mutex> lock(mu_);
  membership_epoch_ = epoch;
  membership_active_ = active;
  membership_joining_ = joining;
  membership_draining_ = draining;
}

void RouterMetrics::record_handoff_snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  ++handoff_snapshots_;
}

void RouterMetrics::record_handoff_replay() {
  std::lock_guard<std::mutex> lock(mu_);
  ++handoff_replays_;
}

std::uint64_t RouterMetrics::membership_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return membership_epoch_;
}

std::uint64_t RouterMetrics::membership_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return membership_active_;
}

std::uint64_t RouterMetrics::membership_joining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return membership_joining_;
}

std::uint64_t RouterMetrics::membership_draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return membership_draining_;
}

std::uint64_t RouterMetrics::handoff_snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return handoff_snapshots_;
}

std::uint64_t RouterMetrics::handoff_replays() const {
  std::lock_guard<std::mutex> lock(mu_);
  return handoff_replays_;
}

BackendSnapshot RouterMetrics::backend_snapshot(
    const std::string& backend) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = backends_.find(backend);
  return it == backends_.end() ? BackendSnapshot{} : it->second;
}

std::uint64_t RouterMetrics::received() const {
  std::lock_guard<std::mutex> lock(mu_);
  return received_;
}

std::uint64_t RouterMetrics::forwarded_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, b] : backends_) total += b.forwarded;
  return total;
}

std::uint64_t RouterMetrics::unrouted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unrouted_;
}

std::uint64_t RouterMetrics::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

std::uint64_t RouterMetrics::write_acks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_acks_;
}

std::uint64_t RouterMetrics::write_quorum_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_quorum_failures_;
}

std::uint64_t RouterMetrics::write_dedup_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_dedup_hits_;
}

std::uint64_t RouterMetrics::write_dedup_expired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_dedup_expired_;
}

std::uint64_t RouterMetrics::cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_hits_;
}

std::uint64_t RouterMetrics::cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_misses_;
}

std::uint64_t RouterMetrics::cache_invalidations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_invalidations_;
}

std::uint64_t RouterMetrics::cache_entries_invalidated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_entries_invalidated_;
}

std::uint64_t RouterMetrics::filter_rejects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return filter_rejects_;
}

std::uint64_t RouterMetrics::quota_sheds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quota_sheds_;
}

std::uint64_t RouterMetrics::principal_received(
    std::uint64_t principal) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = principals_.find(principal);
  return it == principals_.end() ? 0 : it->second.first;
}

std::uint64_t RouterMetrics::principal_quota_sheds(
    std::uint64_t principal) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = principals_.find(principal);
  return it == principals_.end() ? 0 : it->second.second;
}

MetricsSnapshot RouterMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap("abp-route-stats 1");
  std::uint64_t forwarded_total = 0;
  for (const auto& [name, b] : backends_) {
    forwarded_total += b.forwarded;
    const std::string prefix = "backend." + name + '.';
    snap.set_count(prefix + "forwarded", b.forwarded);
    snap.set_count(prefix + "ok", b.ok);
    snap.set_count(prefix + "errors", b.errors);
    snap.set_count(prefix + "transport-failures", b.transport_failures);
    snap.set_count(prefix + "retries", b.retries);
    snap.set_count(prefix + "version-mismatches", b.version_mismatches);
    snap.set_count(prefix + "installs", b.installs);
    snap.set_count(prefix + "mutations", b.mutations);
    snap.set_count(prefix + "mutation-acks", b.mutation_acks);
    snap.set_count(prefix + "replays", b.replays);
    snap.set_count(prefix + "probes", b.probes);
    snap.set_count(prefix + "probe-failures", b.probe_failures);
    snap.set_count(prefix + "marked-down", b.marked_down);
    snap.set_count(prefix + "recovered", b.recovered);
  }
  snap.set_count("router.received", received_);
  snap.set_count("router.local", local_);
  snap.set_count("router.forwarded", forwarded_total);
  snap.set_count("router.unrouted", unrouted_);
  snap.set_count("router.filter-rejects", filter_rejects_);
  snap.set_count("writes.submitted", writes_);
  snap.set_count("writes.acked", write_acks_);
  snap.set_count("writes.quorum-failures", write_quorum_failures_);
  snap.set_count("writes.dedup-hits", write_dedup_hits_);
  snap.set_count("writes.dedup-expired", write_dedup_expired_);
  snap.set_count("cache.hits", cache_hits_);
  snap.set_count("cache.misses", cache_misses_);
  snap.set_count("cache.invalidations", cache_invalidations_);
  snap.set_count("cache.entries-invalidated", cache_entries_invalidated_);
  snap.set_count("quota.sheds", quota_sheds_);
  snap.set_count("membership.epoch", membership_epoch_);
  snap.set_count("membership.active", membership_active_);
  snap.set_count("membership.joining", membership_joining_);
  snap.set_count("membership.draining", membership_draining_);
  snap.set_count("handoff.snapshots", handoff_snapshots_);
  snap.set_count("handoff.replays", handoff_replays_);
  for (const auto& [id, counts] : principals_) {
    const std::string prefix = "principal." + std::to_string(id) + '.';
    snap.set_count(prefix + "received", counts.first);
    snap.set_count(prefix + "shed-quota", counts.second);
  }
  return snap;
}

void RouterMetrics::render(std::ostream& out) const {
  out << snapshot().render_text();
}

std::string RouterMetrics::render_text() const {
  return snapshot().render_text();
}

}  // namespace abp::serve
