#include "serve/metrics.h"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace abp::serve {

namespace {

std::size_t endpoint_slot(Endpoint endpoint) {
  for (std::size_t i = 0; i < std::size(kAllEndpoints); ++i) {
    if (kAllEndpoints[i] == endpoint) return i;
  }
  return 0;
}

std::string fmt_us(double us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", us);
  return buf;
}

}  // namespace

ServiceMetrics::ServiceMetrics() = default;

void ServiceMetrics::record(Endpoint endpoint, Status status,
                            std::size_t bytes_in, std::size_t bytes_out,
                            double latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  PerEndpoint& pe = per_endpoint_[endpoint_slot(endpoint)];
  ++pe.requests;
  if (status != Status::kOk) ++pe.errors;
  pe.bytes_in += bytes_in;
  pe.bytes_out += bytes_out;
  pe.latency_us.add(latency_us);
}

void ServiceMetrics::record_bad_frame(std::size_t bytes_in) {
  std::lock_guard<std::mutex> lock(mu_);
  ++bad_frames_;
  bad_frame_bytes_ += bytes_in;
}

void ServiceMetrics::record_batch(std::size_t coalesced) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  coalesced_ += coalesced;
}

void ServiceMetrics::record_submitted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
}

void ServiceMetrics::record_completed(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  completed_ += n;
}

void ServiceMetrics::record_shed(Status cause) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (cause) {
    case Status::kOverloaded: ++shed_overloaded_; break;
    case Status::kUnavailable: ++shed_unavailable_; break;
    case Status::kDeadlineExceeded: ++shed_deadline_; break;
    default: ++shed_unavailable_; break;  // unreachable by contract
  }
}

EndpointSnapshot ServiceMetrics::endpoint_snapshot(Endpoint endpoint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const PerEndpoint& pe = per_endpoint_[endpoint_slot(endpoint)];
  EndpointSnapshot snap;
  snap.requests = pe.requests;
  snap.errors = pe.errors;
  snap.bytes_in = pe.bytes_in;
  snap.bytes_out = pe.bytes_out;
  snap.latency_samples = pe.latency_us.count();
  snap.p50_us = pe.latency_us.p50();
  snap.p95_us = pe.latency_us.p95();
  snap.p99_us = pe.latency_us.p99();
  return snap;
}

std::uint64_t ServiceMetrics::total_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const PerEndpoint& pe : per_endpoint_) total += pe.requests;
  return total;
}

std::uint64_t ServiceMetrics::total_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const PerEndpoint& pe : per_endpoint_) total += pe.errors;
  return total;
}

std::uint64_t ServiceMetrics::bad_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bad_frames_;
}

std::uint64_t ServiceMetrics::batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

std::uint64_t ServiceMetrics::coalesced_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesced_;
}

std::uint64_t ServiceMetrics::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

std::uint64_t ServiceMetrics::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

std::uint64_t ServiceMetrics::shed(Status cause) const {
  std::lock_guard<std::mutex> lock(mu_);
  switch (cause) {
    case Status::kOverloaded: return shed_overloaded_;
    case Status::kUnavailable: return shed_unavailable_;
    case Status::kDeadlineExceeded: return shed_deadline_;
    default: return 0;
  }
}

std::uint64_t ServiceMetrics::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_overloaded_ + shed_unavailable_ + shed_deadline_;
}

void ServiceMetrics::render(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "abp-serve-stats 1\n";
  std::uint64_t total_requests = 0;
  std::uint64_t total_errors = 0;
  for (std::size_t i = 0; i < kEndpointCount; ++i) {
    const PerEndpoint& pe = per_endpoint_[i];
    total_requests += pe.requests;
    total_errors += pe.errors;
    out << "endpoint " << endpoint_name(kAllEndpoints[i]) << " requests "
        << pe.requests << " errors " << pe.errors << " bytes-in "
        << pe.bytes_in << " bytes-out " << pe.bytes_out << " p50us "
        << fmt_us(pe.latency_us.p50()) << " p95us "
        << fmt_us(pe.latency_us.p95()) << " p99us "
        << fmt_us(pe.latency_us.p99()) << '\n';
  }
  out << "total requests " << total_requests << " errors " << total_errors
      << " bad-frames " << bad_frames_ << " batches " << batches_
      << " coalesced " << coalesced_ << '\n';
  out << "admission submitted " << submitted_ << " completed " << completed_
      << " shed-overloaded " << shed_overloaded_ << " shed-unavailable "
      << shed_unavailable_ << " shed-deadline " << shed_deadline_ << '\n';
}

std::string ServiceMetrics::render_text() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

RouterMetrics::RouterMetrics() = default;

void RouterMetrics::add_backend(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  backends_.try_emplace(backend);
}

void RouterMetrics::record_received() {
  std::lock_guard<std::mutex> lock(mu_);
  ++received_;
}

void RouterMetrics::record_local() {
  std::lock_guard<std::mutex> lock(mu_);
  ++local_;
}

void RouterMetrics::record_forward(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].forwarded;
}

void RouterMetrics::record_result(const std::string& backend, Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  BackendSnapshot& b = backends_[backend];
  if (status == Status::kOk) {
    ++b.ok;
  } else {
    ++b.errors;
  }
}

void RouterMetrics::record_transport_failure(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].transport_failures;
}

void RouterMetrics::record_retry(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].retries;
}

void RouterMetrics::record_version_mismatch(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].version_mismatches;
}

void RouterMetrics::record_install(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].installs;
}

void RouterMetrics::record_mutation(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].mutations;
}

void RouterMetrics::record_mutation_ack(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].mutation_acks;
}

void RouterMetrics::record_replay(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].replays;
}

void RouterMetrics::record_probe(const std::string& backend, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  BackendSnapshot& b = backends_[backend];
  ++b.probes;
  if (!ok) ++b.probe_failures;
}

void RouterMetrics::record_marked_down(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].marked_down;
}

void RouterMetrics::record_recovered(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mu_);
  ++backends_[backend].recovered;
}

void RouterMetrics::record_unrouted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++unrouted_;
}

void RouterMetrics::record_write() {
  std::lock_guard<std::mutex> lock(mu_);
  ++writes_;
}

void RouterMetrics::record_write_ack() {
  std::lock_guard<std::mutex> lock(mu_);
  ++write_acks_;
}

void RouterMetrics::record_write_quorum_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++write_quorum_failures_;
}

void RouterMetrics::record_write_dedup_hit() {
  std::lock_guard<std::mutex> lock(mu_);
  ++write_dedup_hits_;
}

void RouterMetrics::record_write_dedup_expired() {
  std::lock_guard<std::mutex> lock(mu_);
  ++write_dedup_expired_;
}

BackendSnapshot RouterMetrics::backend_snapshot(
    const std::string& backend) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = backends_.find(backend);
  return it == backends_.end() ? BackendSnapshot{} : it->second;
}

std::uint64_t RouterMetrics::received() const {
  std::lock_guard<std::mutex> lock(mu_);
  return received_;
}

std::uint64_t RouterMetrics::forwarded_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, b] : backends_) total += b.forwarded;
  return total;
}

std::uint64_t RouterMetrics::unrouted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unrouted_;
}

std::uint64_t RouterMetrics::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

std::uint64_t RouterMetrics::write_acks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_acks_;
}

std::uint64_t RouterMetrics::write_quorum_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_quorum_failures_;
}

std::uint64_t RouterMetrics::write_dedup_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_dedup_hits_;
}

std::uint64_t RouterMetrics::write_dedup_expired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_dedup_expired_;
}

void RouterMetrics::render(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "abp-route-stats 1\n";
  std::uint64_t forwarded_total = 0;
  for (const auto& [name, b] : backends_) {
    forwarded_total += b.forwarded;
    out << "backend " << name << " forwarded " << b.forwarded << " ok "
        << b.ok << " errors " << b.errors << " transport-failures "
        << b.transport_failures << " retries " << b.retries
        << " version-mismatches " << b.version_mismatches << " installs "
        << b.installs << " mutations " << b.mutations << " mutation-acks "
        << b.mutation_acks << " replays " << b.replays << " probes "
        << b.probes << " probe-failures " << b.probe_failures
        << " marked-down " << b.marked_down << " recovered " << b.recovered
        << '\n';
  }
  out << "router received " << received_ << " local " << local_
      << " forwarded " << forwarded_total << " unrouted " << unrouted_
      << '\n';
  out << "writes submitted " << writes_ << " acked " << write_acks_
      << " quorum-failures " << write_quorum_failures_ << " dedup-hits "
      << write_dedup_hits_ << " dedup-expired " << write_dedup_expired_
      << '\n';
}

std::string RouterMetrics::render_text() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

}  // namespace abp::serve
