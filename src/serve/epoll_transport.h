/// \file epoll_transport.h
/// \brief Event-loop TCP server transport (epoll, non-blocking sockets).
///
/// One or more (`event_shards`) epoll event loops own every socket: the
/// listener accepts until EAGAIN on shard 0 and hands each accepted fd to a
/// shard round-robin; the shard's loop thread is then the only thread that
/// ever reads or writes that socket. Request execution stays in the
/// `Server`'s worker pool — a worker completing a reply posts a flush task
/// to the owning loop (via its `eventfd`), so responses leave with
/// event-driven latency and without cross-thread socket races.
///
/// Per-connection behaviour (framing, ordered replies, in-flight shedding,
/// write watermarks) is the shared `Connection` state machine; this file
/// only maps it onto epoll readiness:
///
///  * EPOLLIN is armed while `want_read()` — it drops out under watermark
///    backpressure or after corrupt framing, so a level-triggered loop
///    does not spin on data it refuses to read.
///  * EPOLLOUT is armed only after a send hit EAGAIN; completed replies on
///    an idle socket are written directly from the flush task.
///  * Idle and write-stall timeouts are checked in the loop tick against
///    the server's injectable clock (deterministic under `ManualClock`).
///
/// Graceful `stop()`: close the listener, shut down the read side of every
/// connection, and give each shard a drain budget (the write timeout) to
/// finish answering what it already accepted; leftovers are force-closed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/connection.h"
#include "serve/event_loop.h"
#include "serve/server_transport.h"

namespace abp::serve {

class EpollServerTransport final : public ServerTransport {
 public:
  using Options = TransportOptions;

  explicit EpollServerTransport(FrameSink& sink, Options options = {});
  ~EpollServerTransport() override;

  void start() override;
  void stop() override;

  std::uint16_t port() const override { return port_; }
  const char* name() const override { return "epoll"; }
  std::size_t open_connections() const override {
    return open_conns_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_accepted() const override {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    std::shared_ptr<Connection> state;
    Outbox outbox;            ///< frames fetched but not yet fully sent
    std::uint32_t armed = 0;  ///< current epoll interest mask
    bool peer_closed = false;
  };

  /// All shard state except the atomics is touched only by the shard's
  /// loop thread (or before the thread starts / after it joins). The loop
  /// lives behind a shared_ptr so a reply wake racing transport teardown
  /// holds it alive through `post()` (the task then simply never runs).
  struct Shard {
    std::shared_ptr<EventLoop> loop = std::make_shared<EventLoop>();
    std::thread thread;
    std::unordered_map<std::uint64_t, Conn> conns;
    double drain_deadline_ms = -1.0;  ///< server clock; <0 = not stopping
  };

  void accept_ready();
  void install(Shard& shard, int fd, std::uint64_t id);
  void handle_io(Shard& shard, std::uint64_t id, std::uint32_t events);
  void flush(Shard& shard, std::uint64_t id);
  void update_interest(Shard& shard, Conn& conn);
  void close_conn(Shard& shard, std::uint64_t id);
  void tick(Shard& shard);

  FrameSink* sink_;
  const Options options_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t next_conn_id_ = 0;  ///< accept path (shard 0 thread) only

  std::mutex stop_mu_;
  bool stopped_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> open_conns_{0};
  std::atomic<std::uint64_t> accepted_{0};
};

}  // namespace abp::serve
