/// \file config.h
/// \brief Validated configuration for `abp serve` and `abp query`.
///
/// The serving front-ends used to pull a dozen flags apart inline; this
/// consolidates each command's surface into one struct with a single
/// parse-and-validate path (`from_flags`), so every invalid combination is
/// rejected with one diagnostic style before any socket or field I/O
/// happens. The structs are plain data — tests construct them directly —
/// and project onto the engine option types (`Server::Options`,
/// `TransportOptions`, `ServiceConfig`) via the accessors.
///
/// Flag names predating the consolidation keep working unchanged; the
/// transport redesign adds `--transport={threaded,epoll}`,
/// `--event-shards N`, `--retry-after-ms H` and explicit
/// `--read-timeout-s`/`--write-timeout-s`. Parsing is declarative — each
/// config binds its flags once through `abp::FlagTable` (common/flags.h),
/// so per-flag shape validation and diagnostics are shared across `serve`,
/// `query` and `route` instead of re-implemented per config.
#pragma once

#include <cstdint>
#include <string>

#include "common/flags.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/server_transport.h"
#include "serve/service.h"

namespace abp::serve {

struct ServeConfig {
  std::string field_path;
  std::string name = "default";
  double noise = 0.0;
  std::uint64_t seed = 1;
  /// Request ids remembered per deployment for exactly-once `add-beacon`
  /// (`--dedup-window`; 0 disables server-side dedup).
  std::size_t dedup_window = 64;

  // One-shot mode (stdin/file frames through the loopback; no sockets).
  bool oneshot = false;
  std::string in_path;
  std::string out_path;

  // Server engine.
  std::size_t workers = 0;  ///< 0 = manual mode (I/O threads pump)
  std::size_t batch = 16;
  std::size_t max_queue = 0;
  std::size_t max_inflight = 0;
  std::uint32_t retry_after_hint_ms = 0;

  // Multi-tenant admission (`--quota-rps`/`--quota-burst`): per-principal
  // token buckets; 0 rps = quotas off, 0 burst = defaults to rps.
  double quota_rps = 0.0;
  double quota_burst = 0.0;

  // Network transport.
  TransportKind transport = TransportKind::kThreaded;
  std::uint16_t port = 0;
  std::size_t event_shards = 1;
  double read_timeout_s = 30.0;
  double write_timeout_s = 5.0;

  /// Parses and validates; throws `CheckFailure` with a flag-level
  /// diagnostic on any invalid value or combination.
  static ServeConfig from_flags(const Flags& flags);

  /// Re-check invariants on a directly constructed config.
  void validate() const;

  ServiceConfig service_config() const;
  Server::Options server_options() const;
  TransportOptions transport_options() const;
};

struct QueryConfig {
  /// Exactly one destination per invocation.
  enum class Mode {
    kLocalField,  ///< --field: in-process loopback exchange
    kConnect,     ///< --connect HOST:PORT over TCP with retries
    kEncode,      ///< --encode-to: write the request frame to a file
    kDecode,      ///< --decode: pretty-print response frames from a file
  };

  Mode mode = Mode::kLocalField;
  Request request;

  std::string field_path;   ///< kLocalField
  double noise = 0.0;
  std::uint64_t seed = 1;
  std::size_t batch = 16;

  std::string host = "127.0.0.1";  ///< kConnect
  std::uint16_t port = 0;
  RetryPolicy retry;

  std::string encode_path;  ///< kEncode
  bool append = false;
  bool corrupt = false;

  std::string decode_path;  ///< kDecode

  static QueryConfig from_flags(const Flags& flags);
  void validate() const;
};

}  // namespace abp::serve
