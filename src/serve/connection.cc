#include "serve/connection.h"

#include <sys/socket.h>
#include <sys/uio.h>

#include <cerrno>
#include <utility>

namespace abp::serve {

Connection::Connection(std::uint64_t id, FrameSink& sink, Limits limits,
                       std::function<void()> wake)
    : id_(id), sink_(&sink), limits_(limits), wake_(std::move(wake)) {
  last_activity_ms_ = sink_->now_ms();
}

void Connection::on_bytes(std::string_view bytes) {
  decoder_.feed(bytes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_activity_ms_ = sink_->now_ms();
  }
  while (std::optional<std::string> payload = decoder_.next()) {
    bool shed = false;
    std::uint64_t ticket = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      shed = limits_.max_inflight != 0 && inflight_ >= limits_.max_inflight;
      ticket = next_ticket_++;
      ++inflight_;
    }
    auto reply = [self = shared_from_this(),
                  ticket](std::string response_payload) {
      self->complete(ticket, std::move(response_payload));
    };
    if (shed) {
      sink_->shed_overloaded(
          std::move(*payload), std::move(reply),
          "connection in-flight limit (" +
              std::to_string(limits_.max_inflight) +
              ") reached; retry with backoff");
    } else {
      sink_->submit(std::move(*payload), std::move(reply));
    }
  }
  if (decoder_.corrupt() && !corrupt_reported_) {
    // Framing cannot resync: answer everything already accepted, then this
    // final diagnostic (it takes the last ticket, so ordering holds), after
    // which the transport flushes and hangs up.
    corrupt_reported_ = true;
    sink_->record_bad_frame(decoder_.buffered());
    Response response;
    response.status = Status::kBadRequest;
    response.message = decoder_.error();
    std::uint64_t ticket = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ticket = next_ticket_++;
      ++inflight_;
    }
    complete(ticket, format_response(response));
  }
}

void Connection::complete(std::uint64_t ticket, std::string payload) {
  bool need_wake = false;
  std::function<void()> wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    last_activity_ms_ = sink_->now_ms();
    const bool was_empty = write_queue_.empty();
    ready_.emplace(ticket, encode_frame(payload));
    // Release the in-order prefix: pipelined clients match responses to
    // requests positionally, so ticket order is the contract. Each frame
    // stays its own buffer all the way to writev.
    for (auto it = ready_.find(next_release_); it != ready_.end();
         it = ready_.find(next_release_)) {
      write_queue_bytes_ += it->second.size();
      unacked_bytes_ += it->second.size();
      write_queue_.push_back(std::move(it->second));
      ready_.erase(it);
      ++next_release_;
    }
    if (!paused_ && unacked_bytes_ > limits_.write_high_watermark) {
      paused_ = true;  // peer is not draining responses; stop reading
    }
    need_wake = was_empty && !write_queue_.empty();
    if (need_wake) wake = wake_;  // copy under the lock; see disarm_wake()
  }
  if (need_wake && wake) wake();
}

void Connection::disarm_wake() {
  std::lock_guard<std::mutex> lock(mu_);
  wake_ = nullptr;
}

std::size_t Connection::fetch_writable(std::deque<std::string>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = write_queue_bytes_;
  while (!write_queue_.empty()) {
    out.push_back(std::move(write_queue_.front()));
    write_queue_.pop_front();
  }
  write_queue_bytes_ = 0;
  return n;
}

std::size_t Connection::fetch_writable(std::string& out) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = write_queue_bytes_;
  for (std::string& frame : write_queue_) out += frame;
  write_queue_.clear();
  write_queue_bytes_ = 0;
  return n;
}

void Connection::wrote(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  unacked_bytes_ -= n;
  last_activity_ms_ = sink_->now_ms();
  if (paused_ && unacked_bytes_ <= limits_.write_low_watermark) {
    paused_ = false;
  }
}

bool Connection::want_read() const {
  if (decoder_.corrupt()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return !paused_;
}

bool Connection::has_writable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !write_queue_.empty();
}

bool Connection::drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_ == 0 && ready_.empty() && write_queue_.empty() &&
         unacked_bytes_ == 0;
}

std::size_t Connection::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

std::size_t Connection::outstanding_write_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unacked_bytes_;
}

double Connection::last_activity_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_activity_ms_;
}

void Outbox::consume(std::size_t n) {
  while (n != 0) {
    std::string& front = frames.front();
    const std::size_t left = front.size() - offset;
    if (n < left) {
      offset += n;
      return;
    }
    n -= left;
    offset = 0;
    frames.pop_front();
  }
}

IoResult read_available(int fd, Connection& connection) {
  IoResult result;
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) {
      result.peer_closed = true;
      return result;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return result;
      result.error = true;
      return result;
    }
    result.bytes += static_cast<std::size_t>(n);
    connection.on_bytes(std::string_view(buf, static_cast<std::size_t>(n)));
    if (!connection.want_read()) return result;  // backpressure or corrupt
  }
}

IoResult write_available(int fd, Connection& connection, Outbox& outbox) {
  // One iovec per queued response frame, gathered into a single writev per
  // loop iteration — zero-copy from completion buffer to socket.
  constexpr std::size_t kMaxIov = 64;
  IoResult result;
  for (;;) {
    if (outbox.empty() && connection.fetch_writable(outbox.frames) == 0) {
      return result;
    }
    struct iovec iov[kMaxIov];
    std::size_t niov = 0;
    for (const std::string& frame : outbox.frames) {
      if (niov == kMaxIov) break;
      const std::size_t skip = niov == 0 ? outbox.offset : 0;
      iov[niov].iov_base = const_cast<char*>(frame.data() + skip);
      iov[niov].iov_len = frame.size() - skip;
      ++niov;
    }
    struct msghdr msg = {};
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        result.would_block = true;
        return result;
      }
      result.error = true;
      return result;
    }
    outbox.consume(static_cast<std::size_t>(n));
    result.bytes += static_cast<std::size_t>(n);
    connection.wrote(static_cast<std::size_t>(n));
  }
}

}  // namespace abp::serve
