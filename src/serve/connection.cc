#include "serve/connection.h"

#include <sys/socket.h>

#include <cerrno>
#include <utility>

namespace abp::serve {

Connection::Connection(std::uint64_t id, Server& server, Limits limits,
                       std::function<void()> wake)
    : id_(id), server_(&server), limits_(limits), wake_(std::move(wake)) {
  last_activity_ms_ = server_->now_ms();
}

void Connection::on_bytes(std::string_view bytes) {
  decoder_.feed(bytes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_activity_ms_ = server_->now_ms();
  }
  while (std::optional<std::string> payload = decoder_.next()) {
    bool shed = false;
    std::uint64_t ticket = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      shed = limits_.max_inflight != 0 && inflight_ >= limits_.max_inflight;
      ticket = next_ticket_++;
      ++inflight_;
    }
    auto reply = [self = shared_from_this(),
                  ticket](std::string response_payload) {
      self->complete(ticket, std::move(response_payload));
    };
    if (shed) {
      server_->shed_overloaded(
          std::move(*payload), std::move(reply),
          "connection in-flight limit (" +
              std::to_string(limits_.max_inflight) +
              ") reached; retry with backoff");
    } else {
      server_->submit(std::move(*payload), std::move(reply));
    }
  }
  if (decoder_.corrupt() && !corrupt_reported_) {
    // Framing cannot resync: answer everything already accepted, then this
    // final diagnostic (it takes the last ticket, so ordering holds), after
    // which the transport flushes and hangs up.
    corrupt_reported_ = true;
    server_->service().metrics().record_bad_frame(decoder_.buffered());
    Response response;
    response.status = Status::kBadRequest;
    response.message = decoder_.error();
    std::uint64_t ticket = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ticket = next_ticket_++;
      ++inflight_;
    }
    complete(ticket, format_response(response));
  }
}

void Connection::complete(std::uint64_t ticket, std::string payload) {
  bool need_wake = false;
  std::function<void()> wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    last_activity_ms_ = server_->now_ms();
    const bool was_empty = write_buf_.empty();
    ready_.emplace(ticket, encode_frame(payload));
    // Release the in-order prefix: pipelined clients match responses to
    // requests positionally, so ticket order is the contract.
    for (auto it = ready_.find(next_release_); it != ready_.end();
         it = ready_.find(next_release_)) {
      write_buf_ += it->second;
      unacked_bytes_ += it->second.size();
      ready_.erase(it);
      ++next_release_;
    }
    if (!paused_ && unacked_bytes_ > limits_.write_high_watermark) {
      paused_ = true;  // peer is not draining responses; stop reading
    }
    need_wake = was_empty && !write_buf_.empty();
    if (need_wake) wake = wake_;  // copy under the lock; see disarm_wake()
  }
  if (need_wake && wake) wake();
}

void Connection::disarm_wake() {
  std::lock_guard<std::mutex> lock(mu_);
  wake_ = nullptr;
}

std::size_t Connection::fetch_writable(std::string& out) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = write_buf_.size();
  if (n != 0) {
    if (out.empty()) {
      out = std::move(write_buf_);
    } else {
      out += write_buf_;
    }
    write_buf_.clear();
  }
  return n;
}

void Connection::wrote(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  unacked_bytes_ -= n;
  last_activity_ms_ = server_->now_ms();
  if (paused_ && unacked_bytes_ <= limits_.write_low_watermark) {
    paused_ = false;
  }
}

bool Connection::want_read() const {
  if (decoder_.corrupt()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return !paused_;
}

bool Connection::has_writable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !write_buf_.empty();
}

bool Connection::drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_ == 0 && ready_.empty() && write_buf_.empty() &&
         unacked_bytes_ == 0;
}

std::size_t Connection::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

std::size_t Connection::outstanding_write_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unacked_bytes_;
}

double Connection::last_activity_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_activity_ms_;
}

IoResult read_available(int fd, Connection& connection) {
  IoResult result;
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) {
      result.peer_closed = true;
      return result;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return result;
      result.error = true;
      return result;
    }
    result.bytes += static_cast<std::size_t>(n);
    connection.on_bytes(std::string_view(buf, static_cast<std::size_t>(n)));
    if (!connection.want_read()) return result;  // backpressure or corrupt
  }
}

IoResult write_available(int fd, Connection& connection, std::string& outbox,
                         std::size_t& offset) {
  IoResult result;
  for (;;) {
    if (offset == outbox.size()) {
      outbox.clear();
      offset = 0;
      if (connection.fetch_writable(outbox) == 0) return result;
    }
    const ssize_t n = ::send(fd, outbox.data() + offset,
                             outbox.size() - offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        result.would_block = true;
        return result;
      }
      result.error = true;
      return result;
    }
    offset += static_cast<std::size_t>(n);
    result.bytes += static_cast<std::size_t>(n);
    connection.wrote(static_cast<std::size_t>(n));
  }
}

}  // namespace abp::serve
