#include "serve/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <utility>

#include "common/assert.h"

namespace abp::serve {

namespace {

/// Poll interval: the latency bound on stop/timeout checks, not on replies
/// (those signal the per-connection eventfd).
constexpr int kPollMs = 50;

[[noreturn]] void throw_errno(const std::string& what) {
  throw ServeError(what + ": " + std::strerror(errno));
}

/// Write the whole buffer, looping over partial sends. `EINTR` restarts the
/// send; `EAGAIN`/`EWOULDBLOCK` polls for writability and counts against
/// `budget_ms`, so a peer that stops reading ("slow loris") costs at most
/// the write timeout instead of wedging the caller.
void send_all(int fd, std::string_view bytes, int budget_ms) {
  std::size_t sent = 0;
  int stalled_ms = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (stalled_ms >= budget_ms) {
          throw ServeError("send timed out: peer not reading");
        }
        pollfd pfd{fd, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, kPollMs);
        if (ready < 0 && errno != EINTR) throw_errno("poll(POLLOUT)");
        stalled_ms += kPollMs;
        continue;
      }
      throw_errno("send");
    }
    stalled_ms = 0;  // progress resets the stall budget
    sent += static_cast<std::size_t>(n);
  }
}

/// Owns the per-connection wakeup eventfd. Reply wakes hold a weak_ptr to
/// this holder: once the handler drops its reference, a late wake finds the
/// weak_ptr expired instead of writing into a recycled fd number.
struct EventFdHolder {
  EventFdHolder() : fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {}
  ~EventFdHolder() {
    if (fd >= 0) ::close(fd);
  }
  void signal() const {
    if (fd < 0) return;
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof one);
  }
  void drain() const {
    if (fd < 0) return;
    std::uint64_t count = 0;
    while (::read(fd, &count, sizeof count) > 0) {
    }
  }
  const int fd;
};

}  // namespace

TcpServerTransport::TcpServerTransport(FrameSink& sink, Options options)
    : sink_(&sink), options_(options), pool_(options.conn_workers) {}

TcpServerTransport::~TcpServerTransport() { stop(); }

std::size_t TcpServerTransport::open_connections() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  return conn_fds_.size();
}

void TcpServerTransport::start() {
  ABP_CHECK(listen_fd_ < 0, "transport already started");
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    throw_errno("bind");
  }
  if (::listen(listen_fd_, SOMAXCONN) < 0) throw_errno("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void TcpServerTransport::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    // Drain the whole backlog per wakeup so connection storms are not
    // throttled to one accept per poll tick.
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_CLOEXEC | SOCK_NONBLOCK);
      // EINTR and transient errors (ECONNABORTED, ...) end the round; the
      // next poll retries rather than abandoning the listener.
      if (fd < 0) break;
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        if (stopping_.load()) {
          ::close(fd);
          continue;
        }
        conn_fds_.insert(fd);
      }
      accepted_.fetch_add(1, std::memory_order_relaxed);
      pool_.submit([this, fd] { handle_connection(fd); });
    }
  }
}

void TcpServerTransport::handle_connection(int fd) {
  Connection::Limits limits;
  limits.max_inflight = options_.max_inflight;
  limits.write_high_watermark = options_.write_high_watermark;
  limits.write_low_watermark = options_.write_low_watermark;
  const auto efd = std::make_shared<EventFdHolder>();
  const auto state = std::make_shared<Connection>(
      next_conn_id_.fetch_add(1), *sink_, limits,
      [weak = std::weak_ptr<EventFdHolder>(efd)] {
        if (const std::shared_ptr<EventFdHolder> holder = weak.lock()) {
          holder->signal();
        }
      });
  const double read_budget_ms = options_.read_timeout_s * 1e3;
  const double write_budget_ms = options_.write_timeout_s * 1e3;
  Outbox outbox;
  bool peer_closed = false;
  for (;;) {
    // Exit once everything accepted has been answered and written — on
    // peer close, corrupt framing, or graceful stop (stop() sends SHUT_RD,
    // so reads hit EOF and only the reply drain remains).
    if (state->drained() &&
        (peer_closed || state->corrupt() || stopping_.load())) {
      break;
    }
    const bool unsent = !outbox.empty() || state->has_writable();
    pollfd pfds[2] = {
        {fd,
         static_cast<short>(
             ((!peer_closed && state->want_read()) ? POLLIN : 0) |
             (unsent ? POLLOUT : 0)),
         0},
        {efd->fd, POLLIN, 0}};
    const int ready = ::poll(pfds, 2, kPollMs);
    if (ready < 0 && errno != EINTR) break;
    efd->drain();
    if (!peer_closed && state->want_read()) {
      const IoResult r = read_available(fd, *state);
      if (r.error) break;
      if (r.peer_closed) peer_closed = true;
      // Sinks that execute on the caller's thread (a manual-mode server)
      // drain whatever the read just queued.
      if (r.bytes > 0) sink_->pump_ready();
    }
    const IoResult w = write_available(fd, *state, outbox);
    if (w.error) break;
    // Timeouts on the injectable sink clock: a stalled writer is cut at
    // the write budget, an idle (fully drained) peer at the read budget.
    const double idle_ms = sink_->now_ms() - state->last_activity_ms();
    const bool still_unsent = !outbox.empty() || state->has_writable();
    if (still_unsent ? idle_ms >= write_budget_ms
                     : idle_ms >= read_budget_ms) {
      break;
    }
  }
  // Late replies (requests still queued in the server) keep `state` alive
  // through their callbacks and complete into it harmlessly; the disarm
  // guarantees they no longer signal the (about to close) eventfd.
  state->disarm_wake();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

void TcpServerTransport::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Wake blocked readers; SHUT_RD lets in-flight responses finish writing.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  pool_.wait_idle();
}

TcpClientTransport::TcpClientTransport(const std::string& host,
                                       std::uint16_t port, double timeout_s)
    : timeout_s_(timeout_s) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw ServeError("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

TcpClientTransport::~TcpClientTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpClientTransport::send_raw(const std::string& bytes) {
  send_all(fd_, bytes,
           std::max(kPollMs, static_cast<int>(timeout_s_ * 1e3)));
}

std::string TcpClientTransport::read_payload() {
  char buf[4096];
  int waited_ms = 0;
  const int budget_ms = static_cast<int>(timeout_s_ * 1e3);
  for (;;) {
    if (std::optional<std::string> payload = decoder_.next()) return *payload;
    if (decoder_.corrupt()) {
      throw ServeError("response framing corrupt: " + decoder_.error());
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready == 0) {
      waited_ms += kPollMs;
      if (waited_ms >= budget_ms) throw ServeError("response timed out");
      continue;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) throw ServeError("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

bool TcpClientTransport::closed_by_peer() {
  char byte = 0;
  for (;;) {
    const ssize_t n = ::recv(fd_, &byte, 1, MSG_DONTWAIT);
    if (n == 0) return true;
    if (n < 0) return false;  // EWOULDBLOCK: still open, nothing to read
    decoder_.feed(std::string_view(&byte, 1));
  }
}

Response TcpClientTransport::roundtrip(const Request& request) {
  ABP_CHECK(pending_.empty(), "roundtrip with pipelined sends outstanding");
  send_raw(encode_frame(format_request(request)));
  const std::string payload = read_payload();
  std::string error;
  const std::optional<Response> response = parse_response(payload, &error);
  if (!response) throw ServeError("bad response payload: " + error);
  return *response;
}

void TcpClientTransport::send_async(
    const Request& request, std::function<void(std::string)> on_reply_frame) {
  send_raw(encode_frame(format_request(request)));
  pending_.push_back(std::move(on_reply_frame));
}

void TcpClientTransport::flush() {
  while (!pending_.empty()) {
    std::string payload;
    try {
      payload = read_payload();
    } catch (...) {
      pending_.clear();  // connection is dead; callbacks will never run
      throw;
    }
    const std::function<void(std::string)> cb = std::move(pending_.front());
    pending_.pop_front();
    cb(encode_frame(payload));
  }
}

}  // namespace abp::serve
