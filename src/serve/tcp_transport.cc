#include "serve/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace abp::serve {

namespace {

/// Poll interval: how often blocked reads re-check the stop flag.
constexpr int kPollMs = 50;

[[noreturn]] void throw_errno(const std::string& what) {
  throw ServeError(what + ": " + std::strerror(errno));
}

/// Write the whole buffer, looping over partial sends. `EINTR` restarts the
/// send; `EAGAIN`/`EWOULDBLOCK` (a send timeout is armed on server-side
/// sockets) polls for writability and counts against `budget_ms`, so a
/// peer that stops reading ("slow loris") costs at most the write timeout
/// instead of wedging the handler thread.
void send_all(int fd, std::string_view bytes, int budget_ms) {
  std::size_t sent = 0;
  int stalled_ms = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (stalled_ms >= budget_ms) {
          throw ServeError("send timed out: peer not reading");
        }
        pollfd pfd{fd, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, kPollMs);
        if (ready < 0 && errno != EINTR) throw_errno("poll(POLLOUT)");
        stalled_ms += kPollMs;
        continue;
      }
      throw_errno("send");
    }
    stalled_ms = 0;  // progress resets the stall budget
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

TcpServerTransport::TcpServerTransport(Server& server, Options options)
    : server_(&server), options_(options), pool_(options.conn_workers) {}

TcpServerTransport::~TcpServerTransport() { stop(); }

void TcpServerTransport::start() {
  ABP_CHECK(listen_fd_ < 0, "transport already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    throw_errno("bind");
  }
  if (::listen(listen_fd_, 64) < 0) throw_errno("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void TcpServerTransport::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    // EINTR (and transient errors like ECONNABORTED) retry the accept
    // rather than abandoning the listener.
    if (fd < 0) continue;
    // Arm a short send timeout so writes surface EAGAIN periodically and
    // send_all() can enforce the write budget against slow readers.
    timeval send_timeout{0, kPollMs * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof send_timeout);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (stopping_.load()) {
        ::close(fd);
        continue;
      }
      conn_fds_.insert(fd);
    }
    pool_.submit([this, fd] { handle_connection(fd); });
  }
}

void TcpServerTransport::handle_connection(int fd) {
  FrameDecoder decoder;
  char buf[4096];
  const int idle_budget_ms =
      std::max(kPollMs, static_cast<int>(options_.read_timeout_s * 1e3));
  const int write_budget_ms =
      std::max(kPollMs, static_cast<int>(options_.write_timeout_s * 1e3));
  int idle_ms = 0;
  bool open = true;
  while (open && !decoder.corrupt()) {
    // Reads re-check the stop flag every kPollMs so stop() is prompt, while
    // the per-connection idle timeout accumulates across short polls.
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (stopping_.load()) break;
    if (ready == 0) {
      idle_ms += kPollMs;
      if (idle_ms >= idle_budget_ms) break;  // read timeout: drop the client
      continue;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      // Interrupted reads are not connection errors — retry them.
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    idle_ms = 0;
    decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    // Drain the whole pipelined burst: every complete frame is submitted
    // concurrently (so cross-connection batching sees them all) up to the
    // per-connection in-flight cap; frames beyond the cap are shed with
    // `overloaded` before touching the queue. Responses are then written
    // back in request order.
    std::vector<std::string> payloads;
    while (std::optional<std::string> payload = decoder.next()) {
      payloads.push_back(std::move(*payload));
    }
    if (payloads.empty()) continue;
    const std::size_t cap =
        options_.max_inflight == 0 ? payloads.size() : options_.max_inflight;
    std::vector<std::future<std::string>> replies;
    replies.reserve(payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      auto promise = std::make_shared<std::promise<std::string>>();
      replies.push_back(promise->get_future());
      auto resolve = [promise](std::string reply) {
        promise->set_value(std::move(reply));
      };
      if (i < cap) {
        server_->submit(std::move(payloads[i]), std::move(resolve));
      } else {
        server_->shed_overloaded(
            std::move(payloads[i]), std::move(resolve),
            "connection in-flight limit (" +
                std::to_string(options_.max_inflight) +
                ") reached; retry with backoff");
      }
    }
    if (server_->options().workers == 0) server_->pump();
    for (std::future<std::string>& reply : replies) {
      // Even after a write failure every future is consumed, so no reply
      // callback is left resolving into a dead promise.
      std::string payload = reply.get();
      if (!open) continue;
      try {
        send_all(fd, encode_frame(std::move(payload)), write_budget_ms);
      } catch (const ServeError&) {
        open = false;
      }
    }
  }
  if (decoder.corrupt()) {
    // Framing cannot resync; tell the client why, then hang up.
    server_->service().metrics().record_bad_frame(decoder.buffered());
    Response response;
    response.status = Status::kBadRequest;
    response.message = decoder.error();
    try {
      send_all(fd, encode_frame(format_response(response)), write_budget_ms);
    } catch (const ServeError&) {
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

void TcpServerTransport::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Wake blocked readers; SHUT_RD lets in-flight responses finish writing.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  pool_.wait_idle();
}

TcpClientTransport::TcpClientTransport(const std::string& host,
                                       std::uint16_t port, double timeout_s)
    : timeout_s_(timeout_s) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw ServeError("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

TcpClientTransport::~TcpClientTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpClientTransport::send_raw(const std::string& bytes) {
  send_all(fd_, bytes,
           std::max(kPollMs, static_cast<int>(timeout_s_ * 1e3)));
}

std::string TcpClientTransport::read_payload() {
  char buf[4096];
  int waited_ms = 0;
  const int budget_ms = static_cast<int>(timeout_s_ * 1e3);
  for (;;) {
    if (std::optional<std::string> payload = decoder_.next()) return *payload;
    if (decoder_.corrupt()) {
      throw ServeError("response framing corrupt: " + decoder_.error());
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready == 0) {
      waited_ms += kPollMs;
      if (waited_ms >= budget_ms) throw ServeError("response timed out");
      continue;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) throw ServeError("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

bool TcpClientTransport::closed_by_peer() {
  char byte = 0;
  for (;;) {
    const ssize_t n = ::recv(fd_, &byte, 1, MSG_DONTWAIT);
    if (n == 0) return true;
    if (n < 0) return false;  // EWOULDBLOCK: still open, nothing to read
    decoder_.feed(std::string_view(&byte, 1));
  }
}

Response TcpClientTransport::roundtrip(const Request& request) {
  send_raw(encode_frame(format_request(request)));
  const std::string payload = read_payload();
  std::string error;
  const std::optional<Response> response = parse_response(payload, &error);
  if (!response) throw ServeError("bad response payload: " + error);
  return *response;
}

}  // namespace abp::serve
