/// \file quota.h
/// \brief Per-principal token-bucket admission (DESIGN.md §12).
///
/// One bucket per principal, refilled continuously at `rps` tokens per
/// second up to a `burst` capacity; every admitted request spends one
/// token. A principal that outruns its refill is shed with the existing
/// retryable `overloaded` status plus a `retry-after` hint computed from
/// its own bucket deficit — so a noisy tenant backs itself off while
/// everyone else's buckets stay full. Anonymous traffic (principal 0)
/// shares one bucket: identity is what buys an isolated budget.
///
/// The clock is injected by the caller (the server's and router's
/// `clock_ms`), so quota behavior is deterministic under the fault-
/// injection suites: tests advance a manual clock and watch tokens refill.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

namespace abp::serve {

/// Quota knobs (`--quota-rps`, `--quota-burst`). Plain data so configs can
/// carry it; `rps == 0` disables quota enforcement entirely.
struct QuotaOptions {
  /// Sustained admissions per second per principal; 0 = quotas off.
  double rps = 0.0;
  /// Bucket capacity (burst allowance above the sustained rate);
  /// 0 = defaults to `rps` (a one-second burst).
  double burst = 0.0;

  bool enabled() const { return rps > 0.0; }
  double capacity() const { return burst > 0.0 ? burst : rps; }
};

/// Thread-safe token buckets keyed by principal id. Buckets are created
/// lazily, full — a principal's first request is always admitted.
class PrincipalQuotas {
 public:
  struct Decision {
    bool admitted = true;
    /// When shed: milliseconds until this principal's bucket has refilled
    /// one whole token (never 0 on a shed — the hint must move the client).
    std::uint32_t retry_after_ms = 0;
  };

  explicit PrincipalQuotas(QuotaOptions options);

  /// Spend one token from `principal`'s bucket at time `now_ms`
  /// (monotonic milliseconds; the caller's injectable clock).
  Decision admit(std::uint64_t principal, double now_ms);

  /// Principals with a live bucket (observability).
  std::size_t principals() const;

  const QuotaOptions& options() const { return options_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    double updated_ms = 0.0;
  };

  QuotaOptions options_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, Bucket> buckets_;
};

}  // namespace abp::serve
