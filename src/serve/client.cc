#include "serve/client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <random>
#include <thread>
#include <utility>

#include "common/assert.h"
#include "rng/hash.h"

namespace abp::serve {

namespace {

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class BorrowedTransport final : public ClientTransport {
 public:
  explicit BorrowedTransport(ClientTransport& inner) : inner_(&inner) {}
  Response roundtrip(const Request& request) override {
    return inner_->roundtrip(request);
  }
  void send_async(const Request& request,
                  std::function<void(std::string)> on_reply_frame) override {
    inner_->send_async(request, std::move(on_reply_frame));
  }
  void flush() override { inner_->flush(); }
  std::string name() const override { return inner_->name(); }

 private:
  ClientTransport* inner_;
};

}  // namespace

std::unique_ptr<ClientTransport> borrow_transport(ClientTransport& inner) {
  return std::make_unique<BorrowedTransport>(inner);
}

RetryingClient::RetryingClient(TransportFactory factory, RetryPolicy policy)
    : factory_(std::move(factory)),
      policy_(policy),
      rng_(derive_seed(policy.seed, 0xC11E57)) {
  ABP_CHECK(factory_ != nullptr, "RetryingClient needs a transport factory");
  ABP_CHECK(policy_.max_attempts >= 1, "max_attempts must be at least 1");
  ABP_CHECK(policy_.base_backoff_ms > 0.0 &&
                policy_.max_backoff_ms >= policy_.base_backoff_ms,
            "backoff bounds must satisfy 0 < base <= max");
}

void RetryingClient::set_sleeper(std::function<void(double)> sleeper) {
  sleeper_ = std::move(sleeper);
}

void RetryingClient::set_clock(std::function<double()> clock_ms) {
  clock_ms_ = std::move(clock_ms);
}

void RetryingClient::set_request_id_source(
    std::function<std::uint64_t()> source) {
  request_id_source_ = std::move(source);
}

std::uint64_t RetryingClient::mint_request_id() {
  if (request_id_source_) {
    const std::uint64_t id = request_id_source_();
    ABP_CHECK(id != 0, "request-id source must never return 0");
    return id;
  }
  // Ids must be unique across processes that never coordinate — two CLI
  // invocations with identical flags must not collide, so (unlike every
  // other stream in the repo) this one is seeded from real entropy, mixed
  // with a process-local counter through the stable hash.
  static const std::uint64_t process_entropy = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t id = 0;
  do {
    id = stable_hash64(process_entropy, counter.fetch_add(1) + 1);
  } while (id == 0);
  return id;
}

double RetryingClient::now_ms() const {
  return clock_ms_ ? clock_ms_() : steady_now_ms();
}

double RetryingClient::next_backoff_ms() {
  // Decorrelated jitter: each sleep is drawn from [base, 3·prev], capped.
  // Spreads synchronized retry storms while still growing exponentially in
  // expectation.
  const double prev = prev_backoff_ms_ > 0.0 ? prev_backoff_ms_
                                             : policy_.base_backoff_ms;
  const double hi = std::min(policy_.max_backoff_ms, 3.0 * prev);
  const double sleep =
      hi <= policy_.base_backoff_ms
          ? policy_.base_backoff_ms
          : rng_.uniform(policy_.base_backoff_ms, hi);
  prev_backoff_ms_ = sleep;
  return sleep;
}

CallResult RetryingClient::call(Request request) {
  CallResult result;
  const double start = now_ms();
  const bool budgeted = policy_.deadline_budget_ms > 0.0;
  bool have_retryable_response = false;
  double server_hint_ms = 0.0;  ///< retry-after from the last shed response

  // One logical write = one request id, minted before the first attempt and
  // never rotated afterwards — rotation would turn a retry after a lost ack
  // into a brand-new write and double-deploy the beacon.
  if (request.endpoint == Endpoint::kAddBeacon && request.request_id == 0) {
    request.request_id = mint_request_id();
  }
  // A caller-supplied attempt means earlier deliveries happened outside
  // this call (e.g. `abp query --attempt N` resending); count up from it.
  const std::uint64_t base_attempt = request.attempt;

  for (std::size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (request.request_id != 0) {
      // 0-based delivery counter, saturating: the server only needs to
      // distinguish "first delivery" from "retry".
      const std::uint64_t delivery = base_attempt + (attempt - 1);
      request.attempt = delivery < std::numeric_limits<std::uint32_t>::max()
                            ? static_cast<std::uint32_t>(delivery)
                            : std::numeric_limits<std::uint32_t>::max();
    }
    double remaining = 0.0;
    if (budgeted) {
      remaining = policy_.deadline_budget_ms - (now_ms() - start);
      if (remaining <= 0.0) {
        if (have_retryable_response) return result;  // last shed response
        result.ok = false;
        result.error = "deadline budget of " +
                       std::to_string(policy_.deadline_budget_ms) +
                       " ms exhausted after " +
                       std::to_string(result.attempts) + " attempt(s)";
        return result;
      }
      // Propagate the remaining budget so the server sheds instead of
      // computing an answer this client will never wait for.
      const auto remaining_ms = static_cast<std::uint32_t>(
          std::max(1.0, std::floor(remaining)));
      request.deadline_ms = request.deadline_ms == 0
                                ? remaining_ms
                                : std::min(request.deadline_ms, remaining_ms);
    }

    ++result.attempts;
    try {
      if (!transport_) transport_ = factory_();
      result.response = transport_->roundtrip(request);
      result.ok = true;
      if (!status_retryable(result.response.status)) return result;
      have_retryable_response = true;
      server_hint_ms = static_cast<double>(result.response.retry_after_ms);
    } catch (const ServeError& e) {
      // Transport-level failure: the connection state is unknown; drop it
      // so the next attempt reconnects.
      transport_.reset();
      ++result.transport_errors;
      result.error = e.what();
      if (!have_retryable_response) result.ok = false;
      server_hint_ms = 0.0;  // hints only come from parsed shed responses
    }

    if (attempt == policy_.max_attempts) break;
    double backoff;
    if (server_hint_ms > 0.0) {
      // An explicit server backpressure hint replaces local jitter — the
      // server knows its queue better than our guess — clamped to the
      // policy's bounds and still capped by the deadline budget below. It
      // also seeds the decorrelated-jitter state so a follow-up shed
      // without a hint grows from here.
      backoff = std::clamp(server_hint_ms, policy_.base_backoff_ms,
                           policy_.max_backoff_ms);
      prev_backoff_ms_ = backoff;
    } else {
      backoff = next_backoff_ms();
    }
    if (budgeted) {
      remaining = policy_.deadline_budget_ms - (now_ms() - start);
      if (remaining <= 0.0) break;
      backoff = std::min(backoff, remaining);
    }
    result.backoff_ms += backoff;
    if (sleeper_) {
      sleeper_(backoff);
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          backoff));
    }
  }
  // Retries exhausted: either the last shed response (ok, retryable
  // status) or the last transport error.
  return result;
}

}  // namespace abp::serve
