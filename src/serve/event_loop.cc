#include "serve/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/protocol.h"

namespace abp::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw ServeError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = event_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(eventfd)");
  }
}

EventLoop::~EventLoop() {
  if (event_fd_ >= 0) ::close(event_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, EventHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(add)");
  }
  handlers_[fd] = std::make_shared<EventHandler>(std::move(handler));
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(mod)");
  }
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    posted_.push_back(std::move(task));
  }
  wakeup();
}

void EventLoop::wakeup() {
  const std::uint64_t one = 1;
  // The eventfd counter saturates rather than blocks with EFD_NONBLOCK;
  // a full counter already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n =
      ::write(event_fd_, &one, sizeof one);
}

void EventLoop::drain_eventfd() {
  std::uint64_t count = 0;
  while (::read(event_fd_, &count, sizeof count) > 0) {
  }
}

void EventLoop::run_posted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks.swap(posted_);
  }
  for (const std::function<void()>& task : tasks) task();
}

void EventLoop::run(const std::function<void()>& on_tick, int tick_ms) {
  while (!stop_) {
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, tick_ms);
    if (n < 0 && errno != EINTR) throw_errno("epoll_wait");
    // Posted tasks run before fd dispatch so cross-thread state changes
    // (new connections, reply flushes, stop requests) are visible first.
    run_posted();
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == event_fd_) {
        drain_eventfd();
        run_posted();
        continue;
      }
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;  // removed by an earlier handler
      const std::shared_ptr<EventHandler> handler = it->second;
      (*handler)(events[i].events);
    }
    if (on_tick) on_tick();
  }
  // Drain tasks that raced the stop (e.g. a connection hand-off posted by
  // the accept path) so their resources are not silently dropped; they run
  // with any stop flags already visible.
  run_posted();
}

void EventLoop::stop() {
  post([this] { stop_ = true; });
}

}  // namespace abp::serve
