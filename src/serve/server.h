/// \file server.h
/// \brief Batching request server over `LocalizationService`.
///
/// Transports hand the server raw frame payloads; the server parses,
/// queues, coalesces and executes them, then hands encoded response
/// payloads back through a per-request callback. Batching is the core
/// throughput mechanism: up to `max_batch` queued point queries against the
/// same deployment execute under one lock acquisition in one pass over the
/// spatial index (see `LocalizationService::handle_batch`).
///
/// Two execution modes share the same queue and batching logic:
///  * `workers == 0` — manual mode: requests queue until `pump()` drains
///    them on the calling thread. Deterministic; what the loopback
///    transport and all unit tests use.
///  * `workers > 0` — threaded mode: a worker pool drains the queue;
///    callbacks fire on worker threads.
///
/// Graceful shutdown (`shutdown()`): new submissions are rejected with
/// `Status::kUnavailable` while every request already accepted is drained
/// and answered. The metrics dump survives shutdown.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "serve/service.h"

namespace abp::serve {

class Server {
 public:
  struct Options {
    std::size_t workers = 0;    ///< 0 = manual mode (drain via pump())
    std::size_t max_batch = 16; ///< B: point-query requests per batch
  };

  explicit Server(LocalizationService& service) : Server(service, Options()) {}
  Server(LocalizationService& service, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submit one frame payload. `reply` is invoked exactly once with the
  /// encoded response payload — immediately (unparseable input or
  /// shutdown rejection), from `pump()` in manual mode, or from a worker
  /// thread in threaded mode.
  void submit(std::string payload, std::function<void(std::string)> reply);

  /// Manual mode: drain the queue on the calling thread, batching as it
  /// goes. No-op when the queue is empty. Must not be called in threaded
  /// mode.
  void pump();

  /// Reject new requests, drain everything already accepted, stop workers.
  /// Idempotent.
  void shutdown();
  bool shutting_down() const;

  LocalizationService& service() { return service_; }
  const Options& options() const { return options_; }

  /// Observability for tests and the shutdown dump.
  std::uint64_t batches_executed() const;
  std::uint64_t requests_served() const;

 private:
  struct Pending {
    Request request;
    std::function<void(std::string)> reply;
    Stopwatch timer;
    std::size_t bytes_in = 0;
  };

  /// Pop the next batch off the queue (caller holds `mu_`): the front
  /// request plus, if it is a point query, up to `max_batch - 1` more
  /// point queries against the same deployment from anywhere in the queue.
  std::vector<Pending> take_batch_locked();
  void run_batch(std::vector<Pending> batch);
  void worker_loop();

  LocalizationService& service_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_drain_;
  std::deque<Pending> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;  ///< reject new submissions
  bool quit_ = false;      ///< workers exit once the queue is empty
  std::vector<std::thread> workers_;
  std::uint64_t batches_ = 0;
  std::uint64_t served_ = 0;
};

}  // namespace abp::serve
