/// \file server.h
/// \brief Batching request server over `LocalizationService`.
///
/// Transports hand the server raw frame payloads; the server parses,
/// queues, coalesces and executes them, then hands encoded response
/// payloads back through a per-request callback. Batching is the core
/// throughput mechanism: up to `max_batch` queued point queries against the
/// same deployment execute under one lock acquisition in one pass over the
/// spatial index (see `LocalizationService::handle_batch`).
///
/// Two execution modes share the same queue and batching logic:
///  * `workers == 0` — manual mode: requests queue until `pump()` drains
///    them on the calling thread. Deterministic; what the loopback
///    transport and all unit tests use.
///  * `workers > 0` — threaded mode: a worker pool drains the queue;
///    callbacks fire on worker threads.
///
/// Resilience (the overload/deadline contract the chaos suite asserts):
///  * Admission control — with `max_queue > 0`, a submission that would
///    push the queue past the limit is answered immediately with the
///    retryable `Status::kOverloaded` instead of being enqueued; transports
///    enforcing per-connection in-flight caps shed through
///    `shed_overloaded()` so the accounting stays centralized.
///  * Per-principal quotas — with `Options::quota` enabled, each request
///    spends a token from its principal's bucket (`serve/quota.h`) before
///    entering the queue; an empty bucket sheds `kOverloaded` with a
///    `retry-after` hint from that principal's own refill deficit, so a
///    noisy tenant throttles itself without touching anyone else's budget.
///  * Fair dequeue — when requests from multiple principals are queued,
///    `take_batch_locked` rotates a cursor across principals instead of
///    serving strict FIFO, so one tenant's burst cannot monopolize the
///    batch pipeline. With a single principal this reduces to FIFO.
///  * Deadlines — a request carrying `deadline_ms` that is still queued
///    when its budget expires is shed with `Status::kDeadlineExceeded` at
///    drain time, before any handler work. Time comes from
///    `Options::clock_ms`, injectable so fault-injection tests advance a
///    manual clock deterministically.
///  * Every parse-ok submission is answered exactly once and accounted in
///    `ServiceMetrics`: submitted = completed + shed (by cause).
///
/// Graceful shutdown (`shutdown()`): new submissions are rejected with
/// `Status::kUnavailable` while every request already accepted is drained
/// and answered. The metrics dump survives shutdown.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "serve/frame_sink.h"
#include "serve/quota.h"
#include "serve/service.h"

namespace abp::serve {

class Server : public FrameSink {
 public:
  struct Options {
    std::size_t workers = 0;    ///< 0 = manual mode (drain via pump())
    std::size_t max_batch = 16; ///< B: point-query requests per batch
    /// Queue-depth admission limit; 0 = unbounded. Submissions that would
    /// exceed it are answered `kOverloaded` without being enqueued.
    std::size_t max_queue = 0;
    /// Backpressure hint attached to every `kOverloaded` shed as the
    /// response's `retry-after` record (milliseconds); 0 = no hint.
    /// `RetryingClient` sleeps the hinted duration instead of jittered
    /// backoff, so a loaded server can spread its retry storm.
    std::uint32_t retry_after_hint_ms = 0;
    /// Monotonic clock in milliseconds used for deadline accounting.
    /// Defaults to `std::chrono::steady_clock`; tests inject a manual
    /// clock for deterministic expiry.
    std::function<double()> clock_ms;
    /// Per-principal token-bucket admission (`--quota-rps`/`--quota-burst`);
    /// `quota.rps == 0` disables enforcement.
    QuotaOptions quota;
  };

  explicit Server(LocalizationService& service) : Server(service, Options()) {}
  Server(LocalizationService& service, Options options);
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submit one frame payload. `reply` is invoked exactly once with the
  /// encoded response payload — immediately (unparseable input or
  /// shutdown rejection), from `pump()` in manual mode, or from a worker
  /// thread in threaded mode.
  void submit(std::string payload,
              std::function<void(std::string)> reply) override;

  /// Transport-level admission rejection: answer `payload`'s request with
  /// the retryable `kOverloaded` status (diagnosed with `why`) without
  /// enqueueing it, keeping shed accounting centralized here. Used by
  /// transports enforcing per-connection in-flight limits.
  void shed_overloaded(std::string payload,
                       std::function<void(std::string)> reply,
                       const std::string& why) override;

  void record_bad_frame(std::size_t bytes_in) override;

  /// Manual mode: drain the queue on the calling thread, batching as it
  /// goes. No-op when the queue is empty. Must not be called in threaded
  /// mode.
  void pump();

  /// FrameSink hook: manual-mode servers (workers == 0) drain the queue on
  /// the transport's I/O thread; threaded servers ignore it.
  void pump_ready() override;

  /// Reject new requests, drain everything already accepted, stop workers.
  /// Idempotent.
  void shutdown();
  bool shutting_down() const;

  LocalizationService& service() { return service_; }
  const Options& options() const { return options_; }

  /// Observability for tests and the shutdown dump.
  std::uint64_t batches_executed() const;
  std::uint64_t requests_served() const;
  /// Slot accounting for the chaos suite: both must be 0 once every
  /// submission has been answered — a leak here is a stuck request.
  std::size_t queue_depth() const;
  std::size_t in_flight() const;

  /// Current reading of `Options::clock_ms` (or the steady-clock default).
  double now_ms() const;

 private:
  struct Pending {
    Request request;
    std::function<void(std::string)> reply;
    Stopwatch timer;
    std::size_t bytes_in = 0;
    double arrival_ms = 0.0;  ///< clock reading at admission
  };

  /// Pop the next batch off the queue (caller holds `mu_`): the seed is the
  /// oldest request of the principal after `last_principal_` in cyclic id
  /// order (fair rotation; plain FIFO when only one principal is queued),
  /// plus, if it is a point query, up to `max_batch - 1` more point queries
  /// against the same deployment from anywhere in the queue.
  std::vector<Pending> take_batch_locked();
  void run_batch(std::vector<Pending> batch);
  void worker_loop();
  /// Answer a parsed request with a shed status (never enqueued) and
  /// record both endpoint and admission metrics. `retry_after_ms` overrides
  /// the configured hint when non-zero (quota sheds carry the principal's
  /// own refill deficit).
  void reject(const Request& request, Status status, const std::string& why,
              std::size_t bytes_in,
              const std::function<void(std::string)>& reply,
              std::uint32_t retry_after_ms = 0);

  LocalizationService& service_;
  Options options_;
  std::unique_ptr<PrincipalQuotas> quotas_;  ///< null when quotas are off

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_drain_;
  std::deque<Pending> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;  ///< reject new submissions
  bool quit_ = false;      ///< workers exit once the queue is empty
  std::vector<std::thread> workers_;
  std::uint64_t batches_ = 0;
  std::uint64_t served_ = 0;
  /// Fair-dequeue cursor: id of the principal served last; the next batch
  /// seeds from the smallest queued principal id strictly greater (cyclic).
  std::uint64_t last_principal_ = 0;
};

}  // namespace abp::serve
