#include "serve/protocol.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iterator>

namespace abp::serve {

namespace {

constexpr std::string_view kFrameMagic = "abps1 ";
constexpr std::string_view kRequestHeader = "abp-request 1";
constexpr std::string_view kResponseHeader = "abp-response 1";
// A frame header is "abps1 " + decimal length + '\n'; with the 4 MiB payload
// cap the length needs at most 7 digits.
constexpr std::size_t kMaxHeaderBytes = kFrameMagic.size() + 8;

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

bool fail(std::string* error, const std::string& why) {
  if (error) *error = why;
  return false;
}

/// Strict finite-double parse of a whole token.
bool parse_double_token(std::string_view token, double* out) {
  if (token.empty() || token.size() >= 64) return false;
  char buf[64];
  token.copy(buf, token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + token.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool parse_u64_token(std::string_view token, std::uint64_t* out) {
  if (token.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool parse_u32_token(std::string_view token, std::uint32_t* out) {
  std::uint64_t v = 0;
  if (!parse_u64_token(token, &v) || v > 0xFFFFFFFFu) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Sequential reader over a payload; lines end with '\n' (a final line
/// without one is accepted).
struct Cursor {
  std::string_view payload;
  std::size_t pos = 0;

  bool eof() const { return pos >= payload.size(); }

  std::string_view line() {
    const std::size_t nl = payload.find('\n', pos);
    std::string_view result;
    if (nl == std::string_view::npos) {
      result = payload.substr(pos);
      pos = payload.size();
    } else {
      result = payload.substr(pos, nl - pos);
      pos = nl + 1;
    }
    if (!result.empty() && result.back() == '\r') result.remove_suffix(1);
    return result;
  }

  /// Take exactly `n` raw bytes followed by a newline (text-block body).
  bool raw_block(std::size_t n, std::string* out) {
    if (payload.size() - pos < n) return false;
    out->assign(payload.substr(pos, n));
    pos += n;
    if (pos < payload.size() && payload[pos] == '\n') {
      ++pos;
      return true;
    }
    return pos == payload.size();
  }
};

void append_text_block(std::string& out, const std::string& text) {
  out += "text ";
  out += std::to_string(text.size());
  out += '\n';
  out += text;
  out += '\n';
}

}  // namespace

const char* endpoint_name(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kLocalize: return "localize";
    case Endpoint::kErrorAt: return "error-at";
    case Endpoint::kPropose: return "propose";
    case Endpoint::kAddBeacon: return "add-beacon";
    case Endpoint::kSnapshot: return "snapshot";
    case Endpoint::kStats: return "stats";
    case Endpoint::kListFields: return "list-fields";
    case Endpoint::kMutate: return "mutate";
    case Endpoint::kVersion: return "version";
    case Endpoint::kAdmin: return "admin";
  }
  return "unknown";
}

namespace {

// One row per endpoint, in `kAllEndpoints` order (the static_asserts below
// pin that, so a lookup is a direct index). `mutate` is idempotent by
// construction: it names the exact version it establishes, and a replica at
// or past that version acks without re-applying. `propose` is read-only but
// consumes deployment RNG state, so it must not be cached.
constexpr EndpointTraits kEndpointTraitsTable[] = {
    // endpoint               idem   cache  mutat  intern local  batch
    {Endpoint::kLocalize,     true,  true,  false, false, false, true},
    {Endpoint::kErrorAt,      true,  true,  false, false, false, true},
    {Endpoint::kPropose,      true,  false, false, false, false, false},
    {Endpoint::kAddBeacon,    false, false, true,  false, false, false},
    {Endpoint::kSnapshot,     true,  false, false, false, false, false},
    {Endpoint::kStats,        true,  false, false, false, true,  false},
    {Endpoint::kListFields,   true,  false, false, false, true,  false},
    {Endpoint::kMutate,       true,  false, true,  true,  false, false},
    {Endpoint::kVersion,      true,  false, false, false, false, false},
    // admin is answered by the router's own membership controller
    // (router_local) and never accepted by a backend (internal_only); it is
    // deliberately non-idempotent — a blind re-send of `add` must fail
    // loudly rather than double-run a handoff — and never cacheable.
    {Endpoint::kAdmin,        false, false, false, true,  true,  false},
};

static_assert(std::size(kEndpointTraitsTable) == std::size(kAllEndpoints),
              "every endpoint needs a traits row");

constexpr bool traits_rows_match_endpoint_order() {
  for (std::size_t i = 0; i < std::size(kAllEndpoints); ++i) {
    if (kEndpointTraitsTable[i].endpoint != kAllEndpoints[i]) return false;
  }
  return true;
}

static_assert(traits_rows_match_endpoint_order(),
              "traits rows must follow kAllEndpoints order");

}  // namespace

const EndpointTraits& endpoint_traits(Endpoint endpoint) {
  const auto index = static_cast<std::size_t>(endpoint);
  if (index < std::size(kEndpointTraitsTable)) {
    return kEndpointTraitsTable[index];
  }
  return kEndpointTraitsTable[0];  // unreachable for valid enum values
}

std::optional<Endpoint> endpoint_from_name(std::string_view name) {
  for (const Endpoint endpoint : kAllEndpoints) {
    if (name == endpoint_name(endpoint)) return endpoint;
  }
  return std::nullopt;
}

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kBadRequest: return "bad-request";
    case Status::kNotFound: return "not-found";
    case Status::kUnavailable: return "unavailable";
    case Status::kInternal: return "internal";
    case Status::kOverloaded: return "overloaded";
    case Status::kDeadlineExceeded: return "deadline-exceeded";
    case Status::kVersionMismatch: return "version-mismatch";
    case Status::kDedupExpired: return "dedup-expired";
  }
  return "unknown";
}

std::optional<Status> status_from_name(std::string_view name) {
  for (const Status status :
       {Status::kOk, Status::kBadRequest, Status::kNotFound,
        Status::kUnavailable, Status::kInternal, Status::kOverloaded,
        Status::kDeadlineExceeded, Status::kVersionMismatch,
        Status::kDedupExpired}) {
    if (name == status_name(status)) return status;
  }
  return std::nullopt;
}

bool status_retryable(Status status) {
  // `dedup-expired` is deliberately terminal: it only answers retries, so
  // re-sending the same id can never change the outcome — looping on it
  // would burn the whole backoff budget for nothing.
  return status == Status::kOverloaded || status == Status::kUnavailable ||
         status == Status::kDeadlineExceeded ||
         status == Status::kVersionMismatch;
}

bool valid_field_name(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string format_request(const Request& request) {
  std::string out;
  out += kRequestHeader;
  out += ' ';
  out += std::to_string(request.seq);
  out += ' ';
  out += endpoint_name(request.endpoint);
  out += '\n';
  out += "field ";
  out += request.field;
  out += '\n';
  for (const Vec2 p : request.points) {
    out += "point ";
    append_double(out, p.x);
    out += ' ';
    append_double(out, p.y);
    out += '\n';
  }
  if (!request.algorithm.empty()) {
    out += "algorithm ";
    out += request.algorithm;
    out += '\n';
  }
  if (request.count != 1) {
    out += "count ";
    out += std::to_string(request.count);
    out += '\n';
  }
  if (request.deadline_ms != 0) {
    out += "deadline ";
    out += std::to_string(request.deadline_ms);
    out += '\n';
  }
  if (request.principal != 0) {
    out += "principal ";
    out += std::to_string(request.principal);
    out += '\n';
  }
  if (request.version != 0) {
    out += "version ";
    out += std::to_string(request.version);
    out += '\n';
  }
  if (request.request_id != 0) {
    out += "request-id ";
    out += std::to_string(request.request_id);
    out += ' ';
    out += std::to_string(request.attempt);
    out += '\n';
  }
  if (!request.text.empty()) append_text_block(out, request.text);
  return out;
}

std::optional<Request> parse_request(std::string_view payload,
                                     std::string* error) {
  Cursor cursor{payload};
  const auto header = split_tokens(cursor.line());
  if (header.size() != 4 || header[0] != "abp-request" || header[1] != "1") {
    fail(error, "not an abp-request version-1 payload");
    return std::nullopt;
  }
  Request request;
  if (!parse_u64_token(header[2], &request.seq)) {
    fail(error, "malformed request sequence number");
    return std::nullopt;
  }
  const auto endpoint = endpoint_from_name(header[3]);
  if (!endpoint) {
    fail(error, "unknown endpoint: " + std::string(header[3]));
    return std::nullopt;
  }
  request.endpoint = *endpoint;
  while (!cursor.eof()) {
    const std::string_view line = cursor.line();
    const auto tokens = split_tokens(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "field" && tokens.size() == 2) {
      if (!valid_field_name(tokens[1])) {
        fail(error, "invalid field name");
        return std::nullopt;
      }
      request.field.assign(tokens[1]);
    } else if (tokens[0] == "point" && tokens.size() == 3) {
      Vec2 p;
      if (!parse_double_token(tokens[1], &p.x) ||
          !parse_double_token(tokens[2], &p.y)) {
        fail(error, "malformed point record: " + std::string(line));
        return std::nullopt;
      }
      request.points.push_back(p);
    } else if (tokens[0] == "algorithm" && tokens.size() == 2) {
      request.algorithm.assign(tokens[1]);
    } else if (tokens[0] == "count" && tokens.size() == 2) {
      if (!parse_u32_token(tokens[1], &request.count) || request.count == 0) {
        fail(error, "malformed count record: " + std::string(line));
        return std::nullopt;
      }
    } else if (tokens[0] == "deadline" && tokens.size() == 2) {
      // Zero is a valid "no deadline"; negative or non-numeric is malformed.
      if (!parse_u32_token(tokens[1], &request.deadline_ms)) {
        fail(error, "malformed deadline record: " + std::string(line));
        return std::nullopt;
      }
    } else if (tokens[0] == "principal") {
      // Canonical form carries a non-zero id (anonymous requests omit the
      // record entirely), so a truncated or zero-id record is malformed.
      if (tokens.size() != 2 ||
          !parse_u64_token(tokens[1], &request.principal) ||
          request.principal == 0) {
        fail(error, "malformed principal record: " + std::string(line));
        return std::nullopt;
      }
    } else if (tokens[0] == "version" && tokens.size() == 2) {
      // Zero is a valid "unversioned"; non-numeric is malformed.
      if (!parse_u64_token(tokens[1], &request.version)) {
        fail(error, "malformed version record: " + std::string(line));
        return std::nullopt;
      }
    } else if (tokens[0] == "request-id") {
      // Canonical form is `request-id <id> <attempt>` with id != 0 (zero
      // ids never appear on the wire — the record is simply omitted), so a
      // truncated or zero-id record is malformed, not "absent".
      if (tokens.size() != 3 ||
          !parse_u64_token(tokens[1], &request.request_id) ||
          request.request_id == 0 ||
          !parse_u32_token(tokens[2], &request.attempt)) {
        fail(error, "malformed request-id record: " + std::string(line));
        return std::nullopt;
      }
    } else if (tokens[0] == "text" && tokens.size() == 2) {
      std::uint64_t n = 0;
      if (!parse_u64_token(tokens[1], &n) || n > kMaxFramePayload ||
          !cursor.raw_block(static_cast<std::size_t>(n), &request.text)) {
        fail(error, "malformed text block");
        return std::nullopt;
      }
    } else {
      fail(error, "unexpected request record: " + std::string(line));
      return std::nullopt;
    }
  }
  return request;
}

std::string format_response(const Response& response) {
  std::string out;
  out += kResponseHeader;
  out += ' ';
  out += std::to_string(response.seq);
  out += ' ';
  out += status_name(response.status);
  out += '\n';
  if (!response.message.empty()) {
    out += "message ";
    for (const char c : response.message) {
      out += (c == '\n' || c == '\r') ? ' ' : c;
    }
    out += '\n';
  }
  if (response.retry_after_ms != 0) {
    out += "retry-after ";
    out += std::to_string(response.retry_after_ms);
    out += '\n';
  }
  if (response.version != 0) {
    out += "version ";
    out += std::to_string(response.version);
    out += '\n';
  }
  if (response.mutation_ack != 0) {
    out += "mutation-ack ";
    out += std::to_string(response.mutation_ack);
    out += '\n';
  }
  for (const PointEstimate& e : response.estimates) {
    out += "estimate ";
    append_double(out, e.estimate.x);
    out += ' ';
    append_double(out, e.estimate.y);
    out += ' ';
    out += std::to_string(e.connected);
    out += '\n';
  }
  for (const double v : response.errors) {
    out += "error ";
    append_double(out, v);
    out += '\n';
  }
  for (const Vec2 p : response.positions) {
    out += "position ";
    append_double(out, p.x);
    out += ' ';
    append_double(out, p.y);
    out += '\n';
  }
  for (const std::uint32_t id : response.beacon_ids) {
    out += "beacon-id ";
    out += std::to_string(id);
    out += '\n';
  }
  if (!response.text.empty()) append_text_block(out, response.text);
  return out;
}

std::optional<Response> parse_response(std::string_view payload,
                                       std::string* error) {
  Cursor cursor{payload};
  const auto header = split_tokens(cursor.line());
  if (header.size() != 4 || header[0] != "abp-response" || header[1] != "1") {
    fail(error, "not an abp-response version-1 payload");
    return std::nullopt;
  }
  Response response;
  if (!parse_u64_token(header[2], &response.seq)) {
    fail(error, "malformed response sequence number");
    return std::nullopt;
  }
  const auto status = status_from_name(header[3]);
  if (!status) {
    fail(error, "unknown status: " + std::string(header[3]));
    return std::nullopt;
  }
  response.status = *status;
  while (!cursor.eof()) {
    const std::string_view line = cursor.line();
    if (line.rfind("message ", 0) == 0) {
      response.message.assign(line.substr(8));
      continue;
    }
    const auto tokens = split_tokens(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "estimate" && tokens.size() == 4) {
      PointEstimate e;
      if (!parse_double_token(tokens[1], &e.estimate.x) ||
          !parse_double_token(tokens[2], &e.estimate.y) ||
          !parse_u32_token(tokens[3], &e.connected)) {
        fail(error, "malformed estimate record: " + std::string(line));
        return std::nullopt;
      }
      response.estimates.push_back(e);
    } else if (tokens[0] == "error" && tokens.size() == 2) {
      double v = 0.0;
      if (!parse_double_token(tokens[1], &v)) {
        fail(error, "malformed error record: " + std::string(line));
        return std::nullopt;
      }
      response.errors.push_back(v);
    } else if (tokens[0] == "position" && tokens.size() == 3) {
      Vec2 p;
      if (!parse_double_token(tokens[1], &p.x) ||
          !parse_double_token(tokens[2], &p.y)) {
        fail(error, "malformed position record: " + std::string(line));
        return std::nullopt;
      }
      response.positions.push_back(p);
    } else if (tokens[0] == "retry-after" && tokens.size() == 2) {
      // Zero is a valid "no hint"; non-numeric is malformed.
      if (!parse_u32_token(tokens[1], &response.retry_after_ms)) {
        fail(error, "malformed retry-after record: " + std::string(line));
        return std::nullopt;
      }
    } else if (tokens[0] == "version" && tokens.size() == 2) {
      if (!parse_u64_token(tokens[1], &response.version)) {
        fail(error, "malformed version record: " + std::string(line));
        return std::nullopt;
      }
    } else if (tokens[0] == "mutation-ack" && tokens.size() == 2) {
      if (!parse_u64_token(tokens[1], &response.mutation_ack)) {
        fail(error, "malformed mutation-ack record: " + std::string(line));
        return std::nullopt;
      }
    } else if (tokens[0] == "beacon-id" && tokens.size() == 2) {
      std::uint32_t id = 0;
      if (!parse_u32_token(tokens[1], &id)) {
        fail(error, "malformed beacon-id record: " + std::string(line));
        return std::nullopt;
      }
      response.beacon_ids.push_back(id);
    } else if (tokens[0] == "text" && tokens.size() == 2) {
      std::uint64_t n = 0;
      if (!parse_u64_token(tokens[1], &n) || n > kMaxFramePayload ||
          !cursor.raw_block(static_cast<std::size_t>(n), &response.text)) {
        fail(error, "malformed text block");
        return std::nullopt;
      }
    } else {
      fail(error, "unexpected response record: " + std::string(line));
      return std::nullopt;
    }
  }
  return response;
}

std::string format_response_capped(const Response& response) {
  std::string payload = format_response(response);
  if (payload.size() > kMaxFramePayload) {
    Response error;
    error.seq = response.seq;
    error.status = Status::kInternal;
    error.message = "response payload exceeds the " +
                    std::to_string(kMaxFramePayload) + "-byte frame cap";
    payload = format_response(error);
  }
  return payload;
}

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw ServeError("refusing to emit frame: payload of " +
                     std::to_string(payload.size()) +
                     " bytes exceeds the " +
                     std::to_string(kMaxFramePayload) + "-byte cap");
  }
  std::string frame;
  frame.reserve(kFrameMagic.size() + 12 + payload.size());
  frame += kFrameMagic;
  frame += std::to_string(payload.size());
  frame += '\n';
  frame += payload;
  return frame;
}

void FrameDecoder::mark_corrupt(const std::string& why) {
  corrupt_ = true;
  error_ = why;
  buffer_.clear();
}

void FrameDecoder::feed(std::string_view bytes) {
  if (corrupt_) return;
  buffer_.append(bytes);
}

std::optional<std::string> FrameDecoder::next() {
  if (corrupt_ || buffer_.empty()) return std::nullopt;
  const std::size_t nl = buffer_.find('\n');
  if (nl == std::string::npos) {
    if (buffer_.size() > kMaxHeaderBytes) {
      mark_corrupt("frame header missing newline");
    }
    return std::nullopt;
  }
  if (nl > kMaxHeaderBytes ||
      buffer_.compare(0, kFrameMagic.size(), kFrameMagic) != 0) {
    mark_corrupt("bad frame magic (expected 'abps1')");
    return std::nullopt;
  }
  std::uint64_t length = 0;
  const std::string_view length_text =
      std::string_view(buffer_).substr(kFrameMagic.size(),
                                       nl - kFrameMagic.size());
  if (!parse_u64_token(length_text, &length)) {
    mark_corrupt("malformed frame length");
    return std::nullopt;
  }
  if (length > kMaxFramePayload) {
    mark_corrupt("frame payload exceeds limit");
    return std::nullopt;
  }
  if (buffer_.size() - nl - 1 < length) return std::nullopt;  // need more
  std::string payload = buffer_.substr(nl + 1, length);
  buffer_.erase(0, nl + 1 + length);
  return payload;
}

}  // namespace abp::serve
