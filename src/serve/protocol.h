/// \file protocol.h
/// \brief Request/response model and wire codec of the localization query
/// service.
///
/// The service speaks a versioned, length-prefixed frame protocol designed
/// to be byte-exact round-trippable (like `src/io/`) yet safe against
/// untrusted input — every parse path returns a diagnostic instead of
/// tripping an internal invariant. A frame is
///
///     abps1 <payload-bytes>\n<payload>
///
/// where `abps1` pins the protocol version and `<payload-bytes>` is the
/// decimal length of the payload that follows. The payload itself is a
/// line-oriented text message:
///
///     abp-request 1 <seq> <endpoint>
///     field <name>
///     point <x> <y>            (repeated; localize / error-at / add-beacon)
///     algorithm <name>         (propose)
///     count <k>                (propose)
///     deadline <ms>            (optional; 0 or absent = no deadline)
///     principal <id>           (optional; multi-tenant identity for quotas)
///     version <v>              (optional; expected deployment version)
///     request-id <id> <attempt>  (optional; exactly-once write identity)
///     text <bytes>\n<raw bytes>\n   (snapshot install body, length-prefixed)
///
///     abp-response 1 <seq> <status>
///     message <text>           (single line; set when status != ok)
///     retry-after <ms>         (optional; overloaded backpressure hint)
///     version <v>              (optional; deployment version served)
///     mutation-ack <v>         (mutate responses: version now held)
///     estimate <x> <y> <connected>
///     error <value>
///     position <x> <y>
///     beacon-id <id>
///     text <bytes>\n<raw bytes>\n   (snapshot / stats body, length-prefixed)
///
/// The `version` and request-side `text` records were added for cluster
/// routing (cluster/): the router stamps each forwarded request with the
/// deployment version it replicated, a backend running an older snapshot
/// answers `version-mismatch` (retryable) instead of computing on stale
/// data, and snapshot requests carrying a `text` body *install* that field
/// on the backend. The `mutate` endpoint and `mutation-ack` response
/// record extend that machinery to writes: a mutate request carries the
/// points of one logged `add-beacon` plus the exact version it
/// establishes, a replica at version-1 applies it, a replica already at or
/// past that version acks idempotently, and a lagging replica answers
/// `version-mismatch` for the install-then-retry repair path. `version`
/// requests probe a deployment's current version without the snapshot
/// body (the replicator's replay-vs-resync decision). All cluster records
/// are omitted when zero/empty, so single-server traffic is byte-identical
/// to the pre-cluster protocol.
///
/// The `request-id` record makes writes exactly-once: a client mints one
/// 64-bit id per *logical* `add-beacon` (never per attempt) and counts the
/// delivery attempts alongside it. Servers and the cluster router keep a
/// bounded dedup index of applied ids; a redelivered id is answered with
/// the original ack instead of deploying a second beacon, and a *retry*
/// (attempt > 0) whose id has aged out of the index is answered
/// `dedup-expired` rather than silently re-appended. The record is omitted
/// when the id is zero, so id-free traffic stays byte-identical.
///
/// Doubles are written with 17 significant digits so positions and errors
/// survive the wire bit-exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "geom/vec2.h"

namespace abp::serve {

/// Transport-level failure (connect/send/receive/framing on the client
/// side). Server-side parse failures never throw — they become
/// `Status::kBadRequest` responses.
class ServeError : public std::runtime_error {
 public:
  explicit ServeError(const std::string& what) : std::runtime_error(what) {}
};

enum class Endpoint {
  kLocalize,   ///< centroid position estimates for a batch of points
  kErrorAt,    ///< localization error LE for a batch of points
  kPropose,    ///< run a placement algorithm on the current survey
  kAddBeacon,  ///< deploy beacons at explicit positions
  kSnapshot,   ///< serialized field (abp-field text format)
  kStats,      ///< service metrics dump
  kListFields, ///< names of loaded deployments
  kMutate,     ///< replicated write: apply one logged mutation at a version
  kVersion,    ///< cheap deployment-version probe (no snapshot body)
  kAdmin,      ///< membership control plane (add/drain/status); router-only
};

/// All endpoints, for iteration (metrics tables, fuzzing).
inline constexpr Endpoint kAllEndpoints[] = {
    Endpoint::kLocalize,  Endpoint::kErrorAt,  Endpoint::kPropose,
    Endpoint::kAddBeacon, Endpoint::kSnapshot, Endpoint::kStats,
    Endpoint::kListFields, Endpoint::kMutate,  Endpoint::kVersion,
    Endpoint::kAdmin};

enum class Status {
  kOk,
  kBadRequest,        ///< malformed frame/payload or invalid arguments
  kNotFound,          ///< unknown field or algorithm
  kUnavailable,       ///< server shutting down; retry elsewhere
  kInternal,          ///< handler failure
  kOverloaded,        ///< admission control shed the request; retryable
  kDeadlineExceeded,  ///< request deadline passed before execution
  kVersionMismatch,   ///< deployment version differs from the request's
  /// A write *retry* (request-id with attempt > 0) arrived after its id
  /// aged out of the server's dedup window, so the original outcome can no
  /// longer be proven. Definitive for that id: re-sending it yields the
  /// same answer, and the server will never silently re-append. The caller
  /// must verify the write (e.g. a `version`/`snapshot` read) and mint a
  /// fresh id if another beacon is really wanted.
  kDedupExpired,
};

/// True for statuses a client may safely retry: the request was shed before
/// (or instead of) execution, so a later attempt can succeed. Terminal
/// statuses (`bad-request`, `not-found`, `internal`, `dedup-expired`) will
/// fail identically on every retry and must not be re-sent.
bool status_retryable(Status status);

/// Per-endpoint policy, consulted by every layer that must decide how an
/// endpoint behaves without enumerating endpoints itself: router failover
/// (`idempotent`), the router response cache (`cacheable`), quota/metrics
/// accounting (`mutating`), client-origin rejection (`internal_only`),
/// router-local answering (`router_local`) and server-side request
/// coalescing (`batchable`). One row per endpoint — adding an endpoint
/// means adding one row here, not hunting call sites.
struct EndpointTraits {
  Endpoint endpoint = Endpoint::kLocalize;
  /// Safe for a router to re-send to another replica after a transport
  /// failure mid-call (the first attempt may or may not have executed).
  /// `add-beacon` deploys a new beacon per execution, so a blind retry
  /// could double-deploy; `mutate` carries the exact version it
  /// establishes, so a re-send is detected and acked idempotently by any
  /// replica already at (or past) that version.
  bool idempotent = true;
  /// Read-only and deterministic given the deployment version: a router
  /// may serve a repeat of the same request bytes from a version-fenced
  /// response cache. `propose` is read-only but draws from the
  /// deployment's RNG (successive calls differ by design), and `snapshot`
  /// bodies are too large to keep per-request — neither caches.
  bool cacheable = false;
  /// Changes the deployment's beacon set (and therefore its version).
  bool mutating = false;
  /// Minted by cluster infrastructure only; a router rejects it from
  /// clients (accepting one would fork a replica's version history).
  bool internal_only = false;
  /// Answered by the router itself (metrics, deployment registry) instead
  /// of being forwarded to a backend. Exempt from per-principal quotas so
  /// operators can always introspect a loaded router.
  bool router_local = false;
  /// Eligible for cross-request batching: point queries against the same
  /// deployment coalesce into one pass over the spatial index.
  bool batchable = false;
};

/// The traits row for `endpoint` (total: every endpoint has one).
const EndpointTraits& endpoint_traits(Endpoint endpoint);

const char* endpoint_name(Endpoint endpoint);
std::optional<Endpoint> endpoint_from_name(std::string_view name);
const char* status_name(Status status);
std::optional<Status> status_from_name(std::string_view name);

struct Request {
  std::uint64_t seq = 0;
  Endpoint endpoint = Endpoint::kLocalize;
  /// Target deployment; must match [A-Za-z0-9_.-]{1,64}.
  std::string field = "default";
  std::vector<Vec2> points;
  std::string algorithm;      ///< propose only
  std::uint32_t count = 1;    ///< propose only: beacons to suggest
  /// Execution budget in milliseconds from server-side arrival; 0 means no
  /// deadline. A request still queued when its deadline passes is shed with
  /// `Status::kDeadlineExceeded` instead of being computed.
  std::uint32_t deadline_ms = 0;
  /// Multi-tenant identity: the principal (tenant) this request acts for,
  /// minted by the client. 0 = anonymous — the record is omitted on the
  /// wire, so principal-free traffic stays byte-identical to the
  /// pre-identity protocol. Routers and servers account per-principal
  /// token-bucket quotas and weighted-fair dequeue against it.
  std::uint64_t principal = 0;
  /// Expected deployment version (cluster routing); 0 = unversioned. A
  /// backend whose deployment carries a different non-zero version answers
  /// `kVersionMismatch` instead of serving stale data.
  std::uint64_t version = 0;
  /// Exactly-once write identity: a client-generated 64-bit id minted once
  /// per logical `add-beacon` and held constant across every retry of it.
  /// 0 = id-free (the record is omitted on the wire, keeping pre-existing
  /// traffic byte-identical). On `mutate`, carries the id of the logged
  /// write so replicas reconstruct the same dedup state on replay.
  std::uint64_t request_id = 0;
  /// Delivery attempt counter for `request_id`, 0-based: 0 on the first
  /// send, incremented by the client on each retry (saturating). A server
  /// uses it to tell a first delivery (append if unseen) from a retry
  /// (unseen id ⇒ possibly expired ⇒ `dedup-expired`, never re-append).
  std::uint32_t attempt = 0;
  /// Snapshot-install body: a non-empty `text` on a snapshot request asks
  /// the server to *install* this serialized field (at `version`) rather
  /// than return its current one. Empty for every other use.
  std::string text;

  bool operator==(const Request&) const = default;
};

/// One position estimate (localize).
struct PointEstimate {
  Vec2 estimate;
  std::uint32_t connected = 0;  ///< beacons heard at the query point

  bool operator==(const PointEstimate&) const = default;
};

struct Response {
  std::uint64_t seq = 0;
  Status status = Status::kOk;
  std::string message;                   ///< diagnostic when status != ok
  /// Server-side backpressure hint on `overloaded` sheds: how long the
  /// client should wait before retrying, in milliseconds. 0 = no hint.
  /// `RetryingClient` honors it in place of jittered backoff, capped by
  /// its own backoff ceiling and deadline budget.
  std::uint32_t retry_after_ms = 0;
  /// Version of the deployment that served the request (cluster routing);
  /// 0 = unversioned deployment (record omitted on the wire).
  std::uint64_t version = 0;
  /// Mutation acknowledgement (`mutate` responses only): the deployment
  /// version the replica holds after processing the mutation — equal to the
  /// request's version when the mutation applied, larger when the replica
  /// had already absorbed it via a later snapshot or replay (idempotent
  /// skip). 0 = not a mutation ack (record omitted on the wire, keeping
  /// pre-cluster responses byte-identical).
  std::uint64_t mutation_ack = 0;
  std::vector<PointEstimate> estimates;  ///< localize
  std::vector<double> errors;            ///< error-at
  std::vector<Vec2> positions;           ///< propose / add-beacon echo
  std::vector<std::uint32_t> beacon_ids; ///< add-beacon
  std::string text;                      ///< snapshot / stats / list-fields

  bool operator==(const Response&) const = default;
};

/// Serialize to payload text (the bytes inside a frame).
std::string format_request(const Request& request);
std::string format_response(const Response& response);

/// Serialize a response, enforcing the frame cap on the write side: an
/// oversized payload is replaced by a `kInternal` error response (same seq)
/// so a peer never receives a frame its decoder is guaranteed to reject.
std::string format_response_capped(const Response& response);

/// Parse payload text. On failure returns nullopt and, if `error` is
/// non-null, stores a one-line diagnostic. Never throws on untrusted bytes.
std::optional<Request> parse_request(std::string_view payload,
                                     std::string* error = nullptr);
std::optional<Response> parse_response(std::string_view payload,
                                       std::string* error = nullptr);

/// Frames larger than this are rejected by the decoder (memory safety
/// against hostile length prefixes).
inline constexpr std::size_t kMaxFramePayload = 4u << 20;

/// Requests carrying more points than this are rejected with `bad-request`.
/// Shared by servers and the cluster router so a write the router accepts
/// into its mutation log is never one a replica would refuse.
inline constexpr std::size_t kMaxPointsPerRequest = 65536;

/// Wrap a payload in a length-prefixed frame. The cap applies on the write
/// side too: a payload larger than `kMaxFramePayload` throws `ServeError`
/// instead of emitting a frame every conforming decoder rejects.
std::string encode_frame(std::string_view payload);

/// Incremental frame decoder: feed arbitrary byte chunks, pull complete
/// payloads. Once the stream is corrupt (bad magic, oversized or malformed
/// length) the decoder stays corrupt — framing cannot be resynchronized.
class FrameDecoder {
 public:
  void feed(std::string_view bytes);
  /// Next complete payload, or nullopt if more bytes are needed (or the
  /// stream is corrupt).
  std::optional<std::string> next();

  bool corrupt() const { return corrupt_; }
  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed by `next()`.
  std::size_t buffered() const { return buffer_.size(); }

 private:
  void mark_corrupt(const std::string& why);

  std::string buffer_;
  bool corrupt_ = false;
  std::string error_;
};

/// True iff `name` is a valid deployment name on the wire.
bool valid_field_name(std::string_view name);

}  // namespace abp::serve
