#include "serve/epoll_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace abp::serve {

namespace {

/// Tick interval: the latency bound on deadline checks, not on replies
/// (replies are flushed by eventfd wakeups).
constexpr int kTickMs = 20;

[[noreturn]] void throw_errno(const std::string& what) {
  throw ServeError(what + ": " + std::strerror(errno));
}

}  // namespace

EpollServerTransport::EpollServerTransport(FrameSink& sink, Options options)
    : sink_(&sink), options_(options) {}

EpollServerTransport::~EpollServerTransport() { stop(); }

void EpollServerTransport::start() {
  ABP_CHECK(listen_fd_ < 0, "transport already started");
  const std::size_t shard_count = std::max<std::size_t>(1, options_.event_shards);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    throw_errno("bind");
  }
  if (::listen(listen_fd_, SOMAXCONN) < 0) throw_errno("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  // Registered before the loop thread starts, so this is loop-thread-safe.
  shards_[0]->loop->add_fd(listen_fd_, EPOLLIN,
                           [this](std::uint32_t) { accept_ready(); });
  for (std::unique_ptr<Shard>& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread([this, s] {
      s->loop->run([this, s] { tick(*s); }, kTickMs);
    });
  }
}

void EpollServerTransport::accept_ready() {
  // Level-triggered listener: accept the whole backlog, not one per wakeup.
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: backlog drained. Transient errors (ECONNABORTED, EMFILE
      // after a peer vanished, ...) also just end this round; the next
      // EPOLLIN retries.
      return;
    }
    if (stopping_.load()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t id = next_conn_id_++;
    Shard& target = *shards_[id % shards_.size()];
    if (&target == shards_[0].get()) {
      install(target, fd, id);
    } else {
      target.loop->post([this, &target, fd, id] { install(target, fd, id); });
    }
  }
}

void EpollServerTransport::install(Shard& shard, int fd, std::uint64_t id) {
  if (stopping_.load()) {
    ::close(fd);
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  Connection::Limits limits;
  limits.max_inflight = options_.max_inflight;
  limits.write_high_watermark = options_.write_high_watermark;
  limits.write_low_watermark = options_.write_low_watermark;
  // The wake (fired by whichever worker thread completes a reply) only
  // posts back to the owning loop; the weak loop pointer makes a late wake
  // after transport teardown a no-op instead of a use-after-free.
  std::weak_ptr<EventLoop> weak_loop = shard.loop;
  Conn conn;
  conn.fd = fd;
  conn.state = std::make_shared<Connection>(
      id, *sink_, limits, [this, weak_loop, &shard, id] {
        if (std::shared_ptr<EventLoop> loop = weak_loop.lock()) {
          loop->post([this, &shard, id] { flush(shard, id); });
        }
      });
  conn.armed = EPOLLIN;
  shard.loop->add_fd(fd, EPOLLIN, [this, &shard, id](std::uint32_t events) {
    handle_io(shard, id, events);
  });
  shard.conns.emplace(id, std::move(conn));
}

void EpollServerTransport::handle_io(Shard& shard, std::uint64_t id,
                                     std::uint32_t events) {
  const auto it = shard.conns.find(id);
  if (it == shard.conns.end()) return;
  Conn& conn = it->second;
  if (events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
    if (!conn.peer_closed && conn.state->want_read()) {
      const IoResult r = read_available(conn.fd, *conn.state);
      if (r.error) {
        close_conn(shard, id);
        return;
      }
      if (r.peer_closed) conn.peer_closed = true;
      // Sinks that execute on the caller's thread (a manual-mode server)
      // drain whatever the read just queued.
      if (r.bytes > 0) sink_->pump_ready();
    } else if (events & (EPOLLERR | EPOLLHUP)) {
      conn.peer_closed = true;
    }
  }
  flush(shard, id);
}

void EpollServerTransport::flush(Shard& shard, std::uint64_t id) {
  const auto it = shard.conns.find(id);
  if (it == shard.conns.end()) return;  // stale wake after close
  Conn& conn = it->second;
  const IoResult w = write_available(conn.fd, *conn.state, conn.outbox);
  if (w.error) {
    close_conn(shard, id);
    return;
  }
  if (conn.state->drained() &&
      (conn.peer_closed || conn.state->corrupt() || stopping_.load())) {
    close_conn(shard, id);
    return;
  }
  update_interest(shard, conn);
}

void EpollServerTransport::update_interest(Shard& shard, Conn& conn) {
  std::uint32_t desired = 0;
  if (!conn.peer_closed && !stopping_.load() && conn.state->want_read()) {
    desired |= EPOLLIN;
  }
  // EPOLLOUT only while bytes are actually stuck: a level-triggered loop
  // armed for OUT on an idle writable socket would spin.
  if (!conn.outbox.empty() || conn.state->has_writable()) {
    desired |= EPOLLOUT;
  }
  if (desired != conn.armed) {
    shard.loop->modify_fd(conn.fd, desired);
    conn.armed = desired;
  }
}

void EpollServerTransport::close_conn(Shard& shard, std::uint64_t id) {
  const auto it = shard.conns.find(id);
  if (it == shard.conns.end()) return;
  Conn& conn = it->second;
  shard.loop->remove_fd(conn.fd);
  ::close(conn.fd);
  conn.state->disarm_wake();
  shard.conns.erase(it);
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
}

void EpollServerTransport::tick(Shard& shard) {
  const double now = sink_->now_ms();
  const double read_budget_ms = options_.read_timeout_s * 1e3;
  const double write_budget_ms = options_.write_timeout_s * 1e3;
  std::vector<std::uint64_t> to_close;
  for (auto& [id, conn] : shard.conns) {
    if (shard.drain_deadline_ms >= 0 && now >= shard.drain_deadline_ms) {
      to_close.push_back(id);  // drain budget exhausted: force-close
      continue;
    }
    if (stopping_.load() && conn.state->drained()) {
      to_close.push_back(id);
      continue;
    }
    const bool unsent = !conn.outbox.empty() || conn.state->has_writable();
    const double idle_ms = now - conn.state->last_activity_ms();
    if (unsent ? idle_ms >= write_budget_ms : idle_ms >= read_budget_ms) {
      to_close.push_back(id);
    }
  }
  for (const std::uint64_t id : to_close) close_conn(shard, id);
}

void EpollServerTransport::stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  if (shards_.empty()) return;  // never started
  stopping_.store(true);
  shards_[0]->loop->post([this] {
    if (listen_fd_ >= 0) {
      shards_[0]->loop->remove_fd(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  });
  for (std::unique_ptr<Shard>& shard : shards_) {
    Shard* s = shard.get();
    s->loop->post([this, s] {
      s->drain_deadline_ms = sink_->now_ms() + options_.write_timeout_s * 1e3;
      std::vector<std::uint64_t> ids;
      ids.reserve(s->conns.size());
      for (auto& [id, conn] : s->conns) {
        ::shutdown(conn.fd, SHUT_RD);  // no new requests; finish replies
        ids.push_back(id);
      }
      for (const std::uint64_t id : ids) flush(*s, id);
    });
  }
  // Bounded real-time wait for the shards to drain what they accepted. The
  // ticks keep closing drained (or deadline-expired) connections; anything
  // left after the budget is force-closed below once the threads are gone.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.write_timeout_s + 1.0));
  while (open_conns_.load(std::memory_order_relaxed) != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (std::unique_ptr<Shard>& shard : shards_) shard->loop->stop();
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    for (auto& [id, conn] : shard->conns) {
      ::close(conn.fd);
      conn.state->disarm_wake();
      open_conns_.fetch_sub(1, std::memory_order_relaxed);
    }
    shard->conns.clear();
  }
}

}  // namespace abp::serve
