/// \file transport.h
/// \brief Client-side transport abstraction and the in-process loopback.
///
/// A `ClientTransport` carries one request/response exchange through the
/// full wire codec. Two implementations exist: `LoopbackTransport` here
/// (deterministic, in-process — what every unit test and `abp serve
/// --oneshot` use) and `TcpClientTransport` in tcp_transport.h (POSIX
/// sockets). Both speak byte-identical frames, so anything validated over
/// the loopback holds over TCP.
#pragma once

#include <future>
#include <string>

#include "serve/server.h"

namespace abp::serve {

class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  /// One request/response exchange through the wire codec. Throws
  /// `ServeError` on transport or codec failure (never on an error
  /// *status* — those come back in the response).
  virtual Response roundtrip(const Request& request) = 0;

  virtual std::string name() const = 0;
};

/// In-process transport: encodes the request into a frame, decodes it the
/// way a remote peer would, submits to the server, and frames the response
/// back. With a manual-mode server the exchange is fully synchronous and
/// deterministic; with a threaded server it blocks on the worker's reply.
class LoopbackTransport final : public ClientTransport {
 public:
  explicit LoopbackTransport(Server& server) : server_(&server) {}

  Response roundtrip(const Request& request) override;
  std::string name() const override { return "loopback"; }

  /// Raw frame exchange (malformed-input testing): returns the encoded
  /// response frame, mirroring what a server-side transport emits for the
  /// given bytes — including the bad-request frame for corrupt framing.
  std::string roundtrip_frame(const std::string& frame);

  /// Submit without waiting; the reply callback receives the encoded
  /// response frame. Used for pipelined throughput measurement.
  void send_async(const Request& request,
                  std::function<void(std::string)> on_reply_frame);

 private:
  Server* server_;
};

}  // namespace abp::serve
