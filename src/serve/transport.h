/// \file transport.h
/// \brief Client-side transport abstraction and the in-process loopback.
///
/// A `ClientTransport` carries request/response exchanges through the full
/// wire codec — synchronously via `roundtrip`, or pipelined via
/// `send_async`/`flush` (part of the interface, so callers that pump many
/// requests per connection need no transport-specific casts). Two
/// implementations exist: `LoopbackTransport` here (deterministic,
/// in-process — what every unit test and `abp serve --oneshot` use) and
/// `TcpClientTransport` in tcp_transport.h (POSIX sockets). Both speak
/// byte-identical frames, so anything validated over the loopback holds
/// over TCP.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <string>

#include "serve/server.h"

namespace abp::serve {

class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  /// One request/response exchange through the wire codec. Throws
  /// `ServeError` on transport or codec failure (never on an error
  /// *status* — those come back in the response).
  virtual Response roundtrip(const Request& request) = 0;

  /// Pipelined send: dispatch without waiting for the response. The reply
  /// callback receives the encoded response frame; *when* it runs is
  /// transport-specific (a worker thread for the loopback, inside a later
  /// `flush()` for TCP), so callers must not assume it fired until
  /// `flush()` returns. Not thread-safe per transport instance.
  virtual void send_async(const Request& request,
                          std::function<void(std::string)> on_reply_frame) = 0;

  /// Block until every `send_async` reply callback has run. Throws
  /// `ServeError` if the transport died before all replies arrived.
  virtual void flush() {}

  virtual std::string name() const = 0;
};

/// In-process transport: encodes the request into a frame, decodes it the
/// way a remote peer would, submits to the server, and frames the response
/// back. With a manual-mode server the exchange is fully synchronous and
/// deterministic; with a threaded server it blocks on the worker's reply.
class LoopbackTransport final : public ClientTransport {
 public:
  explicit LoopbackTransport(Server& server) : server_(&server) {}

  Response roundtrip(const Request& request) override;
  std::string name() const override { return "loopback"; }

  /// Raw frame exchange (malformed-input testing): returns the encoded
  /// response frame, mirroring what a server-side transport emits for the
  /// given bytes — including the bad-request frame for corrupt framing.
  std::string roundtrip_frame(const std::string& frame);

  /// Submit without waiting; with a threaded server the reply callback runs
  /// on a worker thread, with a manual server it runs inside `flush()`.
  void send_async(const Request& request,
                  std::function<void(std::string)> on_reply_frame) override;

  /// Waits until every pipelined reply has been delivered (pumping first
  /// when the server is in manual mode).
  void flush() override;

 private:
  Server* server_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t outstanding_ = 0;
};

}  // namespace abp::serve
