/// \file client.h
/// \brief Retrying client over any `ClientTransport`.
///
/// Production peers of the query service live on lossy links (the paper's
/// noisy-radio world at the transport layer): connections reset, servers
/// shed load, deadlines expire. `RetryingClient` wraps a transport factory
/// with the standard recovery loop:
///
///  * **Classification** — shed statuses (`overloaded`, `unavailable`,
///    `deadline-exceeded`) and transport failures (connection reset,
///    timeout, corrupt framing) are retryable; terminal statuses
///    (`bad-request`, `not-found`, `internal`) are returned immediately
///    and never re-sent.
///  * **Backoff** — capped exponential with decorrelated jitter
///    (`sleep = min(cap, uniform(base, 3·prev))`), seeded through
///    `abp::Rng` so a fixed policy seed reproduces the exact schedule.
///  * **Deadline budget** — `deadline_budget_ms` bounds the whole call
///    (attempts + backoff). The remaining budget is propagated as each
///    attempt's request `deadline_ms`, so the server never works on an
///    attempt the client has already given up on.
///  * **Exactly-once writes** — an `add-beacon` call mints one `request-id`
///    for the whole logical write (unless the caller supplied its own) and
///    holds it constant across every retry; only the attempt counter moves.
///    Servers dedup on the id, so a retry after a lost ack collects the
///    original acknowledgement instead of deploying a second beacon.
///
/// The clock and sleeper are injectable: fault-injection tests drive the
/// loop on a manual clock with zero real sleeping.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "rng/rng.h"
#include "serve/transport.h"

namespace abp::serve {

struct RetryPolicy {
  std::size_t max_attempts = 4;      ///< total tries, including the first
  double base_backoff_ms = 10.0;     ///< first/minimum backoff
  double max_backoff_ms = 2000.0;    ///< backoff cap
  double deadline_budget_ms = 0.0;   ///< whole-call budget; 0 = unbounded
  std::uint64_t seed = 1;            ///< jitter stream seed
};

/// Outcome of one `call()`: either a final response (any status — a
/// retryable status here means retries were exhausted) or a transport-level
/// failure diagnostic. `attempts`/`backoff_ms` expose the schedule for
/// tests and logs.
struct CallResult {
  bool ok = false;             ///< `response` holds the final answer
  Response response;
  std::string error;           ///< diagnostic when !ok
  std::size_t attempts = 0;
  std::size_t transport_errors = 0;
  double backoff_ms = 0.0;     ///< total backoff slept
};

class RetryingClient {
 public:
  /// Creates a fresh transport per (re)connection. The factory may throw
  /// `ServeError` (e.g. connection refused) — that counts as a retryable
  /// transport failure.
  using TransportFactory = std::function<std::unique_ptr<ClientTransport>()>;

  RetryingClient(TransportFactory factory, RetryPolicy policy = {});

  /// Run the retry loop for one request. Never throws on transport
  /// failure — failures land in `CallResult::error`. An `add-beacon`
  /// request with `request_id == 0` gets a fresh id minted for the whole
  /// call; a non-zero id is taken as the caller's logical-write identity
  /// and preserved. Either way the id never changes between attempts and
  /// `attempt` counts the deliveries (0-based, saturating).
  CallResult call(Request request);

  /// Test hooks: replace real sleeping / steady_clock with virtual time.
  void set_sleeper(std::function<void(double ms)> sleeper);
  void set_clock(std::function<double()> clock_ms);
  /// Test hook: deterministic request-id minting (must never return 0).
  void set_request_id_source(std::function<std::uint64_t()> source);

  const RetryPolicy& policy() const { return policy_; }

 private:
  double next_backoff_ms();
  double now_ms() const;
  std::uint64_t mint_request_id();

  TransportFactory factory_;
  RetryPolicy policy_;
  std::unique_ptr<ClientTransport> transport_;
  Rng rng_;
  double prev_backoff_ms_ = 0.0;
  std::function<void(double)> sleeper_;
  std::function<double()> clock_ms_;
  std::function<std::uint64_t()> request_id_source_;
};

/// Non-owning adapter so an externally owned transport (loopback, fault
/// injector) can back a `RetryingClient` while the test keeps direct access
/// to it across "reconnections".
std::unique_ptr<ClientTransport> borrow_transport(ClientTransport& inner);

}  // namespace abp::serve
