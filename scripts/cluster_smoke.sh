#!/usr/bin/env bash
# Cluster smoke: a router fronting 2 real `abp serve` backends over
# loopback TCP. Asserts (1) a routed query is byte-identical to the same
# query against a direct single server, (2) a routed `add-beacon` write is
# quorum-acked and readable through the router, (3) after SIGKILLing one
# backend the router fails reads over to the survivor — both the pristine
# query and the read-your-write stay byte-identical, (4) writes keep
# acking after the kill (--write-quorum 1) and the version probe counts
# them, (5) router stats are served locally, (6) a forced retry — the same
# command re-sent with `--request-id`/`--attempt` as if the first ack was
# lost in the degraded cluster — is answered with byte-identical ack bytes
# and moves the version by exactly one.
#
# Usage: scripts/cluster_smoke.sh   (BUILD=<dir> to override build dir)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD=${BUILD:-build}
ABP="$BUILD/tools/abp"
WORK=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

QUERY_ARGS=(--type localize --points "10,10;50,50;80,20" --seq 1)

# The announce line is flushed as soon as the transport binds; poll for it.
port_of() {
  local log=$1 port
  for _ in $(seq 1 100); do
    port=$(sed -nE 's/.*on 127\.0\.0\.1:([0-9]+).*/\1/p' "$log" | head -1)
    if [ -n "$port" ]; then echo "$port"; return 0; fi
    sleep 0.1
  done
  echo "FAIL: no announced port in $log" >&2
  cat "$log" >&2
  return 1
}

echo "== generate field =="
"$ABP" generate --beacons 30 --out "$WORK/field.txt" --seed 5 >/dev/null

echo "== start 2 backends + 1 direct reference server =="
"$ABP" serve --field "$WORK/field.txt" --port 0 >"$WORK/b1.log" 2>&1 &
B1_PID=$!
"$ABP" serve --field "$WORK/field.txt" --port 0 >"$WORK/b2.log" 2>&1 &
"$ABP" serve --field "$WORK/field.txt" --port 0 >"$WORK/direct.log" 2>&1 &
B1_PORT=$(port_of "$WORK/b1.log")
B2_PORT=$(port_of "$WORK/b2.log")
DIRECT_PORT=$(port_of "$WORK/direct.log")

echo "== start router (backends :$B1_PORT :$B2_PORT, replication 2) =="
"$ABP" route --field "$WORK/field.txt" \
  --backend "127.0.0.1:$B1_PORT" --backend "127.0.0.1:$B2_PORT" \
  --replication 2 --write-quorum 1 --port 0 >"$WORK/router.log" 2>&1 &
ROUTER_PORT=$(port_of "$WORK/router.log")

echo "== query: direct vs routed must be byte-identical =="
"$ABP" query "${QUERY_ARGS[@]}" --connect "127.0.0.1:$DIRECT_PORT" \
  >"$WORK/direct.out"
"$ABP" query "${QUERY_ARGS[@]}" --connect "127.0.0.1:$ROUTER_PORT" \
  >"$WORK/routed1.out"
diff "$WORK/direct.out" "$WORK/routed1.out" || {
  echo "FAIL: routed response differs from direct response" >&2; exit 1; }

echo "== write: routed add-beacon replicates to both backends =="
"$ABP" query --type add-beacon --points "42,17" --seq 3 \
  --connect "127.0.0.1:$ROUTER_PORT" >"$WORK/write1.out"
grep -q "status ok" "$WORK/write1.out" || {
  echo "FAIL: routed add-beacon not acked" >&2
  cat "$WORK/write1.out" >&2
  exit 1; }
grep -q "beacon-id" "$WORK/write1.out" || {
  echo "FAIL: add-beacon ack missing beacon-id" >&2
  cat "$WORK/write1.out" >&2
  exit 1; }

echo "== read-your-write through the router =="
"$ABP" query --type localize --points "42,17" --seq 4 \
  --connect "127.0.0.1:$ROUTER_PORT" >"$WORK/read1.out"
grep -q "status ok" "$WORK/read1.out" || {
  echo "FAIL: fenced read after write not ok" >&2
  cat "$WORK/read1.out" >&2
  exit 1; }

echo "== scale up: start backend 3 and route-admin add it =="
"$ABP" serve --field "$WORK/field.txt" --port 0 >"$WORK/b3.log" 2>&1 &
B3_PORT=$(port_of "$WORK/b3.log")
"$ABP" route-admin add --backend "127.0.0.1:$B3_PORT" \
  --connect "127.0.0.1:$ROUTER_PORT" >"$WORK/admin_add.out"
grep -q "status ok" "$WORK/admin_add.out" || {
  echo "FAIL: route-admin add not acked" >&2
  cat "$WORK/admin_add.out" >&2
  exit 1; }
grep -q "added 127.0.0.1:$B3_PORT" "$WORK/admin_add.out" || {
  echo "FAIL: add ack missing the joined backend" >&2
  cat "$WORK/admin_add.out" >&2
  exit 1; }
grep -q "^epoch 2$" "$WORK/admin_add.out" || {
  echo "FAIL: scale-up should land at epoch 2" >&2
  cat "$WORK/admin_add.out" >&2
  exit 1; }

echo "== membership status shows 3 active members =="
"$ABP" route-admin status --connect "127.0.0.1:$ROUTER_PORT" \
  >"$WORK/admin_status.out"
[ "$(grep -c " active " "$WORK/admin_status.out")" -eq 3 ] || {
  echo "FAIL: status should list 3 active members" >&2
  cat "$WORK/admin_status.out" >&2
  exit 1; }

echo "== routed query on the 3-node ring stays byte-identical =="
"$ABP" query "${QUERY_ARGS[@]}" --connect "127.0.0.1:$ROUTER_PORT" \
  >"$WORK/routed_grown.out"
diff "$WORK/direct.out" "$WORK/routed_grown.out" || {
  echo "FAIL: post-scale-up routed response differs from direct" >&2
  exit 1; }

echo "== scale down: route-admin drain backend 3 =="
"$ABP" route-admin drain --backend "127.0.0.1:$B3_PORT" \
  --connect "127.0.0.1:$ROUTER_PORT" >"$WORK/admin_drain.out"
grep -q "status ok" "$WORK/admin_drain.out" || {
  echo "FAIL: route-admin drain not acked" >&2
  cat "$WORK/admin_drain.out" >&2
  exit 1; }
grep -q "drained 127.0.0.1:$B3_PORT" "$WORK/admin_drain.out" || {
  echo "FAIL: drain ack missing the drained backend" >&2
  cat "$WORK/admin_drain.out" >&2
  exit 1; }
grep -q "^epoch 3$" "$WORK/admin_drain.out" || {
  echo "FAIL: drain should land at epoch 3" >&2
  cat "$WORK/admin_drain.out" >&2
  exit 1; }

echo "== routed query after the full cycle stays byte-identical =="
"$ABP" query "${QUERY_ARGS[@]}" --connect "127.0.0.1:$ROUTER_PORT" \
  >"$WORK/routed_shrunk.out"
diff "$WORK/direct.out" "$WORK/routed_shrunk.out" || {
  echo "FAIL: post-drain routed response differs from direct" >&2
  exit 1; }

echo "== read-your-write survives the membership cycle =="
"$ABP" query --type localize --points "42,17" --seq 4 \
  --connect "127.0.0.1:$ROUTER_PORT" >"$WORK/read_cycled.out"
diff "$WORK/read1.out" "$WORK/read_cycled.out" || {
  echo "FAIL: read-your-write changed across add+drain" >&2
  exit 1; }

echo "== kill backend 1 (pid $B1_PID), query again =="
kill -KILL "$B1_PID"
"$ABP" query "${QUERY_ARGS[@]}" --connect "127.0.0.1:$ROUTER_PORT" \
  >"$WORK/routed2.out"
diff "$WORK/direct.out" "$WORK/routed2.out" || {
  echo "FAIL: post-kill routed response differs from direct response" >&2
  exit 1; }

echo "== the write survives the failover byte-identically =="
"$ABP" query --type localize --points "42,17" --seq 4 \
  --connect "127.0.0.1:$ROUTER_PORT" >"$WORK/read2.out"
diff "$WORK/read1.out" "$WORK/read2.out" || {
  echo "FAIL: post-kill read-your-write differs from pre-kill read" >&2
  exit 1; }

echo "== writes keep acking on the survivor (write-quorum 1) =="
"$ABP" query --type add-beacon --points "17,42" --seq 5 \
  --connect "127.0.0.1:$ROUTER_PORT" >"$WORK/write2.out"
grep -q "status ok" "$WORK/write2.out" || {
  echo "FAIL: post-kill add-beacon not acked at quorum 1" >&2
  cat "$WORK/write2.out" >&2
  exit 1; }

echo "== version probe counts install + 2 writes =="
"$ABP" query --type version --seq 6 --connect "127.0.0.1:$ROUTER_PORT" \
  >"$WORK/version.out"
grep -q "^version 3$" "$WORK/version.out" || {
  echo "FAIL: version probe should answer 3 (install + 2 mutations)" >&2
  cat "$WORK/version.out" >&2
  exit 1; }

echo "== forced retry: resent request id dedups to the original ack =="
# The cluster is degraded (b1 dead, quorum 1) — exactly when a client's ack
# is most likely to get lost and retried. Write with an explicit request id,
# then re-send the identical command as attempt 1: the router must answer
# the retry from the dedup index with the *original* ack bytes, not append a
# second beacon.
"$ABP" query --type add-beacon --points "33,33" --seq 7 --request-id 777 \
  --connect "127.0.0.1:$ROUTER_PORT" >"$WORK/write3.out"
grep -q "status ok" "$WORK/write3.out" || {
  echo "FAIL: id-carrying add-beacon not acked" >&2
  cat "$WORK/write3.out" >&2
  exit 1; }
"$ABP" query --type add-beacon --points "33,33" --seq 7 --request-id 777 \
  --attempt 1 --connect "127.0.0.1:$ROUTER_PORT" >"$WORK/write3_retry.out"
diff "$WORK/write3.out" "$WORK/write3_retry.out" || {
  echo "FAIL: retried write's ack differs from the original ack" >&2
  exit 1; }

echo "== version probe: the two deliveries appended exactly once =="
"$ABP" query --type version --seq 8 --connect "127.0.0.1:$ROUTER_PORT" \
  >"$WORK/version2.out"
grep -q "^version 4$" "$WORK/version2.out" || {
  echo "FAIL: version should be exactly 4 (one append for two deliveries)" >&2
  cat "$WORK/version2.out" >&2
  exit 1; }

echo "== router stats are answered locally =="
"$ABP" query --type stats --seq 2 --connect "127.0.0.1:$ROUTER_PORT" \
  >"$WORK/stats.out"
grep -q "abp-route-stats" "$WORK/stats.out" || {
  echo "FAIL: router stats missing abp-route-stats body" >&2
  cat "$WORK/stats.out" >&2
  exit 1; }
grep -q "membership.epoch 3" "$WORK/stats.out" || {
  echo "FAIL: stats should report membership.epoch 3 after add+drain" >&2
  cat "$WORK/stats.out" >&2
  exit 1; }
grep -q "handoff.snapshots" "$WORK/stats.out" || {
  echo "FAIL: stats missing handoff counters" >&2
  cat "$WORK/stats.out" >&2
  exit 1; }

echo "PASS: routed == direct, writes quorum-acked, readable, exactly-once" \
  "across a kill and a forced retry, and elastic through add+drain"
