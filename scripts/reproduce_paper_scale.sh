#!/usr/bin/env bash
# Regenerate every paper table/figure at FULL paper scale (1000 random
# fields per density cell, §4.1). On a single core this takes several
# hours; the bench defaults (50-100 trials) reproduce the same shapes in
# minutes and are what CI runs.
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD=${BUILD:-build}
OUT=${OUT:-paper_scale_results}
TRIALS=${TRIALS:-1000}
mkdir -p "$OUT"

run() {
  local bench=$1; shift
  echo "=== $bench (trials=$TRIALS) ==="
  "$BUILD/bench/$bench" --trials "$TRIALS" --csv "$OUT/$bench.csv" \
      --gnuplot "$OUT/$bench" "$@" | tee "$OUT/$bench.txt"
}

run bench_fig4_mean_error_ideal
run bench_fig5_improvement_ideal
run bench_fig6_mean_error_noise
run bench_fig7_random_noise
run bench_fig8_max_noise
run bench_fig9_grid_noise

# Parameter-free / fixed-cost benches at their defaults.
for b in bench_table1_params bench_fig1_granularity \
         bench_bound_overlap_ratio bench_des_selfinterference; do
  echo "=== $b ==="
  "$BUILD/bench/$b" | tee "$OUT/$b.txt"
done

echo "Results in $OUT/. Plot with: for f in $OUT/*.gp; do gnuplot \$f; done"
