/// tools/abp_cli.cc — the `abp` command-line workbench.
///
/// Drives the complete adaptive-beacon-placement lifecycle from a shell,
/// with beacon fields and surveys persisted in the library's text format:
///
///   abp generate --beacons 40 --out field.txt [--mode uniform|airdrop|
///                clustered|grid] [--seed S] [--side 100]
///   abp report   --field field.txt [--noise 0.3] [--render]
///   abp survey   --field field.txt --out survey.txt [--stride 2]
///                [--gps-sigma 1.0] [--noise 0.3]
///   abp place    --field field.txt --survey survey.txt --out field2.txt
///                [--algorithm grid|grid-norm|max|random|coverage|locus]
///                [--count 3] [--noise 0.3]
///   abp schedule --field field.txt --out field2.txt  (distributed on/off)
///   abp sweep    --figure 4|5|6|7|8|9 [--trials N] [--csv PATH]
///   abp serve    --field field.txt [--name default] [--noise X]
///                [--port P | --oneshot --in req.bin [--out resp.bin]]
///                [--workers N] [--batch B]
///   abp route    --field field.txt --backend H:P [--backend H:P ...]
///                [--replication R] [--write-quorum Q] [--log-retain L]
///                [--dedup 0|1] [--cache 0|1] [--cache-entries C]
///                [--quota-rps R [--quota-burst B]]
///                [--heartbeat-ms H] [--port P]
///                [--transport threaded|epoll]
///   abp route-admin add|drain|status --connect H:P [--backend H:P]
///   abp query    --type localize|error-at|propose|add-beacon|snapshot|
///                stats|list-fields [--points "x,y;x,y"] [--algorithm A]
///                [--name default] [--count K] [--principal ID]
///                [--request-id ID [--attempt N]]
///                (--field FILE | --connect HOST:PORT |
///                 --encode-to FILE [--append] | --decode FILE)
///
/// Exit status 0 on success; CheckFailure messages go to stderr with
/// status 1.
#include <poll.h>

#include <algorithm>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/flags.h"
#include "common/table.h"
#include "eval/figures.h"
#include "eval/report.h"
#include "field/generators.h"
#include "io/field_io.h"
#include "loc/coverage.h"
#include "loc/error_map.h"
#include "loc/render.h"
#include "placement/coverage_placement.h"
#include "placement/distributed_scheduler.h"
#include "placement/grid_placement.h"
#include "placement/locus_placement.h"
#include "placement/max_placement.h"
#include "placement/random_placement.h"
#include "radio/noise_model.h"
#include "robot/surveyor.h"
#include "cluster/backend_pool.h"
#include "cluster/config.h"
#include "cluster/membership.h"
#include "cluster/replicator.h"
#include "cluster/ring.h"
#include "cluster/router.h"
#include "serve/client.h"
#include "serve/config.h"
#include "serve/server.h"
#include "serve/server_transport.h"
#include "serve/tcp_transport.h"
#include "serve/transport.h"
#include "terrain/heightmap.h"

namespace abp::cli {
namespace {

int usage() {
  std::cerr
      << "usage: abp <command> [flags]\n"
         "  generate --beacons N --out FILE [--mode uniform|airdrop|"
         "clustered|grid] [--seed S] [--side M]\n"
         "  report   --field FILE [--noise X] [--render]\n"
         "  survey   --field FILE --out FILE [--stride K] [--gps-sigma S] "
         "[--noise X] [--seed S]\n"
         "  place    --field FILE --survey FILE --out FILE [--algorithm A] "
         "[--count K] [--noise X] [--seed S]\n"
         "  schedule --field FILE --out FILE [--seed S]\n"
         "  sweep    --figure 4|5|6|7|8|9 [--trials N] [--csv PATH] "
         "[--stride K] [--seed S]\n"
         "  serve    --field FILE [--name N] [--noise X] [--seed S] "
         "[--workers W] [--batch B]\n"
         "           [--max-queue Q] [--max-inflight I] "
         "[--retry-after-ms H] [--dedup-window D]\n"
         "           [--quota-rps R [--quota-burst B]]\n"
         "           [--transport threaded|epoll] [--event-shards E]\n"
         "           [--read-timeout-s R] [--write-timeout-s W]\n"
         "           [--port P | --oneshot --in REQ [--out RESP]]\n"
         "  route    --field FILE --backend HOST:PORT [--backend ...] "
         "[--name N]\n"
         "           [--replication R] [--write-quorum Q] [--log-retain L] "
         "[--dedup 0|1]\n"
         "           [--cache 0|1] [--cache-entries C] "
         "[--quota-rps R [--quota-burst B]]\n"
         "           [--heartbeat-ms H] [--failure-threshold F]\n"
         "           [--transport threaded|epoll] [--event-shards E] "
         "[--port P]\n"
         "           [--max-inflight I] [--retry-after-ms H] "
         "[--connect-timeout-s C]\n"
         "           [--admin 0|1] [--drain-timeout-ms D]\n"
         "  route-admin add|drain|status --connect HOST:PORT "
         "[--backend HOST:PORT] [--timeout-s T]\n"
         "  query    --type T [--points \"x,y;x,y\"] [--algorithm A] "
         "[--name N] [--count K]\n"
         "           [--principal ID] [--deadline-ms D] [--retries R] "
         "[--budget-ms B] [--request-id ID [--attempt N]]\n"
         "           (--field FILE | --connect HOST:PORT | "
         "--encode-to FILE [--append] | --decode FILE)\n";
  return 2;
}

PerBeaconNoiseModel make_model(const BeaconField& field, double noise,
                               std::uint64_t seed) {
  (void)field;
  return PerBeaconNoiseModel(15.0, noise, derive_seed(seed, 2));
}

int cmd_generate(const Flags& flags) {
  const auto beacons =
      static_cast<std::size_t>(flags.get_int("beacons", 40));
  const std::string out = flags.get_string("out", "");
  const std::string mode = flags.get_string("mode", "uniform");
  const double side = flags.get_double("side", 100.0);
  const std::uint64_t seed = flags.get_u64("seed", 1);
  flags.check_unused();
  ABP_CHECK(!out.empty(), "generate requires --out");

  BeaconField field(AABB::square(side));
  Rng rng(seed);
  if (mode == "uniform") {
    scatter_uniform(field, beacons, rng);
  } else if (mode == "airdrop") {
    const HillTerrain hill(field.bounds(), field.bounds().center(),
                           30.0, side / 6.0);
    airdrop(field, beacons, hill, rng);
  } else if (mode == "clustered") {
    scatter_clustered(field, beacons, 4, side / 16.0, rng);
  } else if (mode == "grid") {
    const auto per_axis = static_cast<std::size_t>(
        std::llround(std::sqrt(static_cast<double>(beacons))));
    ABP_CHECK(per_axis * per_axis == beacons,
              "--mode grid needs a square --beacons count");
    place_grid(field, per_axis, per_axis);
  } else {
    ABP_CHECK(false, "unknown --mode: " + mode);
  }
  save_field(out, field);
  std::cout << "wrote " << field.size() << " beacons to " << out << "\n";
  return 0;
}

int cmd_report(const Flags& flags) {
  const std::string path = flags.get_string("field", "");
  const double noise = flags.get_double("noise", 0.0);
  const bool render = flags.get_bool("render", false);
  const std::uint64_t seed = flags.get_u64("seed", 1);
  flags.check_unused();
  ABP_CHECK(!path.empty(), "report requires --field");

  const BeaconField field = load_field(path);
  const PerBeaconNoiseModel model = make_model(field, noise, seed);
  const Lattice2D lattice(field.bounds(), 1.0);
  ErrorMap map(lattice);
  map.compute(field, model);
  const CoverageStats coverage = analyze_coverage(field, model, lattice);

  TextTable table({"metric", "value"});
  table.add_row({"beacons (active/total)",
                 std::to_string(field.active_count()) + "/" +
                     std::to_string(field.size())});
  table.add_row({"density (/m^2)", TextTable::fmt(field.density(), 4)});
  table.add_row({"mean LE (m)", TextTable::fmt(map.mean(), 2)});
  table.add_row({"median LE (m)", TextTable::fmt(map.median(), 2)});
  table.add_row({"uncovered (%)",
                 TextTable::fmt(100.0 * map.uncovered_fraction(), 1)});
  table.add_row({"3-covered (%)",
                 TextTable::fmt(100.0 * coverage.at_least(3), 1)});
  table.add_row({"beacon-graph components",
                 std::to_string(coverage.components)});
  table.add_row({"isolated beacons",
                 std::to_string(coverage.isolated_beacons)});
  table.print(std::cout);
  if (render) {
    std::cout << '\n';
    render_error_map(std::cout, map, &field, {.show_beacons = true});
    std::cout << render_legend() << '\n';
  }
  return 0;
}

int cmd_survey(const Flags& flags) {
  const std::string field_path = flags.get_string("field", "");
  const std::string out = flags.get_string("out", "");
  const auto stride = static_cast<std::size_t>(flags.get_int("stride", 1));
  const double gps_sigma = flags.get_double("gps-sigma", 0.0);
  const double noise = flags.get_double("noise", 0.0);
  const std::uint64_t seed = flags.get_u64("seed", 1);
  flags.check_unused();
  ABP_CHECK(!field_path.empty() && !out.empty(),
            "survey requires --field and --out");

  const BeaconField field = load_field(field_path);
  const PerBeaconNoiseModel model = make_model(field, noise, seed);
  const Lattice2D lattice(field.bounds(), 1.0);
  const Surveyor surveyor(field, model, {.gps = GpsModel(gps_sigma)});
  Rng rng(derive_seed(seed, 7));
  const SurveyData survey =
      surveyor.survey(lattice, boustrophedon_tour(lattice, stride), rng);
  save_survey(out, survey);
  std::cout << "surveyed " << survey.measured_count() << " points ("
            << TextTable::fmt(100.0 * survey.coverage(), 1)
            << "% of the lattice), mean reading "
            << TextTable::fmt(survey.mean(), 2) << " m → " << out << "\n";
  return 0;
}

const PlacementAlgorithm& algorithm_by_name(const std::string& name) {
  static const RandomPlacement random;
  static const MaxPlacement max;
  static const GridPlacement grid;
  static const GridPlacement grid_norm(400, 2.0, true);
  static const CoveragePlacement coverage;
  static const LocusPlacement locus;
  if (name == "random") return random;
  if (name == "max") return max;
  if (name == "grid") return grid;
  if (name == "grid-norm") return grid_norm;
  if (name == "coverage") return coverage;
  if (name == "locus") return locus;
  ABP_CHECK(false, "unknown --algorithm: " + name);
  return grid;  // unreachable
}

int cmd_place(const Flags& flags) {
  const std::string field_path = flags.get_string("field", "");
  const std::string survey_path = flags.get_string("survey", "");
  const std::string out = flags.get_string("out", "");
  const std::string algorithm = flags.get_string("algorithm", "grid");
  const auto count = static_cast<std::size_t>(flags.get_int("count", 1));
  const double noise = flags.get_double("noise", 0.0);
  const std::uint64_t seed = flags.get_u64("seed", 1);
  flags.check_unused();
  ABP_CHECK(!field_path.empty() && !out.empty(),
            "place requires --field and --out");

  BeaconField field = load_field(field_path);
  const PerBeaconNoiseModel model = make_model(field, noise, seed);
  const Lattice2D lattice(field.bounds(), 1.0);
  ErrorMap map(lattice);
  map.compute(field, model);
  const double before = map.mean();

  const PlacementAlgorithm& alg = algorithm_by_name(algorithm);
  Rng rng(derive_seed(seed, 9));
  for (std::size_t k = 0; k < count; ++k) {
    // Use the provided survey for the first placement; re-measure (exact)
    // for subsequent ones.
    SurveyData survey = (k == 0 && !survey_path.empty())
                            ? load_survey(survey_path)
                            : SurveyData::from_error_map(map);
    PlacementContext ctx =
        PlacementContext::basic(survey, field.bounds(), 15.0);
    ctx.field = &field;
    ctx.model = &model;
    ctx.truth = &map;
    const Vec2 pos = field.bounds().clamp(alg.propose(ctx, rng));
    const BeaconId id = field.add(pos);
    map.apply_addition(field, model, *field.get(id));
    std::cout << "placed beacon " << id << " at (" << TextTable::fmt(pos.x, 1)
              << ", " << TextTable::fmt(pos.y, 1) << ")\n";
  }
  save_field(out, field);
  std::cout << "mean LE " << TextTable::fmt(before, 2) << " m → "
            << TextTable::fmt(map.mean(), 2) << " m; wrote " << out << "\n";
  return 0;
}

int cmd_schedule(const Flags& flags) {
  const std::string field_path = flags.get_string("field", "");
  const std::string out = flags.get_string("out", "");
  const std::uint64_t seed = flags.get_u64("seed", 1);
  flags.check_unused();
  ABP_CHECK(!field_path.empty() && !out.empty(),
            "schedule requires --field and --out");

  BeaconField field = load_field(field_path);
  Rng rng(derive_seed(seed, 11));
  const auto result = distributed_density_control(field, {}, rng);
  save_field(out, field);
  std::cout << "self-scheduling: " << result.initial_active << " → "
            << result.final_active << " active in " << result.rounds
            << " rounds (" << (result.converged ? "converged" : "capped")
            << "); wrote " << out << "\n";
  return 0;
}

int cmd_sweep(const Flags& flags) {
  const int figure = flags.get_int("figure", 4);
  FigureOptions opt;
  opt.trials = static_cast<std::size_t>(flags.get_int("trials", 30));
  opt.count_stride = static_cast<std::size_t>(flags.get_int("stride", 2));
  opt.seed = flags.get_u64("seed", 20010421);
  const std::string csv = flags.get_string("csv", "");
  flags.check_unused();

  SweepOutcome out;
  switch (figure) {
    case 4: out = run_fig4(opt); break;
    case 5: out = run_fig5(opt); break;
    case 6: out = run_fig6(opt); break;
    case 7: out = run_fig_alg_noise("random", opt); break;
    case 8: out = run_fig_alg_noise("max", opt); break;
    case 9: out = run_fig_alg_noise("grid", opt); break;
    default: ABP_CHECK(false, "--figure must be 4..9");
  }
  if (out.algorithm_names.empty()) {
    print_mean_error_table(std::cout, out);
  } else if (out.cells.size() == 1) {
    print_improvement_tables(std::cout, out, 0);
  } else {
    print_algorithm_noise_tables(std::cout, out, 0);
  }
  maybe_write_csv(csv, out);
  return 0;
}

// ---- serving -----------------------------------------------------------

volatile std::sig_atomic_t g_stop_requested = 0;
void handle_stop_signal(int) { g_stop_requested = 1; }

void print_response(const serve::Response& response) {
  std::cout << "seq " << response.seq << " status "
            << serve::status_name(response.status) << "\n";
  if (!response.message.empty()) {
    std::cout << "message " << response.message << "\n";
  }
  for (const serve::PointEstimate& e : response.estimates) {
    std::cout << "estimate (" << TextTable::fmt(e.estimate.x, 2) << ", "
              << TextTable::fmt(e.estimate.y, 2) << ") connected "
              << e.connected << "\n";
  }
  for (const double v : response.errors) {
    std::cout << "error " << TextTable::fmt(v, 2) << "\n";
  }
  for (const Vec2 p : response.positions) {
    std::cout << "position (" << TextTable::fmt(p.x, 2) << ", "
              << TextTable::fmt(p.y, 2) << ")\n";
  }
  for (const std::uint32_t id : response.beacon_ids) {
    std::cout << "beacon-id " << id << "\n";
  }
  if (response.version != 0) {
    std::cout << "version " << response.version << "\n";
  }
  if (response.mutation_ack != 0) {
    std::cout << "mutation-ack " << response.mutation_ack << "\n";
  }
  if (!response.text.empty()) std::cout << response.text;
}

/// One-shot mode: feed every frame in `in` through the loopback transport,
/// append each response frame to `out`. Malformed framing yields one
/// bad-request response frame for the rest of the stream (framing cannot
/// resync). Returns the number of requests answered.
std::size_t serve_oneshot(serve::Server& server, std::istream& in,
                          std::ostream& out) {
  serve::LoopbackTransport loopback(server);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  serve::FrameDecoder decoder;
  decoder.feed(bytes);
  std::size_t served = 0;
  for (;;) {
    std::optional<std::string> payload = decoder.next();
    if (!payload) break;
    // Re-frame so the loopback path exercises the full codec.
    out << loopback.roundtrip_frame(serve::encode_frame(*payload));
    ++served;
  }
  if (decoder.corrupt() || decoder.buffered() > 0) {
    server.service().metrics().record_bad_frame(decoder.buffered());
    serve::Response rejection;
    rejection.status = serve::Status::kBadRequest;
    rejection.message =
        decoder.corrupt() ? decoder.error() : "truncated trailing frame";
    out << serve::encode_frame(serve::format_response(rejection));
    ++served;
  }
  return served;
}

int cmd_serve(const Flags& flags) {
  const serve::ServeConfig config = serve::ServeConfig::from_flags(flags);
  flags.check_unused();

  serve::LocalizationService service(config.service_config());
  service.add_field(config.name, load_field(config.field_path));
  serve::Server server(service, config.server_options());

  if (config.oneshot) {
    std::ifstream in(config.in_path, std::ios::binary);
    ABP_CHECK(in.good(), "cannot open for reading: " + config.in_path);
    std::size_t served = 0;
    if (config.out_path.empty()) {
      served = serve_oneshot(server, in, std::cout);
    } else {
      std::ofstream out(config.out_path, std::ios::binary);
      ABP_CHECK(out.good(), "cannot open for writing: " + config.out_path);
      served = serve_oneshot(server, in, out);
    }
    server.shutdown();
    std::cerr << "served " << served << " request(s) from " << config.in_path
              << "\n"
              << service.metrics().render_text();
    return 0;
  }

  const std::unique_ptr<serve::ServerTransport> transport =
      serve::make_server_transport(config.transport, server,
                                   config.transport_options());
  transport->start();
  std::cout << "serving field '" << config.name << "' on 127.0.0.1:"
            << transport->port() << " (transport " << transport->name()
            << ", workers " << config.workers << ", batch " << config.batch
            << ", max-queue " << config.max_queue << ", max-inflight "
            << config.max_inflight << "); Ctrl-C to stop\n"
            << std::flush;  // scripts parse the port from a redirected log
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (g_stop_requested == 0) {
    pollfd none{-1, 0, 0};
    ::poll(&none, 0, 200);  // sleep, interruptible by signals
  }
  std::cout << "\nshutting down: draining in-flight requests\n";
  transport->stop();
  server.shutdown();
  std::cout << service.metrics().render_text();
  return 0;
}

int cmd_route(const Flags& flags) {
  const cluster::RouterConfig config = cluster::RouterConfig::from_flags(flags);
  flags.check_unused();

  // Canonicalize the field through the text codec so the routed snapshot is
  // byte-identical to what `abp serve --field` would load.
  const BeaconField field = load_field(config.field_path);
  std::ostringstream field_text;
  write_field(field_text, field);

  serve::RouterMetrics metrics;
  cluster::MembershipTable membership(config.backends);
  cluster::BackendPool pool(config.backends, config.pool_options(), metrics);
  cluster::Replicator replicator(pool, membership, config.replication,
                                 metrics, config.log_retain);
  pool.set_recovery_callback(
      [&replicator](const std::string& backend) {
        replicator.sync_backend(backend);
      });
  cluster::Router router(membership, pool, replicator, metrics,
                         config.router_options());

  pool.start();
  replicator.set_deployment(config.name, field_text.str());
  const std::size_t installs = replicator.sync_all();
  std::cout << "synced deployment '" << config.name << "' to " << installs
            << "/" << replicator.owners(config.name).size()
            << " replica(s)\n";

  const std::unique_ptr<serve::ServerTransport> transport =
      serve::make_server_transport(config.transport, router,
                                   config.transport_options());
  transport->start();
  std::cout << "routing deployment '" << config.name << "' on 127.0.0.1:"
            << transport->port() << " (transport " << transport->name()
            << ", backends " << config.backends.size() << ", replication "
            << config.replication << "); Ctrl-C to stop\n"
            << std::flush;  // scripts parse the port from a redirected log
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (g_stop_requested == 0) {
    pollfd none{-1, 0, 0};
    ::poll(&none, 0, 200);  // sleep, interruptible by signals
    pool.tick();  // probe cadence is gated inside tick()
  }
  std::cout << "\nshutting down: draining in-flight forwards\n";
  transport->stop();
  pool.stop();
  std::cout << metrics.render_text();
  return 0;
}

int cmd_route_admin(const Flags& flags) {
  // Verb-first shape: `abp route-admin add --connect H:P --backend H2:P2`.
  const std::vector<std::string>& positional = flags.positional();
  ABP_CHECK(positional.size() == 1,
            "route-admin wants exactly one verb: add|drain|status");
  const std::string& verb = positional.front();
  ABP_CHECK(verb == "add" || verb == "drain" || verb == "status",
            "route-admin verb must be add|drain|status (got '" + verb + "')");
  const std::string connect = flags.get_string("connect", "");
  const std::string backend = flags.get_string("backend", "");
  // Handoffs ship snapshots and wait for drains, so the default response
  // wait is generous compared to query's.
  const double timeout_s = flags.get_double("timeout-s", 60.0);
  flags.check_unused();
  ABP_CHECK(!connect.empty(), "route-admin requires --connect HOST:PORT");
  if (verb == "status") {
    ABP_CHECK(backend.empty(), "route-admin status takes no --backend");
  } else {
    ABP_CHECK(!backend.empty(),
              "route-admin " + verb + " requires --backend HOST:PORT");
    cluster::parse_backend_address(backend);  // reject bad shapes client-side
  }

  const auto colon = connect.rfind(':');
  ABP_CHECK(colon != std::string::npos, "--connect wants HOST:PORT");
  const std::string host = connect.substr(0, colon);
  std::istringstream port_is(connect.substr(colon + 1));
  std::uint16_t port = 0;
  port_is >> port;
  ABP_CHECK(!port_is.fail() && port_is.eof() && port != 0,
            "bad --connect port");

  serve::Request request;
  request.endpoint = serve::Endpoint::kAdmin;
  request.algorithm = verb;  // the verb rides the free-form algorithm record
  if (!backend.empty()) request.text = backend + "\n";

  serve::TcpClientTransport transport(host, port, timeout_s);
  const serve::Response response = transport.roundtrip(request);
  print_response(response);
  return response.status == serve::Status::kOk ? 0 : 1;
}

int cmd_query_decode(const serve::QueryConfig& config) {
  std::ifstream in(config.decode_path, std::ios::binary);
  ABP_CHECK(in.good(), "cannot open for reading: " + config.decode_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  serve::FrameDecoder decoder;
  decoder.feed(buffer.str());
  std::size_t frames = 0;
  while (const auto payload = decoder.next()) {
    std::string error;
    const auto response = serve::parse_response(*payload, &error);
    ABP_CHECK(response.has_value(), "bad response payload: " + error);
    print_response(*response);
    ++frames;
  }
  ABP_CHECK(!decoder.corrupt(), "corrupt frame: " + decoder.error());
  std::cout << "decoded " << frames << " response frame(s)\n";
  return 0;
}

int cmd_query_encode(const serve::QueryConfig& config) {
  std::ofstream out(config.encode_path,
                    std::ios::binary |
                        (config.append ? std::ios::app : std::ios::trunc));
  ABP_CHECK(out.good(), "cannot open for writing: " + config.encode_path);
  std::string frame =
      serve::encode_frame(serve::format_request(config.request));
  // --corrupt: deliberately break the magic for rejection tests.
  if (config.corrupt) frame[0] = 'X';
  out << frame;
  std::cout << "wrote " << frame.size() << " byte frame to "
            << config.encode_path << "\n";
  return 0;
}

int cmd_query_connect(const serve::QueryConfig& config) {
  // Reconnect-per-attempt factory: overloaded/unavailable responses,
  // resets and timeouts retry with decorrelated-jitter backoff (or the
  // server's retry-after hint); terminal statuses print immediately.
  serve::RetryingClient client(
      [&config] {
        return std::make_unique<serve::TcpClientTransport>(config.host,
                                                           config.port);
      },
      config.retry);
  const serve::CallResult result = client.call(config.request);
  if (!result.ok) {
    throw serve::ServeError(result.error + " (after " +
                            std::to_string(result.attempts) +
                            " attempt(s))");
  }
  if (result.attempts > 1) {
    std::cerr << "note: succeeded after " << result.attempts << " attempts ("
              << TextTable::fmt(result.backoff_ms, 1) << " ms backoff)\n";
  }
  print_response(result.response);
  return 0;
}

int cmd_query_local(const serve::QueryConfig& config) {
  serve::ServiceConfig service_config;
  service_config.noise = config.noise;
  service_config.seed = config.seed;
  serve::LocalizationService service(service_config);
  service.add_field(config.request.field, load_field(config.field_path));
  serve::Server::Options server_options;
  server_options.workers = 0;
  server_options.max_batch = config.batch;
  serve::Server server(service, server_options);
  serve::LoopbackTransport loopback(server);
  print_response(loopback.roundtrip(config.request));
  return 0;
}

int cmd_query(const Flags& flags) {
  const serve::QueryConfig config = serve::QueryConfig::from_flags(flags);
  flags.check_unused();
  switch (config.mode) {
    case serve::QueryConfig::Mode::kDecode: return cmd_query_decode(config);
    case serve::QueryConfig::Mode::kEncode: return cmd_query_encode(config);
    case serve::QueryConfig::Mode::kConnect: return cmd_query_connect(config);
    case serve::QueryConfig::Mode::kLocalField: return cmd_query_local(config);
  }
  return usage();  // unreachable
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Flags flags(argc - 1, argv + 1);
  if (command == "generate") return cmd_generate(flags);
  if (command == "report") return cmd_report(flags);
  if (command == "survey") return cmd_survey(flags);
  if (command == "place") return cmd_place(flags);
  if (command == "schedule") return cmd_schedule(flags);
  if (command == "sweep") return cmd_sweep(flags);
  if (command == "serve") return cmd_serve(flags);
  if (command == "route") return cmd_route(flags);
  if (command == "route-admin") return cmd_route_admin(flags);
  if (command == "query") return cmd_query(flags);
  std::cerr << "unknown command: " << command << "\n";
  return usage();
}

}  // namespace
}  // namespace abp::cli

int main(int argc, char** argv) {
  try {
    return abp::cli::run(argc, argv);
  } catch (const abp::CheckFailure& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const abp::serve::ServeError& e) {
    std::cerr << "transport error: " << e.what() << "\n";
    return 1;
  }
}
