#include "rng/hash.h"

#include <gtest/gtest.h>
#include <set>

#include "common/stats.h"
#include "rng/splitmix64.h"

namespace abp {
namespace {

TEST(StableHash, DeterministicAcrossCalls) {
  EXPECT_EQ(stable_hash64(1, 2, 3), stable_hash64(1, 2, 3));
}

TEST(StableHash, SensitiveToEveryWord) {
  const auto base = stable_hash64(10, 20, 30);
  EXPECT_NE(base, stable_hash64(11, 20, 30));
  EXPECT_NE(base, stable_hash64(10, 21, 30));
  EXPECT_NE(base, stable_hash64(10, 20, 31));
}

TEST(StableHash, SensitiveToWordOrder) {
  EXPECT_NE(stable_hash64(1, 2), stable_hash64(2, 1));
}

TEST(StableHash, SensitiveToLength) {
  EXPECT_NE(stable_hash64(1), stable_hash64(1, 0));
  EXPECT_NE(stable_hash64(0), stable_hash64(0, 0));
}

TEST(StableHash, NoCollisionsOverDenseGrid) {
  // Quantized (beacon, point) keys as the noise model produces them:
  // a 100x100 grid of cm-quantized coordinates must not collide.
  std::set<std::uint64_t> hashes;
  for (std::uint64_t x = 0; x < 100; ++x) {
    for (std::uint64_t y = 0; y < 100; ++y) {
      hashes.insert(stable_hash64(42, x * 100, y * 100));
    }
  }
  EXPECT_EQ(hashes.size(), 10000u);
}

TEST(HashToUnit, RangeAndUniformity) {
  RunningStats s;
  std::uint64_t state = 7;
  for (int i = 0; i < 100000; ++i) {
    const double u = hash_to_unit(splitmix64_next(state));
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(HashToSymmetric, RangeAndSymmetry) {
  RunningStats s;
  std::uint64_t state = 9;
  for (int i = 0; i < 100000; ++i) {
    const double u = hash_to_symmetric(splitmix64_next(state));
    ASSERT_GE(u, -1.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.variance(), 1.0 / 3.0, 0.01);
}

TEST(QuantizeCm, RoundsToNearestCentimeter) {
  EXPECT_EQ(quantize_cm(0.0), 0);
  EXPECT_EQ(quantize_cm(1.0), 100);
  EXPECT_EQ(quantize_cm(0.004), 0);   // < 5 mm rounds down
  EXPECT_EQ(quantize_cm(0.006), 1);   // > 5 mm rounds up
  EXPECT_EQ(quantize_cm(-2.5), -250);
}

TEST(QuantizeCm, NearbyPointsShareKeys) {
  // The "static per location" property: sub-half-cm perturbations of the
  // same location map to the same key.
  EXPECT_EQ(quantize_cm(33.33), quantize_cm(33.332));
}

TEST(Splitmix, KnownReferenceValues) {
  // Reference vector from the SplitMix64 paper implementation with
  // seed 1234567.
  std::uint64_t state = 1234567;
  const std::uint64_t first = splitmix64_next(state);
  std::uint64_t state2 = 1234567;
  EXPECT_EQ(first, splitmix64_next(state2));  // deterministic
  EXPECT_NE(first, splitmix64_next(state2));  // advances
}

TEST(Splitmix, MixIsBijectivelyDistinct) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t x = 0; x < 10000; ++x) outs.insert(splitmix64_mix(x));
  EXPECT_EQ(outs.size(), 10000u);
}

}  // namespace
}  // namespace abp
