#include "rng/xoshiro256pp.h"

#include <gtest/gtest.h>
#include <set>

namespace abp {
namespace {

TEST(Xoshiro, DeterministicFromSeed) {
  Xoshiro256pp a(5), b(5);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256pp>);
  EXPECT_EQ(Xoshiro256pp::min(), 0u);
  EXPECT_EQ(Xoshiro256pp::max(), ~std::uint64_t{0});
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256pp base(7);
  Xoshiro256pp jumped(7);
  jumped.jump();
  // The jumped stream is 2^128 steps ahead: no short-window overlap with
  // the base stream.
  std::set<std::uint64_t> base_window;
  for (int i = 0; i < 1000; ++i) base_window.insert(base());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(base_window.count(jumped()), 0u) << "overlap at step " << i;
  }
}

TEST(Xoshiro, JumpIsDeterministic) {
  Xoshiro256pp a(9), b(9);
  a.jump();
  b.jump();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace abp
