#include "rng/rng.h"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>
#include <numeric>
#include <set>

#include "common/stats.h"

namespace abp {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MomentsMatch) {
  Rng rng(6);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform01());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-4.0, 9.0);
    EXPECT_GE(x, -4.0);
    EXPECT_LT(x, 9.0);
  }
}

TEST(Rng, SymmetricUnitCoversBothSigns) {
  Rng rng(8);
  int neg = 0, pos = 0;
  for (int i = 0; i < 1000; ++i) {
    (rng.symmetric_unit() < 0 ? neg : pos)++;
  }
  EXPECT_GT(neg, 400);
  EXPECT_GT(pos, 400);
}

TEST(Rng, BelowIsUnbiasedOverSmallModulus) {
  Rng rng(9);
  const std::uint64_t n = 7;
  std::vector<int> counts(n, 0);
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[rng.below(n)];
  for (std::uint64_t v = 0; v < n; ++v) {
    EXPECT_NEAR(counts[v], draws / static_cast<int>(n), 500);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, 3000, 200);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(12);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(14);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(15);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is ~1/50!
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(16);
  Rng child = parent.split();
  // Child stream must differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(DeriveSeed, DeterministicAndTagSensitive) {
  EXPECT_EQ(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 3, 2));  // order matters
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(2, 2, 3));  // parent matters
  EXPECT_NE(derive_seed(1, 2), derive_seed(1, 2, 0));     // arity matters
}

TEST(DeriveSeed, NoObviousCollisionsOverTrialGrid) {
  // The runner derives seeds from (master, noise_idx, count_idx, trial):
  // all must be distinct over a realistic grid.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t n = 0; n < 4; ++n) {
    for (std::uint64_t c = 0; c < 23; ++c) {
      for (std::uint64_t t = 0; t < 100; ++t) {
        seeds.insert(derive_seed(42, n, c, t));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 4u * 23u * 100u);
}

}  // namespace
}  // namespace abp
