#include <gtest/gtest.h>

#include "common/assert.h"
#include "field/beacon_field.h"

namespace abp {
namespace {

TEST(AddWithId, GapsBecomePermanentlyUnusedIds) {
  BeaconField field(AABB::square(10.0));
  field.add_with_id(5, {1.0, 1.0});
  EXPECT_EQ(field.size(), 1u);
  EXPECT_FALSE(field.get(0).has_value());
  EXPECT_TRUE(field.get(5).has_value());
  EXPECT_EQ(field.add({2.0, 2.0}), 6u);  // allocation continues past 5
}

TEST(AddWithId, RejectsReusedIds) {
  BeaconField field(AABB::square(10.0));
  field.add({1.0, 1.0});  // id 0
  EXPECT_THROW(field.add_with_id(0, {2.0, 2.0}), CheckFailure);
}

TEST(AddWithId, PassiveInsertionSkipsIndex) {
  BeaconField field(AABB::square(10.0));
  field.add_with_id(0, {5.0, 5.0}, /*active=*/false);
  EXPECT_EQ(field.size(), 1u);
  EXPECT_EQ(field.active_count(), 0u);
  int hits = 0;
  field.query_disk({5.0, 5.0}, 2.0, [&](const Beacon&) { ++hits; });
  EXPECT_EQ(hits, 0);
  field.set_active(0, true);
  field.query_disk({5.0, 5.0}, 2.0, [&](const Beacon&) { ++hits; });
  EXPECT_EQ(hits, 1);
}

TEST(ReserveIds, AdvancesAllocationMark) {
  BeaconField field(AABB::square(10.0));
  field.reserve_ids(10);
  EXPECT_EQ(field.next_id(), 10u);
  EXPECT_EQ(field.add({1.0, 1.0}), 10u);
  field.reserve_ids(5);  // never moves backwards
  EXPECT_EQ(field.next_id(), 11u);
}

}  // namespace
}  // namespace abp
