#include "field/generators.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "terrain/heightmap.h"

namespace abp {
namespace {

TEST(ScatterUniform, CountAndBounds) {
  BeaconField field(AABB::square(100.0));
  Rng rng(1);
  scatter_uniform(field, 50, rng);
  EXPECT_EQ(field.size(), 50u);
  field.for_each_active([&](const Beacon& b) {
    EXPECT_TRUE(field.bounds().contains(b.pos));
  });
}

TEST(ScatterUniform, DeterministicInSeed) {
  BeaconField a(AABB::square(100.0)), b(AABB::square(100.0));
  Rng ra(7), rb(7);
  scatter_uniform(a, 20, ra);
  scatter_uniform(b, 20, rb);
  for (BeaconId id = 0; id < 20; ++id) {
    EXPECT_EQ(a.get(id)->pos, b.get(id)->pos);
  }
}

TEST(ScatterUniform, RoughlyUniformMarginals) {
  BeaconField field(AABB::square(100.0));
  Rng rng(3);
  scatter_uniform(field, 5000, rng);
  RunningStats xs, ys;
  field.for_each_active([&](const Beacon& b) {
    xs.add(b.pos.x);
    ys.add(b.pos.y);
  });
  EXPECT_NEAR(xs.mean(), 50.0, 2.0);
  EXPECT_NEAR(ys.mean(), 50.0, 2.0);
  EXPECT_NEAR(xs.stddev(), 100.0 / std::sqrt(12.0), 2.0);
}

TEST(PlaceGrid, GeometryMatchesFigure1) {
  // 2x2 grid on a 100 m square: beacons at 25/75 crossings (Fig 1 left).
  BeaconField field(AABB::square(100.0));
  place_grid(field, 2, 2);
  EXPECT_EQ(field.size(), 4u);
  EXPECT_EQ(field.get(0)->pos, (Vec2{25.0, 25.0}));
  EXPECT_EQ(field.get(3)->pos, (Vec2{75.0, 75.0}));
}

TEST(PlaceGrid, SpacingIsWidthOverN) {
  BeaconField field(AABB::square(100.0));
  place_grid(field, 10, 10);
  // Adjacent beacons in a row are d = 10 m apart, first at d/2.
  EXPECT_EQ(field.get(0)->pos, (Vec2{5.0, 5.0}));
  EXPECT_EQ(field.get(1)->pos, (Vec2{15.0, 5.0}));
}

TEST(Airdrop, OnFlatTerrainStaysNearAim) {
  const FlatTerrain flat(AABB::square(100.0));
  BeaconField field(AABB::square(100.0));
  Rng rng(5);
  airdrop(field, 100, flat, rng, 25.0, 0.0);  // no jitter either
  // With zero slope and zero jitter the drop is exactly uniform random —
  // same stream as scatter_uniform.
  BeaconField reference(AABB::square(100.0));
  Rng rng2(5);
  scatter_uniform(reference, 100, rng2);
  for (BeaconId id = 0; id < 100; ++id) {
    EXPECT_NEAR(field.get(id)->pos.x, reference.get(id)->pos.x, 1e-9);
    EXPECT_NEAR(field.get(id)->pos.y, reference.get(id)->pos.y, 1e-9);
  }
}

TEST(Airdrop, BeaconsRollAwayFromHilltop) {
  // The §1 scenario: beacons dropped on a hill end up farther from the
  // peak than their aim points; the hilltop becomes beacon-poor.
  const AABB bounds = AABB::square(100.0);
  const HillTerrain hill(bounds, {50.0, 50.0}, 40.0, 12.0);
  BeaconField dropped(bounds);
  Rng rng(9);
  airdrop(dropped, 400, hill, rng, 30.0, 0.5);

  BeaconField aimed(bounds);
  Rng rng2(9);
  airdrop(aimed, 400, FlatTerrain(bounds), rng2, 30.0, 0.5);

  std::size_t near_peak_dropped = 0, near_peak_aimed = 0;
  dropped.query_disk({50.0, 50.0}, 15.0,
                     [&](const Beacon&) { ++near_peak_dropped; });
  aimed.query_disk({50.0, 50.0}, 15.0,
                   [&](const Beacon&) { ++near_peak_aimed; });
  EXPECT_LT(near_peak_dropped, near_peak_aimed);
}

TEST(Airdrop, ResultsStayInBounds) {
  const AABB bounds = AABB::square(100.0);
  const HillTerrain hill(bounds, {5.0, 5.0}, 50.0, 10.0);  // peak near edge
  BeaconField field(bounds);
  Rng rng(11);
  airdrop(field, 200, hill, rng, 50.0, 3.0);
  field.for_each_active(
      [&](const Beacon& b) { EXPECT_TRUE(bounds.contains(b.pos)); });
}

TEST(Clustered, AllInBoundsAndCount) {
  BeaconField field(AABB::square(100.0));
  Rng rng(13);
  scatter_clustered(field, 120, 4, 6.0, rng);
  EXPECT_EQ(field.size(), 120u);
  field.for_each_active([&](const Beacon& b) {
    EXPECT_TRUE(field.bounds().contains(b.pos));
  });
}

TEST(Clustered, IsLumpierThanUniform) {
  // Variance of per-quadrant counts should exceed uniform's.
  const auto quadrant_variance = [](const BeaconField& field) {
    double counts[4] = {0, 0, 0, 0};
    field.for_each_active([&](const Beacon& b) {
      const int q = (b.pos.x >= 50.0 ? 1 : 0) + (b.pos.y >= 50.0 ? 2 : 0);
      counts[q] += 1.0;
    });
    return sample_stddev(counts);
  };
  BeaconField clustered(AABB::square(100.0)), uniform(AABB::square(100.0));
  Rng rc(17), ru(17);
  scatter_clustered(clustered, 200, 3, 5.0, rc);
  scatter_uniform(uniform, 200, ru);
  EXPECT_GT(quadrant_variance(clustered), quadrant_variance(uniform));
}

}  // namespace
}  // namespace abp
