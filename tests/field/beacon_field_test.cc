#include "field/beacon_field.h"

#include <gtest/gtest.h>
#include <set>

#include "common/assert.h"

namespace abp {
namespace {

BeaconField make_field() { return BeaconField(AABB::square(100.0)); }

TEST(BeaconField, AddAssignsSequentialIds) {
  auto field = make_field();
  EXPECT_EQ(field.add({1.0, 1.0}), 0u);
  EXPECT_EQ(field.add({2.0, 2.0}), 1u);
  EXPECT_EQ(field.size(), 2u);
}

TEST(BeaconField, AddOutsideBoundsThrows) {
  auto field = make_field();
  EXPECT_THROW(field.add({-1.0, 5.0}), CheckFailure);
  EXPECT_THROW(field.add({5.0, 101.0}), CheckFailure);
}

TEST(BeaconField, GetReturnsBeacon) {
  auto field = make_field();
  const BeaconId id = field.add({3.0, 4.0});
  const auto b = field.get(id);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->pos, (Vec2{3.0, 4.0}));
  EXPECT_TRUE(b->active);
}

TEST(BeaconField, GetUnknownIdIsEmpty) {
  auto field = make_field();
  EXPECT_FALSE(field.get(99).has_value());
}

TEST(BeaconField, RemoveDeletesAndIdsAreNeverReused) {
  auto field = make_field();
  const BeaconId a = field.add({1.0, 1.0});
  EXPECT_TRUE(field.remove(a));
  EXPECT_FALSE(field.get(a).has_value());
  EXPECT_FALSE(field.remove(a));  // double remove
  const BeaconId b = field.add({2.0, 2.0});
  EXPECT_NE(a, b);
}

TEST(BeaconField, QueryDiskFindsOnlyNearbyActive) {
  auto field = make_field();
  field.add({10.0, 10.0});
  field.add({90.0, 90.0});
  std::set<BeaconId> found;
  field.query_disk({12.0, 10.0}, 5.0,
                   [&](const Beacon& b) { found.insert(b.id); });
  EXPECT_EQ(found, (std::set<BeaconId>{0}));
}

TEST(BeaconField, DeactivatedBeaconInvisibleToQueries) {
  auto field = make_field();
  const BeaconId id = field.add({10.0, 10.0});
  EXPECT_TRUE(field.set_active(id, false));
  int hits = 0;
  field.query_disk({10.0, 10.0}, 5.0, [&](const Beacon&) { ++hits; });
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(field.size(), 1u);          // still deployed
  EXPECT_EQ(field.active_count(), 0u);  // but silent
}

TEST(BeaconField, ReactivationRestoresVisibility) {
  auto field = make_field();
  const BeaconId id = field.add({10.0, 10.0});
  field.set_active(id, false);
  field.set_active(id, true);
  int hits = 0;
  field.query_disk({10.0, 10.0}, 5.0, [&](const Beacon&) { ++hits; });
  EXPECT_EQ(hits, 1);
}

TEST(BeaconField, SetActiveIsIdempotent) {
  auto field = make_field();
  const BeaconId id = field.add({10.0, 10.0});
  EXPECT_TRUE(field.set_active(id, true));  // already active
  EXPECT_EQ(field.active_count(), 1u);
  field.set_active(id, false);
  EXPECT_TRUE(field.set_active(id, false));
  EXPECT_EQ(field.active_count(), 0u);
}

TEST(BeaconField, SetActiveUnknownIdFails) {
  auto field = make_field();
  EXPECT_FALSE(field.set_active(5, false));
}

TEST(BeaconField, ActiveCentroid) {
  auto field = make_field();
  field.add({0.0, 0.0});
  field.add({10.0, 0.0});
  field.add({5.0, 30.0});
  const Vec2 c = field.active_centroid();
  EXPECT_NEAR(c.x, 5.0, 1e-9);
  EXPECT_NEAR(c.y, 10.0, 1e-9);
}

TEST(BeaconField, CentroidOfEmptyFieldIsBoundsCenter) {
  auto field = make_field();
  EXPECT_EQ(field.active_centroid(), (Vec2{50.0, 50.0}));
}

TEST(BeaconField, CentroidIgnoresPassiveBeacons) {
  auto field = make_field();
  field.add({0.0, 0.0});
  const BeaconId far = field.add({100.0, 100.0});
  field.set_active(far, false);
  EXPECT_NEAR(field.active_centroid().x, 0.0, 1e-9);
}

TEST(BeaconField, DensityCountsActiveOnly) {
  auto field = make_field();
  for (int i = 0; i < 10; ++i) {
    field.add({static_cast<double>(i * 10), 50.0});
  }
  EXPECT_DOUBLE_EQ(field.density(), 10.0 / 10000.0);
  field.set_active(0, false);
  EXPECT_DOUBLE_EQ(field.density(), 9.0 / 10000.0);
}

TEST(BeaconField, ActiveIdsSortedAndFiltered) {
  auto field = make_field();
  field.add({1.0, 1.0});
  field.add({2.0, 2.0});
  field.add({3.0, 3.0});
  field.set_active(1, false);
  EXPECT_EQ(field.active_ids(), (std::vector<BeaconId>{0, 2}));
}

TEST(BeaconField, ForEachActiveVisitsExactlyActive) {
  auto field = make_field();
  field.add({1.0, 1.0});
  field.add({2.0, 2.0});
  field.remove(0);
  std::set<BeaconId> seen;
  field.for_each_active([&](const Beacon& b) { seen.insert(b.id); });
  EXPECT_EQ(seen, (std::set<BeaconId>{1}));
}

}  // namespace
}  // namespace abp
