#include "common/thread_pool.h"

#include <atomic>
#include <gtest/gtest.h>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/assert.h"

namespace abp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForWithMoreTasksThanThreads) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for(500, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 500L * 499L / 2L);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool must remain usable afterwards.
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, RejectsNullTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), CheckFailure);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    counter.fetch_add(1);
    pool.submit([&] { counter.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace abp
