#include "common/flags.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace abp {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, SpaceSeparatedValue) {
  const auto f = make({"--trials", "250"});
  EXPECT_EQ(f.get_int("trials", 0), 250);
}

TEST(Flags, EqualsSeparatedValue) {
  const auto f = make({"--noise=0.3"});
  EXPECT_DOUBLE_EQ(f.get_double("noise", 0.0), 0.3);
}

TEST(Flags, DefaultWhenAbsent) {
  const auto f = make({});
  EXPECT_EQ(f.get_int("trials", 77), 77);
  EXPECT_EQ(f.get_string("csv", "fallback"), "fallback");
}

TEST(Flags, BoolForms) {
  EXPECT_TRUE(make({"--verbose"}).get_bool("verbose", false));
  EXPECT_TRUE(make({"--verbose", "true"}).get_bool("verbose", false));
  EXPECT_FALSE(make({"--verbose=false"}).get_bool("verbose", true));
  EXPECT_FALSE(make({"--verbose=0"}).get_bool("verbose", true));
}

TEST(Flags, PositionalArguments) {
  const auto f = make({"alpha", "--k", "1", "beta"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "alpha");
  EXPECT_EQ(f.positional()[1], "beta");
}

TEST(Flags, U64RoundTrip) {
  const auto f = make({"--seed", "18446744073709551615"});
  EXPECT_EQ(f.get_u64("seed", 0), 18446744073709551615ULL);
}

TEST(Flags, MalformedIntegerThrows) {
  const auto f = make({"--trials", "12x"});
  EXPECT_THROW(f.get_int("trials", 0), CheckFailure);
}

TEST(Flags, MalformedDoubleThrows) {
  const auto f = make({"--noise", "abc"});
  EXPECT_THROW(f.get_double("noise", 0.0), CheckFailure);
}

TEST(Flags, CheckUnusedCatchesTypos) {
  const auto f = make({"--trails", "100"});  // typo for --trials
  EXPECT_EQ(f.get_int("trials", 5), 5);
  EXPECT_THROW(f.check_unused(), CheckFailure);
}

TEST(Flags, CheckUnusedPassesWhenAllRead) {
  const auto f = make({"--trials", "100", "--seed=1"});
  f.get_int("trials", 0);
  f.get_u64("seed", 0);
  EXPECT_NO_THROW(f.check_unused());
}

TEST(Flags, HasDetectsValuelessFlag) {
  const auto f = make({"--quick"});
  EXPECT_TRUE(f.has("quick"));
  EXPECT_FALSE(f.has("slow"));
}

TEST(Flags, NegativeNumberAsValue) {
  // A negative value must not be mistaken for the next flag.
  const auto f = make({"--offset", "-3.5"});
  EXPECT_DOUBLE_EQ(f.get_double("offset", 0.0), -3.5);
}

TEST(FlagTable, BindsEveryTypeAndKeepsDefaultsWhenAbsent) {
  std::string name = "default-name";
  std::vector<std::string> backends;
  bool dedup = true;
  double rps = 0.0;
  std::size_t entries = 1024;
  std::uint32_t hint = 50;
  std::uint64_t seed = 7;
  std::uint16_t port = 0;
  const auto f = make({"--name", "alpha", "--backend", "h1:1", "--backend",
                       "h2:2", "--dedup=false", "--quota-rps", "2.5",
                       "--cache-entries", "64", "--retry-after-ms", "40",
                       "--seed", "99", "--port", "8080"});
  FlagTable()
      .text("name", &name)
      .text_list("backend", &backends)
      .boolean("dedup", &dedup)
      .number("quota-rps", &rps)
      .size("cache-entries", &entries)
      .u32("retry-after-ms", &hint)
      .u64("seed", &seed)
      .port("port", &port)
      .parse(f);
  EXPECT_EQ(name, "alpha");
  EXPECT_EQ(backends, (std::vector<std::string>{"h1:1", "h2:2"}));
  EXPECT_FALSE(dedup);
  EXPECT_DOUBLE_EQ(rps, 2.5);
  EXPECT_EQ(entries, 64u);
  EXPECT_EQ(hint, 40u);
  EXPECT_EQ(seed, 99u);
  EXPECT_EQ(port, 8080);

  // Absent flags leave every field at its member-initializer default.
  std::size_t untouched = 16;
  FlagTable().size("workers", &untouched).parse(make({}));
  EXPECT_EQ(untouched, 16u);
}

TEST(FlagTable, SizeAtLeastClampsBelowTheFloor) {
  std::size_t shards = 1;
  FlagTable().size_at_least("event-shards", 1, &shards).parse(
      make({"--event-shards", "0"}));
  EXPECT_EQ(shards, 1u) << "values below the floor clamp, not throw";
  FlagTable().size_at_least("event-shards", 1, &shards).parse(
      make({"--event-shards", "8"}));
  EXPECT_EQ(shards, 8u);
}

TEST(FlagTable, DiagnosticsNameTheFlag) {
  std::size_t n = 0;
  EXPECT_THROW(
      FlagTable().size("workers", &n).parse(make({"--workers", "-3"})),
      CheckFailure);
  std::uint32_t u = 0;
  // A u32 flag refuses values past 32 bits instead of silently truncating.
  EXPECT_THROW(
      FlagTable().u32("retry-after-ms", &u).parse(
          make({"--retry-after-ms", "4294967296"})),
      CheckFailure);
  std::uint16_t p = 0;
  EXPECT_THROW(FlagTable().port("port", &p).parse(make({"--port", "70000"})),
               CheckFailure);
  double d = 0.0;
  EXPECT_THROW(
      FlagTable().number("noise", &d).parse(make({"--noise", "loud"})),
      CheckFailure);
}

TEST(FlagTable, ParsePlaysWellWithCheckUnused) {
  // A table parse marks its flags as read, so the standard typo check
  // still catches stragglers.
  const auto f = make({"--name", "x", "--tpyo", "1"});
  std::string name;
  FlagTable().text("name", &name).parse(f);
  EXPECT_THROW(f.check_unused(), CheckFailure);
}

}  // namespace
}  // namespace abp
