#include "common/flags.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace abp {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, SpaceSeparatedValue) {
  const auto f = make({"--trials", "250"});
  EXPECT_EQ(f.get_int("trials", 0), 250);
}

TEST(Flags, EqualsSeparatedValue) {
  const auto f = make({"--noise=0.3"});
  EXPECT_DOUBLE_EQ(f.get_double("noise", 0.0), 0.3);
}

TEST(Flags, DefaultWhenAbsent) {
  const auto f = make({});
  EXPECT_EQ(f.get_int("trials", 77), 77);
  EXPECT_EQ(f.get_string("csv", "fallback"), "fallback");
}

TEST(Flags, BoolForms) {
  EXPECT_TRUE(make({"--verbose"}).get_bool("verbose", false));
  EXPECT_TRUE(make({"--verbose", "true"}).get_bool("verbose", false));
  EXPECT_FALSE(make({"--verbose=false"}).get_bool("verbose", true));
  EXPECT_FALSE(make({"--verbose=0"}).get_bool("verbose", true));
}

TEST(Flags, PositionalArguments) {
  const auto f = make({"alpha", "--k", "1", "beta"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "alpha");
  EXPECT_EQ(f.positional()[1], "beta");
}

TEST(Flags, U64RoundTrip) {
  const auto f = make({"--seed", "18446744073709551615"});
  EXPECT_EQ(f.get_u64("seed", 0), 18446744073709551615ULL);
}

TEST(Flags, MalformedIntegerThrows) {
  const auto f = make({"--trials", "12x"});
  EXPECT_THROW(f.get_int("trials", 0), CheckFailure);
}

TEST(Flags, MalformedDoubleThrows) {
  const auto f = make({"--noise", "abc"});
  EXPECT_THROW(f.get_double("noise", 0.0), CheckFailure);
}

TEST(Flags, CheckUnusedCatchesTypos) {
  const auto f = make({"--trails", "100"});  // typo for --trials
  EXPECT_EQ(f.get_int("trials", 5), 5);
  EXPECT_THROW(f.check_unused(), CheckFailure);
}

TEST(Flags, CheckUnusedPassesWhenAllRead) {
  const auto f = make({"--trials", "100", "--seed=1"});
  f.get_int("trials", 0);
  f.get_u64("seed", 0);
  EXPECT_NO_THROW(f.check_unused());
}

TEST(Flags, HasDetectsValuelessFlag) {
  const auto f = make({"--quick"});
  EXPECT_TRUE(f.has("quick"));
  EXPECT_FALSE(f.has("slow"));
}

TEST(Flags, NegativeNumberAsValue) {
  // A negative value must not be mistaken for the next flag.
  const auto f = make({"--offset", "-3.5"});
  EXPECT_DOUBLE_EQ(f.get_double("offset", 0.0), -3.5);
}

}  // namespace
}  // namespace abp
