#include "common/stats.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/assert.h"
#include "rng/rng.h"

namespace abp {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Stats, SampleStddevMatchesHandComputation) {
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Known dataset: population sd 2, sample sd = sqrt(32/7).
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, StddevOfSingletonIsZero) {
  const double xs[] = {42.0};
  EXPECT_EQ(sample_stddev(xs), 0.0);
}

TEST(Stats, MedianOddCount) {
  const double xs[] = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Stats, MedianEvenCountInterpolates) {
  const double xs[] = {1.0, 2.0, 3.0, 10.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, QuantileEndpoints) {
  const double xs[] = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
}

TEST(Stats, QuantileInterpolatesLinearly) {
  const double xs[] = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Stats, QuantileRejectsOutOfRange) {
  const double xs[] = {1.0};
  EXPECT_THROW(quantile(xs, 1.5), CheckFailure);
}

TEST(Stats, TCriticalValuesMatchTables) {
  EXPECT_NEAR(t_critical_975(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_975(10), 2.228, 1e-3);
  EXPECT_NEAR(t_critical_975(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_975(1000), 1.960, 1e-3);
}

TEST(Stats, Ci95ShrinksWithSampleSize) {
  std::vector<double> small, large;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) small.push_back(rng.normal());
  for (int i = 0; i < 1000; ++i) large.push_back(rng.normal());
  EXPECT_GT(ci95_half_width(small), ci95_half_width(large));
}

TEST(Stats, Ci95CoversTrueMeanUsually) {
  // Statistical property test: the CI over samples of N(5,1) should cover
  // the true mean ~95% of the time. With 200 repetitions, far more than
  // 80% coverage is virtually certain.
  Rng rng(7);
  int covered = 0;
  const int reps = 200;
  for (int r = 0; r < reps; ++r) {
    std::vector<double> xs;
    for (int i = 0; i < 30; ++i) xs.push_back(rng.normal(5.0, 1.0));
    const double m = mean(xs);
    const double hw = ci95_half_width(xs);
    if (std::fabs(m - 5.0) <= hw) ++covered;
  }
  EXPECT_GE(covered, static_cast<int>(0.80 * reps));
}

TEST(Stats, SummarizeAgreesWithPieces) {
  const double xs[] = {4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.mean, mean(xs));
  EXPECT_DOUBLE_EQ(s.median, median(xs));
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
  EXPECT_DOUBLE_EQ(s.ci95, ci95_half_width(xs));
}

TEST(RunningStats, MatchesBatchStatistics) {
  Rng rng(3);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-10);
  EXPECT_NEAR(rs.stddev(), sample_stddev(xs), 1e-10);
  EXPECT_NEAR(rs.ci95(), ci95_half_width(xs), 1e-10);
  EXPECT_EQ(rs.count(), xs.size());
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(4);
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal(2.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double m = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), m);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), m);
}

}  // namespace
}  // namespace abp
