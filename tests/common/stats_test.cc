#include "common/stats.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/assert.h"
#include "rng/rng.h"

namespace abp {
namespace {

TEST(Stats, MeanOfKnownValues) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Stats, SampleStddevMatchesHandComputation) {
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Known dataset: population sd 2, sample sd = sqrt(32/7).
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, StddevOfSingletonIsZero) {
  const double xs[] = {42.0};
  EXPECT_EQ(sample_stddev(xs), 0.0);
}

TEST(Stats, MedianOddCount) {
  const double xs[] = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Stats, MedianEvenCountInterpolates) {
  const double xs[] = {1.0, 2.0, 3.0, 10.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, QuantileEndpoints) {
  const double xs[] = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
}

TEST(Stats, QuantileInterpolatesLinearly) {
  const double xs[] = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Stats, QuantileRejectsOutOfRange) {
  const double xs[] = {1.0};
  EXPECT_THROW(quantile(xs, 1.5), CheckFailure);
}

TEST(Stats, TCriticalValuesMatchTables) {
  EXPECT_NEAR(t_critical_975(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_975(10), 2.228, 1e-3);
  EXPECT_NEAR(t_critical_975(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_975(1000), 1.960, 1e-3);
}

TEST(Stats, Ci95ShrinksWithSampleSize) {
  std::vector<double> small, large;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) small.push_back(rng.normal());
  for (int i = 0; i < 1000; ++i) large.push_back(rng.normal());
  EXPECT_GT(ci95_half_width(small), ci95_half_width(large));
}

TEST(Stats, Ci95CoversTrueMeanUsually) {
  // Statistical property test: the CI over samples of N(5,1) should cover
  // the true mean ~95% of the time. With 200 repetitions, far more than
  // 80% coverage is virtually certain.
  Rng rng(7);
  int covered = 0;
  const int reps = 200;
  for (int r = 0; r < reps; ++r) {
    std::vector<double> xs;
    for (int i = 0; i < 30; ++i) xs.push_back(rng.normal(5.0, 1.0));
    const double m = mean(xs);
    const double hw = ci95_half_width(xs);
    if (std::fabs(m - 5.0) <= hw) ++covered;
  }
  EXPECT_GE(covered, static_cast<int>(0.80 * reps));
}

TEST(Stats, SummarizeAgreesWithPieces) {
  const double xs[] = {4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.mean, mean(xs));
  EXPECT_DOUBLE_EQ(s.median, median(xs));
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
  EXPECT_DOUBLE_EQ(s.ci95, ci95_half_width(xs));
}

TEST(RunningStats, MatchesBatchStatistics) {
  Rng rng(3);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-10);
  EXPECT_NEAR(rs.stddev(), sample_stddev(xs), 1e-10);
  EXPECT_NEAR(rs.ci95(), ci95_half_width(xs), 1e-10);
  EXPECT_EQ(rs.count(), xs.size());
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(4);
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal(2.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double m = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), m);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), m);
}

TEST(Histogram, EmptyReportsZeroes) {
  const Histogram h(1.0, 1000.0, 30);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(Histogram, RejectsInvalidLayout) {
  EXPECT_THROW(Histogram(0.0, 10.0, 4), CheckFailure);
  EXPECT_THROW(Histogram(10.0, 10.0, 4), CheckFailure);
  EXPECT_THROW(Histogram(-1.0, 10.0, 4), CheckFailure);
  EXPECT_THROW(Histogram(1.0, 10.0, 0), CheckFailure);
}

TEST(Histogram, TracksCountMinMaxMean) {
  Histogram h(1.0, 1e6, 60);
  h.add(10.0);
  h.add(100.0);
  h.add(1000.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 370.0);
}

TEST(Histogram, OutOfRangeSamplesClampToEdgeBuckets) {
  Histogram h(1.0, 100.0, 10);
  h.add(0.001);   // below lo
  h.add(1e9);     // above hi
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_value(0), 1u);
  EXPECT_EQ(h.bucket_value(h.bucket_count() - 1), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(Histogram, SaturatedTailKeepsExactExtremes) {
  // Samples far past `hi` saturate the last bucket, but the exact min/max
  // (and the percentile clamp to them) must survive: a latency spike of
  // minutes against a 10 s layout still reports truthfully.
  Histogram h = Histogram::latency_us();
  h.add(5.0);
  h.add(1e9);    // 1000 s in a 10 s layout
  h.add(1e300);  // absurd, still must not overflow or distort
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_value(h.bucket_count() - 1), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e300);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1e300);
  // Percentiles stay within the observed range even with a saturated tail.
  EXPECT_GE(h.p50(), h.min());
  EXPECT_LE(h.p99(), h.max());
}

TEST(Histogram, FullySaturatedSingleBucketPercentiles) {
  // Every sample below `lo`: the whole distribution collapses into the
  // first bucket and every percentile must stay inside [min, max] instead
  // of extrapolating past the observed data.
  Histogram h(1.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(1e-6);
  EXPECT_EQ(h.bucket_value(0), 100u);
  EXPECT_DOUBLE_EQ(h.p50(), 1e-6);
  EXPECT_DOUBLE_EQ(h.p99(), 1e-6);
}

TEST(Histogram, MergePreservesSaturatedCounts) {
  Histogram a(1.0, 100.0, 10);
  Histogram b(1.0, 100.0, 10);
  a.add(1e9);
  b.add(1e12);
  b.add(0.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket_value(a.bucket_count() - 1), 2u);  // both overflows
  EXPECT_EQ(a.bucket_value(0), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 1e12);
}

TEST(Histogram, BucketBoundariesAreLogSpacedAndCover) {
  const Histogram h(1.0, 1000.0, 3);
  EXPECT_DOUBLE_EQ(h.bucket_lower(0), 1.0);
  EXPECT_NEAR(h.bucket_lower(1), 10.0, 1e-9);
  EXPECT_NEAR(h.bucket_lower(2), 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.bucket_upper(2), 1000.0);
}

TEST(Histogram, SingleSamplePercentilesCollapseToIt) {
  Histogram h = Histogram::latency_us();
  h.add(42.0);
  EXPECT_DOUBLE_EQ(h.p50(), 42.0);
  EXPECT_DOUBLE_EQ(h.p95(), 42.0);
  EXPECT_DOUBLE_EQ(h.p99(), 42.0);
}

TEST(Histogram, PercentilesAreMonotoneAndClampedToObservedRange) {
  Histogram h = Histogram::latency_us();
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    h.add(std::exp(rng.uniform(0.0, 10.0)));  // log-uniform in [1, e^10]
  }
  const double p50 = h.p50();
  const double p95 = h.p95();
  const double p99 = h.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(1.0), h.max());
}

TEST(Histogram, PercentileApproximatesExactQuantile) {
  // Bucket resolution bounds the error: with 10 buckets per decade a
  // bucket spans a ×10^0.1 ≈ ×1.26 ratio, so the approximate quantile is
  // within ~26% of the exact one.
  Histogram h = Histogram::latency_us();
  std::vector<double> xs;
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    const double x = std::exp(rng.uniform(std::log(5.0), std::log(50000.0)));
    h.add(x);
    xs.push_back(x);
  }
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact = quantile(xs, q);
    EXPECT_NEAR(h.percentile(q), exact, 0.3 * exact) << "q=" << q;
  }
}

TEST(Histogram, MergeEqualsSequential) {
  Histogram all = Histogram::latency_us();
  Histogram a = Histogram::latency_us();
  Histogram b = Histogram::latency_us();
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double x = std::exp(rng.uniform(0.0, 12.0));
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.p95(), all.p95());
  for (std::size_t i = 0; i < a.bucket_count(); ++i) {
    EXPECT_EQ(a.bucket_value(i), all.bucket_value(i)) << "bucket " << i;
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a = Histogram::latency_us();
  Histogram empty = Histogram::latency_us();
  a.add(7.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.p50(), 7.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.min(), 7.0);
}

TEST(Histogram, MergeRejectsLayoutMismatch) {
  Histogram a(1.0, 100.0, 10);
  Histogram b(1.0, 100.0, 20);
  Histogram c(1.0, 200.0, 10);
  EXPECT_FALSE(a.same_layout(b));
  EXPECT_FALSE(a.same_layout(c));
  EXPECT_THROW(a.merge(b), CheckFailure);
  EXPECT_THROW(a.merge(c), CheckFailure);
}

}  // namespace
}  // namespace abp
