#include "common/csv.h"

#include <gtest/gtest.h>
#include <sstream>

#include "common/assert.h"

namespace abp {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row({"1", "2"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Csv, QuotesCommasAndNewlines) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"x,y", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"x,y\",\"line\nbreak\"\n");
}

TEST(Csv, DoublesEmbeddedQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"say \"hi\""});
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(Csv, IntegersRenderWithoutDecimalPoint) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.begin_row();
  csv.number(42.0);
  csv.number(std::size_t{7});
  csv.end_row();
  EXPECT_EQ(out.str(), "42,7\n");
}

TEST(Csv, DoublesRoundTripPrecision) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.begin_row();
  csv.number(0.1);
  csv.end_row();
  double parsed = 0.0;
  std::istringstream in(out.str());
  in >> parsed;
  EXPECT_DOUBLE_EQ(parsed, 0.1);
}

TEST(Csv, HeaderAfterDataThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"data"});
  EXPECT_THROW(csv.header({"late"}), CheckFailure);
}

TEST(Csv, CellOutsideRowThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  EXPECT_THROW(csv.cell("loose"), CheckFailure);
}

TEST(Csv, NestedBeginRowThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.begin_row();
  EXPECT_THROW(csv.begin_row(), CheckFailure);
}

}  // namespace
}  // namespace abp
