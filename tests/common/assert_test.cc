#include "common/assert.h"

#include <gtest/gtest.h>
#include <string>

namespace abp {
namespace {

TEST(Assert, PassingCheckIsSilent) {
  EXPECT_NO_THROW(ABP_CHECK(1 + 1 == 2, "math works"));
}

TEST(Assert, FailingCheckThrowsCheckFailure) {
  EXPECT_THROW(ABP_CHECK(false, "expected"), CheckFailure);
}

TEST(Assert, MessageContainsConditionFileAndContext) {
  try {
    ABP_CHECK(2 > 3, "custom context");
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("assert_test.cc"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

TEST(Assert, CheckFailureIsALogicError) {
  EXPECT_THROW(ABP_CHECK(false, ""), std::logic_error);
}

TEST(Assert, DcheckActiveMatchesBuildType) {
#ifdef NDEBUG
  EXPECT_NO_THROW(ABP_DCHECK(false, "compiled out in release"));
#else
  EXPECT_THROW(ABP_DCHECK(false, "active in debug"), CheckFailure);
#endif
}

TEST(Assert, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  ABP_CHECK([&] {
    ++evaluations;
    return true;
  }(), "side-effect probe");
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace abp
