#include "common/table.h"

#include <gtest/gtest.h>
#include <sstream>

#include "common/assert.h"

namespace abp {
namespace {

TEST(Table, PrintsHeaderRuleAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(Table, EmptyColumnListThrows) {
  EXPECT_THROW(TextTable({}), CheckFailure);
}

TEST(Table, NumericRowFormatting) {
  TextTable t({"x", "y"});
  t.add_numeric_row({1.23456, 2.0}, 2);
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("1.23"), std::string::npos);
  EXPECT_NE(out.str().find("2.00"), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(Table, ColumnsWidenToFitCells) {
  TextTable t({"c"});
  t.add_row({"wide-cell-content"});
  std::ostringstream out;
  t.print(out);
  // Header line must be padded to the widest cell.
  const std::string first_line = out.str().substr(0, out.str().find('\n'));
  EXPECT_EQ(first_line.size(), std::string("wide-cell-content").size());
}

TEST(Table, RowCount) {
  TextTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace abp
