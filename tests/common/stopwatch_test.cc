#include "common/stopwatch.h"

#include <gtest/gtest.h>
#include <thread>

namespace abp {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.elapsed_ms(), 15.0);
  EXPECT_LT(sw.elapsed_seconds(), 5.0);
}

TEST(Stopwatch, ResetRestartsFromZero) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.reset();
  EXPECT_LT(sw.elapsed_ms(), 15.0);
}

TEST(Stopwatch, MonotoneNonNegative) {
  Stopwatch sw;
  double prev = 0.0;
  for (int i = 0; i < 5; ++i) {
    const double t = sw.elapsed_seconds();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace abp
