#include "des/beaconing.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "field/generators.h"
#include "loc/connectivity.h"
#include "radio/propagation.h"

namespace abp {
namespace {

BeaconingConfig quiet_config() {
  BeaconingConfig cfg;
  cfg.period = 1.0;
  cfg.listen_time = 30.0;
  cfg.packet_time = 1e-4;  // nearly collision-free
  cfg.cm_thresh = 0.5;
  cfg.jitter = 0.2;
  return cfg;
}

TEST(Beaconing, SparseFieldMatchesAnalyticConnectivity) {
  // With tiny packets and few beacons, the protocol outcome must equal the
  // analytic predicate (the reduction the evaluation relies on, §2.2).
  BeaconField field(AABB::square(100.0));
  Rng gen(1);
  scatter_uniform(field, 15, gen);
  const IdealDiskModel model(15.0);
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    const auto outcome = simulate_listen(field, model, p, quiet_config(), rng);
    std::vector<BeaconId> analytic;
    for (const Beacon& b : connected_beacons(field, model, p)) {
      analytic.push_back(b.id);
    }
    EXPECT_EQ(outcome.connected, analytic);
    EXPECT_LT(outcome.loss_rate, 0.05);
  }
}

TEST(Beaconing, EstimateMatchesCentroidOfConnected) {
  BeaconField field(AABB::square(100.0));
  field.add({40.0, 50.0});
  field.add({60.0, 50.0});
  const IdealDiskModel model(15.0);
  Rng rng(3);
  const auto outcome =
      simulate_listen(field, model, {50.0, 50.0}, quiet_config(), rng);
  ASSERT_EQ(outcome.connected.size(), 2u);
  EXPECT_NEAR(outcome.estimate.x, 50.0, 1e-9);
  EXPECT_NEAR(outcome.estimate.y, 50.0, 1e-9);
}

TEST(Beaconing, NoBeaconsInRangeFallsBackToFieldCentroid) {
  BeaconField field(AABB::square(100.0));
  field.add({0.0, 0.0});
  const IdealDiskModel model(10.0);
  Rng rng(4);
  const auto outcome =
      simulate_listen(field, model, {90.0, 90.0}, quiet_config(), rng);
  EXPECT_TRUE(outcome.connected.empty());
  EXPECT_EQ(outcome.estimate, (Vec2{0.0, 0.0}));
}

TEST(Beaconing, PerBeaconCountsAreConsistent) {
  BeaconField field(AABB::square(100.0));
  Rng gen(5);
  scatter_uniform(field, 10, gen);
  const IdealDiskModel model(20.0);
  Rng rng(6);
  const auto cfg = quiet_config();
  const auto outcome =
      simulate_listen(field, model, {50.0, 50.0}, cfg, rng);
  for (const auto& d : outcome.detail) {
    EXPECT_LE(d.received, d.sent);
    // ~30 periods in the window: each in-range beacon sends 29-31 packets.
    EXPECT_GE(d.sent, 28u);
    EXPECT_LE(d.sent, 31u);
  }
}

TEST(Beaconing, CollisionLossGrowsWithDensity) {
  // §1 self-interference: with long packets, more in-range beacons ⇒ more
  // overlapping transmissions ⇒ higher loss.
  const IdealDiskModel model(50.0);
  BeaconingConfig cfg = quiet_config();
  cfg.packet_time = 0.03;  // 3% duty cycle per beacon

  auto loss_at = [&](std::size_t beacons) {
    BeaconField field(AABB::square(100.0));
    Rng gen(7);
    // Cluster everything near the client so all are in range.
    scatter_clustered(field, beacons, 1, 10.0, gen);
    Rng rng(8);
    double total = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      total += simulate_listen(field, model, {50.0, 50.0}, cfg, rng).loss_rate;
    }
    return total / 5.0;
  };

  const double sparse = loss_at(4);
  const double dense = loss_at(60);
  EXPECT_GT(dense, sparse);
  EXPECT_GT(dense, 0.3);  // heavily congested channel
}

TEST(Beaconing, HighLossBreaksConnectivityDespiteProximity) {
  // A beacon inside radio range can still fail CMthresh under congestion —
  // the protocol-level effect the analytic model cannot capture.
  BeaconField field(AABB::square(100.0));
  for (int i = 0; i < 80; ++i) {
    field.add({50.0 + 0.1 * i, 50.0});
  }
  const IdealDiskModel model(40.0);
  BeaconingConfig cfg = quiet_config();
  cfg.packet_time = 0.04;
  cfg.cm_thresh = 0.9;  // strict threshold
  Rng rng(9);
  const auto outcome = simulate_listen(field, model, {50.0, 50.0}, cfg, rng);
  EXPECT_LT(outcome.connected.size(), 80u);
}

TEST(Beaconing, CsmaReducesCollisionLossUnderCongestion) {
  // The §1 self-interference mitigation: carrier sensing defers instead of
  // colliding, so the loss rate drops sharply at high density.
  BeaconField field(AABB::square(100.0));
  Rng gen(21);
  scatter_clustered(field, 50, 1, 10.0, gen);
  const IdealDiskModel model(50.0);
  BeaconingConfig cfg = quiet_config();
  cfg.packet_time = 0.03;

  Rng r_aloha(22), r_csma(22);
  cfg.mac = MacMode::kAloha;
  const auto aloha = simulate_listen(field, model, {50.0, 50.0}, cfg, r_aloha);
  cfg.mac = MacMode::kCsma;
  const auto csma = simulate_listen(field, model, {50.0, 50.0}, cfg, r_csma);

  EXPECT_LT(csma.loss_rate, 0.5 * aloha.loss_rate);
  EXPECT_GE(csma.connected.size(), aloha.connected.size());
  EXPECT_EQ(aloha.dropped_packets, 0u);  // ALOHA never defers
}

TEST(Beaconing, CsmaOnQuietChannelBehavesLikeAloha) {
  BeaconField field(AABB::square(100.0));
  field.add({45.0, 50.0});
  field.add({55.0, 50.0});
  const IdealDiskModel model(15.0);
  BeaconingConfig cfg = quiet_config();  // tiny packets: no contention
  cfg.mac = MacMode::kCsma;
  Rng rng(23);
  const auto outcome = simulate_listen(field, model, {50.0, 50.0}, cfg, rng);
  EXPECT_EQ(outcome.connected.size(), 2u);
  EXPECT_EQ(outcome.dropped_packets, 0u);
  EXPECT_LT(outcome.loss_rate, 0.05);
}

TEST(Beaconing, CsmaDropsWhenChannelNeverIdles) {
  // Saturate the channel so retries run out: drops must be reported.
  BeaconField field(AABB::square(100.0));
  for (int i = 0; i < 120; ++i) field.add({50.0 + 0.05 * i, 50.0});
  const IdealDiskModel model(40.0);
  BeaconingConfig cfg = quiet_config();
  cfg.packet_time = 0.2;  // 120 beacons × 20% duty: hopeless congestion
  cfg.mac = MacMode::kCsma;
  cfg.csma_retries = 2;
  Rng rng(24);
  const auto outcome = simulate_listen(field, model, {50.0, 50.0}, cfg, rng);
  EXPECT_GT(outcome.dropped_packets, 0u);
}

TEST(Beaconing, DeterministicGivenSeed) {
  BeaconField field(AABB::square(100.0));
  Rng gen(10);
  scatter_uniform(field, 20, gen);
  const IdealDiskModel model(20.0);
  Rng r1(42), r2(42);
  const auto a = simulate_listen(field, model, {30.0, 30.0}, quiet_config(), r1);
  const auto b = simulate_listen(field, model, {30.0, 30.0}, quiet_config(), r2);
  EXPECT_EQ(a.connected, b.connected);
  EXPECT_DOUBLE_EQ(a.loss_rate, b.loss_rate);
}

TEST(Beaconing, ConfigValidation) {
  BeaconField field(AABB::square(100.0));
  const IdealDiskModel model(15.0);
  Rng rng(1);
  BeaconingConfig bad = quiet_config();
  bad.packet_time = 2.0;  // longer than the period
  EXPECT_THROW(simulate_listen(field, model, {1, 1}, bad, rng), CheckFailure);
  bad = quiet_config();
  bad.listen_time = 0.5;  // shorter than one period
  EXPECT_THROW(simulate_listen(field, model, {1, 1}, bad, rng), CheckFailure);
  bad = quiet_config();
  bad.cm_thresh = 0.0;
  EXPECT_THROW(simulate_listen(field, model, {1, 1}, bad, rng), CheckFailure);
}

}  // namespace
}  // namespace abp
