#include "des/simulator.h"

#include <gtest/gtest.h>
#include <vector>

namespace abp {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(5.5, [&] { seen = sim.now(); });
  sim.run_until(100.0);
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);  // clock settles at the horizon
}

TEST(Simulator, EventsBeyondHorizonStayQueued) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(10.0, [&] { ran = true; });
  sim.run_until(5.0);
  EXPECT_FALSE(ran);
  EXPECT_FALSE(sim.empty());
  sim.run_until(10.0);  // inclusive boundary
  EXPECT_TRUE(ran);
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 5) sim.schedule_in(1.0, tick);
  };
  sim.schedule_at(0.0, tick);
  sim.run_until(100.0);
  EXPECT_EQ(ticks, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), CheckFailure);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double when = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(3.0, [&] { when = sim.now(); });
  });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(when, 5.0);
}

TEST(Simulator, NullHandlerRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, nullptr), CheckFailure);
}

}  // namespace
}  // namespace abp
