#include "loc/multilateration.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "common/stats.h"
#include "field/generators.h"
#include "loc/connectivity.h"
#include "radio/propagation.h"
#include "rng/rng.h"

namespace abp {
namespace {

TEST(Ranging, NoiseFreeRangesAreExact) {
  BeaconField field(AABB::square(100.0));
  field.add({40.0, 50.0});
  field.add({60.0, 50.0});
  const IdealDiskModel conn(20.0);
  const RangingModel ranging(conn, 0.0, 1);
  const auto ms = ranging.measure(field, {50.0, 50.0});
  ASSERT_EQ(ms.size(), 2u);
  EXPECT_DOUBLE_EQ(ms[0].range, 10.0);
  EXPECT_DOUBLE_EQ(ms[1].range, 10.0);
}

TEST(Ranging, StaticPerPair) {
  BeaconField field(AABB::square(100.0));
  field.add({40.0, 50.0});
  const IdealDiskModel conn(20.0);
  const RangingModel ranging(conn, 0.05, 2);
  const auto a = ranging.measure(field, {50.0, 50.0});
  const auto b = ranging.measure(field, {50.0, 50.0});
  ASSERT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a[0].range, b[0].range);
}

TEST(Ranging, NoiseIsProportional) {
  BeaconField field(AABB::square(100.0));
  Rng rng(3);
  scatter_uniform(field, 200, rng);
  const IdealDiskModel conn(25.0);
  const double sigma = 0.05;
  const RangingModel ranging(conn, sigma, 3);
  RunningStats rel_err;
  for (int i = 0; i < 100; ++i) {
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    for (const auto& m : ranging.measure(field, p)) {
      const double true_d = distance(m.beacon.pos, p);
      if (true_d > 1.0) rel_err.add((m.range - true_d) / true_d);
    }
  }
  EXPECT_NEAR(rel_err.mean(), 0.0, 0.01);
  EXPECT_NEAR(rel_err.stddev(), sigma, 0.01);
}

TEST(Ranging, RejectsExcessiveSigma) {
  const IdealDiskModel conn(20.0);
  EXPECT_THROW(RangingModel(conn, 0.5, 1), CheckFailure);
}

TEST(Multilateration, ExactRecoveryWithThreeCleanRanges) {
  BeaconField field(AABB::square(100.0));
  field.add({30.0, 30.0});
  field.add({70.0, 30.0});
  field.add({50.0, 80.0});
  const IdealDiskModel conn(60.0);
  const RangingModel ranging(conn, 0.0, 4);
  const MultilaterationLocalizer loc(field, ranging);
  const Vec2 truth{47.0, 44.0};
  const auto r = loc.localize(truth);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.beacons_used, 3u);
  EXPECT_NEAR(r.estimate.x, truth.x, 1e-5);
  EXPECT_NEAR(r.estimate.y, truth.y, 1e-5);
}

TEST(Multilateration, FewerThanThreeFallsBackToCentroid) {
  BeaconField field(AABB::square(100.0));
  field.add({40.0, 50.0});
  field.add({60.0, 50.0});
  const IdealDiskModel conn(20.0);
  const RangingModel ranging(conn, 0.0, 5);
  const MultilaterationLocalizer loc(field, ranging);
  const auto r = loc.localize({50.0, 50.0});
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.beacons_used, 2u);
  EXPECT_EQ(r.estimate, (Vec2{50.0, 50.0}));  // centroid of the two
}

TEST(Multilateration, NoisyRangesStillCloserThanCentroid) {
  BeaconField field(AABB::square(100.0));
  Rng rng(6);
  scatter_uniform(field, 100, rng);
  const IdealDiskModel conn(25.0);
  const RangingModel ranging(conn, 0.05, 6);
  const MultilaterationLocalizer multi(field, ranging);

  RunningStats multi_err, centroid_err;
  for (int i = 0; i < 200; ++i) {
    const Vec2 p{rng.uniform(20.0, 80.0), rng.uniform(20.0, 80.0)};
    const auto beacons = connected_beacons(field, conn, p);
    if (beacons.size() < 3) continue;
    Vec2 centroid;
    for (const auto& b : beacons) centroid += b.pos;
    centroid = centroid / static_cast<double>(beacons.size());
    multi_err.add(multi.error(p));
    centroid_err.add(distance(centroid, p));
  }
  EXPECT_LT(multi_err.mean(), centroid_err.mean());
}

TEST(Gdop, EquilateralTriangleIsWellConditioned) {
  std::vector<Beacon> beacons{
      {0, {50.0 + 20.0, 50.0}, true},
      {1, {50.0 - 10.0, 50.0 + 17.32}, true},
      {2, {50.0 - 10.0, 50.0 - 17.32}, true},
  };
  const double g = gdop({50.0, 50.0}, beacons);
  // Ideal planar GDOP for 3 symmetric bearings is ~ sqrt(4/3)·... ≈ 1.15–1.7.
  EXPECT_GT(g, 0.5);
  EXPECT_LT(g, 2.0);
}

TEST(Gdop, CollinearBeaconsAreSingular) {
  std::vector<Beacon> beacons{
      {0, {10.0, 50.0}, true},
      {1, {50.0, 50.0}, true},
      {2, {90.0, 50.0}, true},
  };
  EXPECT_EQ(gdop({50.0, 20.0}, beacons) < kGdopSingular, true);
  // The client on the line itself: unit vectors all collinear ⇒ singular.
  EXPECT_DOUBLE_EQ(gdop({70.0, 50.0}, beacons), kGdopSingular);
}

TEST(Gdop, TooFewBeaconsIsSingular) {
  std::vector<Beacon> two{{0, {0.0, 0.0}, true}, {1, {10.0, 0.0}, true}};
  EXPECT_DOUBLE_EQ(gdop({5.0, 5.0}, two), kGdopSingular);
}

TEST(Gdop, MoreBeaconsNeverWorse) {
  Rng rng(7);
  std::vector<Beacon> beacons;
  for (BeaconId i = 0; i < 3; ++i) {
    beacons.push_back({i,
                       {rng.uniform(20.0, 80.0), rng.uniform(20.0, 80.0)},
                       true});
  }
  const Vec2 p{50.0, 50.0};
  double prev = gdop(p, beacons);
  for (BeaconId i = 3; i < 10; ++i) {
    beacons.push_back({i,
                       {rng.uniform(20.0, 80.0), rng.uniform(20.0, 80.0)},
                       true});
    const double g = gdop(p, beacons);
    EXPECT_LE(g, prev + 1e-9);  // adding rows to HᵀH cannot hurt
    prev = g;
  }
}

}  // namespace
}  // namespace abp
