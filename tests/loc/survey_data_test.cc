#include "loc/survey_data.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "field/generators.h"
#include "radio/noise_model.h"
#include "rng/rng.h"

namespace abp {
namespace {

Lattice2D small_lattice() { return Lattice2D(AABB::square(20.0), 1.0); }

TEST(SurveyData, StartsEmpty) {
  const SurveyData data(small_lattice());
  EXPECT_EQ(data.measured_count(), 0u);
  EXPECT_DOUBLE_EQ(data.coverage(), 0.0);
  EXPECT_DOUBLE_EQ(data.mean(), 0.0);
  EXPECT_DOUBLE_EQ(data.median(), 0.0);
}

TEST(SurveyData, RecordAndRead) {
  SurveyData data(small_lattice());
  data.record(5, 3.5);
  EXPECT_TRUE(data.measured(5));
  EXPECT_FALSE(data.measured(6));
  EXPECT_DOUBLE_EQ(data.value(5), 3.5);
  EXPECT_EQ(data.measured_count(), 1u);
}

TEST(SurveyData, OverwriteUpdatesMeanNotCount) {
  SurveyData data(small_lattice());
  data.record(0, 2.0);
  data.record(1, 4.0);
  EXPECT_DOUBLE_EQ(data.mean(), 3.0);
  data.record(1, 8.0);  // revisit
  EXPECT_EQ(data.measured_count(), 2u);
  EXPECT_DOUBLE_EQ(data.mean(), 5.0);
}

TEST(SurveyData, MedianOverMeasuredOnly) {
  SurveyData data(small_lattice());
  data.record(0, 1.0);
  data.record(10, 9.0);
  data.record(20, 5.0);
  EXPECT_DOUBLE_EQ(data.median(), 5.0);
}

TEST(SurveyData, NegativeMeasurementRejected) {
  SurveyData data(small_lattice());
  EXPECT_THROW(data.record(0, -1.0), CheckFailure);
}

TEST(SurveyData, FromErrorMapIsCompleteAndExact) {
  BeaconField field(AABB::square(20.0));
  Rng rng(1);
  scatter_uniform(field, 5, rng);
  const PerBeaconNoiseModel model(8.0, 0.2, 2);
  const Lattice2D lattice = small_lattice();
  ErrorMap map(lattice);
  map.compute(field, model);

  const SurveyData data = SurveyData::from_error_map(map);
  EXPECT_DOUBLE_EQ(data.coverage(), 1.0);
  EXPECT_NEAR(data.mean(), map.mean(), 1e-9);
  EXPECT_NEAR(data.median(), map.median(), 1e-9);
  lattice.for_each([&](std::size_t flat, Vec2) {
    ASSERT_DOUBLE_EQ(data.value(flat), map.value(flat));
  });
}

TEST(SurveyData, SuppressDiskZeroesValuesKeepsMask) {
  SurveyData data(small_lattice());
  const auto& lattice = data.lattice();
  lattice.for_each([&](std::size_t flat, Vec2) { data.record(flat, 2.0); });
  data.suppress_disk({10.0, 10.0}, 3.0);
  EXPECT_DOUBLE_EQ(data.value(lattice.nearest({10.0, 10.0})), 0.0);
  EXPECT_TRUE(data.measured(lattice.nearest({10.0, 10.0})));
  EXPECT_DOUBLE_EQ(data.value(lattice.nearest({0.0, 0.0})), 2.0);
  EXPECT_EQ(data.measured_count(), lattice.size());
  EXPECT_LT(data.mean(), 2.0);
}

TEST(SurveyData, MergeCombinesAndOverwrites) {
  const Lattice2D lattice = small_lattice();
  SurveyData a(lattice), b(lattice);
  a.record(0, 1.0);
  a.record(1, 2.0);
  b.record(1, 9.0);  // overlaps a
  b.record(2, 3.0);
  a.merge(b);
  EXPECT_EQ(a.measured_count(), 3u);
  EXPECT_DOUBLE_EQ(a.value(0), 1.0);
  EXPECT_DOUBLE_EQ(a.value(1), 9.0);  // later data wins
  EXPECT_DOUBLE_EQ(a.value(2), 3.0);
  EXPECT_DOUBLE_EQ(a.mean(), (1.0 + 9.0 + 3.0) / 3.0);
}

TEST(SurveyData, MergeRejectsMismatchedLattices) {
  SurveyData a(small_lattice());
  SurveyData b{Lattice2D(AABB::square(20.0), 2.0)};
  EXPECT_THROW(a.merge(b), CheckFailure);
}

TEST(SurveyData, SuppressUnmeasuredIsNoop) {
  SurveyData data(small_lattice());
  data.record(0, 5.0);
  data.suppress_disk({20.0, 20.0}, 2.0);  // far corner, unmeasured
  EXPECT_DOUBLE_EQ(data.mean(), 5.0);
}

}  // namespace
}  // namespace abp
