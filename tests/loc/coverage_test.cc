#include "loc/coverage.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "field/generators.h"
#include "radio/propagation.h"
#include "rng/rng.h"

namespace abp {
namespace {

const Lattice2D kLattice(AABB::square(100.0), 2.0);
const IdealDiskModel kModel(15.0);

TEST(Coverage, EmptyFieldIsUncoveredAndComponentFree) {
  BeaconField field(AABB::square(100.0));
  const auto stats = analyze_coverage(field, kModel, kLattice);
  EXPECT_DOUBLE_EQ(stats.at_least(1), 0.0);
  EXPECT_EQ(stats.components, 0u);
  EXPECT_EQ(stats.isolated_beacons, 0u);
}

TEST(Coverage, SingleBeaconCoversItsDisk) {
  BeaconField field(AABB::square(100.0));
  field.add({50.0, 50.0});
  const auto stats = analyze_coverage(field, kModel, kLattice);
  // πR²/Side² ≈ 7.07%.
  EXPECT_NEAR(stats.at_least(1), 0.0707, 0.01);
  EXPECT_DOUBLE_EQ(stats.at_least(2), 0.0);
  EXPECT_EQ(stats.components, 1u);
  EXPECT_EQ(stats.isolated_beacons, 1u);
  EXPECT_EQ(stats.largest_component, 1u);
}

TEST(Coverage, KCoverageIsMonotoneInK) {
  BeaconField field(AABB::square(100.0));
  Rng rng(1);
  scatter_uniform(field, 80, rng);
  const auto stats = analyze_coverage(field, kModel, kLattice, 5);
  for (std::size_t k = 2; k <= 5; ++k) {
    EXPECT_LE(stats.at_least(k), stats.at_least(k - 1));
  }
  EXPECT_GT(stats.at_least(1), 0.9);
}

TEST(Coverage, AtLeastBoundaryBehaviour) {
  BeaconField field(AABB::square(100.0));
  field.add({50.0, 50.0});
  const auto stats = analyze_coverage(field, kModel, kLattice, 2);
  EXPECT_DOUBLE_EQ(stats.at_least(0), 1.0);  // trivially covered
  EXPECT_DOUBLE_EQ(stats.at_least(9), 0.0);  // beyond k_max
}

TEST(Coverage, TwoClustersAreTwoComponents) {
  BeaconField field(AABB::square(100.0));
  // Cluster A: chain of beacons 10 m apart (each hears the next).
  field.add({10.0, 10.0});
  field.add({20.0, 10.0});
  field.add({30.0, 10.0});
  // Cluster B: far corner pair.
  field.add({85.0, 85.0});
  field.add({92.0, 85.0});
  const auto stats = analyze_coverage(field, kModel, kLattice);
  EXPECT_EQ(stats.components, 2u);
  EXPECT_EQ(stats.largest_component, 3u);
  EXPECT_EQ(stats.isolated_beacons, 0u);
}

TEST(Coverage, ChainConnectivityIsTransitive) {
  // a—b in range, b—c in range, a—c NOT in range: still one component.
  BeaconField field(AABB::square(100.0));
  field.add({10.0, 50.0});
  field.add({22.0, 50.0});
  field.add({34.0, 50.0});
  const auto stats = analyze_coverage(field, kModel, kLattice);
  EXPECT_EQ(stats.components, 1u);
  EXPECT_EQ(stats.largest_component, 3u);
}

TEST(Coverage, PassiveBeaconsExcluded) {
  BeaconField field(AABB::square(100.0));
  field.add({50.0, 50.0});
  const BeaconId other = field.add({58.0, 50.0});
  field.set_active(other, false);
  const auto stats = analyze_coverage(field, kModel, kLattice);
  EXPECT_EQ(stats.components, 1u);
  EXPECT_EQ(stats.isolated_beacons, 1u);  // the active one hears nobody
}

TEST(Coverage, DensityDrivesConnectivityToOneComponent) {
  BeaconField field(AABB::square(100.0));
  Rng rng(3);
  scatter_uniform(field, 150, rng);  // ≈ 10 neighbours each
  const auto stats = analyze_coverage(field, kModel, kLattice);
  EXPECT_EQ(stats.components, 1u);
  EXPECT_EQ(stats.largest_component, 150u);
}

TEST(Coverage, RejectsZeroKMax) {
  BeaconField field(AABB::square(100.0));
  EXPECT_THROW(analyze_coverage(field, kModel, kLattice, 0), CheckFailure);
}

}  // namespace
}  // namespace abp
