/// Property tests for the batched survey kernel (loc/survey_kernel.h).
///
/// The kernel's contract is *bit-identity*: every arm (scalar, generic,
/// AVX2) and every wrapper built on it must reproduce the historical
/// per-point scalar path exactly — same connected sets, same ascending-id
/// accumulation, same IEEE doubles. All comparisons here use exact
/// equality on purpose; a one-ulp drift is a bug.
#include "loc/survey_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "field/generators.h"
#include "loc/connectivity.h"
#include "loc/error_map.h"
#include "loc/localizer.h"
#include "radio/lognormal_model.h"
#include "radio/noise_model.h"
#include "radio/propagation.h"
#include "rng/rng.h"

namespace abp {
namespace {

/// The historical scalar path, reproduced verbatim: spatial-index disk
/// query, per-beacon virtual predicate, sort by id, accumulate ascending.
/// This is the oracle every kernel arm must match bit-for-bit.
ConnectedSum oracle_connected_sum(const BeaconField& field,
                                  const PropagationModel& model, Vec2 point) {
  std::vector<std::pair<BeaconId, Vec2>> hits;
  field.query_disk(point, model.max_range(), [&](const Beacon& b) {
    if (model.connected(b, point)) hits.emplace_back(b.id, b.pos);
  });
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ConnectedSum out;
  for (const auto& [id, pos] : hits) {
    out.sum += pos;
    ++out.count;
  }
  return out;
}

BeaconField make_field(std::size_t n_beacons, std::uint64_t seed,
                       bool clustered = false) {
  BeaconField field(AABB::square(100.0));
  Rng rng(seed);
  if (clustered) {
    // Dense knots: exercises points connected to many beacons at once.
    const std::size_t clusters = std::max<std::size_t>(1, n_beacons / 8);
    for (std::size_t c = 0; c < clusters; ++c) {
      const Vec2 center{rng.uniform(5.0, 95.0), rng.uniform(5.0, 95.0)};
      for (std::size_t i = 0; i < 8 && field.size() < n_beacons; ++i) {
        field.add(field.bounds().clamp(
            {center.x + rng.uniform(-4.0, 4.0),
             center.y + rng.uniform(-4.0, 4.0)}));
      }
    }
  } else {
    for (std::size_t i = 0; i < n_beacons; ++i) {
      field.add({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    }
  }
  return field;
}

std::vector<Vec2> make_points(std::size_t n, std::uint64_t seed) {
  // Deliberately wider than the field so some points lie outside every
  // disk; also hit exact lattice-ish coordinates.
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 7 == 0) {
      pts.push_back({static_cast<double>(i % 120), static_cast<double>(i % 97)});
    } else {
      pts.push_back({rng.uniform(-20.0, 120.0), rng.uniform(-20.0, 120.0)});
    }
  }
  return pts;
}

void expect_batches_equal(const SurveyBatch& a, const SurveyBatch& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.counts[i], b.counts[i]) << what << " count @" << i;
    // Exact bit equality, not almost-equal.
    EXPECT_EQ(a.sum_x[i], b.sum_x[i]) << what << " sum_x @" << i;
    EXPECT_EQ(a.sum_y[i], b.sum_y[i]) << what << " sum_y @" << i;
  }
}

void evaluate_into(const SurveyKernel& kernel, const std::vector<Vec2>& pts,
                   SurveyBackend backend, SurveyBatch& batch) {
  batch.clear();
  batch.reserve(pts.size());
  for (Vec2 p : pts) batch.push(p);
  kernel.evaluate(batch, backend);
}

class SurveyKernelNoise : public ::testing::TestWithParam<double> {};

TEST_P(SurveyKernelNoise, ScalarArmMatchesHistoricalOracle) {
  const double noise = GetParam();
  const BeaconField field = make_field(60, 0xA1);
  const PerBeaconNoiseModel model(15.0, noise, 0xBEEF);
  const SurveyKernel kernel(field, model);
  ASSERT_TRUE(kernel.fast_path());
  for (Vec2 p : make_points(300, 0xB2)) {
    const ConnectedSum want = oracle_connected_sum(field, model, p);
    const ConnectedSum got = kernel.evaluate_point(p);
    EXPECT_EQ(want.count, got.count);
    EXPECT_EQ(want.sum.x, got.sum.x);
    EXPECT_EQ(want.sum.y, got.sum.y);
  }
}

TEST_P(SurveyKernelNoise, AllArmsBitIdenticalAcrossBatchSizes) {
  const double noise = GetParam();
  for (const bool clustered : {false, true}) {
    const BeaconField field = make_field(48, 0xC3, clustered);
    const PerBeaconNoiseModel model(15.0, noise, 0xF00D);
    const SurveyKernel kernel(field, model);
    const std::vector<Vec2> all = make_points(1024, 0xD4);
    SurveyBatch scalar, generic, avx2;
    for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                std::size_t{4}, std::size_t{5}, std::size_t{7},
                                std::size_t{8}, std::size_t{15},
                                std::size_t{16}, std::size_t{17},
                                std::size_t{31}, std::size_t{33},
                                std::size_t{64}, std::size_t{127},
                                std::size_t{257}, std::size_t{1024}}) {
      const std::vector<Vec2> pts(all.begin(), all.begin() + n);
      evaluate_into(kernel, pts, SurveyBackend::kScalar, scalar);
      evaluate_into(kernel, pts, SurveyBackend::kGeneric, generic);
      expect_batches_equal(scalar, generic, "generic");
      if (SurveyKernel::avx2_supported()) {
        evaluate_into(kernel, pts, SurveyBackend::kAvx2, avx2);
        expect_batches_equal(scalar, avx2, "avx2");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseSettings, SurveyKernelNoise,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5));

TEST(SurveyKernel, EmptyFieldAndEmptyBatch) {
  const BeaconField field(AABB::square(100.0));
  const PerBeaconNoiseModel model(15.0, 0.3, 1);
  const SurveyKernel kernel(field, model);
  SurveyBatch batch;
  kernel.evaluate(batch);
  EXPECT_EQ(batch.size(), 0u);
  batch.push({50.0, 50.0});
  for (const auto backend : {SurveyBackend::kScalar, SurveyBackend::kGeneric,
                             SurveyBackend::kAvx2}) {
    kernel.evaluate(batch, backend);
    EXPECT_EQ(batch.counts[0], 0u);
    EXPECT_EQ(batch.sum_x[0], 0.0);
    EXPECT_EQ(batch.sum_y[0], 0.0);
  }
}

TEST(SurveyKernel, SingletonField) {
  BeaconField field(AABB::square(100.0));
  field.add({50.0, 50.0});
  const PerBeaconNoiseModel model(15.0, 0.5, 7);
  const SurveyKernel kernel(field, model);
  SurveyBatch scalar, generic, avx2;
  const std::vector<Vec2> pts = make_points(257, 0xE5);
  evaluate_into(kernel, pts, SurveyBackend::kScalar, scalar);
  evaluate_into(kernel, pts, SurveyBackend::kGeneric, generic);
  expect_batches_equal(scalar, generic, "generic");
  if (SurveyKernel::avx2_supported()) {
    evaluate_into(kernel, pts, SurveyBackend::kAvx2, avx2);
    expect_batches_equal(scalar, avx2, "avx2");
  }
}

TEST(SurveyKernel, IdealDiskModelTakesFastPathAndMatchesOracle) {
  const BeaconField field = make_field(40, 0x11);
  const IdealDiskModel model(15.0);
  const SurveyKernel kernel(field, model);
  EXPECT_TRUE(kernel.fast_path());
  SurveyBatch scalar, generic;
  const std::vector<Vec2> pts = make_points(200, 0x22);
  evaluate_into(kernel, pts, SurveyBackend::kScalar, scalar);
  evaluate_into(kernel, pts, SurveyBackend::kGeneric, generic);
  expect_batches_equal(scalar, generic, "generic");
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const ConnectedSum want = oracle_connected_sum(field, model, pts[i]);
    EXPECT_EQ(want.count, scalar.counts[i]);
    EXPECT_EQ(want.sum.x, scalar.sum_x[i]);
    EXPECT_EQ(want.sum.y, scalar.sum_y[i]);
  }
}

TEST(SurveyKernel, FallbackModelBatchMatchesOracle) {
  const BeaconField field = make_field(40, 0x33);
  const LogNormalShadowingModel model(15.0, 3.0, 4.0, 0x77);
  const SurveyKernel kernel(field, model);
  EXPECT_FALSE(kernel.fast_path());
  SurveyBatch batch;
  const std::vector<Vec2> pts = make_points(200, 0x44);
  evaluate_into(kernel, pts, SurveyBackend::kAvx2, batch);  // degrades
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const ConnectedSum want = oracle_connected_sum(field, model, pts[i]);
    EXPECT_EQ(want.count, batch.counts[i]);
    EXPECT_EQ(want.sum.x, batch.sum_x[i]);
    EXPECT_EQ(want.sum.y, batch.sum_y[i]);
  }
}

TEST(SurveyKernel, WrappersMatchKernel) {
  const BeaconField field = make_field(32, 0x55, /*clustered=*/true);
  const PerBeaconNoiseModel model(15.0, 0.3, 0x99);
  const SurveyKernel kernel(field, model);
  for (Vec2 p : make_points(64, 0x66)) {
    const ConnectedSum a = connected_sum(field, model, p);
    const ConnectedSum b = kernel.evaluate_point(p);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.sum.x, b.sum.x);
    EXPECT_EQ(a.sum.y, b.sum.y);
    EXPECT_EQ(connected_count(field, model, p), b.count);
    const auto list = connected_beacons(field, model, p);
    const auto klist = kernel.connected_list(p);
    ASSERT_EQ(list.size(), klist.size());
    EXPECT_EQ(list.size(), b.count);
    for (std::size_t i = 0; i < list.size(); ++i) {
      EXPECT_EQ(list[i].id, klist[i].id);
      // Ascending-id contract.
      if (i > 0) EXPECT_LT(list[i - 1].id, list[i].id);
    }
  }
}

TEST(SurveyKernel, HypotheticalMatchesRealAddition) {
  BeaconField field = make_field(24, 0x77);
  const PerBeaconNoiseModel model(15.0, 0.3, 0xAB);
  const SurveyKernel before(field, model);
  const Vec2 cand{42.5, 57.25};
  const auto hyp = before.make_hypothetical(cand);
  const std::vector<Vec2> pts = make_points(128, 0x88);

  field.add(cand);
  const SurveyKernel after(field, model);
  for (Vec2 p : pts) {
    ConnectedSum predicted = before.evaluate_point(p);
    if (before.hypothetical_connected(hyp, p)) {
      predicted.sum += cand;
      ++predicted.count;
    }
    const ConnectedSum actual = after.evaluate_point(p);
    EXPECT_EQ(predicted.count, actual.count);
    EXPECT_EQ(predicted.sum.x, actual.sum.x);
    EXPECT_EQ(predicted.sum.y, actual.sum.y);
  }
}

TEST(SurveyKernel, RevisionTracksEveryMutation) {
  BeaconField field(AABB::square(100.0));
  std::uint64_t rev = field.revision();
  const BeaconId id = field.add({10.0, 10.0});
  EXPECT_NE(field.revision(), rev);
  rev = field.revision();
  field.set_active(id, false);
  EXPECT_NE(field.revision(), rev);
  rev = field.revision();
  field.remove(id);
  EXPECT_NE(field.revision(), rev);
  // Two distinct fields never share a revision.
  const BeaconField other(AABB::square(100.0));
  EXPECT_NE(other.revision(), field.revision());

  const PerBeaconNoiseModel model(15.0, 0.3, 3);
  const SurveyKernel kernel(field, model);
  EXPECT_EQ(kernel.revision(), field.revision());
  field.add({20.0, 20.0});
  EXPECT_NE(kernel.revision(), field.revision());
}

TEST(SurveyKernel, ErrorMapBatchedEqualsDirectPerPoint) {
  const BeaconField field = make_field(30, 0xAA);
  const PerBeaconNoiseModel model(15.0, 0.3, 0xCD);
  const Lattice2D lattice(field.bounds(), 2.0);
  ErrorMap map(lattice);
  map.compute(field, model);
  const CentroidLocalizer loc(field, model);
  lattice.for_each([&](std::size_t flat, Vec2 p) {
    // Exact: the batched sweep must reproduce the per-point localizer.
    EXPECT_EQ(map.value(flat), loc.error(p));
    EXPECT_EQ(map.connected(flat), loc.localize(p).connected);
  });
}

TEST(SurveyKernel, DefaultBackendHonorsEnvOverride) {
  ::setenv("ABP_SURVEY_BACKEND", "scalar", 1);
  EXPECT_EQ(SurveyKernel::default_backend(), SurveyBackend::kScalar);
  ::setenv("ABP_SURVEY_BACKEND", "generic", 1);
  EXPECT_EQ(SurveyKernel::default_backend(), SurveyBackend::kGeneric);
  ::setenv("ABP_SURVEY_BACKEND", "avx2", 1);
  EXPECT_EQ(SurveyKernel::default_backend(), SurveyBackend::kAvx2);
  ::unsetenv("ABP_SURVEY_BACKEND");
  const SurveyBackend def = SurveyKernel::default_backend();
  EXPECT_EQ(def, SurveyKernel::avx2_supported() ? SurveyBackend::kAvx2
                                                : SurveyBackend::kGeneric);
}

}  // namespace
}  // namespace abp
