#include "loc/region_localizer.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "common/stats.h"
#include "field/generators.h"
#include "radio/noise_model.h"
#include "radio/propagation.h"
#include "rng/rng.h"

namespace abp {
namespace {

TEST(RegionLocalizer, SingleBeaconRegionIsItsDisk) {
  BeaconField field(AABB::square(100.0));
  field.add({50.0, 50.0});
  const IdealDiskModel model(15.0);
  const RegionLocalizer loc(field, model, 1.0);
  const auto r = loc.localize({55.0, 50.0});
  EXPECT_TRUE(r.used_region);
  EXPECT_EQ(r.connected, 1u);
  // The feasible region is the full disk: centroid ≈ beacon position, area
  // ≈ πR² ≈ 707 m².
  EXPECT_NEAR(r.estimate.x, 50.0, 0.6);
  EXPECT_NEAR(r.estimate.y, 50.0, 0.6);
  EXPECT_NEAR(r.region_area, 707.0, 40.0);
}

TEST(RegionLocalizer, TwoBeaconLensCentroid) {
  BeaconField field(AABB::square(100.0));
  field.add({40.0, 50.0});
  field.add({60.0, 50.0});
  const IdealDiskModel model(15.0);
  const RegionLocalizer loc(field, model, 0.5);
  const auto r = loc.localize({50.0, 50.0});
  EXPECT_TRUE(r.used_region);
  EXPECT_EQ(r.connected, 2u);
  // The lens of the two disks is symmetric about (50, 50).
  EXPECT_NEAR(r.estimate.x, 50.0, 0.3);
  EXPECT_NEAR(r.estimate.y, 50.0, 0.3);
  // Lens area for R=15, d=20: 2 R² cos⁻¹(d/2R) − (d/2)·√(4R²−d²) ≈ 151 m².
  EXPECT_NEAR(r.region_area, 151.0, 15.0);
}

TEST(RegionLocalizer, ExclusionShrinksTheRegion) {
  // A third, unheard beacon nearby carves its disk OUT of the region —
  // the information the plain centroid throws away.
  BeaconField with_extra(AABB::square(100.0));
  with_extra.add({40.0, 50.0});
  BeaconField without(AABB::square(100.0));
  without.add({40.0, 50.0});
  // The extra beacon at (60,50): a client at (47,50) does not hear it.
  with_extra.add({66.0, 50.0});

  const IdealDiskModel model(15.0);
  const RegionLocalizer loc_with(with_extra, model, 0.5);
  const RegionLocalizer loc_without(without, model, 0.5);
  const Vec2 client{47.0, 50.0};
  const auto r_with = loc_with.localize(client);
  const auto r_without = loc_without.localize(client);
  ASSERT_TRUE(r_with.used_region);
  ASSERT_TRUE(r_without.used_region);
  EXPECT_EQ(r_with.connected, 1u);
  EXPECT_LT(r_with.region_area, r_without.region_area);
  // The exclusion pushes the estimate away from the unheard beacon.
  EXPECT_LT(r_with.estimate.x, r_without.estimate.x);
}

TEST(RegionLocalizer, NoConnectivityFallsBackToFieldCentroid) {
  BeaconField field(AABB::square(100.0));
  field.add({10.0, 10.0});
  const IdealDiskModel model(15.0);
  const RegionLocalizer loc(field, model, 1.0);
  const auto r = loc.localize({90.0, 90.0});
  EXPECT_FALSE(r.used_region);
  EXPECT_EQ(r.connected, 0u);
  EXPECT_EQ(r.estimate, (Vec2{10.0, 10.0}));
}

TEST(RegionLocalizer, BeatsPlainCentroidOnAverageIdeal) {
  // The theoretical appeal (§6): the region centroid is the uniform-prior
  // optimal estimate; over many clients it must beat centroid-of-beacons.
  BeaconField field(AABB::square(100.0));
  Rng gen(5);
  scatter_uniform(field, 40, gen);
  const IdealDiskModel model(15.0);
  const RegionLocalizer region(field, model, 1.0);
  const CentroidLocalizer centroid(field, model);

  RunningStats region_err, centroid_err;
  Rng rng(6);
  for (int i = 0; i < 150; ++i) {
    const Vec2 p{rng.uniform(10.0, 90.0), rng.uniform(10.0, 90.0)};
    region_err.add(region.error(p));
    centroid_err.add(centroid.error(p));
  }
  EXPECT_LT(region_err.mean(), centroid_err.mean());
}

TEST(RegionLocalizer, NoiseDegradesToFallbackGracefully) {
  // "The locus information is not reliable under non ideal radio
  // propagation": with noise the estimator must still return sane results
  // (region or fallback), never throw.
  BeaconField field(AABB::square(100.0));
  Rng gen(7);
  scatter_uniform(field, 30, gen);
  const PerBeaconNoiseModel model(15.0, 0.5, 3);
  const RegionLocalizer loc(field, model, 1.5);
  Rng rng(8);
  for (int i = 0; i < 40; ++i) {
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    const auto r = loc.localize(p);
    EXPECT_TRUE(field.bounds().contains(field.bounds().clamp(r.estimate)));
    EXPECT_GE(r.region_area, 0.0);
  }
}

TEST(RegionLocalizer, RejectsBadSampleStep) {
  BeaconField field(AABB::square(10.0));
  const IdealDiskModel model(5.0);
  EXPECT_THROW(RegionLocalizer(field, model, 0.0), CheckFailure);
}

}  // namespace
}  // namespace abp
