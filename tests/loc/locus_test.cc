#include "loc/locus.h"

#include <gtest/gtest.h>

#include "field/generators.h"
#include "radio/noise_model.h"
#include "radio/propagation.h"
#include "rng/rng.h"

namespace abp {
namespace {

TEST(Locus, RegionsPartitionTheLattice) {
  BeaconField field(AABB::square(100.0));
  Rng rng(5);
  scatter_uniform(field, 30, rng);
  const PerBeaconNoiseModel model(15.0, 0.3, 6);
  const Lattice2D lattice(AABB::square(100.0), 2.0);

  const LocusAnalysis analysis = analyze_loci(field, model, lattice);
  std::size_t total = 0;
  for (const auto& r : analysis.regions) total += r.point_count;
  EXPECT_EQ(total, lattice.size());
}

TEST(Locus, RegionsSortedByAreaDescending) {
  BeaconField field(AABB::square(100.0));
  Rng rng(6);
  scatter_uniform(field, 20, rng);
  const PerBeaconNoiseModel model(15.0, 0.0, 0);
  const Lattice2D lattice(AABB::square(100.0), 2.0);
  const LocusAnalysis analysis = analyze_loci(field, model, lattice);
  for (std::size_t i = 1; i < analysis.regions.size(); ++i) {
    EXPECT_GE(analysis.regions[i - 1].area, analysis.regions[i].area);
  }
}

TEST(Locus, EmptyFieldIsOneUncoveredRegion) {
  BeaconField field(AABB::square(100.0));
  const PerBeaconNoiseModel model(15.0, 0.0, 0);
  const Lattice2D lattice(AABB::square(100.0), 5.0);
  const LocusAnalysis analysis = analyze_loci(field, model, lattice);
  ASSERT_EQ(analysis.region_count(), 1u);
  EXPECT_EQ(analysis.regions[0].beacons_heard, 0u);
  EXPECT_EQ(analysis.largest_covered(), nullptr);
  ASSERT_NE(analysis.largest(), nullptr);
  EXPECT_EQ(analysis.largest()->point_count, lattice.size());
}

TEST(Locus, SingleBeaconSplitsInsideOutside) {
  BeaconField field(AABB::square(100.0));
  field.add({50.0, 50.0});
  const PerBeaconNoiseModel model(15.0, 0.0, 0);
  const Lattice2D lattice(AABB::square(100.0), 1.0);
  const LocusAnalysis analysis = analyze_loci(field, model, lattice);
  ASSERT_EQ(analysis.region_count(), 2u);
  const LocusRegion* covered = analysis.largest_covered();
  ASSERT_NE(covered, nullptr);
  EXPECT_EQ(covered->beacons_heard, 1u);
  // Covered region ~ disk area πR² ≈ 707 m²; centroid ~ beacon position.
  EXPECT_NEAR(covered->area, 707.0, 40.0);
  EXPECT_NEAR(covered->centroid.x, 50.0, 0.5);
  EXPECT_NEAR(covered->centroid.y, 50.0, 0.5);
}

TEST(Locus, DenserGridGivesMoreSmallerRegions) {
  // Figure 1's claim: 3×3 beacons ⇒ more and smaller localization regions
  // than 2×2.
  const Lattice2D lattice(AABB::square(100.0), 1.0);
  const IdealDiskModel model(30.0);

  BeaconField coarse(AABB::square(100.0));
  place_grid(coarse, 2, 2);
  const LocusAnalysis a2 = analyze_loci(coarse, model, lattice);

  BeaconField fine(AABB::square(100.0));
  place_grid(fine, 3, 3);
  const LocusAnalysis a3 = analyze_loci(fine, model, lattice);

  EXPECT_GT(a3.region_count(), a2.region_count());
  EXPECT_LT(a3.mean_area(), a2.mean_area());
}

TEST(Locus, MeanAreaTimesCountIsTerrainArea) {
  BeaconField field(AABB::square(100.0));
  Rng rng(8);
  scatter_uniform(field, 40, rng);
  const PerBeaconNoiseModel model(15.0, 0.1, 3);
  const Lattice2D lattice(AABB::square(100.0), 1.0);
  const LocusAnalysis analysis = analyze_loci(field, model, lattice);
  const double reconstructed =
      analysis.mean_area() * static_cast<double>(analysis.region_count());
  // Lattice cell area × PT ≈ (Side+step)² due to boundary cells.
  EXPECT_NEAR(reconstructed, 101.0 * 101.0, 1.0);
}

TEST(Locus, AddingABeaconRefinesRegions) {
  BeaconField field(AABB::square(100.0));
  Rng rng(9);
  scatter_uniform(field, 10, rng);
  const PerBeaconNoiseModel model(15.0, 0.0, 0);
  const Lattice2D lattice(AABB::square(100.0), 2.0);
  const auto before = analyze_loci(field, model, lattice);
  field.add({50.0, 50.0});
  const auto after = analyze_loci(field, model, lattice);
  EXPECT_GE(after.region_count(), before.region_count());
}

}  // namespace
}  // namespace abp
