#include "loc/error_map.h"

#include <gtest/gtest.h>

#include "field/generators.h"
#include "loc/localizer.h"
#include "radio/noise_model.h"
#include "rng/rng.h"

namespace abp {
namespace {

constexpr double kSide = 60.0;  // smaller terrain keeps tests fast

struct Scenario {
  BeaconField field{AABB::square(kSide), 20.0};
  PerBeaconNoiseModel model;
  Lattice2D lattice{AABB::square(kSide), 1.0};

  explicit Scenario(double noise, std::uint64_t seed, std::size_t beacons)
      : model(15.0, noise, seed) {
    Rng rng(seed ^ 0xF00D);
    scatter_uniform(field, beacons, rng);
  }
};

TEST(ErrorMap, MatchesDirectLocalizerEverywhere) {
  Scenario s(0.3, 11, 25);
  ErrorMap map(s.lattice);
  map.compute(s.field, s.model);
  const CentroidLocalizer loc(s.field, s.model);
  s.lattice.for_each([&](std::size_t flat, Vec2 p) {
    ASSERT_DOUBLE_EQ(map.value(flat), loc.error(p));
  });
}

TEST(ErrorMap, MeanIsMaintainedIncrementally) {
  Scenario s(0.0, 1, 15);
  ErrorMap map(s.lattice);
  map.compute(s.field, s.model);
  const auto vals = map.values();
  EXPECT_NEAR(map.mean(), mean(vals), 1e-9);
}

TEST(ErrorMap, UncoveredFractionCountsZeroConnectivity) {
  // One beacon in a corner: most of a 60x60 terrain is uncovered.
  BeaconField field(AABB::square(kSide), 20.0);
  field.add({0.0, 0.0});
  Lattice2D lattice(AABB::square(kSide), 1.0);
  ErrorMap map(lattice);
  const PerBeaconNoiseModel model(15.0, 0.0, 0);  // noise 0 ⇒ ideal disk
  map.compute(field, model);
  const double frac = map.uncovered_fraction();
  // Quarter-disk of radius 15 covers ~176.7 m² of 3600 m² ⇒ ~95% uncovered.
  EXPECT_GT(frac, 0.90);
  EXPECT_LT(frac, 0.99);
}

// The central property: incremental addition == full recomputation,
// bit-exactly, across noise levels and densities.
class IncrementalProperty
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(IncrementalProperty, AdditionMatchesFullRecompute) {
  const auto [noise, beacons] = GetParam();
  Scenario s(noise, 1000 + beacons, beacons);
  ErrorMap incremental(s.lattice);
  incremental.compute(s.field, s.model);

  Rng rng(noise * 1000 + beacons);
  for (int round = 0; round < 3; ++round) {
    const Vec2 pos{rng.uniform(0.0, kSide), rng.uniform(0.0, kSide)};
    const BeaconId id = s.field.add(pos);
    incremental.apply_addition(s.field, s.model, *s.field.get(id));

    ErrorMap full(s.lattice);
    full.compute(s.field, s.model);
    s.lattice.for_each([&](std::size_t flat, Vec2) {
      ASSERT_DOUBLE_EQ(incremental.value(flat), full.value(flat))
          << "noise=" << noise << " beacons=" << beacons << " round=" << round;
      ASSERT_EQ(incremental.connected(flat), full.connected(flat));
    });
    ASSERT_NEAR(incremental.mean(), full.mean(), 1e-9);
  }
}

TEST_P(IncrementalProperty, RemovalMatchesFullRecompute) {
  const auto [noise, beacons] = GetParam();
  Scenario s(noise, 2000 + beacons, beacons);
  ErrorMap incremental(s.lattice);
  incremental.compute(s.field, s.model);

  Rng rng(noise * 500 + beacons);
  for (int round = 0; round < 3; ++round) {
    const auto ids = s.field.active_ids();
    if (ids.size() <= 1) break;
    const BeaconId victim = ids[rng.below(ids.size())];
    const Vec2 pos = s.field.get(victim)->pos;
    s.field.remove(victim);
    incremental.apply_removal(s.field, s.model, pos);

    ErrorMap full(s.lattice);
    full.compute(s.field, s.model);
    s.lattice.for_each([&](std::size_t flat, Vec2) {
      ASSERT_DOUBLE_EQ(incremental.value(flat), full.value(flat));
    });
  }
}

TEST_P(IncrementalProperty, DeactivationBehavesLikeRemoval) {
  const auto [noise, beacons] = GetParam();
  Scenario s(noise, 3000 + beacons, beacons);
  ErrorMap map(s.lattice);
  map.compute(s.field, s.model);
  const auto ids = s.field.active_ids();
  const BeaconId victim = ids[ids.size() / 2];
  const Vec2 pos = s.field.get(victim)->pos;

  s.field.set_active(victim, false);
  map.apply_removal(s.field, s.model, pos);

  ErrorMap full(s.lattice);
  full.compute(s.field, s.model);
  s.lattice.for_each([&](std::size_t flat, Vec2) {
    ASSERT_DOUBLE_EQ(map.value(flat), full.value(flat));
  });
}

INSTANTIATE_TEST_SUITE_P(
    NoiseAndDensity, IncrementalProperty,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.5),
                       ::testing::Values(std::size_t{5}, std::size_t{25},
                                         std::size_t{60})));

TEST(ErrorMap, MeanIfAddedPredictsActualAddition) {
  Scenario s(0.3, 77, 20);
  ErrorMap map(s.lattice);
  map.compute(s.field, s.model);

  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const Vec2 pos{rng.uniform(0.0, kSide), rng.uniform(0.0, kSide)};
    const double predicted = map.mean_if_added(s.field, s.model, pos);

    const BeaconId id = s.field.add(pos);
    ErrorMap after(s.lattice);
    after.compute(s.field, s.model);
    EXPECT_NEAR(predicted, after.mean(), 1e-9) << "candidate " << pos;
    s.field.remove(id);
  }
}

TEST(ErrorMap, MeanIfAddedDoesNotMutate) {
  Scenario s(0.1, 88, 15);
  ErrorMap map(s.lattice);
  map.compute(s.field, s.model);
  const double before = map.mean();
  const std::size_t n_before = s.field.size();
  (void)map.mean_if_added(s.field, s.model, {30.0, 30.0});
  EXPECT_DOUBLE_EQ(map.mean(), before);
  EXPECT_EQ(s.field.size(), n_before);
}

TEST(ErrorMap, AddingABeaconNeverHelpsBeyondItsReach) {
  // Points farther than max_range from the new beacon keep their exact
  // error unless they were uncovered (fallback shift only).
  Scenario s(0.0, 99, 30);
  ErrorMap before(s.lattice);
  before.compute(s.field, s.model);
  ErrorMap after = before;
  const Vec2 pos{30.0, 30.0};
  const BeaconId id = s.field.add(pos);
  after.apply_addition(s.field, s.model, *s.field.get(id));
  s.lattice.for_each([&](std::size_t flat, Vec2 p) {
    if (distance(p, pos) > s.model.max_range() && before.connected(flat) > 0) {
      ASSERT_DOUBLE_EQ(after.value(flat), before.value(flat));
    }
  });
}

}  // namespace
}  // namespace abp
