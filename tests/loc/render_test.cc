#include "loc/render.h"

#include <gtest/gtest.h>
#include <sstream>

#include "common/assert.h"
#include "radio/noise_model.h"

namespace abp {
namespace {

struct Scene {
  BeaconField field{AABB::square(40.0)};
  PerBeaconNoiseModel model{15.0, 0.0, 1};
  Lattice2D lattice{AABB::square(40.0), 1.0};
  ErrorMap map{lattice};

  Scene() {
    field.add({20.0, 20.0});
    map.compute(field, model);
  }
};

std::vector<std::string> lines(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(Render, RasterDimensionsMatchCellSize) {
  Scene scene;
  std::ostringstream out;
  render_error_map(out, scene.map, nullptr, {.cell = 4});
  const auto rows = lines(out.str());
  // 41 lattice points / 4 per char → 11 rows of 11 chars.
  EXPECT_EQ(rows.size(), 11u);
  for (const auto& row : rows) EXPECT_EQ(row.size(), 11u);
}

TEST(Render, LowErrorNearBeaconDarkFar) {
  Scene scene;
  std::ostringstream out;
  render_error_map(out, scene.map, nullptr, {.cell = 4});
  const auto rows = lines(out.str());
  // Near the beacon (center) error < 2.5 m ⇒ lightest shades; far corner
  // (uncovered, fallback ~ distance to beacon) ⇒ dark.
  const char center = rows[5][5];
  const char corner = rows[0][10];
  EXPECT_TRUE(center == ' ' || center == '.' || center == ':')
      << "center shade: '" << center << "'";
  EXPECT_TRUE(corner == '#' || corner == '%' || corner == '@')
      << "corner shade: '" << corner << "'";
}

TEST(Render, BeaconOverlayUsesMarkers) {
  Scene scene;
  std::ostringstream out;
  render_error_map(out, scene.map, &scene.field,
                   {.cell = 4, .show_beacons = true});
  // The single (and thus newest) beacon renders as 'O'.
  EXPECT_NE(out.str().find('O'), std::string::npos);
}

TEST(Render, NewestBeaconDistinguished) {
  Scene scene;
  scene.field.add({5.0, 5.0});
  scene.map.compute(scene.field, scene.model);
  std::ostringstream out;
  render_error_map(out, scene.map, &scene.field,
                   {.cell = 4, .show_beacons = true});
  const std::string s = out.str();
  EXPECT_NE(s.find('O'), std::string::npos);  // newest
  EXPECT_NE(s.find('o'), std::string::npos);  // the older one
}

TEST(Render, TopRowIsMaxY) {
  // Put a beacon at the top edge: its low-error cell must appear in the
  // first output rows, not the last.
  BeaconField field(AABB::square(40.0));
  field.add({20.0, 40.0});
  PerBeaconNoiseModel model(15.0, 0.0, 1);
  Lattice2D lattice(AABB::square(40.0), 1.0);
  ErrorMap map(lattice);
  map.compute(field, model);
  std::ostringstream out;
  render_error_map(out, map, nullptr, {.cell = 4});
  const auto rows = lines(out.str());
  EXPECT_TRUE(rows.front()[5] == ' ' || rows.front()[5] == '.');
  EXPECT_TRUE(rows.back()[5] == '#' || rows.back()[5] == '%' ||
              rows.back()[5] == '@');
}

TEST(Render, LegendListsShadesAndMarkers) {
  const std::string legend = render_legend({.meters_per_shade = 2.0});
  EXPECT_NE(legend.find("'@'"), std::string::npos);
  EXPECT_NE(legend.find("2m"), std::string::npos);
  EXPECT_NE(legend.find("beacons"), std::string::npos);
}

TEST(Render, RejectsBadOptions) {
  Scene scene;
  std::ostringstream out;
  EXPECT_THROW(render_error_map(out, scene.map, nullptr, {.cell = 0}),
               CheckFailure);
  EXPECT_THROW(render_error_map(out, scene.map, nullptr,
                                {.meters_per_shade = 0.0}),
               CheckFailure);
}

}  // namespace
}  // namespace abp
