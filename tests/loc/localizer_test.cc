#include "loc/localizer.h"

#include <gtest/gtest.h>

#include "field/generators.h"
#include "loc/connectivity.h"
#include "radio/noise_model.h"
#include "radio/propagation.h"
#include "rng/rng.h"

namespace abp {
namespace {

TEST(Centroid, SingleBeaconEstimateIsBeaconPosition) {
  BeaconField field(AABB::square(100.0));
  field.add({40.0, 60.0});
  const IdealDiskModel model(15.0);
  const CentroidLocalizer loc(field, model);
  const auto r = loc.localize({45.0, 60.0});
  EXPECT_EQ(r.connected, 1u);
  EXPECT_EQ(r.estimate, (Vec2{40.0, 60.0}));
  EXPECT_DOUBLE_EQ(loc.error({45.0, 60.0}), 5.0);
}

TEST(Centroid, TwoBeaconsAverage) {
  BeaconField field(AABB::square(100.0));
  field.add({40.0, 50.0});
  field.add({60.0, 50.0});
  const IdealDiskModel model(15.0);
  const CentroidLocalizer loc(field, model);
  const auto r = loc.localize({50.0, 50.0});
  EXPECT_EQ(r.connected, 2u);
  EXPECT_EQ(r.estimate, (Vec2{50.0, 50.0}));
  EXPECT_DOUBLE_EQ(loc.error({50.0, 50.0}), 0.0);
}

TEST(Centroid, OutOfRangeBeaconExcluded) {
  BeaconField field(AABB::square(100.0));
  field.add({40.0, 50.0});
  field.add({90.0, 50.0});  // 40 m away from the client
  const IdealDiskModel model(15.0);
  const CentroidLocalizer loc(field, model);
  EXPECT_EQ(loc.localize({50.0, 50.0}).connected, 1u);
}

TEST(Centroid, NoConnectivityFallsBackToFieldCentroid) {
  BeaconField field(AABB::square(100.0));
  field.add({10.0, 10.0});
  field.add({90.0, 90.0});
  const IdealDiskModel model(15.0);
  const CentroidLocalizer loc(field, model);
  const auto r = loc.localize({50.0, 5.0});  // hears nobody
  EXPECT_EQ(r.connected, 0u);
  EXPECT_EQ(r.estimate, (Vec2{50.0, 50.0}));  // centroid of the two beacons
}

TEST(Centroid, PassiveBeaconsDoNotParticipate) {
  BeaconField field(AABB::square(100.0));
  field.add({45.0, 50.0});
  const BeaconId noisy = field.add({55.0, 50.0});
  field.set_active(noisy, false);
  const IdealDiskModel model(15.0);
  const CentroidLocalizer loc(field, model);
  const auto r = loc.localize({50.0, 50.0});
  EXPECT_EQ(r.connected, 1u);
  EXPECT_EQ(r.estimate, (Vec2{45.0, 50.0}));
}

// §2.2 error bound: under uniform placement with range overlap ratio
// R/d = 1, the maximum error is bounded by 0.5 d, and it "falls off
// considerably" as the ratio grows (the paper quotes 0.25 d at R/d = 4; in
// our simulation the interior maximum at ratio 4 is ~0.45 d — the 0.5 d
// bound holds everywhere and the decrease is monotone; see EXPERIMENTS.md
// and bench_bound_overlap_ratio).
// The bound is an interior (infinite-grid) property, so the beacon grid is
// sized per ratio to keep the probe window >= R + d from every edge (a
// probe closer to the edge sees a truncated beacon set and a biased
// centroid — see bench_bound_overlap_ratio).
double interior_max_error(double ratio) {
  const double d = 10.0;
  const double r = ratio * d;
  const double window = 20.0;
  const double margin = r + d;
  const auto n =
      static_cast<std::size_t>(std::ceil((window + 2.0 * margin) / d));
  const double side = static_cast<double>(n) * d;
  BeaconField field(AABB::square(side));
  place_grid(field, n, n);
  const IdealDiskModel model(r);
  const CentroidLocalizer loc(field, model);
  double max_err = 0.0;
  for (double x = (side - window) / 2.0; x <= (side + window) / 2.0;
       x += 0.5) {
    for (double y = (side - window) / 2.0; y <= (side + window) / 2.0;
         y += 0.5) {
      max_err = std::max(max_err, loc.error({x, y}));
    }
  }
  return max_err;
}

class OverlapRatioBound : public ::testing::TestWithParam<double> {};

TEST_P(OverlapRatioBound, HalfDBoundHoldsAtEveryRatio) {
  const double d = 10.0;
  EXPECT_LE(interior_max_error(GetParam()), 0.5 * d + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PaperRatios, OverlapRatioBound,
                         ::testing::Values(1.0, 2.0, 4.0));

TEST(OverlapRatio, BoundNearTightAtRatioOne) {
  EXPECT_GT(interior_max_error(1.0), 0.35 * 10.0);
}

TEST(OverlapRatio, QuarterDBoundAtRatioFour) {
  // Paper: "falls off considerably (to 0.25d) when the range overlap ratio
  // increases (to 4)". Measured: ~0.21 d.
  EXPECT_LE(interior_max_error(4.0), 0.25 * 10.0 + 1e-9);
}

TEST(OverlapRatio, MaxErrorFallsAsOverlapGrows) {
  EXPECT_LT(interior_max_error(4.0), interior_max_error(1.0));
}

TEST(Connectivity, ListMatchesCountAndIsSorted) {
  BeaconField field(AABB::square(100.0));
  Rng rng(3);
  scatter_uniform(field, 60, rng);
  const PerBeaconNoiseModel model(15.0, 0.3, 9);
  for (int i = 0; i < 50; ++i) {
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    const auto list = connected_beacons(field, model, p);
    EXPECT_EQ(list.size(), connected_count(field, model, p));
    for (std::size_t k = 1; k < list.size(); ++k) {
      EXPECT_LT(list[k - 1].id, list[k].id);
    }
    for (const Beacon& b : list) {
      EXPECT_TRUE(model.connected(b, p));
    }
  }
}

TEST(Connectivity, EmptyFieldHearsNothing) {
  BeaconField field(AABB::square(100.0));
  const IdealDiskModel model(15.0);
  EXPECT_TRUE(connected_beacons(field, model, {50.0, 50.0}).empty());
  EXPECT_EQ(connected_count(field, model, {50.0, 50.0}), 0u);
}

}  // namespace
}  // namespace abp
