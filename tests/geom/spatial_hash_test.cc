#include "geom/spatial_hash.h"

#include <gtest/gtest.h>
#include <set>
#include <vector>

#include "common/assert.h"
#include "rng/rng.h"

namespace abp {
namespace {

TEST(SpatialHash, InsertAndQueryBasic) {
  SpatialHash index(10.0);
  index.insert(1, {5.0, 5.0});
  index.insert(2, {50.0, 50.0});
  std::set<std::uint32_t> found;
  index.query_disk({6.0, 6.0}, 5.0,
                   [&](std::uint32_t id, Vec2) { found.insert(id); });
  EXPECT_EQ(found, (std::set<std::uint32_t>{1}));
}

TEST(SpatialHash, QueryIncludesExactBoundary) {
  SpatialHash index(10.0);
  index.insert(7, {3.0, 4.0});
  int hits = 0;
  index.query_disk({0.0, 0.0}, 5.0, [&](std::uint32_t, Vec2) { ++hits; });
  EXPECT_EQ(hits, 1);
}

TEST(SpatialHash, RemoveErasesOneEntry) {
  SpatialHash index(10.0);
  index.insert(1, {5.0, 5.0});
  EXPECT_TRUE(index.remove(1, {5.0, 5.0}));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_FALSE(index.remove(1, {5.0, 5.0}));  // already gone
}

TEST(SpatialHash, RemoveMissingReturnsFalse) {
  SpatialHash index(10.0);
  index.insert(1, {5.0, 5.0});
  EXPECT_FALSE(index.remove(2, {5.0, 5.0}));
  EXPECT_FALSE(index.remove(1, {95.0, 95.0}));  // wrong bucket
  EXPECT_EQ(index.size(), 1u);
}

TEST(SpatialHash, NegativeCoordinatesWork) {
  SpatialHash index(10.0);
  index.insert(3, {-15.0, -25.0});
  int hits = 0;
  index.query_disk({-14.0, -24.0}, 2.0, [&](std::uint32_t id, Vec2) {
    EXPECT_EQ(id, 3u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(SpatialHash, ClearEmptiesIndex) {
  SpatialHash index(10.0);
  for (std::uint32_t i = 0; i < 10; ++i) index.insert(i, {1.0 * i, 0.0});
  index.clear();
  EXPECT_EQ(index.size(), 0u);
  int hits = 0;
  index.query_disk({5.0, 0.0}, 100.0, [&](std::uint32_t, Vec2) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST(SpatialHash, ForEachVisitsAll) {
  SpatialHash index(5.0);
  for (std::uint32_t i = 0; i < 25; ++i) {
    index.insert(i, {static_cast<double>(i), static_cast<double>(i) * 3.0});
  }
  std::set<std::uint32_t> seen;
  index.for_each([&](std::uint32_t id, Vec2) { seen.insert(id); });
  EXPECT_EQ(seen.size(), 25u);
}

TEST(SpatialHash, RejectsNonPositiveCell) {
  EXPECT_THROW(SpatialHash(0.0), CheckFailure);
}

TEST(SpatialHash, RejectsNegativeQueryRadius) {
  SpatialHash index(10.0);
  EXPECT_THROW(index.query_disk({0, 0}, -1.0, [](std::uint32_t, Vec2) {}),
               CheckFailure);
}

// Property test: disk queries must exactly match brute force over many
// random configurations and cell sizes.
class SpatialHashProperty : public ::testing::TestWithParam<double> {};

TEST_P(SpatialHashProperty, QueryMatchesBruteForce) {
  const double cell = GetParam();
  Rng rng(static_cast<std::uint64_t>(cell * 1000.0) + 17);
  SpatialHash index(cell);
  std::vector<std::pair<std::uint32_t, Vec2>> points;
  for (std::uint32_t i = 0; i < 300; ++i) {
    const Vec2 p{rng.uniform(-50.0, 150.0), rng.uniform(-50.0, 150.0)};
    points.emplace_back(i, p);
    index.insert(i, p);
  }
  for (int q = 0; q < 50; ++q) {
    const Vec2 c{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    const double r = rng.uniform(0.0, 40.0);
    std::multiset<std::uint32_t> fast;
    index.query_disk(c, r, [&](std::uint32_t id, Vec2) { fast.insert(id); });
    std::multiset<std::uint32_t> brute;
    for (const auto& [id, p] : points) {
      if (distance(p, c) <= r) brute.insert(id);
    }
    ASSERT_EQ(fast, brute) << "cell=" << cell << " query#" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, SpatialHashProperty,
                         ::testing::Values(1.0, 5.0, 15.0, 20.0, 100.0));

}  // namespace
}  // namespace abp
