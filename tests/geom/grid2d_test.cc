#include "geom/grid2d.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace abp {
namespace {

TEST(Grid2D, FillValueOnConstruction) {
  const Grid2D<double> g(3, 4, 7.5);
  EXPECT_EQ(g.nx(), 3u);
  EXPECT_EQ(g.ny(), 4u);
  EXPECT_EQ(g.size(), 12u);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_DOUBLE_EQ(g[i], 7.5);
}

TEST(Grid2D, RowMajorLayout) {
  Grid2D<int> g(3, 2, 0);
  g.at(2, 1) = 42;
  EXPECT_EQ(g[1 * 3 + 2], 42);
}

TEST(Grid2D, WriteReadRoundTrip) {
  Grid2D<int> g(5, 5, 0);
  for (std::size_t j = 0; j < 5; ++j) {
    for (std::size_t i = 0; i < 5; ++i) {
      g.at(i, j) = static_cast<int>(i * 10 + j);
    }
  }
  EXPECT_EQ(g.at(3, 4), 34);
  EXPECT_EQ(g.at(0, 0), 0);
}

TEST(Grid2D, FillOverwrites) {
  Grid2D<int> g(2, 2, 1);
  g.fill(9);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_EQ(g[i], 9);
}

TEST(Grid2D, DefaultConstructedIsEmpty) {
  const Grid2D<double> g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.size(), 0u);
}

TEST(Grid2D, ZeroDimensionRejected) {
  EXPECT_THROW((Grid2D<int>(0, 5)), CheckFailure);
  EXPECT_THROW((Grid2D<int>(5, 0)), CheckFailure);
}

TEST(Grid2D, CopyIsDeep) {
  Grid2D<int> a(2, 2, 1);
  Grid2D<int> b = a;
  b.at(0, 0) = 99;
  EXPECT_EQ(a.at(0, 0), 1);
}

}  // namespace
}  // namespace abp
