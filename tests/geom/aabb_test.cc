#include "geom/aabb.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace abp {
namespace {

TEST(AABB, SquareFactory) {
  const AABB b = AABB::square(100.0);
  EXPECT_EQ(b.lo, (Vec2{0.0, 0.0}));
  EXPECT_EQ(b.hi, (Vec2{100.0, 100.0}));
  EXPECT_DOUBLE_EQ(b.area(), 10000.0);
  EXPECT_EQ(b.center(), (Vec2{50.0, 50.0}));
}

TEST(AABB, SquareRejectsNonPositiveSide) {
  EXPECT_THROW(AABB::square(0.0), CheckFailure);
  EXPECT_THROW(AABB::square(-5.0), CheckFailure);
}

TEST(AABB, InvertedCornersRejected) {
  EXPECT_THROW(AABB({1.0, 0.0}, {0.0, 1.0}), CheckFailure);
}

TEST(AABB, ContainsIncludesBoundary) {
  const AABB b = AABB::square(10.0);
  EXPECT_TRUE(b.contains({0.0, 0.0}));
  EXPECT_TRUE(b.contains({10.0, 10.0}));
  EXPECT_TRUE(b.contains({5.0, 5.0}));
  EXPECT_FALSE(b.contains({10.0001, 5.0}));
  EXPECT_FALSE(b.contains({5.0, -0.0001}));
}

TEST(AABB, ClampProjectsOutsidePoints) {
  const AABB b = AABB::square(10.0);
  EXPECT_EQ(b.clamp({-5.0, 5.0}), (Vec2{0.0, 5.0}));
  EXPECT_EQ(b.clamp({15.0, 12.0}), (Vec2{10.0, 10.0}));
  EXPECT_EQ(b.clamp({3.0, 4.0}), (Vec2{3.0, 4.0}));  // inside unchanged
}

TEST(AABB, CenteredFactory) {
  const AABB b = AABB::centered({5.0, 5.0}, 2.0, 3.0);
  EXPECT_EQ(b.lo, (Vec2{3.0, 2.0}));
  EXPECT_EQ(b.hi, (Vec2{7.0, 8.0}));
  EXPECT_DOUBLE_EQ(b.width(), 4.0);
  EXPECT_DOUBLE_EQ(b.height(), 6.0);
}

TEST(AABB, IntersectsOverlapTouchDisjoint) {
  const AABB a({0.0, 0.0}, {2.0, 2.0});
  EXPECT_TRUE(a.intersects(AABB({1.0, 1.0}, {3.0, 3.0})));   // overlap
  EXPECT_TRUE(a.intersects(AABB({2.0, 0.0}, {4.0, 2.0})));   // touching edge
  EXPECT_FALSE(a.intersects(AABB({2.1, 0.0}, {4.0, 2.0})));  // disjoint
}

}  // namespace
}  // namespace abp
