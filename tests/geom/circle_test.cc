#include "geom/circle.h"

#include <gtest/gtest.h>
#include <numbers>

namespace abp {
namespace {

TEST(Circle, ContainsIncludesBoundary) {
  const Circle c({0.0, 0.0}, 5.0);
  EXPECT_TRUE(c.contains({3.0, 4.0}));   // exactly on boundary
  EXPECT_TRUE(c.contains({1.0, 1.0}));
  EXPECT_FALSE(c.contains({3.1, 4.0}));
}

TEST(Circle, Area) {
  EXPECT_NEAR(Circle({0, 0}, 2.0).area(), 4.0 * std::numbers::pi, 1e-12);
}

TEST(CircleIntersection, DisjointIsZero) {
  const Circle a({0.0, 0.0}, 1.0), b({10.0, 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(circle_intersection_area(a, b), 0.0);
  EXPECT_FALSE(circles_overlap(a, b));
}

TEST(CircleIntersection, TouchingExternallyIsZeroButOverlaps) {
  const Circle a({0.0, 0.0}, 1.0), b({2.0, 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(circle_intersection_area(a, b), 0.0);
  EXPECT_TRUE(circles_overlap(a, b));  // boundaries share one point
}

TEST(CircleIntersection, NestedGivesSmallerDiskArea) {
  const Circle big({0.0, 0.0}, 5.0), small({1.0, 0.0}, 1.0);
  EXPECT_NEAR(circle_intersection_area(big, small), small.area(), 1e-12);
  EXPECT_NEAR(circle_intersection_area(small, big), small.area(), 1e-12);
}

TEST(CircleIntersection, IdenticalCirclesGiveFullArea) {
  const Circle c({3.0, 3.0}, 2.0);
  EXPECT_NEAR(circle_intersection_area(c, c), c.area(), 1e-12);
}

TEST(CircleIntersection, HalfOverlapKnownValue) {
  // Two unit circles at distance 1: lens area = 2π/3 − √3/2.
  const Circle a({0.0, 0.0}, 1.0), b({1.0, 0.0}, 1.0);
  const double expected = 2.0 * std::numbers::pi / 3.0 - std::sqrt(3.0) / 2.0;
  EXPECT_NEAR(circle_intersection_area(a, b), expected, 1e-12);
}

TEST(CircleIntersection, Symmetric) {
  const Circle a({0.0, 0.0}, 2.0), b({1.5, 1.0}, 3.0);
  EXPECT_DOUBLE_EQ(circle_intersection_area(a, b),
                   circle_intersection_area(b, a));
}

TEST(CircleIntersection, BoundedByEitherArea) {
  const Circle a({0.0, 0.0}, 2.0), b({2.5, 0.0}, 1.5);
  const double lens = circle_intersection_area(a, b);
  EXPECT_GT(lens, 0.0);
  EXPECT_LE(lens, a.area());
  EXPECT_LE(lens, b.area());
}

}  // namespace
}  // namespace abp
