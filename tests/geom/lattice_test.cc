#include "geom/lattice.h"

#include <gtest/gtest.h>
#include <set>

#include "common/assert.h"

namespace abp {
namespace {

Lattice2D paper_lattice() { return Lattice2D(AABB::square(100.0), 1.0); }

TEST(Lattice, PaperDimensions) {
  const Lattice2D l = paper_lattice();
  EXPECT_EQ(l.nx(), 101u);
  EXPECT_EQ(l.ny(), 101u);
  EXPECT_EQ(l.size(), 10201u);  // the paper's PT for Side=100, step=1
}

TEST(Lattice, PointIndexRoundTrip) {
  const Lattice2D l = paper_lattice();
  for (std::size_t flat : {0u, 1u, 100u, 101u, 5050u, 10200u}) {
    const auto [i, j] = l.coords(flat);
    EXPECT_EQ(l.index(i, j), flat);
    const Vec2 p = l.point(flat);
    EXPECT_EQ(p, l.point(i, j));
  }
}

TEST(Lattice, CornerPositions) {
  const Lattice2D l = paper_lattice();
  EXPECT_EQ(l.point(0, 0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(l.point(100, 100), (Vec2{100.0, 100.0}));
  EXPECT_EQ(l.point(3, 7), (Vec2{3.0, 7.0}));
}

TEST(Lattice, NonUnitStepAndOffsetOrigin) {
  const Lattice2D l(AABB({10.0, 20.0}, {20.0, 30.0}), 2.5);
  EXPECT_EQ(l.nx(), 5u);
  EXPECT_EQ(l.point(1, 2), (Vec2{12.5, 25.0}));
}

TEST(Lattice, NearestRoundsAndClamps) {
  const Lattice2D l = paper_lattice();
  EXPECT_EQ(l.nearest({3.4, 7.6}), l.index(3, 8));
  EXPECT_EQ(l.nearest({-5.0, 50.0}), l.index(0, 50));
  EXPECT_EQ(l.nearest({150.0, 150.0}), l.index(100, 100));
}

TEST(Lattice, ForEachVisitsAllOnce) {
  const Lattice2D l(AABB::square(10.0), 1.0);
  std::set<std::size_t> seen;
  l.for_each([&](std::size_t flat, Vec2 p) {
    EXPECT_TRUE(l.bounds().contains(p));
    seen.insert(flat);
  });
  EXPECT_EQ(seen.size(), l.size());
}

TEST(Lattice, DiskEnumerationMatchesBruteForce) {
  const Lattice2D l(AABB::square(50.0), 1.0);
  const Vec2 center{17.3, 24.8};
  const double radius = 9.7;
  std::set<std::size_t> fast;
  l.for_each_in_disk(center, radius, [&](std::size_t flat, Vec2) {
    fast.insert(flat);
  });
  std::set<std::size_t> brute;
  l.for_each([&](std::size_t flat, Vec2 p) {
    if (distance(p, center) <= radius) brute.insert(flat);
  });
  EXPECT_EQ(fast, brute);
}

TEST(Lattice, DiskAtBoundaryStaysInBounds) {
  const Lattice2D l(AABB::square(20.0), 1.0);
  std::size_t count = 0;
  l.for_each_in_disk({0.0, 0.0}, 5.0, [&](std::size_t, Vec2 p) {
    EXPECT_TRUE(l.bounds().contains(p));
    ++count;
  });
  EXPECT_GT(count, 0u);
}

TEST(Lattice, DiskIncludesBoundaryPoints) {
  const Lattice2D l(AABB::square(20.0), 1.0);
  // Radius exactly 3: the point at distance 3 must be included.
  std::set<std::size_t> pts;
  l.for_each_in_disk({10.0, 10.0}, 3.0, [&](std::size_t flat, Vec2) {
    pts.insert(flat);
  });
  EXPECT_TRUE(pts.count(l.index(13, 10)) == 1);
  EXPECT_TRUE(pts.count(l.index(10, 7)) == 1);
  EXPECT_FALSE(pts.count(l.index(13, 11)));  // distance sqrt(10) > 3
}

TEST(Lattice, BoxEnumerationMatchesBruteForce) {
  const Lattice2D l(AABB::square(50.0), 1.0);
  const AABB box({12.5, 3.0}, {30.0, 18.2});
  std::set<std::size_t> fast;
  l.for_each_in_box(box, [&](std::size_t flat, Vec2) { fast.insert(flat); });
  std::set<std::size_t> brute;
  l.for_each([&](std::size_t flat, Vec2 p) {
    if (box.contains(p)) brute.insert(flat);
  });
  EXPECT_EQ(fast, brute);
}

TEST(Lattice, BoxLargerThanBoundsGivesWholeLattice) {
  const Lattice2D l(AABB::square(10.0), 1.0);
  std::size_t count = 0;
  l.for_each_in_box(AABB({-100.0, -100.0}, {100.0, 100.0}),
                    [&](std::size_t, Vec2) { ++count; });
  EXPECT_EQ(count, l.size());
}

TEST(Lattice, RejectsBadConstruction) {
  EXPECT_THROW(Lattice2D(AABB::square(10.0), 0.0), CheckFailure);
  EXPECT_THROW(Lattice2D(AABB::square(10.0), -1.0), CheckFailure);
}

TEST(Lattice, FractionalStepGeometry) {
  const Lattice2D l(AABB::square(1.0), 0.25);
  EXPECT_EQ(l.nx(), 5u);
  EXPECT_EQ(l.point(2, 2), (Vec2{0.5, 0.5}));
}

}  // namespace
}  // namespace abp
