#include "geom/vec2.h"

#include <gtest/gtest.h>

namespace abp {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, (Vec2{3.0, 4.0}));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, (Vec2{2.0, 3.0}));
  v *= 3.0;
  EXPECT_EQ(v, (Vec2{6.0, 9.0}));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{2.0, 3.0}, b{4.0, -1.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 5.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -14.0);
  EXPECT_DOUBLE_EQ(a.cross(a), 0.0);
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1.0, 1.0}, {2.0, 2.0}), 2.0);
}

TEST(Vec2, NormalizedUnitLength) {
  const Vec2 n = Vec2{10.0, 0.0}.normalized();
  EXPECT_DOUBLE_EQ(n.x, 1.0);
  EXPECT_DOUBLE_EQ(n.y, 0.0);
  EXPECT_NEAR((Vec2{3.0, -7.0}).normalized().norm(), 1.0, 1e-12);
}

TEST(Vec2, NormalizedZeroIsZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, LerpEndpointsAndMidpoint) {
  const Vec2 a{0.0, 0.0}, b{10.0, 20.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Vec2{5.0, 10.0}));
}

TEST(Vec2, StreamOutput) {
  std::ostringstream os;
  os << Vec2{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

}  // namespace
}  // namespace abp
