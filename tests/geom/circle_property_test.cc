// Property tests: the analytic lens-area formula cross-checked against
// Monte Carlo integration over random circle pairs.
#include <gtest/gtest.h>

#include "geom/circle.h"
#include "rng/rng.h"

namespace abp {
namespace {

class LensAreaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LensAreaProperty, AnalyticMatchesMonteCarlo) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const Circle a({rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)},
                   rng.uniform(0.5, 4.0));
    const Circle b({rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)},
                   rng.uniform(0.5, 4.0));
    const double analytic = circle_intersection_area(a, b);

    // Monte Carlo over circle a's bounding box.
    const int samples = 20000;
    int hits = 0;
    for (int s = 0; s < samples; ++s) {
      const Vec2 p{rng.uniform(a.center.x - a.radius, a.center.x + a.radius),
                   rng.uniform(a.center.y - a.radius, a.center.y + a.radius)};
      if (a.contains(p) && b.contains(p)) ++hits;
    }
    const double box_area = 4.0 * a.radius * a.radius;
    const double estimate =
        box_area * static_cast<double>(hits) / static_cast<double>(samples);
    // MC standard error ~ box_area * sqrt(p(1-p)/n); allow 5 sigma + eps.
    const double p_hat = static_cast<double>(hits) / samples;
    const double tolerance =
        5.0 * box_area * std::sqrt(p_hat * (1 - p_hat) / samples) + 0.02;
    EXPECT_NEAR(analytic, estimate, tolerance)
        << "a=(" << a.center << ", r=" << a.radius << ") b=(" << b.center
        << ", r=" << b.radius << ")";
  }
}

TEST_P(LensAreaProperty, SymmetryAndBounds) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int round = 0; round < 50; ++round) {
    const Circle a({rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)},
                   rng.uniform(0.1, 4.0));
    const Circle b({rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)},
                   rng.uniform(0.1, 4.0));
    const double ab = circle_intersection_area(a, b);
    EXPECT_DOUBLE_EQ(ab, circle_intersection_area(b, a));
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, std::min(a.area(), b.area()) + 1e-12);
    // Consistency with the overlap predicate.
    if (ab > 1e-9) {
      EXPECT_TRUE(circles_overlap(a, b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LensAreaProperty,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace abp
