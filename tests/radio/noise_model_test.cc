#include "radio/noise_model.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "common/stats.h"
#include "rng/rng.h"

namespace abp {
namespace {

constexpr double kR = 15.0;

TEST(NoiseModel, ZeroNoiseEqualsIdealDisk) {
  const PerBeaconNoiseModel model(kR, 0.0, 42);
  const Beacon b{0, {50.0, 50.0}, true};
  EXPECT_DOUBLE_EQ(model.effective_range(b, {0.0, 0.0}), kR);
  EXPECT_TRUE(model.connected(b, {65.0, 50.0}));
  EXPECT_FALSE(model.connected(b, {65.01, 50.0}));
  EXPECT_DOUBLE_EQ(model.max_range(), kR);
}

TEST(NoiseModel, StaticWithRespectToTime) {
  // §4.2.1: the same (point, beacon) pair must always answer identically.
  const PerBeaconNoiseModel model(kR, 0.5, 7);
  const Beacon b{2, {30.0, 40.0}, true};
  const Vec2 p{41.0, 44.0};
  const bool first = model.connected(b, p);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.connected(b, p), first);
  EXPECT_DOUBLE_EQ(model.effective_range(b, p), model.effective_range(b, p));
}

TEST(NoiseModel, EffectiveRangeWithinPaperBounds) {
  // range = R(1 + u·nf) with u∈[-1,1), nf∈[0,Noise] ⇒ within R(1±Noise).
  const double noise = 0.5;
  const PerBeaconNoiseModel model(kR, noise, 99);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const Beacon b{static_cast<BeaconId>(i % 10),
                   {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
                   true};
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    const double r = model.effective_range(b, p);
    EXPECT_GE(r, kR * (1.0 - noise));
    EXPECT_LE(r, kR * (1.0 + noise));
    EXPECT_LE(r, model.max_range());
  }
}

TEST(NoiseModel, NoiseFactorPerBeaconInRange) {
  const double noise = 0.3;
  const PerBeaconNoiseModel model(kR, noise, 5);
  Rng rng(2);
  RunningStats nf_stats;
  for (int i = 0; i < 1000; ++i) {
    const Beacon b{0, {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
                   true};
    const double nf = model.noise_factor(b);
    EXPECT_GE(nf, 0.0);
    EXPECT_LE(nf, noise);
    nf_stats.add(nf);
  }
  // nf ~ U[0, Noise]: mean ≈ Noise/2.
  EXPECT_NEAR(nf_stats.mean(), noise / 2.0, 0.02);
}

TEST(NoiseModel, UDrawSymmetricAndPerPair) {
  const PerBeaconNoiseModel model(kR, 0.5, 5);
  Rng rng(3);
  RunningStats u_stats;
  for (int i = 0; i < 5000; ++i) {
    const Beacon b{0, {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
                   true};
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    const double u = model.u_draw(b, p);
    EXPECT_GE(u, -1.0);
    EXPECT_LT(u, 1.0);
    u_stats.add(u);
  }
  EXPECT_NEAR(u_stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(u_stats.variance(), 1.0 / 3.0, 0.02);
}

TEST(NoiseModel, DifferentBeaconsDifferentNoiseFactors) {
  // "non-uniform propagation noise for the beacons": two beacons at
  // different positions get different nf.
  const PerBeaconNoiseModel model(kR, 0.5, 5);
  const Beacon a{0, {10.0, 10.0}, true};
  const Beacon b{1, {80.0, 20.0}, true};
  EXPECT_NE(model.noise_factor(a), model.noise_factor(b));
}

TEST(NoiseModel, DifferentFieldSeedsDifferentLandscapes) {
  const PerBeaconNoiseModel m1(kR, 0.5, 1);
  const PerBeaconNoiseModel m2(kR, 0.5, 2);
  const Beacon b{0, {10.0, 10.0}, true};
  EXPECT_NE(m1.noise_factor(b), m2.noise_factor(b));
}

TEST(NoiseModel, PositionKeyedSoRedeploymentIsConsistent) {
  // A beacon removed and re-added at the same position (different id) must
  // see the identical propagation landscape — the property that makes
  // oracle evaluation exact.
  const PerBeaconNoiseModel model(kR, 0.5, 11);
  const Beacon first{3, {25.0, 75.0}, true};
  const Beacon readded{999, {25.0, 75.0}, true};
  const Vec2 p{30.0, 70.0};
  EXPECT_DOUBLE_EQ(model.effective_range(first, p),
                   model.effective_range(readded, p));
  EXPECT_DOUBLE_EQ(model.noise_factor(first), model.noise_factor(readded));
}

TEST(NoiseModel, FastPredicateMatchesDefinition) {
  // connected() (with its certain-in/certain-out shortcuts) must agree
  // with the plain effective_range comparison everywhere.
  const PerBeaconNoiseModel model(kR, 0.3, 21);
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    const Beacon b{1, {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
                   true};
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    const bool by_range =
        distance(b.pos, p) <= model.effective_range(b, p);
    ASSERT_EQ(model.connected(b, p), by_range);
  }
}

TEST(NoiseModel, ConnectivityPerturbedOnlyInAnnulus) {
  // Noise never disconnects points within R(1-Noise) nor connects points
  // beyond R(1+Noise).
  const double noise = 0.5;
  const PerBeaconNoiseModel model(kR, noise, 31);
  const Beacon b{0, {50.0, 50.0}, true};
  EXPECT_TRUE(model.connected(b, {50.0 + kR * (1 - noise) - 0.01, 50.0}));
  EXPECT_FALSE(model.connected(b, {50.0 + kR * (1 + noise) + 0.01, 50.0}));
}

TEST(NoiseModel, RejectsInvalidNoise) {
  EXPECT_THROW(PerBeaconNoiseModel(kR, -0.1, 1), CheckFailure);
  EXPECT_THROW(PerBeaconNoiseModel(kR, 1.0, 1), CheckFailure);
  EXPECT_THROW(PerBeaconNoiseModel(0.0, 0.3, 1), CheckFailure);
}

// Property sweep over the paper's noise levels: the fraction of the
// nominal-disk boundary that flips connectivity grows with Noise.
class NoiseLevelSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseLevelSweep, FlippedFractionScalesWithNoise) {
  const double noise = GetParam();
  const PerBeaconNoiseModel model(kR, noise, 77);
  Rng rng(5);
  int flipped = 0;
  const int samples = 4000;
  for (int i = 0; i < samples; ++i) {
    const Beacon b{0, {rng.uniform(20.0, 80.0), rng.uniform(20.0, 80.0)},
                   true};
    // Sample points uniformly in the annulus R(1±max noise possible).
    const double ang = rng.uniform(0.0, 6.283185307);
    const double rad = rng.uniform(kR * 0.5, kR * 1.5);
    const Vec2 p = b.pos + Vec2{rad * std::cos(ang), rad * std::sin(ang)};
    const bool ideal = rad <= kR;
    if (model.connected(b, p) != ideal) ++flipped;
  }
  const double frac = static_cast<double>(flipped) / samples;
  if (noise == 0.0) {
    EXPECT_EQ(flipped, 0);
  } else {
    // More noise ⇒ more flips; loose monotone envelope checks.
    EXPECT_GT(frac, 0.05 * noise);
    EXPECT_LT(frac, 0.8 * noise);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperNoiseLevels, NoiseLevelSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5));

}  // namespace
}  // namespace abp
