#include "radio/time_varying.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "common/stats.h"
#include "radio/noise_model.h"
#include "radio/propagation.h"
#include "rng/rng.h"

namespace abp {
namespace {

const Beacon kBeacon{0, {50.0, 50.0}, true};

TEST(TimeVarying, ZeroAmplitudeIsTransparent) {
  const IdealDiskModel base(15.0);
  TimeVaryingModel model(base, 0.0, 60.0, 1);
  model.set_time(17.3);
  EXPECT_DOUBLE_EQ(model.effective_range(kBeacon, {0, 0}), 15.0);
  EXPECT_DOUBLE_EQ(model.max_range(), 15.0);
  EXPECT_DOUBLE_EQ(model.drift(kBeacon), 1.0);
}

TEST(TimeVarying, DriftBoundedByAmplitude) {
  const IdealDiskModel base(15.0);
  TimeVaryingModel model(base, 0.3, 60.0, 2);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    model.set_time(rng.uniform(0.0, 600.0));
    const Beacon b{0, {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
                   true};
    const double d = model.drift(b);
    EXPECT_GE(d, 0.7);
    EXPECT_LE(d, 1.3);
    EXPECT_LE(model.effective_range(b, {0, 0}), model.max_range());
  }
}

TEST(TimeVarying, PeriodicInTime) {
  const IdealDiskModel base(15.0);
  TimeVaryingModel model(base, 0.3, 60.0, 3);
  model.set_time(12.0);
  const double r1 = model.effective_range(kBeacon, {60.0, 50.0});
  model.set_time(72.0);  // one full period later
  EXPECT_NEAR(model.effective_range(kBeacon, {60.0, 50.0}), r1, 1e-9);
  model.set_time(42.0);  // half a period: opposite phase
  EXPECT_NE(model.effective_range(kBeacon, {60.0, 50.0}), r1);
}

TEST(TimeVarying, BeaconsDriftOutOfPhase) {
  const IdealDiskModel base(15.0);
  TimeVaryingModel model(base, 0.3, 60.0, 4);
  const Beacon other{1, {20.0, 80.0}, true};
  // Sample the drift difference over time: phases are hash-derived, so two
  // beacons should not track each other.
  bool differ = false;
  for (double t = 0.0; t < 60.0; t += 7.0) {
    model.set_time(t);
    if (std::fabs(model.drift(kBeacon) - model.drift(other)) > 0.05) {
      differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(TimeVarying, PhaseUniformAcrossBeacons) {
  const IdealDiskModel base(15.0);
  TimeVaryingModel model(base, 0.5, 60.0, 5);
  model.set_time(0.0);
  RunningStats drift;
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const Beacon b{0, {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
                   true};
    drift.add(model.drift(b));
  }
  // sin of a uniform phase: mean 1, stddev amplitude/sqrt(2).
  EXPECT_NEAR(drift.mean(), 1.0, 0.02);
  EXPECT_NEAR(drift.stddev(), 0.5 / std::sqrt(2.0), 0.02);
}

TEST(TimeVarying, ComposesWithNoiseModel) {
  const PerBeaconNoiseModel base(15.0, 0.3, 9);
  TimeVaryingModel model(base, 0.2, 60.0, 6);
  model.set_time(13.0);
  const Vec2 p{58.0, 50.0};
  EXPECT_DOUBLE_EQ(model.effective_range(kBeacon, p),
                   base.effective_range(kBeacon, p) * model.drift(kBeacon));
  EXPECT_DOUBLE_EQ(model.max_range(), base.max_range() * 1.2);
}

TEST(TimeVarying, ConnectivityChurnsOverTime) {
  // A client near the range boundary flips connectivity as the drift
  // oscillates — the staleness mechanism the robustness ablation measures.
  const IdealDiskModel base(15.0);
  TimeVaryingModel model(base, 0.2, 60.0, 7);
  const Vec2 p{50.0 + 15.0, 50.0};  // exactly at nominal range
  int connected = 0, total = 0;
  for (double t = 0.0; t < 60.0; t += 1.0) {
    model.set_time(t);
    connected += model.connected(kBeacon, p);
    ++total;
  }
  EXPECT_GT(connected, 0);
  EXPECT_LT(connected, total);
}

TEST(TimeVarying, RejectsBadParameters) {
  const IdealDiskModel base(15.0);
  EXPECT_THROW(TimeVaryingModel(base, 1.0, 60.0, 1), CheckFailure);
  EXPECT_THROW(TimeVaryingModel(base, -0.1, 60.0, 1), CheckFailure);
  EXPECT_THROW(TimeVaryingModel(base, 0.3, 0.0, 1), CheckFailure);
}

}  // namespace
}  // namespace abp
