#include "radio/lognormal_model.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "common/stats.h"
#include "rng/rng.h"

namespace abp {
namespace {

TEST(LogNormal, ZeroSigmaIsDeterministicDisk) {
  const LogNormalShadowingModel model(15.0, 3.0, 0.0, 1);
  const Beacon b{0, {50.0, 50.0}, true};
  EXPECT_DOUBLE_EQ(model.effective_range(b, {0.0, 0.0}), 15.0);
  EXPECT_DOUBLE_EQ(model.max_range(), 15.0);
}

TEST(LogNormal, StaticPerPair) {
  const LogNormalShadowingModel model(15.0, 3.0, 6.0, 2);
  const Beacon b{1, {10.0, 20.0}, true};
  const Vec2 p{22.0, 20.0};
  const double r = model.effective_range(b, p);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(model.effective_range(b, p), r);
  }
}

TEST(LogNormal, MaxRangeIsATrueBound) {
  const LogNormalShadowingModel model(15.0, 3.0, 8.0, 3);
  Rng rng(1);
  for (int i = 0; i < 3000; ++i) {
    const Beacon b{0, {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
                   true};
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    EXPECT_LE(model.effective_range(b, p), model.max_range());
    EXPECT_GT(model.effective_range(b, p), 0.0);
  }
}

TEST(LogNormal, ShadowingIsZeroMeanGaussianish) {
  const double sigma = 6.0;
  const LogNormalShadowingModel model(15.0, 3.0, sigma, 4);
  Rng rng(2);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const Beacon b{0, {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
                   true};
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    s.add(model.shadowing_db(b, p));
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.15);
  EXPECT_NEAR(s.stddev(), sigma, 0.15);
  EXPECT_LE(s.max(), 3.5 * sigma);
  EXPECT_GE(s.min(), -3.5 * sigma);
}

TEST(LogNormal, HigherExponentShrinksRangeSpread) {
  // d = R·10^(X/10n): a larger path-loss exponent compresses the range
  // variation for the same shadowing.
  const LogNormalShadowingModel urban(15.0, 4.0, 8.0, 5);
  const LogNormalShadowingModel open(15.0, 2.0, 8.0, 5);
  EXPECT_LT(urban.max_range(), open.max_range());
}

TEST(LogNormal, MedianRangeIsNominal) {
  // X has median 0 ⇒ effective range has median R.
  const LogNormalShadowingModel model(15.0, 3.0, 6.0, 6);
  Rng rng(3);
  int above = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const Beacon b{0, {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)},
                   true};
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    if (model.effective_range(b, p) > 15.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / n, 0.5, 0.02);
}

TEST(LogNormal, RejectsInvalidParameters) {
  EXPECT_THROW(LogNormalShadowingModel(0.0, 3.0, 6.0, 1), CheckFailure);
  EXPECT_THROW(LogNormalShadowingModel(15.0, 0.5, 6.0, 1), CheckFailure);
  EXPECT_THROW(LogNormalShadowingModel(15.0, 3.0, -1.0, 1), CheckFailure);
}

}  // namespace
}  // namespace abp
