#include "radio/propagation.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace abp {
namespace {

TEST(IdealDisk, ConnectivityIsSharpDisk) {
  const IdealDiskModel model(15.0);
  const Beacon b{0, {50.0, 50.0}, true};
  EXPECT_TRUE(model.connected(b, {50.0, 50.0}));
  EXPECT_TRUE(model.connected(b, {65.0, 50.0}));   // exactly R
  EXPECT_FALSE(model.connected(b, {65.01, 50.0}));
  EXPECT_TRUE(model.connected(b, {59.0, 59.0}));   // sqrt(162) < 15
}

TEST(IdealDisk, RangesAllEqualR) {
  const IdealDiskModel model(15.0);
  const Beacon b{3, {10.0, 10.0}, true};
  EXPECT_DOUBLE_EQ(model.effective_range(b, {0.0, 0.0}), 15.0);
  EXPECT_DOUBLE_EQ(model.nominal_range(), 15.0);
  EXPECT_DOUBLE_EQ(model.max_range(), 15.0);
}

TEST(IdealDisk, RejectsNonPositiveRange) {
  EXPECT_THROW(IdealDiskModel(0.0), CheckFailure);
  EXPECT_THROW(IdealDiskModel(-3.0), CheckFailure);
}

TEST(IdealDisk, SymmetricPredicate) {
  // Identical radios: A hears B iff B hears A (reciprocity under the
  // idealized model, §2.1).
  const IdealDiskModel model(10.0);
  const Beacon at_a{0, {0.0, 0.0}, true};
  const Beacon at_b{1, {7.0, 7.0}, true};
  EXPECT_EQ(model.connected(at_a, at_b.pos), model.connected(at_b, at_a.pos));
}

TEST(IdealDisk, Name) {
  EXPECT_EQ(IdealDiskModel(15.0).name(), "ideal");
}

}  // namespace
}  // namespace abp
