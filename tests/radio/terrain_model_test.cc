#include "radio/terrain_model.h"

#include <gtest/gtest.h>

#include "radio/noise_model.h"
#include "terrain/heightmap.h"

namespace abp {
namespace {

TEST(TerrainModel, FlatTerrainIsTransparent) {
  const IdealDiskModel inner(15.0);
  const FlatTerrain flat(AABB::square(100.0));
  const TerrainAwareModel model(inner, flat);
  const Beacon b{0, {50.0, 50.0}, true};
  EXPECT_DOUBLE_EQ(model.effective_range(b, {60.0, 50.0}), 15.0);
  EXPECT_DOUBLE_EQ(model.nominal_range(), 15.0);
  EXPECT_DOUBLE_EQ(model.max_range(), 15.0);
}

TEST(TerrainModel, HillShortensCrossLinks) {
  const IdealDiskModel inner(15.0);
  const HillTerrain hill(AABB::square(100.0), {50.0, 50.0}, 40.0, 8.0);
  const TerrainAwareModel model(inner, hill);
  const Beacon b{0, {40.0, 50.0}, true};
  // Across the hill: attenuated below the clear-path range.
  EXPECT_LT(model.effective_range(b, {60.0, 50.0}), 15.0);
  // Away from the hill: nearly nominal.
  EXPECT_NEAR(model.effective_range(b, {30.0, 50.0}), 15.0, 0.5);
}

TEST(TerrainModel, BlockedLinkDisconnects) {
  const IdealDiskModel inner(15.0);
  // A tall thin wall between beacon and client.
  Grid2D<double> h(11, 11, 0.0);
  for (std::size_t j = 0; j < 11; ++j) h.at(5, j) = 80.0;
  const HeightmapTerrain wall(AABB::square(100.0), std::move(h), 1.0);
  const TerrainAwareModel model(inner, wall);
  const Beacon b{0, {44.0, 50.0}, true};
  // 12 m apart but separated by the wall: not connected.
  EXPECT_FALSE(model.connected(b, {56.0, 50.0}));
  // Same distance along the wall: connected.
  EXPECT_TRUE(model.connected(b, {44.0, 62.0}));
}

TEST(TerrainModel, ComposesWithNoiseModel) {
  const PerBeaconNoiseModel inner(15.0, 0.3, 5);
  const HillTerrain hill(AABB::square(100.0), {50.0, 50.0}, 40.0, 8.0);
  const TerrainAwareModel model(inner, hill);
  const Beacon b{0, {40.0, 50.0}, true};
  EXPECT_LE(model.effective_range(b, {60.0, 50.0}),
            inner.effective_range(b, {60.0, 50.0}));
  EXPECT_DOUBLE_EQ(model.max_range(), inner.max_range());
  EXPECT_NE(model.name().find("terrain("), std::string::npos);
}

}  // namespace
}  // namespace abp
