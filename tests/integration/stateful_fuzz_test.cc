// Stateful fuzzing: random operation sequences against the Simulation
// facade, checking after every step that the incrementally-maintained
// error map is bit-identical to a from-scratch recomputation and that the
// field's bookkeeping is self-consistent. This is the integration-level
// guarantee behind every benchmark number: no sequence of placements,
// removals and (de)activations may ever desynchronize the fast path from
// the ground truth.
#include <gtest/gtest.h>

#include "core/simulation.h"
#include "field/generators.h"
#include "loc/error_map.h"
#include "placement/coverage_placement.h"
#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "placement/random_placement.h"
#include "radio/noise_model.h"

namespace abp {
namespace {

class StatefulFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatefulFuzz, IncrementalMapNeverDesynchronizes) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  const AABB bounds = AABB::square(50.0);
  const double noise = (seed % 3) * 0.2;  // 0, 0.2, 0.4 across instances
  const PerBeaconNoiseModel model(15.0, noise, derive_seed(seed, 2));
  const Lattice2D lattice(bounds, 1.0);
  BeaconField field(bounds, model.max_range());
  scatter_uniform(field, 8 + rng.below(12), rng);

  ErrorMap map(lattice);
  map.compute(field, model);

  std::vector<BeaconId> live = field.active_ids();
  std::vector<BeaconId> passive;

  const auto verify = [&](const char* op, int step) {
    ErrorMap fresh(lattice);
    fresh.compute(field, model);
    lattice.for_each([&](std::size_t flat, Vec2) {
      ASSERT_DOUBLE_EQ(map.value(flat), fresh.value(flat))
          << "op=" << op << " step=" << step << " seed=" << seed;
      ASSERT_EQ(map.connected(flat), fresh.connected(flat));
    });
    ASSERT_NEAR(map.mean(), fresh.mean(), 1e-9);
    ASSERT_EQ(field.active_count(), live.size());
  };

  for (int step = 0; step < 25; ++step) {
    switch (rng.below(4)) {
      case 0: {  // add a beacon at a random position
        const Vec2 pos{rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)};
        const BeaconId id = field.add(pos);
        map.apply_addition(field, model, *field.get(id));
        live.push_back(id);
        verify("add", step);
        break;
      }
      case 1: {  // remove a random live beacon
        if (live.size() <= 1) break;
        const std::size_t pick = rng.below(live.size());
        const BeaconId id = live[pick];
        const Vec2 pos = field.get(id)->pos;
        ASSERT_TRUE(field.remove(id));
        map.apply_removal(field, model, pos);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        verify("remove", step);
        break;
      }
      case 2: {  // deactivate
        if (live.size() <= 1) break;
        const std::size_t pick = rng.below(live.size());
        const BeaconId id = live[pick];
        const Vec2 pos = field.get(id)->pos;
        ASSERT_TRUE(field.set_active(id, false));
        map.apply_removal(field, model, pos);
        passive.push_back(id);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        verify("deactivate", step);
        break;
      }
      case 3: {  // reactivate
        if (passive.empty()) break;
        const std::size_t pick = rng.below(passive.size());
        const BeaconId id = passive[pick];
        ASSERT_TRUE(field.set_active(id, true));
        map.apply_addition(field, model, *field.get(id));
        live.push_back(id);
        passive.erase(passive.begin() + static_cast<std::ptrdiff_t>(pick));
        verify("reactivate", step);
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatefulFuzz,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{9}));

class FacadeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FacadeFuzz, SimulationStaysConsistentUnderMixedPlacement) {
  const std::uint64_t seed = GetParam();
  Simulation sim({.side = 50.0, .noise = 0.2, .seed = seed});
  sim.deploy_uniform(10);

  const RandomPlacement random;
  const MaxPlacement max;
  const GridPlacement grid(100);
  const CoveragePlacement coverage(2);
  const PlacementAlgorithm* algs[] = {&random, &max, &grid, &coverage};

  Rng rng(seed ^ 0xF00);
  double prev_uncovered = sim.uncovered_fraction();
  for (int step = 0; step < 6; ++step) {
    sim.place_with(*algs[rng.below(4)]);
    // Coverage can only grow when beacons are added.
    EXPECT_LE(sim.uncovered_fraction(), prev_uncovered + 1e-12);
    prev_uncovered = sim.uncovered_fraction();
  }
  // Incremental state equals a full refresh.
  const double incremental_mean = sim.mean_error();
  sim.refresh();
  EXPECT_NEAR(sim.mean_error(), incremental_mean, 1e-9);
  EXPECT_EQ(sim.field().size(), 16u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FacadeFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace abp
