// Integration tests: the paper's §4 headline claims, verified end-to-end
// through the same sweep machinery the bench binaries use (reduced trial
// counts; the benches run the full-scale versions).
#include <gtest/gtest.h>

#include "eval/figures.h"
#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "placement/random_placement.h"

namespace abp {
namespace {

SweepConfig base_config(std::vector<std::size_t> counts,
                        std::vector<double> noises, std::size_t trials) {
  SweepConfig config;  // full Table 1 geometry: Side=100, R=15, step=1
  config.beacon_counts = std::move(counts);
  config.noise_levels = std::move(noises);
  config.trials = trials;
  config.seed = 424242;
  return config;
}

const PlacementAlgorithm* const* paper_algs() {
  static const RandomPlacement random;
  static const MaxPlacement max;
  static const GridPlacement grid;
  static const PlacementAlgorithm* const algs[] = {&random, &max, &grid};
  return algs;
}

// ---- Fig 4: mean LE falls sharply with density, then saturates. ----
TEST(PaperClaims, Fig4_MeanErrorFallsAndSaturates) {
  const SweepOutcome out =
      run_sweep(base_config({20, 60, 100, 180, 240}, {0.0}, 15), {});
  const auto& row = out.cells[0];
  // Sharp fall: 20 beacons ≈ 20 m (paper Fig 4), 100 beacons ≈ 4 m.
  EXPECT_GT(row[0].mean_error.mean, 15.0);
  EXPECT_LT(row[0].mean_error.mean, 26.0);
  EXPECT_LT(row[2].mean_error.mean, 6.0);
  // Saturation: beyond ~0.01 /m² the curve flattens (within 15%).
  EXPECT_NEAR(row[3].mean_error.mean, row[4].mean_error.mean,
              0.15 * row[3].mean_error.mean);
  // Floor is ~0.3 R (paper: "saturates at around 4m (0.3R)").
  EXPECT_LT(row[4].mean_error.mean, 0.40 * 15.0);
  EXPECT_GT(row[4].mean_error.mean, 0.15 * 15.0);
}

TEST(PaperClaims, Fig4_MostOfTheFallHappensBeforeSaturationDensity) {
  // Paper: the curve "falls sharply … until it reaches a density of 0.01
  // beacons per square m and saturates". Our curve keeps declining gently
  // past 0.01 rather than going perfectly flat, so we assert the shape:
  // ≥70% of the total fall is complete by 0.01 /m², and the tail past
  // 0.014 /m² moves by <25%.
  const SweepOutcome out = run_sweep(
      base_config({20, 60, 100, 140, 240}, {0.0}, 12), {});
  const auto& row = out.cells[0];
  const double at20 = row[0].mean_error.mean;
  const double at100 = row[2].mean_error.mean;   // density 0.01
  const double at140 = row[3].mean_error.mean;
  const double at240 = row[4].mean_error.mean;   // density 0.024 (floor)
  EXPECT_GT((at20 - at100) / (at20 - at240), 0.70);
  EXPECT_LT((at140 - at240) / at140, 0.25);
}

// ---- Fig 5: at low density Grid >> Max ≥ Random; at high density all ≈ 0.
TEST(PaperClaims, Fig5_GridDominatesAtLowDensity) {
  const SweepOutcome out =
      run_sweep(base_config({20, 30, 40}, {0.0}, 25), {paper_algs(), 3});
  for (std::size_t ci = 0; ci < 3; ++ci) {
    const CellResult& cell = out.cells[0][ci];
    const double random_gain = cell.improvement_mean[0].mean;
    const double max_gain = cell.improvement_mean[1].mean;
    const double grid_gain = cell.improvement_mean[2].mean;
    EXPECT_GT(grid_gain, max_gain) << "count=" << cell.beacons;
    EXPECT_GT(grid_gain, random_gain) << "count=" << cell.beacons;
    // Paper: "improvements in mean localization error at least twice that
    // of the Max algorithm" — allow sampling slack at 25 trials.
    EXPECT_GT(grid_gain, 1.5 * max_gain) << "count=" << cell.beacons;
  }
}

TEST(PaperClaims, Fig5_AllAlgorithmsConvergeAtHighDensity) {
  const SweepOutcome out =
      run_sweep(base_config({220, 240}, {0.0}, 12), {paper_algs(), 3});
  for (const CellResult& cell : out.cells[0]) {
    for (std::size_t a = 0; a < 3; ++a) {
      EXPECT_LT(std::fabs(cell.improvement_mean[a].mean), 0.25)
          << "alg " << out.algorithm_names[a];
    }
  }
}

TEST(PaperClaims, Fig5_MedianImprovementsAreModest) {
  // "improvements in median localization error are relatively more modest
  // (roughly 25% of the improvements in the average…)".
  const SweepOutcome out =
      run_sweep(base_config({20, 30}, {0.0}, 25), {paper_algs(), 3});
  for (const CellResult& cell : out.cells[0]) {
    const double grid_mean_gain = cell.improvement_mean[2].mean;
    const double grid_median_gain = cell.improvement_median[2].mean;
    EXPECT_LT(grid_median_gain, grid_mean_gain);
  }
}

// ---- Fig 6: noise raises mean error and saturation density. ----
TEST(PaperClaims, Fig6_NoiseRaisesMeanError) {
  // Direction of the paper's claim. Under the literal §4.2.1 model the
  // symmetric per-(point,beacon) noise largely averages out in the
  // centroid, so the measured increase is a few percent, well short of the
  // paper's 33% headline (see EXPERIMENTS.md); the sign is still robust
  // when aggregated across densities.
  const SweepOutcome out =
      run_sweep(base_config({20, 60, 120, 200}, {0.0, 0.5}, 30), {});
  double ideal_total = 0.0, noisy_total = 0.0;
  for (std::size_t ci = 0; ci < 4; ++ci) {
    ideal_total += out.cells[0][ci].mean_error.mean;
    noisy_total += out.cells[1][ci].mean_error.mean;
  }
  EXPECT_GT(noisy_total, ideal_total);
  EXPECT_LT(noisy_total, 1.5 * ideal_total);
}

// ---- Fig 7: Random's gains are insensitive to noise. ----
TEST(PaperClaims, Fig7_RandomUnchangedByNoise) {
  static const RandomPlacement random;
  const PlacementAlgorithm* const algs[] = {&random};
  const SweepOutcome out =
      run_sweep(base_config({30, 60}, {0.0, 0.5}, 30), {algs, 1});
  for (std::size_t ci = 0; ci < 2; ++ci) {
    const Summary& ideal = out.cells[0][ci].improvement_mean[0];
    const Summary& noisy = out.cells[1][ci].improvement_mean[0];
    // Difference within the combined confidence intervals.
    EXPECT_LT(std::fabs(ideal.mean - noisy.mean),
              ideal.ci95 + noisy.ci95 + 0.05);
  }
}

// ---- Figs 8/9: Grid stays the best algorithm under noise. ----
TEST(PaperClaims, Fig9_GridStillBestUnderNoise) {
  const SweepOutcome out =
      run_sweep(base_config({20, 40}, {0.5}, 25), {paper_algs(), 3});
  for (const CellResult& cell : out.cells[0]) {
    const double random_gain = cell.improvement_mean[0].mean;
    const double max_gain = cell.improvement_mean[1].mean;
    const double grid_gain = cell.improvement_mean[2].mean;
    EXPECT_GT(grid_gain, max_gain) << "count=" << cell.beacons;
    EXPECT_GT(grid_gain, random_gain) << "count=" << cell.beacons;
  }
}

// ---- Reproducibility: the figure drivers are deterministic. ----
TEST(PaperClaims, FigureDriversAreDeterministic) {
  FigureOptions opt;
  opt.trials = 3;
  opt.count_stride = 8;  // counts {20, 100, 180}
  opt.seed = 7;
  const SweepOutcome a = run_fig5(opt);
  const SweepOutcome b = run_fig5(opt);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t ci = 0; ci < a.cells[0].size(); ++ci) {
    for (std::size_t alg = 0; alg < 3; ++alg) {
      EXPECT_DOUBLE_EQ(a.cells[0][ci].improvement_mean[alg].mean,
                       b.cells[0][ci].improvement_mean[alg].mean);
    }
  }
}

TEST(PaperClaims, FigureDriversUseTheRightAxes) {
  FigureOptions opt;
  opt.trials = 2;
  opt.count_stride = 11;  // counts {20, 130}
  const SweepOutcome f4 = run_fig4(opt);
  EXPECT_EQ(f4.cells.size(), 1u);
  EXPECT_TRUE(f4.algorithm_names.empty());

  const SweepOutcome f6 = run_fig6(opt);
  EXPECT_EQ(f6.cells.size(), 4u);  // four noise levels

  const SweepOutcome f8 = run_fig_alg_noise("max", opt);
  EXPECT_EQ(f8.algorithm_names, (std::vector<std::string>{"max"}));
  EXPECT_EQ(f8.cells.size(), 4u);
}

}  // namespace
}  // namespace abp
