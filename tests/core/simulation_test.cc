#include "core/simulation.h"

#include <gtest/gtest.h>

#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "radio/propagation.h"
#include "robot/surveyor.h"

namespace abp {
namespace {

SimulationConfig small_config(double noise = 0.0) {
  return {.side = 50.0, .range = 15.0, .step = 1.0, .noise = noise,
          .seed = 99};
}

TEST(Simulation, StartsEmptyWithFullError) {
  Simulation sim(small_config());
  EXPECT_EQ(sim.field().size(), 0u);
  EXPECT_DOUBLE_EQ(sim.uncovered_fraction(), 1.0);
  EXPECT_GT(sim.mean_error(), 0.0);  // fallback error to terrain center
}

TEST(Simulation, DeployUniformPopulatesAndRefreshes) {
  Simulation sim(small_config());
  sim.deploy_uniform(20);
  EXPECT_EQ(sim.field().size(), 20u);
  EXPECT_LT(sim.uncovered_fraction(), 0.5);
  EXPECT_GT(sim.mean_error(), 0.0);
}

TEST(Simulation, SameSeedSameDeployment) {
  Simulation a(small_config()), b(small_config());
  a.deploy_uniform(10);
  b.deploy_uniform(10);
  EXPECT_DOUBLE_EQ(a.mean_error(), b.mean_error());
}

TEST(Simulation, PlaceAtUpdatesIncrementally) {
  Simulation sim(small_config());
  sim.deploy_uniform(10);
  const double before = sim.mean_error();
  sim.place_at({25.0, 25.0});
  EXPECT_EQ(sim.field().size(), 11u);
  EXPECT_NE(sim.mean_error(), before);

  // The incremental map must equal a full refresh.
  const double incremental = sim.mean_error();
  sim.refresh();
  EXPECT_NEAR(sim.mean_error(), incremental, 1e-9);
}

TEST(Simulation, PlaceAtClampsOutOfBounds) {
  Simulation sim(small_config());
  sim.deploy_uniform(5);
  const BeaconId id = sim.place_at({500.0, -3.0});
  EXPECT_EQ(sim.field().get(id)->pos, (Vec2{50.0, 0.0}));
}

TEST(Simulation, PlaceWithImprovesSparseField) {
  Simulation sim(small_config());
  sim.deploy_uniform(6);
  const double before = sim.mean_error();
  const GridPlacement grid(100);
  sim.place_with(grid);
  EXPECT_LT(sim.mean_error(), before);
}

TEST(Simulation, PlaceFromSurveyUsesProvidedData) {
  Simulation sim(small_config());
  sim.deploy_uniform(6);
  // A fabricated survey with a single loud point steers Max there.
  SurveyData survey(sim.lattice());
  const std::size_t hot = sim.lattice().index(5, 45);
  sim.lattice().for_each(
      [&](std::size_t flat, Vec2) { survey.record(flat, 0.0); });
  survey.record(hot, 99.0);
  const MaxPlacement max;
  const BeaconId id = sim.place_from_survey(survey, max);
  EXPECT_EQ(sim.field().get(id)->pos, sim.lattice().point(hot));
}

TEST(Simulation, AdvancedConstructorWithCustomModel) {
  Simulation sim(AABB::square(40.0), 1.0,
                 std::make_unique<IdealDiskModel>(10.0), 7);
  sim.deploy_uniform(8);
  EXPECT_DOUBLE_EQ(sim.model().nominal_range(), 10.0);
  EXPECT_GT(sim.mean_error(), 0.0);
}

TEST(Simulation, MutableFieldPlusRefresh) {
  Simulation sim(small_config());
  sim.mutable_field().add({25.0, 25.0});
  sim.refresh();
  EXPECT_LT(sim.uncovered_fraction(), 1.0);
}

TEST(Simulation, SurveyEqualsErrorMap) {
  Simulation sim(small_config(0.3));
  sim.deploy_uniform(12);
  const SurveyData survey = sim.survey();
  EXPECT_DOUBLE_EQ(survey.coverage(), 1.0);
  EXPECT_NEAR(survey.mean(), sim.mean_error(), 1e-9);
}

}  // namespace
}  // namespace abp
