#include "core/adaptive_session.h"

#include <gtest/gtest.h>

#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "placement/random_placement.h"

namespace abp {
namespace {

SimulationConfig small_config() {
  return {.side = 50.0, .range = 15.0, .step = 1.0, .noise = 0.1, .seed = 31};
}

TEST(Session, StopsAtTargetError) {
  Simulation sim(small_config());
  sim.deploy_uniform(5);
  // Max can target any lattice point, so it reaches tight targets on small
  // terrains (see GridCenterRestriction below for Grid's limitation).
  const MaxPlacement max;
  const SessionConfig config{.target_mean_error = 6.0, .max_beacons = 30};
  const SessionReport report = run_adaptive_session(sim, max, config);
  EXPECT_TRUE(report.reached_target);
  EXPECT_LE(report.final_mean_error, 6.0);
  EXPECT_LE(report.beacons_added(), 30u);
  EXPECT_GT(report.beacons_added(), 0u);
}

TEST(Session, GridCenterRestrictionLimitsSmallTerrains) {
  // A structural property of the §3.2.3 Grid algorithm: it only ever
  // proposes grid centers, which lie at least R from the terrain edge, so
  // corner regions farther than R from every center can never be repaired
  // and the session plateaus above the target.
  Simulation sim(small_config());
  sim.deploy_uniform(5);
  const GridPlacement grid(100);
  const SessionConfig config{.target_mean_error = 6.0, .max_beacons = 30};
  const SessionReport report = run_adaptive_session(sim, grid, config);
  EXPECT_FALSE(report.reached_target);
  EXPECT_GT(report.final_mean_error, 6.0);
}

TEST(Session, RespectsBeaconBudget) {
  Simulation sim(small_config());
  sim.deploy_uniform(3);
  const GridPlacement grid(100);
  const SessionConfig config{.target_mean_error = 0.01, .max_beacons = 4};
  const SessionReport report = run_adaptive_session(sim, grid, config);
  EXPECT_FALSE(report.reached_target);
  EXPECT_EQ(report.beacons_added(), 4u);
  EXPECT_EQ(sim.field().size(), 7u);
}

TEST(Session, StepLogIsConsistent) {
  Simulation sim(small_config());
  sim.deploy_uniform(5);
  const GridPlacement grid(100);
  const SessionConfig config{.target_mean_error = 5.0, .max_beacons = 8};
  const SessionReport report = run_adaptive_session(sim, grid, config);
  for (std::size_t i = 0; i < report.steps.size(); ++i) {
    const SessionStep& s = report.steps[i];
    EXPECT_EQ(s.step, i);
    if (i > 0) {
      EXPECT_DOUBLE_EQ(s.mean_before, report.steps[i - 1].mean_after);
    }
  }
  if (!report.steps.empty()) {
    EXPECT_DOUBLE_EQ(report.steps.back().mean_after,
                     report.final_mean_error);
  }
}

TEST(Session, AlreadyAtTargetPlacesNothing) {
  Simulation sim(small_config());
  sim.deploy_uniform(40);  // dense field, tiny error
  const GridPlacement grid(100);
  const SessionConfig config{.target_mean_error = 100.0, .max_beacons = 5};
  const SessionReport report = run_adaptive_session(sim, grid, config);
  EXPECT_TRUE(report.reached_target);
  EXPECT_EQ(report.beacons_added(), 0u);
}

TEST(Session, MinImprovementCutoffStopsEarly) {
  Simulation sim(small_config());
  sim.deploy_uniform(45);  // saturated: single placements gain ~nothing
  const RandomPlacement random;
  const SessionConfig config{.target_mean_error = 0.0,
                             .max_beacons = 20,
                             .min_step_improvement = 0.5};
  const SessionReport report = run_adaptive_session(sim, random, config);
  EXPECT_LT(report.beacons_added(), 20u);  // stopped by the cutoff
}

TEST(Session, NegativeTargetRejected) {
  Simulation sim(small_config());
  sim.deploy_uniform(5);
  const GridPlacement grid(100);
  const SessionConfig config{.target_mean_error = -1.0};
  EXPECT_THROW(run_adaptive_session(sim, grid, config), CheckFailure);
}

}  // namespace
}  // namespace abp
