#include "eval/runner.h"

#include <gtest/gtest.h>

#include "placement/grid_placement.h"
#include "placement/random_placement.h"

namespace abp {
namespace {

SweepConfig small_config() {
  SweepConfig config;
  config.params.side = 50.0;
  config.params.num_grids = 100;
  config.beacon_counts = {5, 15, 40};
  config.noise_levels = {0.0, 0.3};
  config.trials = 8;
  config.seed = 123;
  config.threads = 2;
  return config;
}

TEST(Runner, OutcomeShapeMatchesConfig) {
  const RandomPlacement random;
  const GridPlacement grid(100);
  const PlacementAlgorithm* algs[] = {&random, &grid};
  const SweepOutcome out = run_sweep(small_config(), {algs, 2});

  ASSERT_EQ(out.cells.size(), 2u);           // noise levels
  ASSERT_EQ(out.cells[0].size(), 3u);        // beacon counts
  EXPECT_EQ(out.algorithm_names,
            (std::vector<std::string>{"random", "grid"}));
  for (const auto& row : out.cells) {
    for (const CellResult& cell : row) {
      EXPECT_EQ(cell.mean_error.count, 8u);
      ASSERT_EQ(cell.improvement_mean.size(), 2u);
      EXPECT_EQ(cell.improvement_mean[0].count, 8u);
    }
  }
}

TEST(Runner, CellMetadataConsistent) {
  const SweepOutcome out = run_sweep(small_config(), {});
  EXPECT_DOUBLE_EQ(out.cells[0][0].density, 5.0 / 2500.0);
  EXPECT_DOUBLE_EQ(out.cells[1][2].noise, 0.3);
  EXPECT_EQ(out.cells[0][1].beacons, 15u);
}

TEST(Runner, DeterministicAcrossThreadCounts) {
  // The core determinism contract: scheduling must not affect results.
  const GridPlacement grid(100);
  const PlacementAlgorithm* algs[] = {&grid};
  SweepConfig c1 = small_config();
  c1.threads = 1;
  SweepConfig c4 = small_config();
  c4.threads = 4;
  const SweepOutcome a = run_sweep(c1, {algs, 1});
  const SweepOutcome b = run_sweep(c4, {algs, 1});
  for (std::size_t ni = 0; ni < a.cells.size(); ++ni) {
    for (std::size_t ci = 0; ci < a.cells[ni].size(); ++ci) {
      EXPECT_DOUBLE_EQ(a.cells[ni][ci].mean_error.mean,
                       b.cells[ni][ci].mean_error.mean);
      EXPECT_DOUBLE_EQ(a.cells[ni][ci].improvement_mean[0].mean,
                       b.cells[ni][ci].improvement_mean[0].mean);
    }
  }
}

TEST(Runner, MeanErrorDecreasesWithDensity) {
  const SweepOutcome out = run_sweep(small_config(), {});
  const auto& ideal = out.cells[0];
  EXPECT_GT(ideal[0].mean_error.mean, ideal[1].mean_error.mean);
  EXPECT_GT(ideal[1].mean_error.mean, ideal[2].mean_error.mean);
}

TEST(Runner, ProgressCallbackCoversAllCells) {
  std::size_t last_done = 0, total = 0;
  const SweepOutcome out =
      run_sweep(small_config(), {}, [&](std::size_t done, std::size_t t) {
        last_done = std::max(last_done, done);
        total = t;
      });
  EXPECT_EQ(total, 6u);
  EXPECT_EQ(last_done, 6u);
}

TEST(Runner, CiShrinksWithMoreTrials) {
  SweepConfig few = small_config();
  few.beacon_counts = {15};
  few.noise_levels = {0.0};
  few.trials = 5;
  SweepConfig many = few;
  many.trials = 40;
  const double ci_few = run_sweep(few, {}).cells[0][0].mean_error.ci95;
  const double ci_many = run_sweep(many, {}).cells[0][0].mean_error.ci95;
  EXPECT_LT(ci_many, ci_few);
}

TEST(Saturation, FindsTheKneeOfASyntheticCurve) {
  SweepOutcome out;
  out.config = small_config();
  out.cells.resize(1);
  // Synthetic mean-error curve: 20, 9, 4.2, 4.0, 4.05 — floor 4.0; the
  // first density within 10% of the floor is the third one.
  const double means[] = {20.0, 9.0, 4.2, 4.0, 4.05};
  for (std::size_t i = 0; i < 5; ++i) {
    CellResult cell;
    cell.beacons = 10 * (i + 1);
    cell.density = 0.001 * static_cast<double>(i + 1);
    cell.beacons_per_coverage = cell.density * 706.86;
    cell.mean_error.mean = means[i];
    out.cells[0].push_back(cell);
  }
  const Saturation sat = find_saturation(out, 0);
  EXPECT_DOUBLE_EQ(sat.density, 0.003);
  EXPECT_DOUBLE_EQ(sat.error, 4.0);
}

TEST(Saturation, MonotoneCurveSaturatesAtEnd) {
  SweepOutcome out;
  out.config = small_config();
  out.cells.resize(1);
  for (std::size_t i = 0; i < 4; ++i) {
    CellResult cell;
    cell.density = 0.001 * static_cast<double>(i + 1);
    cell.mean_error.mean = 10.0 / static_cast<double>(i + 1);
    out.cells[0].push_back(cell);
  }
  const Saturation sat = find_saturation(out, 0, 1.05);
  EXPECT_DOUBLE_EQ(sat.density, 0.004);  // only the last point qualifies
}

TEST(Runner, DeploymentConfigPropagatesToTrials) {
  SweepConfig uniform = small_config();
  uniform.beacon_counts = {12};
  uniform.noise_levels = {0.0};
  SweepConfig clustered = uniform;
  clustered.deployment = Deployment::kClustered;
  const double u = run_sweep(uniform, {}).cells[0][0].mean_error.mean;
  const double c = run_sweep(clustered, {}).cells[0][0].mean_error.mean;
  EXPECT_NE(u, c);
  EXPECT_GT(c, u);  // clustering hurts localization at equal density
}

TEST(Runner, RejectsEmptyAxes) {
  SweepConfig bad = small_config();
  bad.beacon_counts.clear();
  EXPECT_THROW(run_sweep(bad, {}), CheckFailure);
  bad = small_config();
  bad.trials = 0;
  EXPECT_THROW(run_sweep(bad, {}), CheckFailure);
}

}  // namespace
}  // namespace abp
