#include "eval/figures.h"

#include <gtest/gtest.h>

#include "common/assert.h"

namespace abp {
namespace {

TEST(Figures, MakeSweepConfigDefaultsToPaperAxes) {
  FigureOptions opt;
  const SweepConfig config = make_sweep_config(opt, {0.0, 0.5});
  EXPECT_EQ(config.beacon_counts.size(), 23u);
  EXPECT_EQ(config.noise_levels, (std::vector<double>{0.0, 0.5}));
  EXPECT_EQ(config.trials, opt.trials);
  EXPECT_EQ(config.seed, opt.seed);
}

TEST(Figures, CountStrideSubsamplesTheDensityAxis) {
  FigureOptions opt;
  opt.count_stride = 4;
  const SweepConfig config = make_sweep_config(opt, {0.0});
  // 23 counts at stride 4 → indices 0,4,8,12,16,20 → 6 counts.
  ASSERT_EQ(config.beacon_counts.size(), 6u);
  EXPECT_EQ(config.beacon_counts.front(), 20u);
  EXPECT_EQ(config.beacon_counts[1], 60u);
  EXPECT_EQ(config.beacon_counts.back(), 220u);
}

TEST(Figures, ZeroStrideRejected) {
  FigureOptions opt;
  opt.count_stride = 0;
  EXPECT_THROW(make_sweep_config(opt, {0.0}), CheckFailure);
}

TEST(Figures, UnknownAlgorithmRejected) {
  FigureOptions opt;
  opt.trials = 1;
  opt.count_stride = 23;
  EXPECT_THROW(run_fig_alg_noise("simulated-annealing", opt), CheckFailure);
}

TEST(Figures, Fig5RunsThePaperAlgorithmsInOrder) {
  FigureOptions opt;
  opt.trials = 1;
  opt.count_stride = 23;  // single density — fast
  const SweepOutcome out = run_fig5(opt);
  EXPECT_EQ(out.algorithm_names,
            (std::vector<std::string>{"random", "max", "grid"}));
  EXPECT_EQ(out.cells.size(), 1u);
  EXPECT_EQ(out.cells[0].size(), 1u);
}

}  // namespace
}  // namespace abp
