#include "eval/gnuplot.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "placement/grid_placement.h"
#include "placement/random_placement.h"

namespace abp {
namespace {

SweepOutcome tiny_outcome(bool with_algs) {
  SweepConfig config;
  config.params.side = 50.0;
  config.params.num_grids = 100;
  config.beacon_counts = {6, 14};
  config.noise_levels = {0.0, 0.3};
  config.trials = 3;
  config.seed = 9;
  config.threads = 2;
  static const RandomPlacement random;
  static const GridPlacement grid(100);
  static const PlacementAlgorithm* algs[] = {&random, &grid};
  return run_sweep(config, with_algs
                               ? std::span<const PlacementAlgorithm* const>(
                                     algs, 2)
                               : std::span<const PlacementAlgorithm* const>{});
}

std::size_t count_blocks(const std::string& dat) {
  std::size_t blocks = 0;
  std::istringstream in(dat);
  std::string line;
  bool in_block = false;
  while (std::getline(in, line)) {
    const bool content = !line.empty() && line[0] != '#';
    if (content && !in_block) {
      ++blocks;
      in_block = true;
    } else if (!content && line.empty()) {
      in_block = false;
    }
  }
  return blocks;
}

TEST(Gnuplot, DataHasOneBlockPerSeries) {
  const SweepOutcome out = tiny_outcome(true);
  std::ostringstream dat;
  write_gnuplot_data(dat, out);
  // 2 noise mean-error + 2 algs × 2 noises × (mean + median) = 2 + 8.
  EXPECT_EQ(count_blocks(dat.str()), 10u);
}

TEST(Gnuplot, DataRowsMatchDensityAxis) {
  const SweepOutcome out = tiny_outcome(false);
  std::ostringstream dat;
  write_gnuplot_data(dat, out);
  // Each of the 2 blocks has 2 rows (two beacon counts).
  std::size_t rows = 0;
  std::istringstream in(dat.str());
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') ++rows;
  }
  EXPECT_EQ(rows, 4u);
  EXPECT_NE(dat.str().find("# mean_error Ideal"), std::string::npos);
  EXPECT_NE(dat.str().find("# mean_error Noise=0.3"), std::string::npos);
}

TEST(Gnuplot, ScriptReferencesCorrectIndices) {
  const SweepOutcome out = tiny_outcome(true);
  std::ostringstream gp;
  write_gnuplot_script(gp, out, "fig5", "Figure 5");
  const std::string s = gp.str();
  EXPECT_NE(s.find("set output 'fig5.png'"), std::string::npos);
  // Improvement blocks start at index 2 (after two mean-error blocks).
  EXPECT_NE(s.find("'fig5.dat' index 2"), std::string::npos);
  EXPECT_NE(s.find("yerrorlines"), std::string::npos);
  EXPECT_NE(s.find("random"), std::string::npos);
  EXPECT_NE(s.find("grid"), std::string::npos);
}

TEST(Gnuplot, MeasurementOnlyScriptPlotsMeanError) {
  const SweepOutcome out = tiny_outcome(false);
  std::ostringstream gp;
  write_gnuplot_script(gp, out, "fig4", "Figure 4");
  EXPECT_NE(gp.str().find("Mean localization error"), std::string::npos);
  EXPECT_NE(gp.str().find("index 0"), std::string::npos);
  EXPECT_NE(gp.str().find("index 1"), std::string::npos);
}

TEST(Gnuplot, ExportWritesBothFiles) {
  const SweepOutcome out = tiny_outcome(false);
  const std::string base = ::testing::TempDir() + "/abp_gnuplot_test";
  export_gnuplot(base, "test", out);
  std::ifstream dat(base + ".dat"), gp(base + ".gp");
  EXPECT_TRUE(dat.good());
  EXPECT_TRUE(gp.good());
}

}  // namespace
}  // namespace abp
