#include "eval/trial.h"

#include <gtest/gtest.h>

#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "placement/oracle_placement.h"
#include "placement/random_placement.h"

namespace abp {
namespace {

// Small parameters keep each trial ~1 ms.
PaperParams small_params() {
  PaperParams p;
  p.side = 50.0;
  p.step = 1.0;
  p.num_grids = 100;
  return p;
}

TEST(Trial, MeasurementOnlyTrialHasNoOutcomes) {
  const TrialResult r = run_trial(small_params(), 10, 0.0, {}, 42);
  EXPECT_TRUE(r.outcomes.empty());
  EXPECT_GT(r.mean_before, 0.0);
  EXPECT_GT(r.median_before, 0.0);
  EXPECT_GE(r.uncovered_before, 0.0);
  EXPECT_LE(r.uncovered_before, 1.0);
}

TEST(Trial, DeterministicInSeed) {
  const RandomPlacement random;
  const GridPlacement grid(100);
  const PlacementAlgorithm* algs[] = {&random, &grid};
  const TrialResult a = run_trial(small_params(), 12, 0.3, {algs, 2}, 7);
  const TrialResult b = run_trial(small_params(), 12, 0.3, {algs, 2}, 7);
  EXPECT_DOUBLE_EQ(a.mean_before, b.mean_before);
  ASSERT_EQ(a.outcomes.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(a.outcomes[i].position, b.outcomes[i].position);
    EXPECT_DOUBLE_EQ(a.outcomes[i].mean_after, b.outcomes[i].mean_after);
  }
}

TEST(Trial, DifferentSeedsGiveDifferentFields) {
  const TrialResult a = run_trial(small_params(), 12, 0.0, {}, 1);
  const TrialResult b = run_trial(small_params(), 12, 0.0, {}, 2);
  EXPECT_NE(a.mean_before, b.mean_before);
}

TEST(Trial, AllAlgorithmsSeeTheSameField) {
  // Rollback between algorithms: outcome order must not matter for the
  // "before" metrics, and each algorithm's improvement is measured from
  // the identical starting state. We verify by permuting the list.
  const RandomPlacement random;
  const MaxPlacement max;
  const PlacementAlgorithm* ab[] = {&random, &max};
  const PlacementAlgorithm* ba[] = {&max, &random};
  const TrialResult r1 = run_trial(small_params(), 10, 0.1, {ab, 2}, 77);
  const TrialResult r2 = run_trial(small_params(), 10, 0.1, {ba, 2}, 77);
  // max's outcome must be identical in both orders (same field, own seed
  // stream is positional — compare by matching name).
  const auto find = [](const TrialResult& r, const std::string& name) {
    for (const auto& o : r.outcomes) {
      if (o.name == name) return o;
    }
    ABP_CHECK(false, "missing outcome");
    return r.outcomes[0];
  };
  EXPECT_EQ(find(r1, "max").position, find(r2, "max").position);
  EXPECT_DOUBLE_EQ(find(r1, "max").mean_after, find(r2, "max").mean_after);
}

TEST(Trial, ImprovementAccessorsMatchDefinition) {
  const GridPlacement grid(100);
  const PlacementAlgorithm* algs[] = {&grid};
  const TrialResult r = run_trial(small_params(), 8, 0.0, {algs, 1}, 5);
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_DOUBLE_EQ(r.improvement_mean(0),
                   r.mean_before - r.outcomes[0].mean_after);
  EXPECT_DOUBLE_EQ(r.improvement_median(0),
                   r.median_before - r.outcomes[0].median_after);
}

TEST(Trial, OracleImprovementIsNonNegativeAndDominant) {
  const OraclePlacement oracle(4);
  const GridPlacement grid(100);
  const PlacementAlgorithm* algs[] = {&oracle, &grid};
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const TrialResult r = run_trial(small_params(), 8, 0.2, {algs, 2}, seed);
    EXPECT_GE(r.improvement_mean(0), -1e-9);
    EXPECT_GE(r.improvement_mean(0), r.improvement_mean(1) - 1e-9);
  }
}

TEST(Trial, UncoveredFractionDecreasesWithDensity) {
  const TrialResult sparse = run_trial(small_params(), 4, 0.0, {}, 3);
  const TrialResult dense = run_trial(small_params(), 60, 0.0, {}, 3);
  EXPECT_GT(sparse.uncovered_before, dense.uncovered_before);
}

TEST(Trial, NoiseChangesTheOutcome) {
  const TrialResult ideal = run_trial(small_params(), 15, 0.0, {}, 9);
  const TrialResult noisy = run_trial(small_params(), 15, 0.5, {}, 9);
  EXPECT_NE(ideal.mean_before, noisy.mean_before);
}

TEST(Trial, RejectsZeroBeacons) {
  EXPECT_THROW(run_trial(small_params(), 0, 0.0, {}, 1), CheckFailure);
}

TEST(Trial, DeploymentModesChangeTheField) {
  const TrialResult uniform =
      run_trial(small_params(), 20, 0.0, {}, 4, Deployment::kUniform);
  const TrialResult clustered =
      run_trial(small_params(), 20, 0.0, {}, 4, Deployment::kClustered);
  const TrialResult airdrop =
      run_trial(small_params(), 20, 0.0, {}, 4, Deployment::kAirdropHill);
  EXPECT_NE(uniform.mean_before, clustered.mean_before);
  EXPECT_NE(uniform.mean_before, airdrop.mean_before);
  // Clustering leaves more of the terrain uncovered at equal density.
  EXPECT_GT(clustered.uncovered_before, uniform.uncovered_before);
}

TEST(Trial, DeploymentIsDeterministicToo) {
  const TrialResult a =
      run_trial(small_params(), 15, 0.1, {}, 9, Deployment::kClustered);
  const TrialResult b =
      run_trial(small_params(), 15, 0.1, {}, 9, Deployment::kClustered);
  EXPECT_DOUBLE_EQ(a.mean_before, b.mean_before);
}

}  // namespace
}  // namespace abp
