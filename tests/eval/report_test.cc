#include "eval/report.h"

#include <gtest/gtest.h>
#include <sstream>

#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "placement/random_placement.h"

namespace abp {
namespace {

SweepOutcome tiny_outcome() {
  SweepConfig config;
  config.params.side = 50.0;
  config.params.num_grids = 100;
  config.beacon_counts = {6, 20};
  config.noise_levels = {0.0, 0.3};
  config.trials = 4;
  config.seed = 5;
  config.threads = 2;
  static const RandomPlacement random;
  static const MaxPlacement max;
  static const GridPlacement grid(100);
  static const PlacementAlgorithm* algs[] = {&random, &max, &grid};
  return run_sweep(config, {algs, 3});
}

TEST(Report, MeanErrorTableHasAllDensityRowsAndNoiseColumns) {
  const SweepOutcome out = tiny_outcome();
  std::ostringstream os;
  print_mean_error_table(os, out);
  const std::string s = os.str();
  EXPECT_NE(s.find("Ideal"), std::string::npos);
  EXPECT_NE(s.find("Noise=0.3"), std::string::npos);
  EXPECT_NE(s.find("frac-of-R"), std::string::npos);
  // One row per beacon count, identified by its density cell
  // (6/2500 = 0.0024, 20/2500 = 0.0080).
  EXPECT_NE(s.find("0.0024"), std::string::npos);
  EXPECT_NE(s.find("0.0080"), std::string::npos);
}

TEST(Report, ImprovementTablesListAllAlgorithms) {
  const SweepOutcome out = tiny_outcome();
  std::ostringstream os;
  print_improvement_tables(os, out, 0);
  const std::string s = os.str();
  EXPECT_NE(s.find("random"), std::string::npos);
  EXPECT_NE(s.find("max"), std::string::npos);
  EXPECT_NE(s.find("grid"), std::string::npos);
  EXPECT_NE(s.find("MEAN"), std::string::npos);
  EXPECT_NE(s.find("MEDIAN"), std::string::npos);
}

TEST(Report, AlgorithmNoiseTablesCoverAllNoiseLevels) {
  const SweepOutcome out = tiny_outcome();
  std::ostringstream os;
  print_algorithm_noise_tables(os, out, 2);
  const std::string s = os.str();
  EXPECT_NE(s.find("'grid'"), std::string::npos);
  EXPECT_NE(s.find("Ideal"), std::string::npos);
  EXPECT_NE(s.find("Noise=0.3"), std::string::npos);
}

TEST(Report, SaturationLinePrints) {
  const SweepOutcome out = tiny_outcome();
  std::ostringstream os;
  print_saturation(os, out, 0);
  EXPECT_NE(os.str().find("saturation density"), std::string::npos);
}

TEST(Report, CsvIsCompleteAndParsable) {
  const SweepOutcome out = tiny_outcome();
  std::ostringstream os;
  write_sweep_csv(os, out);
  const std::string s = os.str();

  // Header + (2 noises × 2 counts) × (3 base metrics + 3 algs × 2) rows.
  std::size_t lines = 0;
  for (char c : s) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1u + 4u * (3u + 6u));

  // Every line has the same number of commas as the header.
  std::istringstream in(s);
  std::string line, header;
  std::getline(in, header);
  const auto commas = [](const std::string& l) {
    return std::count(l.begin(), l.end(), ',');
  };
  while (std::getline(in, line)) {
    EXPECT_EQ(commas(line), commas(header));
  }
}

TEST(Report, CsvContainsAlgorithmImprovements) {
  const SweepOutcome out = tiny_outcome();
  std::ostringstream os;
  write_sweep_csv(os, out);
  EXPECT_NE(os.str().find("improvement_mean,grid"), std::string::npos);
  EXPECT_NE(os.str().find("improvement_median,random"), std::string::npos);
  EXPECT_NE(os.str().find("mean_error"), std::string::npos);
}

TEST(Report, IndexValidation) {
  const SweepOutcome out = tiny_outcome();
  std::ostringstream os;
  EXPECT_THROW(print_improvement_tables(os, out, 9), CheckFailure);
  EXPECT_THROW(print_algorithm_noise_tables(os, out, 9), CheckFailure);
}

}  // namespace
}  // namespace abp
