#include "eval/config.h"

#include <gtest/gtest.h>

namespace abp {
namespace {

TEST(PaperParams, Table1Defaults) {
  const PaperParams p;
  EXPECT_DOUBLE_EQ(p.side, 100.0);
  EXPECT_DOUBLE_EQ(p.range, 15.0);
  EXPECT_DOUBLE_EQ(p.step, 1.0);
  EXPECT_EQ(p.num_grids, 400u);
}

TEST(PaperParams, PtMatchesPaperFormula) {
  // PT = (Side/step + 1)² = 101² = 10201.
  EXPECT_EQ(PaperParams{}.pt(), 10201u);
}

TEST(PaperParams, DensityAxisEndpoints) {
  const PaperParams p;
  // §4.1: 20 beacons ⇒ 0.002 /m², 240 ⇒ 0.024 /m².
  EXPECT_DOUBLE_EQ(p.density(20), 0.002);
  EXPECT_DOUBLE_EQ(p.density(240), 0.024);
}

TEST(PaperParams, BeaconsPerCoverageMatchesPaper) {
  const PaperParams p;
  // §4.1: "the corresponding number of beacons per nominal radio coverage
  // area varies from 1.41 to 17".
  EXPECT_NEAR(p.beacons_per_coverage(20), 1.41, 0.01);
  EXPECT_NEAR(p.beacons_per_coverage(240), 17.0, 0.05);
}

TEST(SweepConfig, PaperAxes) {
  const auto counts = SweepConfig::paper_beacon_counts();
  ASSERT_EQ(counts.size(), 23u);  // 20..240 step 10
  EXPECT_EQ(counts.front(), 20u);
  EXPECT_EQ(counts.back(), 240u);
  EXPECT_EQ(counts[1] - counts[0], 10u);

  const auto noises = SweepConfig::paper_noise_levels();
  EXPECT_EQ(noises, (std::vector<double>{0.0, 0.1, 0.3, 0.5}));
}

TEST(PaperParams, LatticeMatchesBounds) {
  const PaperParams p;
  const Lattice2D l = p.lattice();
  EXPECT_EQ(l.nx(), 101u);
  EXPECT_EQ(l.size(), p.pt());
  EXPECT_TRUE(p.bounds().contains(l.point(l.size() - 1)));
}

}  // namespace
}  // namespace abp
