#include "placement/batch.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "field/generators.h"
#include "placement/grid_placement.h"
#include "placement/max_placement.h"
#include "placement/random_placement.h"
#include "radio/noise_model.h"

namespace abp {
namespace {

struct Scenario {
  AABB bounds = AABB::square(60.0);
  BeaconField field{bounds, 20.0};
  PerBeaconNoiseModel model{15.0, 0.1, 3};
  Lattice2D lattice{bounds, 1.0};
  ErrorMap map{lattice};

  explicit Scenario(std::size_t beacons, std::uint64_t seed = 9) {
    Rng rng(seed);
    scatter_uniform(field, beacons, rng);
    map.compute(field, model);
  }
};

TEST(Batch, PlacesExactlyKBeacons) {
  Scenario s(6);
  const std::size_t before = s.field.size();
  const GridPlacement grid;
  Rng rng(1);
  const BatchResult r = place_batch(s.field, s.model, s.map, grid, 4,
                                    BatchMode::kSequential, rng);
  EXPECT_EQ(r.positions.size(), 4u);
  EXPECT_EQ(r.ids.size(), 4u);
  EXPECT_EQ(s.field.size(), before + 4);
}

TEST(Batch, MapStaysConsistentWithField) {
  Scenario s(6);
  const MaxPlacement max;
  Rng rng(2);
  place_batch(s.field, s.model, s.map, max, 3, BatchMode::kSequential, rng);
  ErrorMap fresh(s.lattice);
  fresh.compute(s.field, s.model);
  s.lattice.for_each([&](std::size_t flat, Vec2) {
    ASSERT_DOUBLE_EQ(s.map.value(flat), fresh.value(flat));
  });
}

TEST(Batch, SequentialGridImprovesMeanAtLowDensity) {
  Scenario s(5);
  const GridPlacement grid;
  Rng rng(3);
  const BatchResult r = place_batch(s.field, s.model, s.map, grid, 5,
                                    BatchMode::kSequential, rng);
  EXPECT_LT(r.mean_after, r.mean_before);
  EXPECT_DOUBLE_EQ(r.mean_after, s.map.mean());
}

TEST(Batch, OneShotAlsoPlacesKDistinctPositions) {
  Scenario s(5);
  const GridPlacement grid;
  Rng rng(4);
  const BatchResult r = place_batch(s.field, s.model, s.map, grid, 3,
                                    BatchMode::kOneShot, rng);
  EXPECT_EQ(r.positions.size(), 3u);
  // Suppression must prevent k identical picks.
  EXPECT_FALSE(r.positions[0] == r.positions[1] &&
               r.positions[1] == r.positions[2]);
}

TEST(Batch, SequentialAtLeastAsGoodAsOneShotForGrid) {
  // Re-surveying between placements can only add information. Averaged
  // over several fields, sequential ≥ one-shot (allow tiny slack for luck).
  double seq_total = 0.0, shot_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const GridPlacement grid;
    {
      Scenario s(5, seed);
      Rng rng(seed);
      seq_total += place_batch(s.field, s.model, s.map, grid, 4,
                               BatchMode::kSequential, rng)
                       .mean_before -
                   s.map.mean();
    }
    {
      Scenario s(5, seed);
      Rng rng(seed);
      shot_total += place_batch(s.field, s.model, s.map, grid, 4,
                                BatchMode::kOneShot, rng)
                        .mean_before -
                    s.map.mean();
    }
  }
  EXPECT_GE(seq_total, shot_total - 0.5);
}

TEST(Batch, RandomModeIndifferent) {
  // For Random the two modes draw the same stream ⇒ identical placements.
  const RandomPlacement random;
  Scenario a(5), b(5);
  Rng ra(7), rb(7);
  const auto ra_result = place_batch(a.field, a.model, a.map, random, 3,
                                     BatchMode::kSequential, ra);
  const auto rb_result = place_batch(b.field, b.model, b.map, random, 3,
                                     BatchMode::kOneShot, rb);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ra_result.positions[i], rb_result.positions[i]);
  }
}

TEST(Batch, ZeroKRejected) {
  Scenario s(5);
  const RandomPlacement random;
  Rng rng(8);
  EXPECT_THROW(place_batch(s.field, s.model, s.map, random, 0,
                           BatchMode::kSequential, rng),
               CheckFailure);
}

TEST(Batch, MediansReportedConsistently) {
  Scenario s(6);
  const GridPlacement grid;
  Rng rng(9);
  const BatchResult r = place_batch(s.field, s.model, s.map, grid, 2,
                                    BatchMode::kSequential, rng);
  EXPECT_DOUBLE_EQ(r.median_after, s.map.median());
  EXPECT_GE(r.median_before, 0.0);
}

}  // namespace
}  // namespace abp
