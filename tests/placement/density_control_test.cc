#include "placement/density_control.h"

#include <gtest/gtest.h>

#include "common/assert.h"
#include "field/generators.h"
#include "radio/noise_model.h"

namespace abp {
namespace {

struct Scenario {
  AABB bounds = AABB::square(60.0);
  BeaconField field{bounds, 20.0};
  PerBeaconNoiseModel model{15.0, 0.0, 1};
  Lattice2D lattice{bounds, 2.0};
  ErrorMap map{lattice};

  explicit Scenario(std::size_t beacons, std::uint64_t seed = 4) {
    Rng rng(seed);
    scatter_uniform(field, beacons, rng);
    map.compute(field, model);
  }
};

TEST(DensityControl, DeactivatesRedundantBeaconsAboveSaturation) {
  // 90 beacons on 3600 m² = 0.025/m², far above saturation (~0.01): the
  // controller must find a substantial number of redundant beacons.
  Scenario s(90);
  DensityControlConfig config;
  config.tolerance_factor = 1.10;
  Rng rng(1);
  const auto r = greedy_density_control(s.field, s.model, s.map, config, rng);
  EXPECT_EQ(r.initial_active, 90u);
  EXPECT_LT(r.final_active, 60u);
  EXPECT_LE(r.final_mean, 1.10 * r.baseline_mean + 1e-9);
  EXPECT_EQ(r.final_active + r.deactivated.size(), 90u);
}

TEST(DensityControl, RespectsToleranceBudget) {
  Scenario s(50);
  DensityControlConfig config;
  config.tolerance_factor = 1.02;  // very tight
  Rng rng(2);
  const auto r = greedy_density_control(s.field, s.model, s.map, config, rng);
  EXPECT_LE(r.final_mean, 1.02 * r.baseline_mean + 1e-9);
}

TEST(DensityControl, MapMatchesFieldAfterwards) {
  Scenario s(60);
  DensityControlConfig config;
  config.tolerance_factor = 1.08;
  Rng rng(3);
  greedy_density_control(s.field, s.model, s.map, config, rng);
  ErrorMap fresh(s.lattice);
  fresh.compute(s.field, s.model);
  s.lattice.for_each([&](std::size_t flat, Vec2) {
    ASSERT_NEAR(s.map.value(flat), fresh.value(flat), 1e-9);
  });
}

TEST(DensityControl, DeactivatedBeaconsRemainDeployed) {
  Scenario s(40);
  DensityControlConfig config;
  config.tolerance_factor = 1.15;
  Rng rng(4);
  const auto r = greedy_density_control(s.field, s.model, s.map, config, rng);
  for (BeaconId id : r.deactivated) {
    const auto b = s.field.get(id);
    ASSERT_TRUE(b.has_value());
    EXPECT_FALSE(b->active);
  }
}

TEST(DensityControl, MaxDeactivationsCapHonoured) {
  Scenario s(70);
  DensityControlConfig config;
  config.tolerance_factor = 1.5;
  config.max_deactivations = 5;
  Rng rng(5);
  const auto r = greedy_density_control(s.field, s.model, s.map, config, rng);
  EXPECT_EQ(r.deactivated.size(), 5u);
  EXPECT_EQ(r.final_active, 65u);
}

TEST(DensityControl, CandidateSamplingStillRespectsBudget) {
  Scenario s(60);
  DensityControlConfig config;
  config.tolerance_factor = 1.10;
  config.candidate_sample = 8;
  Rng rng(6);
  const auto r = greedy_density_control(s.field, s.model, s.map, config, rng);
  EXPECT_LE(r.final_mean, 1.10 * r.baseline_mean + 1e-9);
  EXPECT_GT(r.deactivated.size(), 0u);
}

TEST(DensityControl, SparseFieldKeepsMostBeacons) {
  // At well-below-saturation density most beacons matter: with a tight
  // budget the controller must keep the clear majority (it may still find
  // an overlapping pair whose member is redundant).
  Scenario s(6);
  DensityControlConfig config;
  config.tolerance_factor = 1.01;
  Rng rng(7);
  const auto r = greedy_density_control(s.field, s.model, s.map, config, rng);
  EXPECT_LE(r.deactivated.size(), 2u);
  EXPECT_LE(r.final_mean, 1.01 * r.baseline_mean + 1e-9);
}

TEST(DensityControl, InvalidToleranceRejected) {
  Scenario s(10);
  DensityControlConfig config;
  config.tolerance_factor = 0.9;
  Rng rng(8);
  EXPECT_THROW(greedy_density_control(s.field, s.model, s.map, config, rng),
               CheckFailure);
}

}  // namespace
}  // namespace abp
