// Contract tests: invariants every placement algorithm must satisfy,
// enforced uniformly across the whole registry (paper algorithms and
// extensions alike) and across random scenarios.
#include <gtest/gtest.h>
#include <memory>

#include "field/generators.h"
#include "loc/error_map.h"
#include "placement/coverage_placement.h"
#include "placement/gdop_placement.h"
#include "placement/grid_placement.h"
#include "placement/locus_placement.h"
#include "placement/max_placement.h"
#include "placement/oracle_placement.h"
#include "placement/random_placement.h"
#include "placement/refined_grid_placement.h"
#include "radio/noise_model.h"

namespace abp {
namespace {

struct Registry {
  RandomPlacement random;
  MaxPlacement max;
  GridPlacement grid{100};
  GridPlacement grid_norm{100, 2.0, true};
  RefinedGridPlacement refined{100, 2.0, 4};
  OraclePlacement oracle{6};
  LocusPlacement locus{false};
  LocusPlacement locus_covered{true};
  GdopPlacement gdop{4};
  CoveragePlacement coverage{4};

  std::vector<const PlacementAlgorithm*> all() const {
    return {&random, &max,   &grid, &grid_norm,     &refined,
            &oracle, &locus, &gdop, &locus_covered, &coverage};
  }
};

struct Scenario {
  AABB bounds = AABB::square(60.0);
  BeaconField field{bounds, 20.0};
  PerBeaconNoiseModel model{15.0, 0.2, 0};
  Lattice2D lattice{bounds, 1.0};
  ErrorMap map{lattice};
  SurveyData survey{lattice};

  explicit Scenario(std::uint64_t seed)
      : model(15.0, 0.2, derive_seed(seed, 2)) {
    Rng rng(derive_seed(seed, 1));
    scatter_uniform(field, 6 + rng.below(20), rng);
    map.compute(field, model);
    survey = SurveyData::from_error_map(map);
  }

  PlacementContext ctx() {
    PlacementContext c = PlacementContext::basic(survey, bounds, 15.0);
    c.field = &field;
    c.model = &model;
    c.truth = &map;
    return c;
  }
};

class AlgorithmContract : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlgorithmContract, ProposalsInBoundsForEveryAlgorithm) {
  Scenario s(GetParam());
  const Registry registry;
  for (const auto* alg : registry.all()) {
    Rng rng(GetParam() ^ 0xA11);
    const Vec2 pick = alg->propose(s.ctx(), rng);
    EXPECT_TRUE(s.bounds.contains(pick))
        << alg->name() << " proposed out-of-bounds " << pick;
  }
}

TEST_P(AlgorithmContract, ProposalsAreDeterministicGivenRngState) {
  Scenario s(GetParam());
  const Registry registry;
  for (const auto* alg : registry.all()) {
    Rng r1(77), r2(77);
    EXPECT_EQ(alg->propose(s.ctx(), r1), alg->propose(s.ctx(), r2))
        << alg->name();
  }
}

TEST_P(AlgorithmContract, ProposeDoesNotMutateTheWorld) {
  Scenario s(GetParam());
  const Registry registry;
  const std::size_t beacons_before = s.field.size();
  const double mean_before = s.map.mean();
  const double survey_mean_before = s.survey.mean();
  for (const auto* alg : registry.all()) {
    Rng rng(5);
    (void)alg->propose(s.ctx(), rng);
    ASSERT_EQ(s.field.size(), beacons_before) << alg->name();
    ASSERT_DOUBLE_EQ(s.map.mean(), mean_before) << alg->name();
    ASSERT_DOUBLE_EQ(s.survey.mean(), survey_mean_before) << alg->name();
  }
}

TEST_P(AlgorithmContract, NamesAreUniqueAndStable) {
  const Registry registry;
  std::set<std::string> names;
  for (const auto* alg : registry.all()) {
    EXPECT_TRUE(names.insert(alg->name()).second)
        << "duplicate name " << alg->name();
    EXPECT_FALSE(alg->name().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmContract,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace abp
