// Tests for the extension algorithms: oracle, locus, GDOP.
#include <gtest/gtest.h>

#include "common/assert.h"
#include "field/generators.h"
#include "loc/connectivity.h"
#include "loc/error_map.h"
#include "loc/locus.h"
#include "loc/multilateration.h"
#include "placement/gdop_placement.h"
#include "placement/grid_placement.h"
#include "placement/locus_placement.h"
#include "placement/max_placement.h"
#include "placement/oracle_placement.h"
#include "placement/random_placement.h"
#include "radio/noise_model.h"

namespace abp {
namespace {

constexpr double kSide = 60.0;

struct Scenario {
  AABB bounds = AABB::square(kSide);
  BeaconField field{bounds, 20.0};
  PerBeaconNoiseModel model{15.0, 0.2, 13};
  Lattice2D lattice{bounds, 1.0};
  ErrorMap map{lattice};
  SurveyData survey{lattice};

  explicit Scenario(std::size_t beacons, std::uint64_t seed = 5) {
    Rng rng(seed);
    scatter_uniform(field, beacons, rng);
    map.compute(field, model);
    survey = SurveyData::from_error_map(map);
  }

  PlacementContext ctx() {
    PlacementContext c = PlacementContext::basic(survey, bounds, 15.0);
    c.field = &field;
    c.model = &model;
    c.truth = &map;
    return c;
  }

  double improvement_at(Vec2 pos) {
    const double before = map.mean();
    return before - map.mean_if_added(field, model, pos);
  }
};

TEST(Oracle, BeatsEveryPaperAlgorithmByConstruction) {
  Scenario s(8);
  Rng rng(1);
  const OraclePlacement oracle(2);
  const double oracle_gain = s.improvement_at(oracle.propose(s.ctx(), rng));

  const RandomPlacement random;
  const MaxPlacement max;
  const GridPlacement grid;
  for (const PlacementAlgorithm* alg :
       std::initializer_list<const PlacementAlgorithm*>{&random, &max, &grid}) {
    Rng r(2);
    const double gain = s.improvement_at(alg->propose(s.ctx(), r));
    EXPECT_GE(oracle_gain, gain - 1e-9) << "beaten by " << alg->name();
  }
}

TEST(Oracle, GainIsNonNegative) {
  // The oracle can always place far away from everything (zero effect), so
  // its chosen gain is never negative.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Scenario s(10, seed);
    Rng rng(seed);
    const OraclePlacement oracle(3);
    EXPECT_GE(s.improvement_at(oracle.propose(s.ctx(), rng)), -1e-12);
  }
}

TEST(Oracle, MatchesExhaustiveSearchAtStride) {
  Scenario s(6);
  const OraclePlacement oracle(4);
  Rng rng(3);
  const Vec2 pick = oracle.propose(s.ctx(), rng);

  double best = -1e18;
  Vec2 best_pos;
  for (std::size_t j = 0; j < s.lattice.ny(); j += 4) {
    for (std::size_t i = 0; i < s.lattice.nx(); i += 4) {
      const double gain = s.improvement_at(s.lattice.point(i, j));
      if (gain > best) {
        best = gain;
        best_pos = s.lattice.point(i, j);
      }
    }
  }
  EXPECT_EQ(pick, best_pos);
}

TEST(Oracle, RequiresFullContext) {
  Scenario s(5);
  PlacementContext ctx = PlacementContext::basic(s.survey, s.bounds, 15.0);
  const OraclePlacement oracle;
  Rng rng(4);
  EXPECT_THROW(oracle.propose(ctx, rng), CheckFailure);
}

TEST(Locus, TargetsTheUncoveredExteriorAtLowDensity) {
  // With 3 beacons in one corner, the largest locus is the uncovered rest
  // of the terrain; the proposal must land outside current coverage.
  Scenario s(0);
  s.field.add({5.0, 5.0});
  s.field.add({10.0, 5.0});
  s.field.add({5.0, 10.0});
  s.map.compute(s.field, s.model);
  s.survey = SurveyData::from_error_map(s.map);

  const LocusPlacement locus;  // covered_only = false
  Rng rng(5);
  const Vec2 pick = locus.propose(s.ctx(), rng);
  EXPECT_EQ(connected_count(s.field, s.model, pick), 0u);
}

TEST(Locus, CoveredOnlyRefinesGranularity) {
  Scenario s(0);
  s.field.add({30.0, 30.0});
  s.map.compute(s.field, s.model);
  s.survey = SurveyData::from_error_map(s.map);

  const LocusPlacement locus(/*covered_only=*/true);
  Rng rng(6);
  const Vec2 pick = locus.propose(s.ctx(), rng);
  // The only covered locus is the single beacon's disk; its centroid is
  // (about) the beacon position.
  EXPECT_LT(distance(pick, {30.0, 30.0}), 2.0);
}

TEST(Locus, SplitsTheTargetedRegion) {
  Scenario s(12, 21);
  const auto before =
      analyze_loci(s.field, s.model, s.lattice).region_count();
  const LocusPlacement locus;
  Rng rng(7);
  const Vec2 pick = locus.propose(s.ctx(), rng);
  s.field.add(pick);
  const auto after =
      analyze_loci(s.field, s.model, s.lattice).region_count();
  EXPECT_GT(after, before);
}

TEST(Gdop, PlacesWhereGeometryIsWorst) {
  // Beacons arranged along a line: everywhere on/near that line GDOP is
  // singular. The proposal must be a point that currently has bad geometry.
  Scenario s(0);
  for (double x = 5.0; x <= 55.0; x += 5.0) s.field.add({x, 30.0});
  s.map.compute(s.field, s.model);
  s.survey = SurveyData::from_error_map(s.map);

  const GdopPlacement alg(2);
  Rng rng(8);
  const Vec2 pick = alg.propose(s.ctx(), rng);
  const auto beacons = connected_beacons(s.field, s.model, pick);
  EXPECT_DOUBLE_EQ(gdop(pick, beacons), kGdopSingular);
}

TEST(Gdop, RequiresFieldAndModel) {
  Scenario s(5);
  PlacementContext ctx = PlacementContext::basic(s.survey, s.bounds, 15.0);
  const GdopPlacement alg;
  Rng rng(9);
  EXPECT_THROW(alg.propose(ctx, rng), CheckFailure);
}

TEST(AlgorithmNames, AreStable) {
  EXPECT_EQ(RandomPlacement().name(), "random");
  EXPECT_EQ(MaxPlacement().name(), "max");
  EXPECT_EQ(GridPlacement().name(), "grid");
  EXPECT_EQ(OraclePlacement().name(), "oracle");
  EXPECT_EQ(LocusPlacement().name(), "locus");
  EXPECT_EQ(LocusPlacement(true).name(), "locus-covered");
  EXPECT_EQ(GdopPlacement().name(), "gdop");
}

}  // namespace
}  // namespace abp
